"""Tuner: tuned configuration vs the paper's default, across Table I.

The auto-tuner (:mod:`repro.tuner`) automates the paper's manual
ablations -- the block-shape sweep of Section IV-B and the reordering
study of Section IV-C -- as a per-matrix search.  This benchmark runs the
search on every Table-I stand-in and gates two properties:

* **tuned never loses** -- the winning configuration's measured multiply
  time is <= the default configuration's (Jaccard reordering, MMA-matched
  block shape) on *every* matrix.  The default is always measured by the
  search, so a violation means winner selection itself broke;
* **pruning does real work** -- the analytical Eq. 1 / Eq. 2 model must
  discard or skip part of the candidate space (otherwise every candidate
  pays a full reordering pass and tuning cost explodes).

The per-matrix tuned-vs-default ratios land in ``extra_info`` for the CI
perf-regression gate (``repro.analysis.regression``).
"""

import pytest

from repro import SMaTConfig
from repro.analysis import geometric_mean
from repro.matrices import suitesparse
from repro.tuner import Tuner

from common import print_figure

MATRICES = suitesparse.TABLE1_NAMES
N_COLS = 8
BUDGET = 6


@pytest.mark.benchmark(group="tuner")
def test_tuned_vs_default(benchmark, bench_scale):
    """Tuned >= default on every Table-I stand-in."""
    config = SMaTConfig()
    tuner = Tuner(cache=False, n_cols=N_COLS, max_measure=BUDGET)

    rows = []
    results = {}
    for name in MATRICES:
        A = suitesparse.load(name, scale=bench_scale)
        result = tuner.tune(A, config)
        results[name] = result
        rows.append(
            {
                "matrix": name,
                "winner": result.best.candidate.label,
                "default_ms": result.default.simulated_ms,
                "tuned_ms": result.best.simulated_ms,
                "tuned_vs_default": result.tuned_vs_default,
                "measured": result.n_measured,
                "pruned": result.n_pruned,
                "candidates": len(result.outcomes),
                "search_ms": result.search_ms,
            }
        )

    print_figure(
        "Auto-tuner vs the paper's default configuration (Table-I stand-ins)",
        rows,
    )

    # the benchmark timer measures one model-guided search on the smallest
    # stand-in (the recurring cost a serving deployment would pay per new
    # matrix before the tuning cache absorbs it)
    A_small = suitesparse.load("dc2", scale=bench_scale)
    benchmark(lambda: tuner.tune(A_small, config))

    ratios = {name: results[name].tuned_vs_default for name in MATRICES}
    benchmark.extra_info["tuned_vs_default_geomean"] = geometric_mean(
        list(ratios.values())
    )
    benchmark.extra_info["tuned_vs_default_min"] = min(ratios.values())
    for name, ratio in ratios.items():
        benchmark.extra_info[f"ratio_{name}"] = ratio

    for name, result in results.items():
        # acceptance gate: the tuned configuration's measured multiply time
        # is never worse than the default's (it is always measured too)
        assert result.best.simulated_ms <= result.default.simulated_ms + 1e-12, (
            f"{name}: tuned candidate {result.best.candidate.label} "
            f"({result.best.simulated_ms:.4f} ms) lost to the default "
            f"({result.default.simulated_ms:.4f} ms)"
        )
        # the analytical model must actually shrink the measured set
        assert result.n_measured <= BUDGET
        assert result.n_measured < len(result.outcomes), (
            f"{name}: pruning measured the whole space"
        )
