"""Table I: the nine SuiteSparse matrices and their properties.

Regenerates the paper's Table I from the synthetic stand-ins: for each
matrix it reports the paper's size/nnz/sparsity next to the stand-in's
values, plus the BCSR block statistics the rest of the evaluation depends
on.  Run with ``pytest benchmarks/bench_table1_matrices.py -s`` to see the
table.
"""

import pytest

from repro.formats import BCSRMatrix
from repro.matrices import suitesparse

from common import print_figure


@pytest.mark.benchmark(group="table1")
def test_table1_matrix_inventory(benchmark, bench_scale):
    def build_all():
        return {
            meta.name: suitesparse.load(meta.name, scale=bench_scale)
            for meta in suitesparse.TABLE1
        }

    matrices = benchmark(build_all)

    rows = []
    for meta in suitesparse.TABLE1:
        m = matrices[meta.name]
        bcsr = BCSRMatrix.from_csr(m, (16, 8))
        rows.append(
            {
                "name": meta.name,
                "domain": meta.domain,
                "paper_size": f"{meta.nrows}x{meta.ncols}",
                "paper_nnz": meta.nnz,
                "paper_sparsity_%": 100 * meta.sparsity,
                "standin_size": f"{m.nrows}x{m.ncols}",
                "standin_nnz": m.nnz,
                "standin_sparsity_%": 100 * m.sparsity,
                "bcsr_blocks": bcsr.n_blocks,
                "fill_in": bcsr.fill_in_ratio,
            }
        )
    print_figure("Table I -- SuiteSparse matrices (paper vs stand-in)", rows)

    benchmark.extra_info["rows"] = rows
    assert len(rows) == 9
