"""Online tuner: recovery from mis-calibration and recording overhead.

Two contracts of the online self-correcting loop are gated here:

* **recovery** -- an engine whose cost model was deliberately poisoned
  (SMaT priced 50x cheaper than it is, so the model-guided search prunes
  the honest winner) must recover to the *offline* tuner's winner within
  ``RECOVERY_BUDGET`` served batches: drift detection recalibrates the
  model scale, a background re-tune re-runs the search, and the refreshed
  plan is swapped in atomically.  After recovery the served simulated
  latency must match the offline tuner's geomean (ratio >= ``1 - 1e-3``),
  and the re-tuned winner persisted to the tuning cache must be picked up
  by a fresh ``Tuner`` reading the same file (the cross-process path).
* **recording overhead** -- with online tuning enabled in passive mode
  (no tuner attached: record + drift only, the serving default under
  ``REPRO_ONLINE_TUNE=1``) the warm cached-plan path must stay within
  **2%** of an engine without online tuning.

The overhead protocol mirrors ``bench_observability``: both engines are
timed in interleaved rounds and each keeps its *minimum* round, so
scheduler noise hits both variants alike.
"""

import time

import numpy as np
import pytest

from repro import SMaTConfig
from repro.analysis import geometric_mean
from repro.core.policy import ExecutionPolicy, OnlineTuningConfig
from repro.engine import SpMMEngine
from repro.matrices import band_matrix, suitesparse
from repro.tuner import Tuner

from common import dense_rhs, print_figure

#: recovery scenario: a dense band where the honest auto-menu winner is
#: cuBLAS by 3-5x (dimension fixed -- the dynamics do not depend on scale)
DIM = 512
BANDWIDTH = int(DIM * 0.9)
#: served batches the loop gets to detect drift, recalibrate and re-tune
RECOVERY_BUDGET = 400
#: warm batches averaged after recovery for the geomean comparison
STEADY_BATCHES = 8
#: overhead protocol (same as bench_observability)
MATRIX = "cant"
N_COLS = 8
INNER = 8
ROUNDS = 50
RECORDING_CEILING = 1.02


@pytest.fixture(scope="module")
def recovery_problem():
    A = band_matrix(DIM, BANDWIDTH, rng=np.random.default_rng(7))
    operands = [
        np.random.default_rng(i).normal(size=(DIM, N_COLS)).astype(np.float32)
        for i in range(4)
    ]
    return A, operands


@pytest.mark.benchmark(group="online_tuner")
def test_miscalibration_recovery(benchmark, recovery_problem, tmp_path):
    """Poisoned cost model -> drift -> recalibrate -> re-tune -> swap."""
    A, operands = recovery_problem
    base = SMaTConfig(kernel="auto")

    # offline reference: the honest model-guided search on a clean tuner
    offline = Tuner(cache=False)
    offline_result = offline.tune(A, base)
    offline_winner = offline_result.best.candidate.kernel
    offline_ms = offline_result.best.simulated_ms

    cache_path = tmp_path / "tuning.json"
    policy = ExecutionPolicy(
        max_workers=1,
        tune=True,
        online_tune=OnlineTuningConfig(min_samples=8, drift_threshold=2.5),
    )
    engine = SpMMEngine(
        config=base, policy=policy, tuner=Tuner(cache=cache_path)
    )
    # poison: the model now believes SMaT is 50x faster than it is, so the
    # search prunes the honest winner and serves SMaT
    engine.online_tuner.scales["smat"] = 1 / 50.0
    try:
        recovered_at = None
        for i in range(RECOVERY_BUDGET):
            result = engine.execute_one(A, operands[i % len(operands)])
            if result.report.backend == offline_winner:
                recovered_at = i + 1
                break
            time.sleep(0.005)  # the re-tune runs on a background thread
        online = engine.telemetry().online
        assert recovered_at is not None, (
            f"never recovered to {offline_winner} within "
            f"{RECOVERY_BUDGET} batches: {online}"
        )
        assert online.recalibrations >= 1
        assert online.plan_swaps >= 1
        assert online.errors == 0

        steady_ms = [
            engine.execute_one(A, operands[i % len(operands)]).report.simulated_ms
            for i in range(STEADY_BATCHES)
        ]
        recovery_ratio = offline_ms / geometric_mean(steady_ms)

        benchmark(lambda: engine.execute_one(A, operands[0]))
        scales = dict(engine.telemetry().online.model_scales)
    finally:
        engine.close()

    # the persisted winner is picked up by a fresh tuner on the same file
    fresh = Tuner(cache=cache_path)
    resolved = fresh.resolve(A, base)
    assert resolved.kernel == offline_winner

    print_figure(
        f"mis-calibration recovery on a {DIM}x{DIM} band "
        f"(bandwidth {BANDWIDTH}, smat priced 50x cheap)",
        [
            {
                "offline winner": offline_winner,
                "recovered at batch": recovered_at,
                "offline geomean ms": offline_ms,
                "served geomean ms": geometric_mean(steady_ms),
                "smat scale after": scales.get("smat", float("nan")),
            }
        ],
    )
    benchmark.extra_info["recovered_within_items"] = recovered_at
    benchmark.extra_info["recovery_vs_offline_geomean"] = recovery_ratio

    # headline gate: served latency is back at the offline tuner's geomean
    assert recovery_ratio >= 1 - 1e-3, (
        f"recovered plan serves {1 / recovery_ratio:.3f}x the offline "
        f"tuner's geomean latency"
    )


@pytest.fixture(scope="module")
def overhead_problem(bench_scale):
    A = suitesparse.load(MATRIX, scale=bench_scale)
    return A, dense_rhs(A.ncols, N_COLS)


def _sample_ms(engine, A, B):
    """Wall-clock milliseconds of ``INNER`` warm execute_one calls."""
    start = time.perf_counter()
    for _ in range(INNER):
        engine.execute_one(A, B)
    return 1e3 * (time.perf_counter() - start)


@pytest.mark.benchmark(group="online_tuner")
def test_recording_overhead(benchmark, overhead_problem):
    """Warm cached-plan latency: online recording on vs off (<= 2%)."""
    A, B = overhead_problem

    engines = {
        "online off": SpMMEngine(
            SMaTConfig(), policy=ExecutionPolicy(max_workers=1), cache_size=4
        ),
        "online recording": SpMMEngine(
            SMaTConfig(),
            policy=ExecutionPolicy(
                max_workers=1, online_tune=OnlineTuningConfig()
            ),
            cache_size=4,
        ),
    }
    try:
        # disabled online tuning is structural, not just fast
        assert engines["online off"].online_tuner is None
        assert engines["online recording"].online_tuner is not None

        for engine in engines.values():  # plan build + first-hit warm-up
            engine.execute_one(A, B)
            _sample_ms(engine, A, B)

        best = {label: float("inf") for label in engines}
        for _ in range(ROUNDS):
            for label, engine in engines.items():
                best[label] = min(best[label], _sample_ms(engine, A, B))

        benchmark(lambda: engines["online off"].execute_one(A, B))
        observations = engines["online recording"].telemetry().online.observations
    finally:
        for engine in engines.values():
            engine.close()

    base_ms = best["online off"]
    recording_ratio = best["online recording"] / base_ms
    print_figure(
        f"online recording overhead on the warm cached-plan path ({MATRIX}, "
        f"min of {ROUNDS} interleaved rounds x {INNER} calls)",
        [
            {"variant": label, "best_ms": ms, "vs_base": ms / base_ms}
            for label, ms in best.items()
        ],
    )
    benchmark.extra_info["base_ms"] = base_ms
    benchmark.extra_info["recording_ms"] = best["online recording"]
    benchmark.extra_info["recording_overhead_ratio"] = recording_ratio

    # the recording engine really did observe the served batches
    assert observations > 0
    # acceptance criteria: recording <= 2% overhead on the warm path
    assert recording_ratio <= RECORDING_CEILING, (
        f"online recording overhead {100 * (recording_ratio - 1):.2f}% "
        f"exceeds {100 * (RECORDING_CEILING - 1):.0f}%"
    )
