"""Figure 2: performance model vs measurement for the optimisation ladder.

The paper validates its linear runtime model ``T = T_e * n_e + T_init``
(Eq. 1) on 16k x 16k band matrices with bandwidth 64..4096, for the kernel
variants naive / B / T / BT / CBT, and reports the speedup of each variant
over the naive kernel (up to 2x for B, 12x for T, 20x for BT, 22x for
CBT).

This benchmark reproduces both parts: for every variant it sweeps the
bandwidth, fits Eq. 1 on the simulated runtimes, and reports the fit
quality and the variant-over-naive speedups.
"""

import pytest

from repro.core import LinearPerformanceModel
from repro.kernels import SMaTKernel
from repro.matrices import band_matrix

from common import dense_rhs, print_figure

VARIANTS = ["naive", "B", "T", "BT", "CBT"]
N_COLS = 8


@pytest.fixture(scope="module")
def band_sweep(band_n, bench_rng):
    """Band matrices with bandwidth 64..min(4096, n/4), as in Figure 2."""
    bandwidths = [b for b in (64, 128, 256, 512, 1024, 2048, 4096) if b <= band_n // 4]
    matrices = {b: band_matrix(band_n, b, rng=bench_rng) for b in bandwidths}
    B = dense_rhs(band_n, N_COLS)
    return bandwidths, matrices, B


@pytest.mark.benchmark(group="fig02")
def test_fig02_variant_ladder_and_model_fit(benchmark, band_sweep, band_n):
    bandwidths, matrices, B = band_sweep

    def run_cbt_once():
        return SMaTKernel(variant="CBT").multiply(matrices[bandwidths[0]], B)

    benchmark(run_cbt_once)

    # sweep every variant over every bandwidth
    times = {v: [] for v in VARIANTS}
    blocks = []
    for b in bandwidths:
        A = matrices[b]
        for v in VARIANTS:
            result = SMaTKernel(variant=v).multiply(A, B)
            times[v].append(result.timing.time_s)
            if v == "CBT":
                blocks.append(result.counters.extra["n_blocks"])

    rows = []
    for i, b in enumerate(bandwidths):
        row = {"bandwidth": b, "n_blocks": int(blocks[i])}
        for v in VARIANTS:
            row[f"{v}_us"] = times[v][i] * 1e6
        row["speedup_CBT_vs_naive"] = times["naive"][i] / times["CBT"][i]
        rows.append(row)
    print_figure(f"Figure 2 -- optimisation ladder on {band_n}x{band_n} band matrices (N=8)", rows)

    # Eq. 1 fit per variant
    fit_rows = []
    for v in VARIANTS:
        fit = LinearPerformanceModel().fit(blocks, times[v])
        fit_rows.append(
            {
                "variant": v,
                "T_e_ns_per_block": fit.t_e * 1e9,
                "T_init_us": fit.t_init * 1e6,
                "r_squared": fit.r_squared,
                "max_speedup_vs_naive": max(
                    tn / tv for tn, tv in zip(times["naive"], times[v])
                ),
            }
        )
    print_figure("Figure 2 -- Eq. 1 fit per variant (paper: B<=2x, T<=12x, BT<=20x, CBT<=22x vs naive)", fit_rows)

    benchmark.extra_info["ladder"] = rows
    benchmark.extra_info["fits"] = fit_rows

    # qualitative checks mirroring the paper's claims
    for fit_row in fit_rows:
        assert fit_row["r_squared"] > 0.9, "Eq. 1 must describe the simulated kernel"
    by_name = {r["variant"]: r["max_speedup_vs_naive"] for r in fit_rows}
    assert by_name["CBT"] >= by_name["BT"] >= by_name["T"] >= 1.0
    assert by_name["CBT"] > 3.0
