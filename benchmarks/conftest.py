"""Shared configuration of the benchmark harness.

Every benchmark regenerates one table or figure of the paper: it computes
the same series the figure plots (simulated GFLOP/s or wall-clock per
library), prints it as a text table (run pytest with ``-s`` to see it),
and stores the series in the pytest-benchmark ``extra_info`` so it also
lands in ``--benchmark-json`` output.  The pytest-benchmark timer measures
the host-side cost of one representative simulated kernel invocation.

Environment knobs
-----------------
``REPRO_BENCH_SCALE``
    Dimension scale of the SuiteSparse stand-ins (default ``0.12``; use
    ``1.0`` to regenerate the full-size Table-I matrices -- slower but
    closer to the paper's absolute block counts).
``REPRO_BENCH_BAND_N``
    Dimension of the synthetic band matrices (default ``4096``; the paper
    uses ``16384``).
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

import numpy as np
import pytest

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))


def _float_env(name: str, default: float) -> float:
    try:
        return float(os.environ.get(name, default))
    except ValueError:
        return default


#: dimension scale of the SuiteSparse stand-ins
BENCH_SCALE: float = _float_env("REPRO_BENCH_SCALE", 0.12)
#: dimension of the synthetic band matrices (paper: 16384)
BAND_N: int = int(_float_env("REPRO_BENCH_BAND_N", 4096))


@pytest.fixture(scope="session")
def bench_scale() -> float:
    return BENCH_SCALE


@pytest.fixture(scope="session")
def band_n() -> int:
    return BAND_N


@pytest.fixture(scope="session")
def bench_rng() -> np.random.Generator:
    return np.random.default_rng(2024)


def pytest_report_header(config):
    return (
        f"SMaT reproduction benchmarks: suite-sparse scale={BENCH_SCALE}, "
        f"band dimension={BAND_N} (paper: scale=1.0, 16384)"
    )
