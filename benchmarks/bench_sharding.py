"""Sharding: scatter-gather throughput and per-shard tuning payoff.

Two claims of the sharded subsystem are gated here:

* **no tax on balanced matrices** -- on a structurally uniform matrix
  (``cant``), where one plan is already the sweet spot, the sharded
  scatter-gather path must keep at least 0.9x of the single-plan warm
  throughput (in practice the thread-pooled shards come out ahead);
* **per-shard tuning pays on skewed matrices** -- on a block-diagonal
  matrix whose two blocks favour *different* configurations (a scattered
  hidden-cluster block vs a lattice block band), the nnz-balanced
  2-shard partition with per-shard tuning must beat the best single
  plan on the simulated device critical path (shards run concurrently),
  and must beat sharding with one global configuration -- the tuning
  gain the single-plan pipeline cannot express.
"""

import numpy as np
import pytest

from repro import SMaT, SMaTConfig
from repro.formats import CSRMatrix
from repro.matrices import block_band_matrix, hidden_cluster_matrix, suitesparse
from repro.shard import ShardedSpMM
from repro.tuner import Tuner

from common import best_of, dense_rhs, print_figure

MATRIX = "cant"
N_COLS = 8
# 2 row panels: big enough shards that the fixed scatter-gather overhead
# stays negligible at the CI-pinned bench scale (finer grids shave the
# ratio towards 1.0 without changing the conclusion)
GRID = 2


def _block_diag(A1: CSRMatrix, A2: CSRMatrix) -> CSRMatrix:
    """Stack two CSR matrices block-diagonally (no dense detour)."""
    rowptr = np.concatenate([A1.rowptr, A1.nnz + np.asarray(A2.rowptr[1:], dtype=np.int64)])
    col = np.concatenate([A1.col, np.asarray(A2.col, dtype=np.int64) + A1.ncols])
    val = np.concatenate([A1.val, A2.val])
    shape = (A1.nrows + A2.nrows, A1.ncols + A2.ncols)
    return CSRMatrix(rowptr, col, val, shape, check=False)


@pytest.mark.benchmark(group="sharding")
def test_sharded_vs_single_plan_balanced(benchmark, bench_scale):
    """Sharding a uniform matrix must not cost throughput."""
    A = suitesparse.load(MATRIX, scale=bench_scale)
    B = dense_rhs(A.ncols, N_COLS)

    smat = SMaT(A, SMaTConfig())
    C_single = smat.multiply(B)
    single_ms = best_of(lambda: smat.multiply(B), repeats=7)

    with ShardedSpMM(A, GRID, max_workers=4) as sharded:
        C_sharded, report = sharded.multiply(B, return_report=True)
        sharded_ms = best_of(lambda: sharded.multiply(B), repeats=7)
        benchmark(lambda: sharded.multiply(B))

    np.testing.assert_allclose(C_sharded, C_single, rtol=1e-3, atol=1e-3)
    ratio = single_ms / sharded_ms if sharded_ms > 0 else float("inf")
    rows = [
        {"path": "single plan (warm)", "wall_ms": single_ms},
        {"path": f"sharded {GRID} panels (warm)", "wall_ms": sharded_ms},
        {"path": "throughput ratio", "wall_ms": ratio},
    ]
    print_figure(
        f"sharded vs single-plan warm latency on {MATRIX} "
        f"(grid={GRID}, imbalance {report.imbalance:.3f})",
        rows,
    )
    benchmark.extra_info["single_ms"] = single_ms
    benchmark.extra_info["sharded_ms"] = sharded_ms
    benchmark.extra_info["throughput_ratio"] = ratio
    benchmark.extra_info["imbalance"] = report.imbalance

    assert report.imbalance <= 1.25, "nnz-balanced partition drifted out of balance"
    # acceptance gate: sharding a balanced matrix keeps >= 0.9x throughput
    assert ratio >= 0.9, f"sharded path at {ratio:.2f}x of single-plan throughput"


@pytest.mark.benchmark(group="sharding")
def test_per_shard_tuning_skewed(benchmark):
    """Per-shard tuning beats the best single plan on skewed structure."""
    rng = np.random.default_rng(7)
    # dense scattered block over a longer, sparser lattice band: the
    # nnz-balanced split separates the two structures, which favour
    # different block shapes and reorderings
    top = hidden_cluster_matrix(
        4096,
        4096,
        cluster_size=16,
        segments_per_cluster=8,
        segment_width=8,
        row_fill=0.9,
        shuffle=True,
        rng=rng,
    )
    bot = block_band_matrix(12288, block_size=8, block_bandwidth=1, rng=rng)
    A = _block_diag(top, bot)
    B = dense_rhs(A.ncols, N_COLS)

    # the single-plan champion: a full tuning search over the whole matrix
    single_cfg = Tuner(cache=False).tune(A).best_config
    single_plan = SMaT(A, single_cfg)
    C_single, single_report = single_plan.multiply(B, return_report=True)

    with ShardedSpMM(A, 2, tune=True, tuner=Tuner(cache=False)) as tuned:
        C_sharded, tuned_report = tuned.multiply(B, return_report=True)
        benchmark(lambda: tuned.multiply(B))
    # control: same shards, but forced onto the single-plan configuration
    with ShardedSpMM(A, 2, config=single_cfg) as untuned:
        _, untuned_report = untuned.multiply(B, return_report=True)

    np.testing.assert_allclose(C_sharded, C_single, rtol=1e-3, atol=1e-3)
    critical_speedup = single_report.simulated_ms / tuned_report.critical_path_ms
    tuning_gain = untuned_report.critical_path_ms / tuned_report.critical_path_ms
    rows = [
        {
            "path": "single tuned plan",
            "config": f"{single_cfg.resolved_block_shape()}/{single_cfg.reorder}",
            "sim_ms": single_report.simulated_ms,
        }
    ] + [
        {
            "path": f"shard {s.pos} rows {s.rows[0]}:{s.rows[1]}",
            "config": s.config,
            "sim_ms": s.simulated_ms,
        }
        for s in tuned_report.shards
    ]
    print_figure(
        "per-shard tuning on a skewed block-diagonal matrix "
        f"(critical path {tuned_report.critical_path_ms:.4f} ms)",
        rows,
    )
    benchmark.extra_info["single_sim_ms"] = single_report.simulated_ms
    benchmark.extra_info["sharded_critical_ms"] = tuned_report.critical_path_ms
    benchmark.extra_info["critical_speedup"] = critical_speedup
    benchmark.extra_info["tuning_gain"] = tuning_gain

    # the shards resolve to different configurations -- the heterogeneity
    # a single plan cannot express
    configs = {s.config for s in tuned_report.shards if s.nnz}
    assert len(configs) > 1, f"expected heterogeneous shard configs, got {configs}"
    # acceptance gates: sharded beats the single plan, and the win comes
    # (at least partly) from per-shard tuning
    assert critical_speedup > 1.0, f"sharded at {critical_speedup:.2f}x of single plan"
    assert tuning_gain > 1.0, f"per-shard tuning gained {tuning_gain:.2f}x"
