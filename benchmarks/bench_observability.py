"""Observability overhead: tracing must be free when off, cheap when on.

The tracer rides inside the engine's hot path (``engine.multiply`` wraps
every call in an ``engine.multiply`` span, the plan cache in a
``plan.lookup`` span), so its cost model is part of the engine's latency
contract:

* **disabled tracing is a provable no-op** -- an engine whose policy
  carries ``ObservabilityConfig(tracing=False)`` (or no observability
  config at all) must stay within **2%** of the untraced baseline on the
  warm cached-plan path;
* **sampled tracing is cheap** -- with ``sample_rate=0.1`` (one root
  trace in ten) the same path must stay within **5%**.

Measurement protocol: the three engines are timed in interleaved rounds
(base, disabled, sampled, repeat) and each variant keeps its *minimum*
round time, so scheduler noise and cache warm-up hit all variants alike
and the ratio compares best-case against best-case.
"""

import time

import pytest

from repro import SMaTConfig
from repro.core.policy import ExecutionPolicy
from repro.engine import SpMMEngine
from repro.matrices import suitesparse
from repro.obs import ObservabilityConfig

from common import dense_rhs, print_figure

MATRIX = "cant"
N_COLS = 8
#: engine.multiply calls per timed sample (amortises timer granularity)
INNER = 8
#: interleaved measurement rounds per variant
ROUNDS = 50
#: overhead ceilings the bench itself asserts
DISABLED_CEILING = 1.02
SAMPLED_CEILING = 1.05


@pytest.fixture(scope="module")
def problem(bench_scale):
    A = suitesparse.load(MATRIX, scale=bench_scale)
    return A, dense_rhs(A.ncols, N_COLS)


def _sample_ms(engine, A, B):
    """Wall-clock milliseconds of ``INNER`` warm multiply calls."""
    start = time.perf_counter()
    for _ in range(INNER):
        engine.multiply(A, B)
    return 1e3 * (time.perf_counter() - start)


@pytest.mark.benchmark(group="observability")
def test_tracing_overhead(benchmark, problem):
    """Warm cached-plan latency: untraced vs tracing-off vs sampled."""
    A, B = problem

    engines = {
        "base (no obs config)": SpMMEngine(
            SMaTConfig(), policy=ExecutionPolicy(max_workers=1), cache_size=4
        ),
        "tracing off": SpMMEngine(
            SMaTConfig(),
            policy=ExecutionPolicy(obs=ObservabilityConfig(), max_workers=1),
            cache_size=4,
        ),
        "sampled 10%": SpMMEngine(
            SMaTConfig(),
            policy=ExecutionPolicy(
                obs=ObservabilityConfig(tracing=True, sample_rate=0.1),
                max_workers=1,
            ),
            cache_size=4,
        ),
    }
    try:
        # the no-op fast path is structural, not just fast: every span()
        # call of a disabled tracer returns the same stateless handle
        for label in ("base (no obs config)", "tracing off"):
            tracer = engines[label].tracer
            assert tracer.span("a") is tracer.span("b")
        assert engines["sampled 10%"].tracer.enabled

        for engine in engines.values():  # plan build + first-hit warm-up
            engine.multiply(A, B)
            _sample_ms(engine, A, B)

        best = {label: float("inf") for label in engines}
        for _ in range(ROUNDS):
            for label, engine in engines.items():
                best[label] = min(best[label], _sample_ms(engine, A, B))

        benchmark(lambda: engines["base (no obs config)"].multiply(A, B))
        sampled_spans = len(engines["sampled 10%"].tracer.snapshot())
    finally:
        for engine in engines.values():
            engine.close()

    base_ms = best["base (no obs config)"]
    disabled_ratio = best["tracing off"] / base_ms
    sampled_ratio = best["sampled 10%"] / base_ms
    rows = [
        {
            "variant": label,
            "best_ms": ms,
            "vs_base": ms / base_ms,
        }
        for label, ms in best.items()
    ]
    print_figure(
        f"tracing overhead on the warm cached-plan path ({MATRIX}, "
        f"min of {ROUNDS} interleaved rounds x {INNER} calls)",
        rows,
    )
    print(f"sampled tracer recorded {sampled_spans} spans")
    benchmark.extra_info["base_ms"] = base_ms
    benchmark.extra_info["disabled_ms"] = best["tracing off"]
    benchmark.extra_info["sampled_ms"] = best["sampled 10%"]
    benchmark.extra_info["disabled_overhead_ratio"] = disabled_ratio
    benchmark.extra_info["sampled_overhead_ratio"] = sampled_ratio

    # sampling at 10% must actually record traces (and respect the stride)
    assert sampled_spans > 0
    # acceptance criteria: off <= 2% overhead, sampled <= 5%
    assert disabled_ratio <= DISABLED_CEILING, (
        f"tracing-off overhead {100 * (disabled_ratio - 1):.2f}% exceeds "
        f"{100 * (DISABLED_CEILING - 1):.0f}%"
    )
    assert sampled_ratio <= SAMPLED_CEILING, (
        f"sampled-tracing overhead {100 * (sampled_ratio - 1):.2f}% exceeds "
        f"{100 * (SAMPLED_CEILING - 1):.0f}%"
    )
