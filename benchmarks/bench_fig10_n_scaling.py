"""Figure 10: wall-clock time vs the dense dimension N on cop20k_A.

The paper varies the number of columns N of the dense matrix B for the
sparse matrix cop20k_A and reports wall-clock time per library: DASP is
the fastest at N=1 (pure SpMV) but degrades linearly; cuSPARSE also
degrades; SMaT and Magicube grow slowly, and at N=1000 SMaT is 1.73x /
4.24x / 8.60x faster than Magicube / DASP / cuSPARSE.
"""

import pytest

from repro.matrices import suitesparse

from common import dense_rhs, measure_libraries, print_figure

LIBRARIES = ("smat", "dasp", "magicube", "cusparse")
N_VALUES = [1, 2, 4, 8, 16, 32, 64, 128]


@pytest.mark.benchmark(group="fig10")
def test_fig10_wallclock_vs_n(benchmark, bench_scale):
    A = suitesparse.load("cop20k_A", scale=bench_scale)

    benchmark(lambda: measure_libraries(A, dense_rhs(A.ncols, 8), libraries=("smat",)))

    rows = []
    series = {}
    for n in N_VALUES:
        B = dense_rhs(A.ncols, n)
        res = measure_libraries(A, B, libraries=LIBRARIES)
        series[n] = res
        rows.append({"N": n, **{lib: res[lib]["time_ms"] for lib in res}})
    print_figure(
        "Figure 10 -- wall-clock time [ms] vs N on cop20k_A "
        "(paper: DASP fastest at N=1; SMaT fastest for large N)",
        rows,
    )
    benchmark.extra_info["rows"] = rows

    largest = N_VALUES[-1]
    # DASP wins (or ties) the SpMV case...
    assert series[1]["DASP"]["time_ms"] <= series[1]["SMaT"]["time_ms"] * 1.05
    # ...but scales linearly with N while SMaT does not, so SMaT wins at the
    # other end of the sweep, against every baseline
    for lib in ("DASP", "Magicube", "cuSPARSE"):
        assert series[largest]["SMaT"]["time_ms"] < series[largest][lib]["time_ms"], lib
    dasp_growth = series[largest]["DASP"]["time_ms"] / series[1]["DASP"]["time_ms"]
    smat_growth = series[largest]["SMaT"]["time_ms"] / series[1]["SMaT"]["time_ms"]
    assert dasp_growth > 2.0 * smat_growth
