"""Figure 9: synthetic band-matrix sweep against cuBLAS and the baselines.

The paper multiplies a 16k x 16k band matrix (bandwidth 64 .. 16k, i.e.
sparsity 99.7% .. 0%) by a dense matrix with N=8 (Fig. 9a) and N=128
(Fig. 9b) and reports:

* SMaT is at least 7x (N=8) / 5.3x (N=128) faster than the second-best
  sparse library, and up to 1724x / 2445x faster than cuSPARSE,
* SMaT beats cuBLAS (dense GEMM on the zero-padded matrix, measured as
  *effective* FLOP/s) for sparsity >= 78% (N=8) and >= 96% (N=128),
* in the fully dense case SMaT is only 2.3x (N=8) / 15x (N=128) slower
  than cuBLAS.

This benchmark regenerates both panels as tables of GFLOP/s per sparsity
level and locates the SMaT-vs-cuBLAS crossover.
"""

import pytest

from repro.matrices import band_matrix, band_sparsity

from common import dense_rhs, measure_libraries, print_figure

LIBRARIES = ("smat", "dasp", "magicube", "cusparse", "cublas")


def _sweep(band_n: int, n_cols: int, rng):
    bandwidths = [64, 128, 256, 512, 1024, 2048]
    bandwidths = [b for b in bandwidths if b < band_n] + [band_n - 1]
    rows = []
    crossover = None
    prev_sparsity = None
    B = dense_rhs(band_n, n_cols)
    for b in bandwidths:
        A = band_matrix(band_n, b, rng=rng)
        sparsity = band_sparsity(band_n, b)
        res = measure_libraries(A, B, libraries=LIBRARIES)
        sparse_libs = {k: v for k, v in res.items() if k != "cuBLAS" and k != "SMaT"}
        second_best = max(sparse_libs.values(), key=lambda v: v["gflops"])
        row = {
            "bandwidth": b,
            "sparsity_%": 100 * sparsity,
            **{lib: res[lib]["gflops"] for lib in res},
            "smat_vs_2nd_best": res["SMaT"]["gflops"] / second_best["gflops"],
            "smat_vs_cusparse": res["SMaT"]["gflops"] / res["cuSPARSE"]["gflops"],
            "smat_vs_cublas": res["SMaT"]["gflops"] / res["cuBLAS"]["gflops"],
        }
        rows.append(row)
        if crossover is None and res["SMaT"]["gflops"] < res["cuBLAS"]["gflops"]:
            crossover = (prev_sparsity, sparsity)
        prev_sparsity = sparsity
    return rows, crossover


@pytest.mark.parametrize("n_cols,paper_crossover", [(8, 78.0), (128, 96.0)])
@pytest.mark.benchmark(group="fig09")
def test_fig09_band_matrix_sweep(benchmark, band_n, bench_rng, n_cols, paper_crossover):
    A_small = band_matrix(band_n, 64, rng=bench_rng)
    B = dense_rhs(band_n, n_cols)
    benchmark(lambda: measure_libraries(A_small, B, libraries=("smat",)))

    rows, crossover = _sweep(band_n, n_cols, bench_rng)
    panel = "9a" if n_cols == 8 else "9b"
    print_figure(
        f"Figure {panel} -- band-matrix sweep, N={n_cols} "
        f"(paper: SMaT beats cuBLAS above ~{paper_crossover:.0f}% sparsity)",
        rows,
    )
    if crossover:
        print(f"SMaT/cuBLAS crossover between sparsity "
              f"{100*crossover[1]:.1f}% and {100*(crossover[0] or 1.0):.1f}%")
    else:
        print("SMaT faster than cuBLAS over the whole sweep at this scale")
    benchmark.extra_info["rows"] = rows

    # qualitative claims
    sparsest = rows[0]
    densest = rows[-1]
    assert sparsest["smat_vs_2nd_best"] > 1.0, "SMaT must lead the sparse libraries"
    assert sparsest["smat_vs_cublas"] > 1.0, "SMaT must beat cuBLAS at 99.x% sparsity"
    assert densest["smat_vs_cublas"] < 1.0, "cuBLAS must win the dense case"
    assert densest["smat_vs_cusparse"] > sparsest["smat_vs_cusparse"], (
        "the gap over cuSPARSE must widen as the matrix gets denser"
    )
