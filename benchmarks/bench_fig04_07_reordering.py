"""Figures 4-7: effect of reordering on each library's performance.

The paper measures every library (SMaT, DASP, Magicube, cuSPARSE) on the
nine Table-I matrices under three orderings: the original matrix ("base"),
after Jaccard row permutation ("row"), and after row+column permutation.
SMaT benefits most from the reduced block count; the baselines see smaller
(sometimes negative) effects.

One benchmark per library regenerates the corresponding figure's series.
"""

import pytest

from repro.matrices import suitesparse

from common import dense_rhs, print_figure, reordering_sweep

N_COLS = 8
#: subset of Table I used for the per-library reordering sweep (keeps the
#: default benchmark run short; set REPRO_BENCH_SCALE and extend if needed)
MATRICES = ["mip1", "cant", "cop20k_A", "consph", "dc2", "conf5_4-8x8"]

FIGURE_BY_LIBRARY = {
    "smat": "Figure 4 (SMaT)",
    "dasp": "Figure 5 (DASP)",
    "magicube": "Figure 6 (Magicube)",
    "cusparse": "Figure 7 (cuSPARSE)",
}


def _sweep_library(library: str, bench_scale: float):
    rows = []
    for name in MATRICES:
        A = suitesparse.load(name, scale=bench_scale)
        B = dense_rhs(A.ncols, N_COLS)
        gflops = reordering_sweep(A, B, library)
        rows.append({"matrix": name, **{k: v for k, v in gflops.items()}})
    return rows


@pytest.mark.parametrize("library", ["smat", "dasp", "magicube", "cusparse"])
@pytest.mark.benchmark(group="fig04_07")
def test_fig04_07_reordering_effect(benchmark, bench_scale, library):
    A = suitesparse.load("cop20k_A", scale=bench_scale)
    B = dense_rhs(A.ncols, N_COLS)
    benchmark(lambda: reordering_sweep(A, B, library))

    rows = _sweep_library(library, bench_scale)
    print_figure(
        f"{FIGURE_BY_LIBRARY[library]} -- GFLOP/s per ordering (base / row / row+column)",
        rows,
    )
    benchmark.extra_info["rows"] = rows

    if library == "smat":
        by_name = {r["matrix"]: r for r in rows}
        # row reordering helps SMaT on the shuffled mesh matrix...
        assert by_name["cop20k_A"]["row"] > by_name["cop20k_A"]["base"]
        # ...and is safely skippable on the already-banded conf5 (the paper
        # notes reordering *hurts* conf5; our pipeline would skip it, but the
        # raw sweep applies it unconditionally, so just require it not to
        # help much)
        assert by_name["conf5_4-8x8"]["row"] <= by_name["conf5_4-8x8"]["base"] * 1.2
