"""Shared measurement helpers for the benchmark harness."""

from __future__ import annotations

import time
from typing import Callable, Dict, Iterable, Sequence

import numpy as np

from repro import SMaT, SMaTConfig, compare_libraries
from repro.analysis import format_table
from repro.formats import CSRMatrix
from repro.matrices import suitesparse

__all__ = [
    "best_of",
    "dense_rhs",
    "measure_libraries",
    "reordering_sweep",
    "print_figure",
    "load_standins",
]


def best_of(fn: Callable[[], object], repeats: int = 5) -> float:
    """Minimum wall-clock milliseconds of ``fn`` over ``repeats`` runs."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, 1e3 * (time.perf_counter() - start))
    return best

#: library display order used throughout the figures
LIBRARY_ORDER = ("SMaT", "DASP", "Magicube", "cuSPARSE", "cuBLAS")


def dense_rhs(K: int, n_cols: int, seed: int = 0) -> np.ndarray:
    """The dense right-hand side matrix B used by all experiments."""
    rng = np.random.default_rng(seed)
    return rng.normal(size=(K, n_cols)).astype(np.float32)


def load_standins(names: Iterable[str], scale: float) -> Dict[str, CSRMatrix]:
    """Load (generate) the requested Table-I stand-ins."""
    return {name: suitesparse.load(name, scale=scale) for name in names}


def measure_libraries(
    A: CSRMatrix,
    B: np.ndarray,
    *,
    libraries: Sequence[str] = ("smat", "dasp", "magicube", "cusparse"),
    config: SMaTConfig | None = None,
) -> Dict[str, Dict[str, float]]:
    """Run one problem through the requested libraries and return
    ``{library: {gflops, time_ms, supported}}``."""
    results = compare_libraries(
        A, B, libraries=libraries, config=config, check_correctness=False
    )
    return {
        r.library: {
            "gflops": r.gflops,
            "time_ms": r.time_ms,
            "supported": r.supported,
        }
        for r in results
    }


def reordering_sweep(
    A: CSRMatrix,
    B: np.ndarray,
    library: str,
    *,
    config_base: SMaTConfig | None = None,
) -> Dict[str, float]:
    """GFLOP/s of one library under the three preprocessing settings of
    Figures 4-7: the original ordering ("base"), row permutation ("row")
    and row+column permutation ("row+column").

    For SMaT the permutation is applied through its own pipeline; for the
    baselines the permuted matrix is handed to the library unchanged, which
    mirrors the paper's protocol (each library still applies its own
    internal preprocessing).
    """
    from repro.reorder import JaccardReorderer

    out: Dict[str, float] = {}
    reorderer_row = JaccardReorderer(block_shape=(16, 8))
    reorderer_rc = JaccardReorderer(block_shape=(16, 8), permute_columns=True)

    variants = {
        "base": (A, B),
        "row": (A.permute_rows(reorderer_row.reorder(A, with_stats=False).row_perm), B),
    }
    rc = reorderer_rc.reorder(A, with_stats=False)
    A_rc = A.permute_rows(rc.row_perm).permute_cols(rc.col_perm)
    variants["row+column"] = (A_rc, B[rc.col_perm])

    for label, (A_v, B_v) in variants.items():
        if library.lower() == "smat":
            # reordering already applied externally; disable internal pass
            cfg = config_base or SMaTConfig()
            cfg = SMaTConfig(
                precision=cfg.precision, reorder="identity", variant=cfg.variant, arch=cfg.arch
            )
            res = measure_libraries(A_v, B_v, libraries=("smat",), config=cfg)
            out[label] = res["SMaT"]["gflops"]
        else:
            res = measure_libraries(A_v, B_v, libraries=(library,))
            out[label] = next(iter(res.values()))["gflops"]
    return out


def print_figure(title: str, rows, columns=None) -> None:
    """Print one regenerated table/figure (visible with ``pytest -s``)."""
    print()
    print(format_table(rows, columns=columns, title=title))
