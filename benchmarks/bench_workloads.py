"""Workloads: plan amortisation measured on a real iterative algorithm.

The paper's Figure 1 argument -- one expensive preprocessing pass
amortised over many SpMM executions -- is exactly the shape of iterative
sparse algorithms.  This benchmark runs PageRank end to end through
:mod:`repro.workloads` and gates the amortisation where a user would
feel it:

* **warm >= 3x cold** -- the cold first iteration pays reordering + BCSR
  plan construction (a plan-cache miss); every later iteration reuses
  the cached plan, so warm per-iteration SpMM throughput must be at
  least 3x the cold first iteration (in practice 10-100x);
* **correctness rides along** -- the engine-computed PageRank scores
  must match a dense numpy power iteration on the same transition
  matrix.
"""

import numpy as np
import pytest

from repro.matrices import suitesparse
from repro.workloads import dense_pagerank_reference, pagerank

from common import print_figure

MATRIX = "cant"
DAMPING = 0.85
TOL = 1e-8
MAX_ITER = 40


@pytest.mark.benchmark(group="workloads")
def test_pagerank_amortization(benchmark, bench_scale):
    """Warm PageRank iterations must run >= 3x faster than the cold first
    iteration (which pays plan construction)."""
    A = suitesparse.load(MATRIX, scale=bench_scale)

    result = pagerank(A, damping=DAMPING, tol=TOL, max_iter=MAX_ITER)
    report = result.report
    # steady-state per-iteration latency is what the benchmark timer sees
    benchmark(lambda: pagerank(A, damping=DAMPING, tol=TOL, max_iter=5))

    reference = dense_pagerank_reference(A, damping=DAMPING, tol=TOL, max_iter=MAX_ITER)
    np.testing.assert_allclose(result.scores, reference, rtol=1e-4, atol=1e-7)

    rows = [
        {"phase": "cold first iteration (plan build + SpMM)", "spmm_ms": report.cold_ms},
        {"phase": "warm iteration (cached plan, median)", "spmm_ms": report.warm_ms},
        {"phase": "amortization ratio", "spmm_ms": report.amortization_ratio},
    ]
    print_figure(
        f"PageRank plan amortisation on {MATRIX}: {report.iterations} iterations, "
        f"cache {report.cache_hits} hits / {report.cache_misses} misses",
        rows,
    )
    benchmark.extra_info["cold_ms"] = report.cold_ms
    benchmark.extra_info["warm_ms"] = report.warm_ms
    benchmark.extra_info["amortization_ratio"] = report.amortization_ratio
    benchmark.extra_info["iterations"] = report.iterations

    assert report.iterations >= 3, "need warm iterations to measure amortisation"
    assert report.cache_misses == 1, "exactly one plan build expected across the run"
    # acceptance gate: warm per-iteration throughput >= 3x the cold first iteration
    assert report.amortization_ratio >= 3.0, (
        f"amortization ratio {report.amortization_ratio:.1f}x below the 3x target"
    )
