"""Ablation: reordering-algorithm comparison (paper Section IV-C).

The paper states that among the candidate preprocessing schemes (Reverse
Cuthill-McKee, Saad's similarity grouping, hypergraph partitioning, Gray
code ordering, Sylos Labini's Jaccard clustering) the Jaccard clustering
"provided the best reduction in the block count" on their test matrices,
and that no scheme reduced the block count by more than ~3x (Section III
observation).  This ablation compares every implemented algorithm on a set
of stand-ins, reporting block-count reduction and preprocessing cost.
"""

import time

import pytest

from repro.matrices import suitesparse
from repro.reorder import available_reorderers, get_reorderer

from common import print_figure

MATRICES = ["mip1", "cop20k_A", "cant", "dc2"]
ALGORITHMS = ["jaccard", "saad", "rcm", "graycode", "hypergraph"]


@pytest.mark.benchmark(group="ablation_reorder")
def test_ablation_reordering_algorithms(benchmark, bench_scale):
    matrices = {name: suitesparse.load(name, scale=bench_scale) for name in MATRICES}

    benchmark(
        lambda: get_reorderer("jaccard", block_shape=(16, 8)).reorder(
            matrices["cop20k_A"], with_stats=False
        )
    )

    rows = []
    best_by_matrix = {}
    for name, A in matrices.items():
        for algo in ALGORITHMS:
            reorderer = get_reorderer(algo, block_shape=(16, 8))
            start = time.perf_counter()
            result = reorderer.reorder(A)
            elapsed = time.perf_counter() - start
            reduction = result.block_reduction
            rows.append(
                {
                    "matrix": name,
                    "algorithm": algo,
                    "blocks_before": result.stats_before.n_blocks,
                    "blocks_after": result.stats_after.n_blocks,
                    "reduction": reduction,
                    "std_after": result.stats_after.std_blocks_per_row,
                    "preprocess_s": elapsed,
                }
            )
            best = best_by_matrix.get(name)
            if best is None or reduction > best[1]:
                best_by_matrix[name] = (algo, reduction)

    print_figure(
        "Ablation -- block-count reduction per reordering algorithm "
        "(paper: Jaccard clustering performs best; gains rarely exceed 3x)",
        rows,
    )
    print("best algorithm per matrix:", {k: v[0] for k, v in best_by_matrix.items()})
    benchmark.extra_info["rows"] = rows

    # the registry exposes every algorithm the ablation uses
    assert set(ALGORITHMS) <= set(available_reorderers())
    # Jaccard must be the best (or within 10% of the best) on the clustered
    # optimisation matrix that motivates it
    mip1_rows = {r["algorithm"]: r["reduction"] for r in rows if r["matrix"] == "mip1"}
    assert mip1_rows["jaccard"] >= 0.9 * max(mip1_rows.values())
