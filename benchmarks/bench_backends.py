"""Backends: the tuner's automatic library choice vs fixed SMaT.

The paper's central comparative result is that the winning SpMM library
varies with matrix structure (Figures 8-10): SMaT dominates most of the
SuiteSparse set, while cuBLAS overtakes it once the matrix is dense
enough (Figure 9).  With the backend-pluggable stack, ``kernel="auto"``
turns that finding into something the per-matrix auto-tuner discovers on
its own.  This benchmark gates two properties:

* **auto never loses to fixed SMaT** -- on every Table-I stand-in, the
  backend-aware search's winner is at least as fast (measured simulated
  time) as the paper's fixed-SMaT default, which the search always
  measures.  On a dense band stand-in (Figure 9's regime) the winner must
  actually be a *non-SMaT* backend -- the tuner must rediscover the
  crossover;
* **plan caching pays for every backend** -- a non-SMaT backend
  (Magicube, whose SR-BCRS conversion is the most expensive baseline
  preparation) must see a >= 3x cached-plan speedup through the engine,
  i.e. the amortisation argument of Figure 1 is not SMaT-specific.

The per-matrix auto-vs-SMaT ratios and the cached-plan speedup land in
``extra_info`` for the CI perf-regression gate
(``repro.analysis.regression``).
"""

import time

import numpy as np
import pytest

from repro import SMaTConfig
from repro.analysis import geometric_mean
from repro.engine import SpMMEngine
from repro.matrices import band_matrix, suitesparse
from repro.tuner import Tuner

from common import dense_rhs, print_figure

MATRICES = suitesparse.TABLE1_NAMES
N_COLS = 8
BUDGET = 6
#: the Figure-9 dense regime: a band covering most of the matrix
DENSE_BAND_FRACTION = 0.9


@pytest.mark.benchmark(group="backends")
def test_auto_backend_vs_fixed_smat(benchmark, bench_scale):
    """kernel="auto" >= fixed-SMaT on every stand-in; non-SMaT must win
    the dense band."""
    config = SMaTConfig(kernel="auto")
    tuner = Tuner(cache=False, n_cols=N_COLS, max_measure=BUDGET)

    problems = {name: suitesparse.load(name, scale=bench_scale) for name in MATRICES}
    band_dim = max(512, int(4096 * bench_scale))
    problems["dense_band"] = band_matrix(
        band_dim, max(2, int(band_dim * DENSE_BAND_FRACTION)), rng=np.random.default_rng(7)
    )

    rows = []
    results = {}
    for name, A in problems.items():
        result = tuner.tune(A, config)
        results[name] = result
        rows.append(
            {
                "matrix": name,
                "winner": result.best.candidate.label,
                "backend": result.best.candidate.kernel,
                "smat_default_ms": result.default.simulated_ms,
                "auto_ms": result.best.simulated_ms,
                "auto_vs_smat": result.tuned_vs_default,
                "measured": result.n_measured,
                "pruned": result.n_pruned,
                "candidates": len(result.outcomes),
            }
        )

    print_figure(
        "Auto backend selection vs the paper's fixed-SMaT default",
        rows,
    )

    # the benchmark timer measures one backend-aware search on the
    # smallest stand-in (the recurring cost per new matrix before the
    # tuning cache absorbs it)
    A_small = suitesparse.load("dc2", scale=bench_scale)
    benchmark(lambda: tuner.tune(A_small, config))

    ratios = {name: results[name].tuned_vs_default for name in problems}
    benchmark.extra_info["auto_vs_smat_geomean"] = geometric_mean(list(ratios.values()))
    benchmark.extra_info["auto_vs_smat_min"] = min(ratios.values())
    benchmark.extra_info["dense_band_auto_vs_smat"] = ratios["dense_band"]
    for name, ratio in ratios.items():
        benchmark.extra_info[f"ratio_{name}"] = ratio

    for name, result in results.items():
        # acceptance gate: the backend-aware winner is never worse than
        # the fixed-SMaT default (which the search always measures)
        assert result.best.simulated_ms <= result.default.simulated_ms + 1e-12, (
            f"{name}: auto winner {result.best.candidate.label} "
            f"({result.best.simulated_ms:.4f} ms) lost to fixed SMaT "
            f"({result.default.simulated_ms:.4f} ms)"
        )
        # the per-library cost models must keep pruning effective
        assert result.n_measured <= BUDGET
        assert result.n_measured < len(result.outcomes), (
            f"{name}: pruning measured the whole space"
        )

    # Figure 9's crossover, rediscovered: the dense band's winner is not SMaT
    dense_winner = results["dense_band"].best.candidate
    assert dense_winner.kernel != "smat", (
        f"dense band winner should be a non-SMaT backend, got {dense_winner.label}"
    )
    assert results["dense_band"].tuned_vs_default > 1.0


@pytest.mark.benchmark(group="backends")
def test_non_smat_cached_plan_speedup(benchmark, bench_scale):
    """The plan cache amortises non-SMaT preparation too (Magicube's
    SR-BCRS conversion is the priciest baseline preprocessing)."""
    A = suitesparse.load("cant", scale=bench_scale)
    B = dense_rhs(A.ncols, N_COLS)
    config = SMaTConfig(kernel="magicube")

    with SpMMEngine(config, cache_size=4, max_workers=1) as engine:
        start = time.perf_counter()
        C_cold = engine.multiply(A, B)
        cold_ms = 1e3 * (time.perf_counter() - start)

        warm_ms = float("inf")
        for _ in range(5):
            start = time.perf_counter()
            C_warm = engine.multiply(A, B)
            warm_ms = min(warm_ms, 1e3 * (time.perf_counter() - start))

        benchmark(lambda: engine.multiply(A, B))
        stats = engine.cache_stats

    np.testing.assert_allclose(C_cold, C_warm)
    np.testing.assert_allclose(C_cold, A.spmm(B), rtol=1e-4, atol=1e-4)
    speedup = cold_ms / warm_ms if warm_ms > 0 else float("inf")

    print_figure(
        "Cached-plan speedup for a non-SMaT backend (Magicube on cant)",
        [
            {
                "backend": "magicube",
                "cold_ms": cold_ms,
                "warm_ms": warm_ms,
                "speedup": speedup,
                "cache_hits": stats.hits,
                "cache_misses": stats.misses,
            }
        ],
    )
    benchmark.extra_info["nonsmat_cache_speedup"] = speedup
    assert stats.misses == 1, "one plan build expected"
    assert speedup >= 3.0, (
        f"cached Magicube plan should be >= 3x faster than cold "
        f"(preparation + execute), got {speedup:.1f}x"
    )
