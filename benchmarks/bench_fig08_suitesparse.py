"""Figure 8 + Section VI-B: library comparison on the SuiteSparse matrices.

The paper's headline SuiteSparse result: across the nine Table-I matrices
at N=8, SMaT is on (geometric) average 2.60x faster than DASP (up to
7.34x), 10.78x faster than Magicube (up to 51.23x) and 16.32x faster than
cuSPARSE (up to 125.48x); dc2 is the one matrix where SMaT loses (DASP
wins).  This benchmark regenerates the per-matrix GFLOP/s bars and the
aggregate speedup summary.
"""

import pytest

from repro.analysis import format_speedup_summary, geometric_mean
from repro.matrices import suitesparse

from common import dense_rhs, measure_libraries, print_figure

N_COLS = 8
LIBRARIES = ("smat", "dasp", "magicube", "cusparse")


@pytest.fixture(scope="module")
def figure8_measurements(bench_scale):
    out = {}
    for meta in suitesparse.TABLE1:
        A = suitesparse.load(meta.name, scale=bench_scale)
        B = dense_rhs(A.ncols, N_COLS)
        out[meta.name] = measure_libraries(A, B, libraries=LIBRARIES)
    return out


@pytest.mark.benchmark(group="fig08")
def test_fig08_performance_comparison(benchmark, figure8_measurements, bench_scale):
    A = suitesparse.load("cop20k_A", scale=bench_scale)
    B = dense_rhs(A.ncols, N_COLS)
    benchmark(lambda: measure_libraries(A, B, libraries=("smat",)))

    rows = []
    for name, res in figure8_measurements.items():
        rows.append(
            {
                "matrix": name,
                **{lib: vals["gflops"] for lib, vals in res.items()},
                "best": max(res, key=lambda lib: res[lib]["gflops"]),
            }
        )
    print_figure("Figure 8 -- GFLOP/s per library on the Table-I matrices (N=8)", rows)

    smat_times = {n: r["SMaT"]["time_ms"] for n, r in figure8_measurements.items()}
    baseline_times = {
        lib: {n: r[lib]["time_ms"] for n, r in figure8_measurements.items()}
        for lib in ("DASP", "Magicube", "cuSPARSE")
    }
    print()
    print(format_speedup_summary(smat_times, baseline_times))
    print("paper: DASP 2.60x (max 7.34x), Magicube 10.78x (max 51.23x), "
          "cuSPARSE 16.32x (max 125.48x)")

    benchmark.extra_info["rows"] = rows

    # qualitative claims
    wins = sum(1 for r in rows if r["best"] == "SMaT")
    assert wins >= 6, "SMaT must win the large majority of the Table-I matrices"
    for lib in ("DASP", "Magicube", "cuSPARSE"):
        speedups = [
            baseline_times[lib][n] / smat_times[n] for n in figure8_measurements
        ]
        assert geometric_mean(speedups) > 1.0, f"SMaT must beat {lib} in the geomean"
