"""Process-pool executor: GIL escape, parity, and leak hygiene.

Three claims of the shared-memory process executor are gated here, all on
the skewed block-diagonal matrix of ``bench_sharding`` (a dense scattered
cluster block stacked over a sparser lattice band -- enough per-shard
work that pool overheads cannot hide a real regression):

* **no throughput tax for escaping the GIL** -- the warm scatter-gather
  wall throughput of the process pool must be at least that of the thread
  pool (within a noise band), and the benchmark prints the measured
  ratio;
* **bit-compatible results** -- the process-pool output must ``allclose``
  the unsharded single-plan reference (shards and operands cross the
  process boundary through shared memory, so any codec slip shows up
  here);
* **zero leaked segments** -- after both executors shut down, no
  ``repro-shm-*`` segment may remain in ``/dev/shm``; shared memory is a
  system-global resource and a leak here outlives the interpreter.
"""

import numpy as np
import pytest

from repro import SMaT, SMaTConfig
from repro.core.policy import ExecutionPolicy
from repro.engine.executors import leaked_segments
from repro.matrices import block_band_matrix, hidden_cluster_matrix
from repro.shard import ShardedSpMM

from bench_sharding import _block_diag
from common import best_of, dense_rhs, print_figure

N_COLS = 8
GRID = 8
WORKERS = 4
#: noise band of the thread-vs-process gate: wall-clock on shared CI
#: runners jitters both ways, so the hard assert allows 15% while the
#: committed baseline tracks the measured ratio
RATIO_FLOOR = 0.85


def _skewed_matrix():
    """The skewed block-diagonal matrix of ``bench_sharding``."""
    rng = np.random.default_rng(7)
    top = hidden_cluster_matrix(
        4096,
        4096,
        cluster_size=16,
        segments_per_cluster=8,
        segment_width=8,
        row_fill=0.9,
        shuffle=True,
        rng=rng,
    )
    bot = block_band_matrix(12288, block_size=8, block_bandwidth=1, rng=rng)
    return _block_diag(top, bot)


@pytest.mark.benchmark(group="multiprocess")
def test_process_vs_thread_executor(benchmark):
    """Process pool keeps thread-pool throughput, matches results, leaks nothing."""
    A = _skewed_matrix()
    B = dense_rhs(A.ncols, N_COLS)

    # unsharded single-plan reference: the parity oracle
    C_ref = SMaT(A, SMaTConfig()).multiply(B)

    with ShardedSpMM(
        A, GRID, policy=ExecutionPolicy(executor="thread", max_workers=WORKERS)
    ) as sharded:
        C_thread = sharded.multiply(B)  # warm every shard plan
        thread_ms = best_of(lambda: sharded.multiply(B), repeats=7)

    with ShardedSpMM(
        A, GRID, policy=ExecutionPolicy(executor="process", max_workers=WORKERS)
    ) as sharded:
        C_process = sharded.multiply(B)  # warm: plans built in the workers
        process_ms = best_of(lambda: sharded.multiply(B), repeats=7)
        benchmark(lambda: sharded.multiply(B))
        executor = sharded.engine.telemetry().executor

    np.testing.assert_allclose(C_thread, C_ref, rtol=1e-3, atol=1e-3)
    np.testing.assert_allclose(C_process, C_ref, rtol=1e-3, atol=1e-3)

    ratio = thread_ms / process_ms if process_ms > 0 else float("inf")
    rows = [
        {"path": f"thread pool ({WORKERS} workers, warm)", "wall_ms": thread_ms},
        {"path": f"process pool ({WORKERS} workers, warm)", "wall_ms": process_ms},
        {"path": "process/thread throughput ratio", "wall_ms": ratio},
    ]
    print_figure(
        f"process vs thread executor on the skewed block-diagonal matrix "
        f"(grid={GRID}, imbalance {executor.placement_imbalance:.3f})",
        rows,
    )
    benchmark.extra_info["thread_ms"] = thread_ms
    benchmark.extra_info["process_ms"] = process_ms
    benchmark.extra_info["process_vs_thread_ratio"] = ratio
    benchmark.extra_info["placement_imbalance"] = executor.placement_imbalance
    benchmark.extra_info["segment_bytes"] = executor.segment_bytes

    # every worker received shards, and the LPT placement stayed balanced
    assert len(executor.per_worker_shards) == WORKERS
    assert executor.placement_imbalance < 1.5
    # acceptance gates: escaping the GIL must not cost warm throughput
    # (noise band), and shutdown must leave no shared memory behind
    assert ratio >= RATIO_FLOOR, (
        f"process pool at {ratio:.2f}x of thread-pool throughput"
    )
    assert leaked_segments() == [], "orphaned shared-memory segments after close"
