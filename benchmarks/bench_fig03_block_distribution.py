"""Figure 3: distribution of BCSR blocks per row under reordering.

For every Table-I matrix the paper plots the distribution of blocks per
block-row for the original ordering, after row reordering and after
row+column reordering, and highlights the block-count and standard-
deviation reductions (cop20k_A: 2.5x fewer blocks, 3x smaller std; mip1:
1.8x fewer blocks, 8.4x smaller std; dc2: CV 10.9, pathological).

This benchmark reports, per matrix and ordering, the total block count and
the mean/std/CV of the blocks-per-row distribution.
"""

import pytest

from repro.analysis import distribution_summary
from repro.matrices import suitesparse
from repro.reorder import JaccardReorderer, blocks_per_block_row

from common import print_figure

BLOCK_SHAPE = (16, 8)


@pytest.mark.benchmark(group="fig03")
def test_fig03_blocks_per_row_distributions(benchmark, bench_scale):
    matrices = {
        meta.name: suitesparse.load(meta.name, scale=bench_scale)
        for meta in suitesparse.TABLE1
    }

    def reorder_cop20k():
        return JaccardReorderer(block_shape=BLOCK_SHAPE).reorder(matrices["cop20k_A"])

    benchmark(reorder_cop20k)

    rows = []
    summaries = {}
    for name, A in matrices.items():
        row_reorder = JaccardReorderer(block_shape=BLOCK_SHAPE)
        rc_reorder = JaccardReorderer(block_shape=BLOCK_SHAPE, permute_columns=True)
        row_res = row_reorder.reorder(A, with_stats=False)
        rc_res = rc_reorder.reorder(A, with_stats=False)

        orderings = {
            "original": dict(row_perm=None, col_perm=None),
            "row": dict(row_perm=row_res.row_perm, col_perm=None),
            "row+column": dict(row_perm=rc_res.row_perm, col_perm=rc_res.col_perm),
        }
        summaries[name] = {}
        for label, perms in orderings.items():
            bpr = blocks_per_block_row(A, BLOCK_SHAPE, **perms)
            summary = distribution_summary(bpr)
            summaries[name][label] = summary
            rows.append(
                {
                    "matrix": name,
                    "ordering": label,
                    "n_blocks": int(summary.total),
                    "mean_bpr": summary.mean,
                    "std_bpr": summary.std,
                    "cv": summary.cv,
                    "max_bpr": int(summary.maximum),
                }
            )

    print_figure(
        "Figure 3 -- blocks-per-row distribution per ordering "
        "(paper: cop20k_A row reordering gives 2.5x fewer blocks / 3x smaller std)",
        rows,
    )
    benchmark.extra_info["rows"] = rows

    # qualitative claims: row reordering reduces the block count on the
    # shuffled mesh/optimisation matrices, and dc2 remains heavy-tailed
    for name in ("cop20k_A", "mip1"):
        assert (
            summaries[name]["row"].total < summaries[name]["original"].total
        ), f"row reordering should reduce {name}'s blocks"
    assert summaries["dc2"]["original"].cv > 1.0, "dc2 must stay extremely imbalanced"
    # column permutation adds little beyond row permutation (Section VI-F)
    for name in ("cop20k_A", "consph"):
        assert summaries[name]["row+column"].total >= 0.5 * summaries[name]["row"].total
