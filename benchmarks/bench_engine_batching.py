"""Engine: plan-cache amortisation and batched throughput.

The paper's pipeline pays one expensive preprocessing pass (reordering +
BCSR blocking) and amortises it over many SpMM executions (Figure 1).
The :class:`~repro.engine.SpMMEngine` serving layer makes that
amortisation measurable end to end:

* **plan-cache hit speedup** -- a repeated query against a cached plan
  must be at least 5x faster than a cold query that runs preprocessing
  (in practice the gap is one to two orders of magnitude, matching the
  paper's preprocessing-vs-execution cost split);
* **batched vs sequential throughput** -- a batch of operands pushed
  through the engine's thread pool must produce bit-identical results and
  stay within a loose wall-clock envelope of the sequential loop (the
  per-item kernels already saturate cores via threaded BLAS, so the pool
  buys latency hiding and a queue API rather than raw FLOP throughput).
"""

import time

import numpy as np
import pytest

from repro import SMaT, SMaTConfig
from repro.engine import SpMMEngine
from repro.matrices import suitesparse

from common import dense_rhs, print_figure

MATRIX = "cant"
BATCH = 16
N_COLS = 8


@pytest.fixture(scope="module")
def problem(bench_scale):
    A = suitesparse.load(MATRIX, scale=bench_scale)
    Bs = [dense_rhs(A.ncols, N_COLS, seed=s) for s in range(BATCH)]
    return A, Bs


def _time(fn):
    start = time.perf_counter()
    out = fn()
    return out, 1e3 * (time.perf_counter() - start)


@pytest.mark.benchmark(group="engine_batching")
def test_plan_cache_hit_speedup(benchmark, problem):
    """Repeated queries on a cached plan skip preprocessing entirely."""
    A, Bs = problem
    B = Bs[0]

    with SpMMEngine(SMaTConfig(), cache_size=4, max_workers=1) as engine:
        _, cold_ms = _time(lambda: engine.multiply(A, B))
        _, warm_ms = _time(lambda: engine.multiply(A, B))
        # steady-state cached latency is what the benchmark timer measures
        benchmark(lambda: engine.multiply(A, B))
        stats = engine.cache_stats

    speedup = cold_ms / warm_ms if warm_ms > 0 else float("inf")
    rows = [
        {"query": "cold (preprocess + execute)", "wall_ms": cold_ms},
        {"query": "warm (cached plan)", "wall_ms": warm_ms},
        {"query": "speedup", "wall_ms": speedup},
    ]
    print_figure(
        f"plan-cache amortisation on {MATRIX}: one preprocessing pass, "
        "then cache hits only",
        rows,
    )
    benchmark.extra_info["cold_ms"] = cold_ms
    benchmark.extra_info["warm_ms"] = warm_ms
    benchmark.extra_info["speedup"] = speedup

    assert stats.misses == 1, "exactly one plan build expected"
    assert stats.hits >= 1
    # acceptance criterion: cached-plan queries are >= 5x faster than cold
    assert speedup >= 5.0, f"cache hit speedup {speedup:.1f}x below the 5x target"


@pytest.mark.benchmark(group="engine_batching")
def test_batched_vs_sequential_throughput(benchmark, problem):
    """Thread-pooled batches match sequential results bit for bit and do
    not lose throughput."""
    A, Bs = problem

    smat = SMaT(A, SMaTConfig())  # preprocessing paid up front for both paths
    _, seq_ms = _time(lambda: [smat.multiply(B) for B in Bs])

    with SpMMEngine(SMaTConfig(), cache_size=4, max_workers=4) as engine:
        engine.plan_for(A)  # warm the cache so only execution is compared
        outcome, batch_ms = _time(lambda: engine.multiply_many(A, Bs))
        benchmark(lambda: engine.multiply_many(A, Bs))

    C_seq = [smat.multiply(B) for B in Bs]
    for result, expected in zip(outcome, C_seq):
        np.testing.assert_array_equal(result.C, expected)

    rows = [
        {
            "path": "sequential SMaT.multiply",
            "wall_ms": seq_ms,
            "items/s": 1e3 * len(Bs) / seq_ms,
        },
        {
            "path": "engine batch (4 workers)",
            "wall_ms": batch_ms,
            "items/s": outcome.summary.items_per_second,
        },
    ]
    print_figure(
        f"batched vs sequential throughput on {MATRIX} "
        f"(batch={BATCH}, N={N_COLS})",
        rows,
    )
    benchmark.extra_info["sequential_ms"] = seq_ms
    benchmark.extra_info["batched_ms"] = batch_ms
    benchmark.extra_info["simulated_gflops"] = outcome.summary.simulated_gflops

    assert len(outcome) == len(Bs)
    assert outcome.summary.cache.misses == 1
    # wall-clock parity, not speedup: the per-item kernels already use
    # threaded BLAS, so pool workers compete with it for cores.  The gate
    # only catches pathological engine overhead (lock contention, plan
    # rebuilds), not scheduler noise.
    assert batch_ms <= 5.0 * seq_ms
