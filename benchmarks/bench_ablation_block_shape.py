"""Ablation: BCSR block shape (design choice of Section IV-B).

The paper fixes the block shape to the MMA tile of the chosen precision
(16 x 8 for FP16) and argues the block dimensions must match the MMA API.
This ablation quantifies the trade-off behind that choice: smaller blocks
reduce padding (fewer wasted FLOPs) but increase the block count and the
per-block overheads; larger blocks amortise overheads but waste Tensor-
Core work on padding zeros.
"""

import pytest

from repro.formats import BCSRMatrix
from repro.kernels import SMaTKernel
from repro.matrices import suitesparse

from common import dense_rhs, print_figure

BLOCK_SHAPES = [(8, 8), (16, 8), (16, 16), (32, 16), (32, 32)]
MATRICES = ["cop20k_A", "consph"]
N_COLS = 8


@pytest.mark.benchmark(group="ablation_block_shape")
def test_ablation_block_shape(benchmark, bench_scale):
    matrices = {name: suitesparse.load(name, scale=bench_scale) for name in MATRICES}

    def run_default():
        A = matrices["cop20k_A"]
        return SMaTKernel(block_shape=(16, 8)).multiply(A, dense_rhs(A.ncols, N_COLS))

    benchmark(run_default)

    rows = []
    best = {}
    for name, A in matrices.items():
        B = dense_rhs(A.ncols, N_COLS)
        for shape in BLOCK_SHAPES:
            bcsr = BCSRMatrix.from_csr(A, shape)
            result = SMaTKernel(block_shape=shape).multiply(A, B)
            rows.append(
                {
                    "matrix": name,
                    "block_shape": f"{shape[0]}x{shape[1]}",
                    "n_blocks": bcsr.n_blocks,
                    "fill_in": bcsr.fill_in_ratio,
                    "gflops": result.gflops,
                    "time_ms": result.time_ms,
                }
            )
            key = (name,)
            if key not in best or result.gflops > best[key][1]:
                best[key] = (shape, result.gflops)

    print_figure(
        "Ablation -- BCSR block shape vs padding, block count and performance",
        rows,
    )
    print("best block shape per matrix:", {k[0]: v[0] for k, v in best.items()})
    benchmark.extra_info["rows"] = rows

    # structural invariants of the trade-off
    for name in MATRICES:
        by_shape = {r["block_shape"]: r for r in rows if r["matrix"] == name}
        assert by_shape["8x8"]["n_blocks"] >= by_shape["32x32"]["n_blocks"]
        assert by_shape["8x8"]["fill_in"] <= by_shape["32x32"]["fill_in"]
