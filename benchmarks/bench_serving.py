"""Serving daemon: warm cached-plan requests measured over real HTTP.

The serving layer's promise is that the network API inherits the
engine's amortisation: the first ``POST /multiply`` against a registered
matrix pays reordering + BCSR plan construction, every later request
reuses the cached plan -- so a warm request is dominated by wire codec +
HTTP overhead, not preprocessing.  This benchmark drives a real
in-process :class:`~repro.serve.SpMMServer` on an ephemeral port through
the stdlib client and gates:

* **warm >= 3x cold** -- the cold first request (plan-cache miss) must
  be at least 3x slower than the warm median (in practice 10-50x);
* **sustained throughput** -- a burst of warm requests must hold a
  minimum requests/second with a bounded p99 (the `/metrics` endpoint's
  own percentiles are cross-checked against the client-side view).
"""

import time

import numpy as np
import pytest

from repro import SMaT
from repro.matrices import suitesparse
from repro.serve import SpMMClient, SpMMServer

from common import print_figure

MATRIX = "cant"
N_COLS = 8
BURST = 40


@pytest.mark.benchmark(group="serving")
def test_warm_vs_cold_request_latency(benchmark, bench_scale, bench_rng):
    """A warm cached-plan request must be >= 3x faster than the cold
    first request, end to end over HTTP."""
    A = suitesparse.load(MATRIX, scale=bench_scale)
    B = bench_rng.normal(size=(A.ncols, N_COLS)).astype(np.float32)

    with SpMMServer(max_workers=2) as server:
        client = SpMMClient(server.url)
        fp = client.register(A)

        start = time.perf_counter()
        C_cold, info_cold = client.multiply(fp, B)
        cold_ms = 1e3 * (time.perf_counter() - start)
        assert not info_cold["cache_hit"], "first request must build the plan"

        warm_samples = []
        for _ in range(10):
            start = time.perf_counter()
            _, info = client.multiply(fp, B)
            warm_samples.append(1e3 * (time.perf_counter() - start))
            assert info["cache_hit"], "later requests must reuse the cached plan"
        warm_ms = float(np.median(warm_samples))

        # the benchmark timer sees one steady-state warm request
        benchmark(lambda: client.multiply(fp, B))

        np.testing.assert_allclose(C_cold, SMaT(A).multiply(B), rtol=1e-4, atol=1e-5)

    speedup = cold_ms / warm_ms if warm_ms > 0 else float("inf")
    print_figure(
        f"serving latency on {MATRIX} over HTTP (scale={bench_scale})",
        [
            {"phase": "cold first request (plan build)", "ms": cold_ms},
            {"phase": "warm request (cached plan, median)", "ms": warm_ms},
            {"phase": "warm speedup", "ms": speedup},
        ],
    )
    benchmark.extra_info["cold_ms"] = cold_ms
    benchmark.extra_info["warm_ms"] = warm_ms
    benchmark.extra_info["warm_speedup"] = speedup

    # acceptance gate: the cached plan must dominate the request cost
    assert speedup >= 3.0, f"warm request only {speedup:.1f}x faster than cold"


@pytest.mark.benchmark(group="serving")
def test_sustained_warm_throughput(benchmark, bench_scale, bench_rng):
    """A burst of warm requests must sustain a minimum req/s with a
    bounded p99, and the server's own `/metrics` must agree."""
    A = suitesparse.load(MATRIX, scale=bench_scale)
    B = bench_rng.normal(size=(A.ncols, N_COLS)).astype(np.float32)

    with SpMMServer(max_workers=2) as server:
        client = SpMMClient(server.url)
        fp = client.register(A)
        client.multiply(fp, B)  # pay the plan build outside the burst

        laps = []
        burst_start = time.perf_counter()
        for _ in range(BURST):
            start = time.perf_counter()
            client.multiply(fp, B)
            laps.append(1e3 * (time.perf_counter() - start))
        elapsed_s = time.perf_counter() - burst_start

        warm_rps = BURST / elapsed_s
        p50_ms = float(np.percentile(laps, 50))
        p99_ms = float(np.percentile(laps, 99))

        metrics = client.metrics()
        assert metrics["plan_cache"]["hits"] >= BURST
        assert metrics["engine"]["completed"] >= BURST + 1
        # the server's own window spans every request so far, including
        # the cold plan build -- its p50 is the warm steady state
        server_p50 = metrics["latency_ms"]["p50_ms"]

        benchmark(lambda: client.multiply(fp, B))

    print_figure(
        f"sustained warm serving throughput on {MATRIX} "
        f"({BURST} requests, scale={bench_scale})",
        [
            {"metric": "requests/s", "value": warm_rps},
            {"metric": "p50 ms (client-side)", "value": p50_ms},
            {"metric": "p99 ms (client-side)", "value": p99_ms},
            {"metric": "p50 ms (server /metrics)", "value": server_p50},
        ],
    )
    benchmark.extra_info["warm_rps"] = warm_rps
    benchmark.extra_info["p50_ms"] = p50_ms
    benchmark.extra_info["p99_ms"] = p99_ms

    # acceptance gates: sustained throughput and bounded tail latency;
    # thresholds sit far below typical measurements because CI is noisy
    assert warm_rps >= 20.0, f"sustained warm throughput {warm_rps:.0f} req/s below floor"
    assert p99_ms <= 250.0, f"warm p99 {p99_ms:.1f} ms above bound"
    # server-side steady state (excludes network time) must be inside
    # the client-side view, not somewhere else entirely
    assert 0.0 < server_p50 <= p99_ms + 1.0
