#!/usr/bin/env python3
"""Quickstart: run SMaT end-to-end on one SuiteSparse stand-in.

This is the smallest complete use of the library's public API:

1. obtain a sparse matrix in CSR (here: the ``cop20k_A`` stand-in),
2. build a :class:`repro.SMaT` instance -- this runs the preprocessing
   (Jaccard row reordering + BCSR conversion) once,
3. multiply it by a dense matrix and inspect the performance report,
4. compare against the baseline libraries the paper evaluates.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import SMaT, SMaTConfig, compare_libraries
from repro.analysis import format_table
from repro.matrices import suitesparse


def main() -> None:
    # a scaled-down stand-in of the paper's cop20k_A (use scale=1.0 for the
    # full 121k x 121k matrix)
    A = suitesparse.load("cop20k_A", scale=0.1)
    print(f"matrix: cop20k_A stand-in, {A.nrows}x{A.ncols}, nnz={A.nnz}, "
          f"sparsity={A.sparsity:.4%}")

    # the paper's default configuration: FP16, Jaccard row reordering, the
    # fully optimised CBT kernel, simulated A100
    smat = SMaT(A, SMaTConfig(precision="fp16", reorder="jaccard", variant="CBT"))
    prep = smat.preprocess_report
    print(f"preprocessing: {prep.algorithm}, blocks {prep.blocks_before} -> "
          f"{prep.blocks_after} ({prep.block_reduction:.2f}x reduction)")

    # tall-and-skinny dense operand (N = 8, as in the paper's evaluation)
    rng = np.random.default_rng(0)
    B = rng.normal(size=(A.ncols, 8)).astype(np.float32)

    C, report = smat.multiply(B, return_report=True)
    reference = A.spmm(B)
    max_err = float(np.max(np.abs(C - reference)))
    print(f"result: C is {C.shape}, max abs error vs NumPy reference = {max_err:.2e}")
    print(f"simulated A100 execution: {report.simulated_ms:.4f} ms, "
          f"{report.gflops:.1f} GFLOP/s ({report.bound}-bound, "
          f"{report.n_blocks} BCSR blocks)")

    # how do the baselines fare on the same problem?
    rows = [
        {"library": r.library, "GFLOP/s": r.gflops, "time_ms": r.time_ms,
         "correct": r.correct}
        for r in compare_libraries(A, B)
    ]
    print()
    print(format_table(rows, title="Library comparison (simulated A100, N=8)"))


if __name__ == "__main__":
    main()
