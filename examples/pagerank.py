#!/usr/bin/env python3
"""PageRank on the workloads layer.

PageRank is the canonical "preprocess once, multiply many" workload: the
column-stochastic transition matrix is fixed, and every power-iteration
step is one SpMM against it.  ``repro.workloads.pagerank`` runs the
damped iteration on the plan-caching engine, so the first iteration pays
reordering + BCSR construction and every later one is a plan-cache hit.

This example ranks a scale-free graph (hub-dominated, like web and
circuit graphs), prints the convergence history with per-iteration SpMM
time, and verifies the scores against a dense numpy power iteration.

Run:  python examples/pagerank.py
"""

import numpy as np

from repro.analysis import format_table
from repro.formats import transition_matrix
from repro.matrices import scale_free_graph
from repro.workloads import pagerank

N_NODES = 8192
DAMPING = 0.85
TOL = 1e-6  # within float32 SpMM reach, so the early exit triggers


def dense_reference(adj, damping: float, tol: float, max_iter: int = 200) -> np.ndarray:
    """The same damped power iteration in dense float64 numpy."""
    n = adj.nrows
    dangling = np.zeros(n, dtype=bool)
    M = transition_matrix(adj, dangling=dangling).to_dense().astype(np.float64)
    v = np.full(n, 1.0 / n)
    x = v.copy()
    for _ in range(max_iter):
        x_new = damping * (M @ x + x[dangling].sum() * v) + (1.0 - damping) * v
        x_new /= x_new.sum()
        if np.abs(x_new - x).sum() < tol:
            return x_new
        x = x_new
    return x


def main() -> None:
    rng = np.random.default_rng(0)
    print(f"building a scale-free graph with {N_NODES} nodes ...")
    adj = scale_free_graph(N_NODES, avg_degree=12.0, exponent=2.1, rng=rng)

    result = pagerank(adj, damping=DAMPING, tol=TOL, max_iter=100)
    report = result.report

    rows = report.table()
    if len(rows) > 12:  # keep the table readable
        rows = rows[:6] + rows[-6:]
    print(format_table(
        rows,
        title=(
            f"PageRank convergence on {N_NODES} nodes: "
            f"{report.iterations} iterations, converged={report.converged}"
        ),
    ))

    reference = dense_reference(adj, DAMPING, TOL)
    err = float(np.abs(result.scores - reference).max())
    top = np.argsort(result.scores)[::-1][:5]
    print(f"\ntop-5 nodes: {list(top)} (scores {result.scores[top].round(5)})")
    print(
        f"plan amortization: cold iteration {report.cold_ms:.2f} ms, "
        f"warm median {report.warm_ms:.3f} ms -> "
        f"{report.amortization_ratio:.1f}x "
        f"(cache hits {report.cache_hits}, misses {report.cache_misses})"
    )
    print(f"max abs error vs dense numpy reference: {err:.2e}")


if __name__ == "__main__":
    main()
