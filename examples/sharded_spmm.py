#!/usr/bin/env python3
"""Sharded SpMM: balanced partitioning with one tuned plan per shard.

One plan per matrix is the paper's sweet spot for matrices of uniform
structure -- but the best block shape and reordering vary *within* a
large matrix too.  The sharded subsystem (`repro.shard`) splits a matrix
into an nnz-balanced grid of panels, prepares one execution plan per
shard (each with its own reordering, and its own block shape when tuning
is on), and scatter-gathers the shard runs on the engine's thread pool.

This example:

1. partitions a Table-I stand-in (``cant``) into a 2x2 grid and prints
   the per-shard breakdown (nnz share, imbalance, chosen config, time),
2. verifies the sharded result matches the single-plan pipeline, and
3. compares sharded vs single-plan warm latency.

Run:  python examples/sharded_spmm.py
"""

import time

import numpy as np

from repro import SMaT, SMaTConfig
from repro.analysis import format_table
from repro.matrices import suitesparse
from repro.shard import ShardedSpMM

MATRIX = "cant"
SCALE = 0.1
GRID = "2x2"
N_COLS = 8


def best_of(fn, repeats: int = 3) -> float:
    """Minimum wall-clock milliseconds of ``fn`` over ``repeats`` runs."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, 1e3 * (time.perf_counter() - start))
    return best


def main() -> None:
    A = suitesparse.load(MATRIX, scale=SCALE)
    rng = np.random.default_rng(0)
    B = rng.normal(size=(A.ncols, N_COLS)).astype(np.float32)
    print(f"matrix: {MATRIX} stand-in, {A.nrows}x{A.ncols}, nnz={A.nnz}")

    # single-plan reference: the paper's pipeline, preprocessing paid once
    smat = SMaT(A, SMaTConfig())
    C_single = smat.multiply(B)
    single_ms = best_of(lambda: smat.multiply(B))

    with ShardedSpMM(A, GRID, max_workers=4) as sharded:
        C_sharded, report = sharded.multiply(B, return_report=True)
        sharded_ms = best_of(lambda: sharded.multiply(B))

    print()
    print(format_table(
        report.table(),
        title=(
            f"shard table: grid {report.grid[0]}x{report.grid[1]}, "
            f"mode={report.mode}, nnz imbalance {report.imbalance:.3f}"
        ),
    ))

    max_err = float(np.max(np.abs(C_sharded - C_single)))
    print(f"sharded C matches single-plan C: max abs difference {max_err:.2e}")
    print(
        f"warm latency: sharded {sharded_ms:.2f} ms "
        f"({report.n_shards} shards on 4 workers) vs single-plan {single_ms:.2f} ms"
    )
    print(
        f"simulated device time: {report.critical_path_ms:.4f} ms critical path "
        f"({report.simulated_ms:.4f} ms serial) -- per-shard plans open the "
        "door to per-shard tuning (ShardedSpMM(..., tune=True))"
    )


if __name__ == "__main__":
    main()
