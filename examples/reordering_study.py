#!/usr/bin/env python3
"""Reordering study: how much do the preprocessing algorithms help?

The paper's preprocessing step (Section IV-C) permutes the rows of the
sparse matrix to pack its non-zeros into fewer BCSR blocks.  This example
compares every implemented reordering algorithm (Jaccard clustering --
SMaT's default -- plus Reverse Cuthill-McKee, Saad's grouping, Gray-code
ordering and hypergraph-style bisection) on two very different matrices:

* an optimisation-style matrix with hidden row clusters (``mip1``-like),
  where reordering pays off, and
* a lattice-QCD block band matrix (``conf5``-like), which is already
  optimally ordered and where reordering can only hurt.

Run:  python examples/reordering_study.py
"""

import time

import numpy as np

from repro import SMaT, SMaTConfig
from repro.analysis import format_table
from repro.matrices import block_band_matrix, hidden_cluster_matrix
from repro.reorder import available_reorderers, get_reorderer

BLOCK_SHAPE = (16, 8)
ALGORITHMS = ["identity", "jaccard", "saad", "rcm", "graycode", "hypergraph"]


def study(name: str, A, B) -> None:
    rows = []
    for algo in ALGORITHMS:
        reorderer = get_reorderer(algo, block_shape=BLOCK_SHAPE)
        start = time.perf_counter()
        result = reorderer.reorder(A)
        preprocess_s = time.perf_counter() - start

        smat = SMaT(A, SMaTConfig(reorder=algo, auto_skip_reordering=False))
        _, report = smat.multiply(B, return_report=True)
        rows.append(
            {
                "algorithm": algo,
                "blocks": result.stats_after.n_blocks,
                "reduction": result.block_reduction,
                "std_blocks_per_row": result.stats_after.std_blocks_per_row,
                "SMaT_GFLOPs": report.gflops,
                "preprocess_s": preprocess_s,
            }
        )
    print()
    print(format_table(rows, title=f"Reordering study -- {name}"))


def main() -> None:
    rng = np.random.default_rng(0)

    clustered = hidden_cluster_matrix(
        4096, 4096, cluster_size=16, segments_per_cluster=12, segment_width=8,
        row_fill=0.8, shuffle=True, rng=rng,
    )
    B1 = rng.normal(size=(clustered.ncols, 8)).astype(np.float32)
    study("optimisation-style matrix with hidden row clusters (mip1-like)",
          clustered, B1)

    banded = block_band_matrix(4096, block_size=8, block_bandwidth=2, rng=rng)
    B2 = rng.normal(size=(banded.ncols, 8)).astype(np.float32)
    study("lattice-QCD block band matrix (conf5-like, already well ordered)",
          banded, B2)

    print(f"\navailable algorithms: {available_reorderers()}")
    print("Note how the identity ordering is already optimal for the band "
          "matrix -- SMaT's pipeline detects this and skips the permutation "
          "(auto_skip_reordering).")


if __name__ == "__main__":
    main()
