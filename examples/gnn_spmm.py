#!/usr/bin/env python3
"""GNN feature propagation on the workloads layer.

The paper motivates unstructured SpMM with Graph Neural Networks: the
core of a GCN layer is ``H' = act(A_hat @ H @ W)`` where ``A_hat`` is the
normalised sparse adjacency matrix and ``H`` the dense node-feature
matrix.  ``repro.workloads.gcn_forward`` runs that forward pass on the
plan-caching engine: the normalised adjacency is built once by the
formats layer (``repro.formats.gcn_normalize``), one cached execution
plan serves every layer, and the returned report shows the
preprocessing cost fading after the first layer.

This example runs the same network twice -- cold (private engine, plan
built on layer 0) and warm (shared engine, plan already cached) -- and
checks the result against a dense numpy reference.

Run:  python examples/gnn_spmm.py
"""

import numpy as np

from repro.analysis import format_table
from repro.engine import SpMMEngine
from repro.formats import gcn_normalize
from repro.matrices import scale_free_graph
from repro.workloads import gcn_forward

N_NODES = 4096
N_FEATURES = 64
N_LAYERS = 3


def dense_reference(adj, H, weights):
    """The same forward pass in dense numpy (float32, like the kernel)."""
    a_hat = gcn_normalize(adj).to_dense()
    for layer, W in enumerate(weights):
        H = a_hat @ (H @ W)
        if layer < len(weights) - 1:
            H = np.maximum(H, 0.0)  # ReLU
    return H


def main() -> None:
    rng = np.random.default_rng(0)
    print(f"building a scale-free graph with {N_NODES} nodes ...")
    adj = scale_free_graph(N_NODES, avg_degree=12.0, exponent=2.1, rng=rng)

    H0 = rng.normal(size=(N_NODES, N_FEATURES)).astype(np.float32)
    weights = [
        rng.normal(scale=0.3, size=(N_FEATURES, N_FEATURES)).astype(np.float32)
        for _ in range(N_LAYERS)
    ]

    with SpMMEngine(cache_size=8, max_workers=4) as engine:
        cold = gcn_forward(adj, H0, weights, engine=engine)
        warm = gcn_forward(adj, H0, weights, engine=engine)  # plan already cached

    reference = dense_reference(adj, H0, weights)
    err = float(np.max(np.abs(cold.H - reference)) / (np.abs(reference).max() + 1e-9))

    rows = []
    for label, run in (("cold (plan built on layer 0)", cold), ("warm (cached plan)", warm)):
        report = run.report
        rows.append(
            {
                "pass": label,
                "total_spmm_ms": report.total_spmm_ms,
                "layer0_ms": report.cold_ms,
                "warm_layer_ms": report.warm_ms,
                "cache_hits": report.cache_hits,
                "cache_misses": report.cache_misses,
            }
        )
    print(format_table(
        rows,
        title=f"{N_LAYERS}-layer GCN forward pass ({N_NODES} nodes, {N_FEATURES} features)",
    ))
    print(
        f"\ncold amortization ratio (layer 0 / warm layer): "
        f"{cold.report.amortization_ratio:.1f}x; "
        f"warm pass pays no plan build at all "
        f"({warm.report.cache_misses} misses)"
    )
    print(f"max relative error vs dense numpy reference: {err:.2e}")
    np.testing.assert_allclose(cold.H, warm.H, rtol=0, atol=0)  # bit-identical plans


if __name__ == "__main__":
    main()
