#!/usr/bin/env python3
"""GNN feature propagation with SMaT.

The paper motivates unstructured SpMM with Graph Neural Networks: the core
of a GNN layer is ``H' = act(A_hat @ H @ W)`` where ``A_hat`` is the
(normalised) sparse adjacency matrix and ``H`` the dense node-feature
matrix.  The ``A_hat @ H`` product is exactly the SpMM SMaT accelerates.

This example builds a scale-free graph, normalises its adjacency matrix
(symmetric GCN normalisation), and runs a small multi-layer feature
propagation once with SMaT and once with the cuSPARSE-like baseline,
comparing numerical results and simulated execution time.

Run:  python examples/gnn_spmm.py
"""

import numpy as np

from repro import SMaT, SMaTConfig
from repro.analysis import format_table
from repro.formats import COOMatrix, CSRMatrix
from repro.kernels import CusparseCSRKernel, DASPKernel
from repro.matrices import scale_free_graph

N_NODES = 8192
N_FEATURES = 64
N_LAYERS = 3


def gcn_normalise(adj: CSRMatrix) -> CSRMatrix:
    """Symmetric GCN normalisation ``D^-1/2 (A + I) D^-1/2``."""
    coo = adj.to_coo()
    n = adj.nrows
    rows = np.concatenate([coo.row, np.arange(n)])
    cols = np.concatenate([coo.col, np.arange(n)])
    vals = np.concatenate([coo.val, np.ones(n, dtype=coo.val.dtype)])
    a_hat = COOMatrix(rows, cols, vals, (n, n)).to_csr()
    degree = a_hat.spmv(np.ones(n, dtype=np.float32))
    d_inv_sqrt = 1.0 / np.sqrt(np.maximum(degree, 1e-12))
    scaled = a_hat.to_coo()
    vals = scaled.val * d_inv_sqrt[scaled.row] * d_inv_sqrt[scaled.col]
    return COOMatrix(scaled.row, scaled.col, vals, (n, n)).to_csr()


def propagate(multiply, H: np.ndarray, weights) -> np.ndarray:
    """Run ``N_LAYERS`` of ``H <- relu(A_hat @ H @ W_l)``."""
    for W in weights:
        H = multiply(H @ W)
        H = np.maximum(H, 0.0)  # ReLU
    return H


def main() -> None:
    rng = np.random.default_rng(0)
    print(f"building a scale-free graph with {N_NODES} nodes ...")
    adj = scale_free_graph(N_NODES, avg_degree=12.0, exponent=2.1, rng=rng)
    a_hat = gcn_normalise(adj)
    print(f"normalised adjacency: nnz={a_hat.nnz}, sparsity={a_hat.sparsity:.4%}")

    H0 = rng.normal(size=(N_NODES, N_FEATURES)).astype(np.float32)
    weights = [
        rng.normal(scale=0.3, size=(N_FEATURES, N_FEATURES)).astype(np.float32)
        for _ in range(N_LAYERS)
    ]

    # SMaT pipeline (preprocessing runs once, layers reuse it)
    smat = SMaT(a_hat, SMaTConfig(reorder="jaccard"))
    smat_time_ms = 0.0

    def smat_multiply(X):
        nonlocal smat_time_ms
        C, report = smat.multiply(X, return_report=True)
        smat_time_ms += report.simulated_ms
        return C

    H_smat = propagate(smat_multiply, H0, weights)

    # baselines
    rows = [{
        "library": "SMaT",
        "total_spmm_ms": smat_time_ms,
        "blocks": smat.preprocess_report.blocks_after,
    }]
    for kernel_cls in (DASPKernel, CusparseCSRKernel):
        kernel = kernel_cls()
        kernel.prepare(a_hat)
        total = 0.0

        def baseline_multiply(X, kernel=kernel):
            nonlocal total
            result = kernel.run(X)
            total = total + result.time_ms
            return result.C

        H_base = propagate(baseline_multiply, H0, weights)
        err = float(np.max(np.abs(H_base - H_smat)) / (np.abs(H_smat).max() + 1e-9))
        rows.append({
            "library": kernel.name,
            "total_spmm_ms": total,
            "max_rel_diff_vs_SMaT": err,
        })

    print()
    print(format_table(
        rows,
        title=f"{N_LAYERS}-layer GCN feature propagation "
              f"({N_NODES} nodes, {N_FEATURES} features, simulated A100)",
    ))
    print("\nSMaT amortises its one-time reordering across all layers; the "
          "baselines pay their per-launch costs every layer.")


if __name__ == "__main__":
    main()
