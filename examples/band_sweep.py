#!/usr/bin/env python3
"""Sparse-vs-dense crossover study on synthetic band matrices.

Reproduces (at a configurable dimension) the question behind Figure 9 of
the paper: *at what sparsity does a sparse Tensor-Core SpMM overtake a
dense GEMM that simply pads the zeros?*  Conventional wisdom puts the
threshold above 99%; the paper finds 78% (N=8) / 96% (N=128).

Run:  python examples/band_sweep.py [dimension] [n_cols]
"""

import sys

import numpy as np

from repro import compare_libraries
from repro.analysis import format_table
from repro.matrices import band_matrix, band_sparsity, bandwidth_for_sparsity


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 4096
    n_cols = int(sys.argv[2]) if len(sys.argv) > 2 else 8
    rng = np.random.default_rng(0)
    B = rng.normal(size=(n, n_cols)).astype(np.float32)

    target_sparsities = [0.997, 0.99, 0.96, 0.9, 0.78, 0.5, 0.25, 0.0]
    rows = []
    crossover = None
    previous = None
    for target in target_sparsities:
        bw = bandwidth_for_sparsity(n, target)
        A = band_matrix(n, bw, rng=rng)
        sparsity = band_sparsity(n, bw)
        res = {
            r.library: r
            for r in compare_libraries(
                A, B, libraries=("smat", "cublas", "cusparse", "dasp"),
                check_correctness=False,
            )
        }
        rows.append(
            {
                "sparsity_%": 100 * sparsity,
                "bandwidth": bw,
                "SMaT_GFLOPs": res["SMaT"].gflops,
                "cuBLAS_GFLOPs": res["cuBLAS"].gflops,
                "cuSPARSE_GFLOPs": res["cuSPARSE"].gflops,
                "DASP_GFLOPs": res["DASP"].gflops,
                "SMaT/cuBLAS": res["SMaT"].gflops / res["cuBLAS"].gflops,
            }
        )
        if crossover is None and previous is not None:
            if res["SMaT"].gflops < res["cuBLAS"].gflops:
                crossover = (previous, sparsity)
        previous = sparsity

    print(format_table(
        rows,
        title=f"Band-matrix sweep: {n}x{n}, N={n_cols} "
              f"(effective GFLOP/s; cuBLAS processes the zero-padded matrix)",
    ))
    if crossover:
        print(f"\nSMaT overtakes cuBLAS somewhere between "
              f"{100*crossover[1]:.1f}% and {100*crossover[0]:.1f}% sparsity "
              f"(paper: 78% at N=8, 96% at N=128 on the full 16k matrix).")
    else:
        print("\nSMaT is faster than cuBLAS over the entire sweep at this size.")


if __name__ == "__main__":
    main()
