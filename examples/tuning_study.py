#!/usr/bin/env python3
"""Tuning study: let the auto-tuner pick block shape and reordering.

The paper chooses its configuration (MMA-matched 16 x 8 blocks, Jaccard
row reordering) through manual ablations.  The tuner (`repro.tuner`)
automates that choice per matrix: it enumerates the block-shape x
reordering space, prunes hopeless candidates with the paper's Eq. 1 /
Eq. 2 analytical model, measures the survivors, and returns the winner --
which is never worse than the paper's default, because the default is
always measured too.

This example tunes two very different matrices:

* an optimisation-style matrix with hidden row clusters (``mip1``-like),
  where a reordering pays off and the tuner must pick a good one, and
* a lattice-QCD block band matrix (``conf5``-like), which is already
  optimally ordered, where the tuner's job is to *not* waste a
  reordering pass and to find the block shape that fits the band.

It then shows the persistent tuning cache absorbing the second search,
which is how ``SMaTConfig(reorder="auto")`` and ``SpMMEngine(tune=True)``
stay cheap in serving workloads.

Run:  python examples/tuning_study.py
"""

import tempfile
import time
from pathlib import Path

import numpy as np

from repro import SMaTConfig
from repro.analysis import format_table
from repro.engine import SpMMEngine
from repro.matrices import block_band_matrix, hidden_cluster_matrix
from repro.tuner import Tuner


def study(name: str, A, tuner: Tuner) -> None:
    result = tuner.tune(A)
    print()
    print(format_table(
        result.table(),
        title=(
            f"Tuning study -- {name}: {len(result.outcomes)} candidates, "
            f"{result.n_measured} measured, {result.n_pruned} pruned by the model"
        ),
    ))
    best = result.best
    default = result.default
    print(
        f"winner {best.candidate.label}: {best.simulated_ms:.4f} ms vs default "
        f"{default.candidate.label} {default.simulated_ms:.4f} ms "
        f"({result.tuned_vs_default:.2f}x), search {result.search_ms:.0f} ms"
    )


def main() -> None:
    rng = np.random.default_rng(0)

    clustered = hidden_cluster_matrix(
        4096, 4096, cluster_size=16, segments_per_cluster=12, segment_width=8,
        row_fill=0.8, shuffle=True, rng=rng,
    )
    banded = block_band_matrix(4096, block_size=8, block_bandwidth=2, rng=rng)

    with tempfile.TemporaryDirectory() as tmp:
        cache_path = Path(tmp) / "tuning_cache.json"
        tuner = Tuner(cache=cache_path)

        study("hidden row clusters (mip1-like)", clustered, tuner)
        study("block band matrix (conf5-like)", banded, tuner)

        # the persistent cache turns the second sight of a matrix into a
        # dictionary lookup -- this is what reorder="auto" relies on
        tuner.resolve(clustered)  # populates the cache
        start = time.perf_counter()
        tuned_config = tuner.resolve(clustered)
        cached_ms = 1e3 * (time.perf_counter() - start)
        print(
            f"\ncached resolve: {cached_ms:.1f} ms -> "
            f"{tuned_config.reorder} @ {tuned_config.block_shape}"
        )

        # the engine does the same transparently for every matrix it sees
        B = rng.normal(size=(clustered.ncols, 8)).astype(np.float32)
        with SpMMEngine(SMaTConfig(), tune=True, tuning_cache=cache_path) as engine:
            outcome = engine.multiply_many(clustered, [B] * 8)
        print(
            f"tuned engine: {len(outcome)} multiplies, "
            f"{outcome.summary.cache.misses} tuned plan build(s), "
            f"{outcome.summary.items_per_second:.0f} items/s"
        )


if __name__ == "__main__":
    main()
