"""cuSPARSE-like CSR SpMM baseline.

NVIDIA's cuSPARSE executes general SpMM from the CSR format on the CUDA
cores (not the Tensor Cores): one warp processes one sparse row, gathers
the matching rows of ``B`` per non-zero and accumulates ``N`` partial sums
(the ``csrmm``/``SpMM_CSR`` algorithm family).  The paper uses it as the
vendor baseline and reports that it underperforms both on the SuiteSparse
set (Figure 7/8) and -- dramatically -- on denser matrices (Figure 9).

Model: the per-row cost is dominated by the latency-bound gathers of
``B[col, 0:N]``; rows map to warps, so the heavy rows of power-law
matrices serialise, and very long rows (the dense band case) degrade
further because a single warp owns the entire row.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..formats import CSRMatrix
from ..gpu import AccessPattern, KernelCounters, KernelEfficiency
from .base import KernelResult, SpMMKernel

__all__ = ["CusparseCSRKernel"]

# -- calibration constants (cycles) ----------------------------------------------------
#: fixed per-row cost: reading row pointers, predicate setup, final reduction
ROW_OVERHEAD_CYCLES = 350.0
#: per-non-zero base cost (index decode + value load, latency partly hidden)
CYCLES_PER_NNZ_BASE = 4.0
#: per-non-zero, per-output-column cost (B gather + FMA on CUDA cores)
CYCLES_PER_NNZ_PER_COL = 0.9
#: extra serialisation for very long rows (per 32-non-zero chunk beyond the
#: first; models the intra-warp reduction and shrinking cache locality)
LONG_ROW_CHUNK_CYCLES = 24.0
#: rows longer than this are split across multiple warps (cuSPARSE's
#: adaptive CSR algorithms re-balance long rows, so a single hub row does
#: not serialise the whole kernel)
ROW_SPLIT_NNZ = 512
#: distance of the implementation from the idealised issue model
#: (calibrated against the 10-70 GFLOP/s band of Figure 7)
COMPUTE_EFFICIENCY = 0.12


class CusparseCSRKernel(SpMMKernel):
    """Simulated cuSPARSE ``SpMM_CSR`` (CUDA-core) kernel."""

    name = "cuSPARSE"
    input_format = "csr"
    cost_notes = (
        "CUDA-core row-gather model: latency-bound B gathers per non-zero, "
        "long rows split across warps; time linear in nnz"
    )

    def __init__(self, arch=None, precision="fp16"):
        if arch is None:
            from ..gpu import A100_SXM4_40GB as _default_arch

            arch = _default_arch
        super().__init__(arch, precision)
        self.csr: Optional[CSRMatrix] = None

    # -- preparation -------------------------------------------------------------
    def prepare(self, A: CSRMatrix) -> None:
        """cuSPARSE consumes CSR directly; no preprocessing is performed."""
        self.csr = A
        self._mark_prepared(A)

    # -- model -------------------------------------------------------------------------
    def _warp_work_cycles(self, n_cols: int) -> np.ndarray:
        assert self.csr is not None
        row_nnz = self.csr.row_nnz().astype(np.float64)
        # adaptive row splitting: each row contributes ceil(nnz/ROW_SPLIT_NNZ)
        # warp work items of at most ROW_SPLIT_NNZ non-zeros each
        n_pieces = np.maximum(np.ceil(row_nnz / ROW_SPLIT_NNZ), 1.0).astype(np.int64)
        piece_nnz = np.repeat(row_nnz / n_pieces, n_pieces)
        per_nnz = CYCLES_PER_NNZ_BASE + CYCLES_PER_NNZ_PER_COL * n_cols
        chunks = np.ceil(piece_nnz / self.arch.warp_size)
        return (
            ROW_OVERHEAD_CYCLES
            + piece_nnz * per_nnz
            + np.maximum(chunks - 1.0, 0.0) * LONG_ROW_CHUNK_CYCLES
        )

    def _counters(self, n_cols: int) -> KernelCounters:
        assert self.csr is not None
        nnz = self.csr.nnz
        # CSR storage: 4-byte column index + value per nnz, plus row pointers
        bytes_A = nnz * (4 + self.precision.itemsize) + (self.csr.nrows + 1) * 4
        # each non-zero gathers an N-wide slice of B; gathers are scattered,
        # so each touches a full 32-byte sector regardless of N
        bytes_B = float(nnz) * max(32.0, n_cols * 4.0)
        bytes_C = float(self.csr.nrows) * n_cols * 4.0
        return KernelCounters(
            useful_flops=self.useful_flops(nnz, n_cols),
            cuda_core_flops=self.useful_flops(nnz, n_cols),
            bytes_global_read=bytes_A + bytes_B,
            bytes_global_write=bytes_C,
            scalar_instructions=float(nnz) * 4.0,
            warp_work_cycles=self._warp_work_cycles(n_cols),
            extra={"n_rows": float(self.csr.nrows)},
        )

    def _efficiency(self) -> KernelEfficiency:
        return KernelEfficiency(
            tensor_core=COMPUTE_EFFICIENCY,  # scales the warp-cycle makespan
            cuda_core=0.25,
            memory=AccessPattern(coalescing=0.35, bank_conflict_factor=1.0, l2_hit_rate=0.6),
            scalar_ipc=2.0,
        )

    # -- execution -----------------------------------------------------------------------
    def run(self, B: np.ndarray) -> KernelResult:
        B = self._validate_B(B)
        assert self.csr is not None
        C = self.csr.spmm(B)
        counters = self._counters(B.shape[1])
        timing = self.cost_model.simulate(counters, self._efficiency())
        return KernelResult(
            C=C,
            timing=timing,
            counters=counters,
            kernel=self.name,
            meta={"format": "csr"},
        )
