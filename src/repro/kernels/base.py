"""Kernel interface shared by SMaT and the baseline libraries.

Every kernel in this package mirrors one of the libraries evaluated in the
paper (SMaT, cuSPARSE, DASP, Magicube, cuBLAS).  A kernel

1. is *prepared* once for a sparse matrix ``A`` -- format conversion and
   any library-internal preprocessing happen here, mirroring the paper's
   separation between preprocessing and execution (Figure 1), and
2. is *run* against a dense matrix ``B``, producing the numerical result
   ``C = A @ B`` (computed with NumPy) together with a simulated A100
   execution time (computed by :mod:`repro.gpu`).

The numerical result is exact (reference semantics); the timing is the
model's estimate of what the corresponding CUDA kernel would achieve.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from ..formats import CSRMatrix
from ..formats.base import check_dense_operand
from ..formats.csr import matrix_fingerprint
from ..gpu import (
    A100_SXM4_40GB,
    CostModel,
    GPUArchitecture,
    KernelCounters,
    Precision,
    SimulatedTiming,
    get_precision,
)

__all__ = ["KernelResult", "SpMMKernel", "KernelUnsupportedError"]


class KernelUnsupportedError(RuntimeError):
    """Raised when a kernel cannot execute a given problem.

    Mirrors real failures reported in the paper, e.g. Magicube running out
    of device memory for large matrices (Section V-D / VI-F).
    """


@dataclass
class KernelResult:
    """Outcome of one simulated SpMM launch."""

    #: the numerical product ``A @ B``
    C: np.ndarray
    #: simulated execution time and derived GFLOP/s
    timing: SimulatedTiming
    #: raw hardware-event counters that produced the timing
    counters: KernelCounters
    #: kernel (library) name
    kernel: str
    #: free-form per-kernel metadata (block counts, variant flags, ...)
    meta: Dict[str, float] = field(default_factory=dict)

    @property
    def gflops(self) -> float:
        return self.timing.gflops

    @property
    def time_ms(self) -> float:
        return self.timing.time_ms


class SpMMKernel(abc.ABC):
    """Base class of all simulated SpMM kernels.

    Parameters
    ----------
    arch:
        Simulated GPU architecture (defaults to the paper's A100).
    precision:
        Numeric precision of the Tensor-Core path (``"fp16"`` by default,
        matching the paper's evaluation).
    """

    #: human-readable library name ("SMaT", "cuSPARSE", ...)
    name: str = "abstract"
    #: internal storage format the kernel converts the CSR input into
    input_format: str = "csr"
    #: whether the kernel benefits from the block-minimising row
    #: permutation (BCSR-style blocked kernels only) -- the preprocessing
    #: pipeline skips the reordering pass for kernels that do not
    wants_reordering: bool = False
    #: one-line description of the kernel's cost model, surfaced by
    #: ``repro kernels`` and the tuner's search table
    cost_notes: str = ""

    def __init__(self, arch: GPUArchitecture = A100_SXM4_40GB, precision="fp16"):
        self.arch = arch
        self.precision: Precision = get_precision(precision)
        self.cost_model = CostModel(arch, self.precision)
        self._prepared_for: Optional[CSRMatrix] = None

    # -- preparation -----------------------------------------------------------
    @abc.abstractmethod
    def prepare(self, A: CSRMatrix) -> None:
        """Convert ``A`` into the kernel's internal format.

        May raise :class:`KernelUnsupportedError` if the kernel cannot
        handle the matrix (e.g. it does not fit in device memory).
        """

    def is_prepared(self) -> bool:
        return self._prepared_for is not None

    def _mark_prepared(self, A: CSRMatrix) -> None:
        self._prepared_for = A

    def _require_prepared(self) -> CSRMatrix:
        if self._prepared_for is None:
            raise RuntimeError(f"{self.name}: call prepare(A) before run(B)")
        return self._prepared_for

    # -- execution ----------------------------------------------------------------
    @abc.abstractmethod
    def run(self, B: np.ndarray) -> KernelResult:
        """Execute ``C = A @ B`` and return the numerical result plus the
        simulated timing."""

    def multiply(self, A: CSRMatrix, B: np.ndarray) -> KernelResult:
        """Convenience: prepare for ``A`` (if needed) and run against ``B``.

        Re-preparation is keyed on the matrix *content fingerprint*, not
        object identity: an equal matrix loaded twice (two objects, same
        bytes) reuses the prepared state instead of paying the format
        conversion again.
        """
        if self._prepared_for is None or (
            self._prepared_for is not A
            and matrix_fingerprint(self._prepared_for) != matrix_fingerprint(A)
        ):
            self.prepare(A)
        return self.run(B)

    def tuning_work(self, A: CSRMatrix) -> float:
        """The work measure the tuner's Eq. 1-style linear cost model
        predicts this kernel's time from (default: stored non-zeros).

        Each kernel owns its cost model: SMaT's time is linear in the
        BCSR block count, the CSR-based libraries stream ``nnz`` entries,
        and cuBLAS pays for the densified ``M x K`` operand regardless of
        sparsity.  The tuner calibrates one linear fit per (kernel,
        configuration) against this measure and prunes candidates with it.
        """
        return float(A.nnz)

    # -- shared helpers ---------------------------------------------------------------
    def _validate_B(self, B: np.ndarray) -> np.ndarray:
        A = self._require_prepared()
        return check_dense_operand(B, A.ncols)

    @staticmethod
    def useful_flops(nnz: int, n_cols: int) -> float:
        """FLOPs that contribute to the result: ``2 * nnz * N`` (one multiply
        and one add per stored entry and output column)."""
        return 2.0 * float(nnz) * float(max(1, n_cols))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} arch={self.arch.name} precision={self.precision.key}>"
