"""SMaT: BCSR SpMM on Tensor Cores (the paper's contribution).

The kernel mirrors Algorithm 1 of the paper:

* the output matrix ``C`` is tiled into Tensor-Core-sized tiles
  (``h x mma_n``); each tile is owned by one warp ("bottom-up 2D
  parallelism", Figure 1),
* a warp walks the non-zero BCSR blocks of its block row sequentially,
  loading the A block and the matching B tile into shared memory with
  ``cuda::memcpy_async``, moving them to registers with ``ldmatrix``, and
  issuing one ``mma.sync`` per block fragment (Listings 1-3),
* double buffering overlaps the next block's loads with the current
  block's MMAs (Section IV-E).

The optimisation ladder of Figure 2 is reproduced through
:class:`SMaTVariant`: ``naive`` -> ``B`` (skip empty blocks using the BCSR
pointer structure) -> ``T`` (Tensor-Core MMA instead of scalar FMA) ->
``BT`` -> ``CBT`` (asynchronous cooperative loads).  Each variant changes
the per-warp cycle count and the achievable DRAM efficiency; the shared
cost model then adds the memory-traffic roofline and the static-schedule
load imbalance.

Calibration
-----------
The cycle constants below are calibrated against the anchor points the
paper reports (Figure 2 ladder ratios, the "2.3x slower than cuBLAS in the
dense case" point of Figure 9a, the ~15x gap at N=128 of Figure 9b) --
see EXPERIMENTS.md for the paper-vs-model comparison.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Optional

import numpy as np

from ..formats import BCSRMatrix, CSRMatrix
from ..gpu import AccessPattern, KernelCounters, KernelEfficiency
from ..gpu.tensorcore import LDMATRIX_X2_CYCLES, LDMATRIX_X4_CYCLES
from .base import KernelResult, SpMMKernel

__all__ = ["SMaTVariant", "SMaTKernel"]

# -- calibration constants (cycles) --------------------------------------------------
#: scalar (CUDA-core) multiply-accumulate cost per matrix element when the
#: element is fetched straight from global memory (naive kernel, no staging)
SCALAR_MAC_CYCLES_GLOBAL = 60.0
#: scalar multiply-accumulate cost per element when operands are staged in
#: shared memory by the cooperative asynchronous loads ("C" without "T")
SCALAR_MAC_CYCLES_SHARED = 12.0
#: cost of testing whether a block is non-zero when the BCSR pointer
#: structure is not used (the "B" optimisation removes this)
EMPTY_BLOCK_CHECK_CYCLES = 8.0
#: extra per-block cost of synchronous global->register->shared staging
#: (removed by the "C" optimisation, cuda::memcpy_async)
SYNC_LOAD_EXTRA_CYCLES = 40.0
#: fixed per-warp cost: reading block-row pointers, computing tile
#: addresses, writing the C tile back to global memory
WARP_PROLOGUE_CYCLES = 60.0
#: number of in-flight warps needed to saturate HBM bandwidth; below this
#: the kernel is occupancy-limited (tall-and-skinny N=8 grids)
HBM_SATURATION_WARPS = 600.0


@dataclass(frozen=True)
class SMaTVariant:
    """Set of low-level optimisations enabled in the kernel (Figure 2)."""

    use_bcsr_pointers: bool = True  # "B"
    use_tensor_cores: bool = True   # "T"
    use_async_copy: bool = True     # "C"

    @classmethod
    def from_string(cls, spec: str) -> "SMaTVariant":
        """Parse a Figure-2 style variant name: ``"naive"``, ``"B"``,
        ``"T"``, ``"BT"``, ``"CT"``, ``"CBT"`` (order-insensitive)."""
        s = spec.strip().upper()
        if s in ("NAIVE", ""):
            return cls(False, False, False)
        allowed: FrozenSet[str] = frozenset("BTC")
        letters = frozenset(s)
        if not letters <= allowed:
            raise ValueError(
                f"unknown SMaT variant {spec!r}; use combinations of B, T, C or 'naive'"
            )
        return cls("B" in letters, "T" in letters, "C" in letters)

    @property
    def label(self) -> str:
        if not (self.use_bcsr_pointers or self.use_tensor_cores or self.use_async_copy):
            return "naive"
        return (
            ("C" if self.use_async_copy else "")
            + ("B" if self.use_bcsr_pointers else "")
            + ("T" if self.use_tensor_cores else "")
        )


class SMaTKernel(SpMMKernel):
    """Simulated SMaT BCSR Tensor-Core SpMM kernel.

    Parameters
    ----------
    arch, precision:
        See :class:`~repro.kernels.base.SpMMKernel`.
    variant:
        Optimisation set, as a :class:`SMaTVariant` or a Figure-2 string
        (``"CBT"`` -- the full kernel -- by default).
    block_shape:
        BCSR block shape; defaults to the precision's MMA-matched shape
        (16 x 8 for FP16, Section IV-B).
    """

    name = "SMaT"
    input_format = "bcsr"
    wants_reordering = True
    cost_notes = (
        "Eq. 1: linear in the BCSR block count -- per-block warp MMA cycles "
        "plus the DRAM roofline; block-minimising reordering pays off here"
    )

    def __init__(
        self,
        arch=None,
        precision="fp16",
        *,
        variant="CBT",
        block_shape: Optional[tuple[int, int]] = None,
    ):
        if arch is None:
            from ..gpu import A100_SXM4_40GB as _default_arch

            arch = _default_arch
        super().__init__(arch, precision)
        self.variant = (
            variant if isinstance(variant, SMaTVariant) else SMaTVariant.from_string(variant)
        )
        self.block_shape = tuple(block_shape) if block_shape else self.precision.block_shape
        self.bcsr: Optional[BCSRMatrix] = None

    # -- preparation ------------------------------------------------------------
    def prepare(self, A: CSRMatrix) -> None:
        """Convert ``A`` (already permuted by the preprocessing stage) to
        BCSR with the kernel's block shape."""
        self.bcsr = BCSRMatrix.from_csr(A, self.block_shape)
        self._mark_prepared(A)

    def tuning_work(self, A: CSRMatrix) -> float:
        """SMaT's Eq. 1 work measure: the non-zero BCSR block count at the
        kernel's block shape (the prepared BCSR when available, otherwise
        a cheap O(nnz) counting pass)."""
        if self.bcsr is not None and self._prepared_for is A:
            return float(self.bcsr.n_blocks)
        from ..reorder.metrics import count_blocks

        return float(count_blocks(A, self.block_shape))

    # -- per-block cycle model ------------------------------------------------------
    def _per_block_cycles(self, n_tile_cols: int) -> float:
        """Warp cycles to process one stored BCSR block against one
        ``n_tile_cols``-wide tile of ``B``."""
        h, w = self.block_shape
        tc = self.cost_model.tensor_cores

        # shared-memory feed cost of the block's operands (A block + B tile)
        block_bytes = (h * w + w * n_tile_cols) * self.precision.itemsize
        shared_bytes_per_cycle_per_warp = (
            self.arch.shared_mem_banks
            * self.arch.shared_mem_bank_bytes_per_clock
            / self.arch.warp_schedulers_per_sm
        )
        shared_feed = block_bytes / shared_bytes_per_cycle_per_warp

        if self.variant.use_tensor_cores:
            mma_per_block = self.precision.mma_count_for_block(self.block_shape, n_tile_cols)
            compute = mma_per_block * tc.warp_mma_issue_cycles + (
                LDMATRIX_X4_CYCLES + LDMATRIX_X2_CYCLES
            )
            if self.variant.use_async_copy:
                # double buffering: loads overlap with MMAs
                return max(compute, shared_feed)
            return compute + shared_feed + SYNC_LOAD_EXTRA_CYCLES

        # scalar (CUDA-core) path
        macs_per_lane = h * w * n_tile_cols / self.arch.warp_size
        if self.variant.use_async_copy:
            return macs_per_lane * SCALAR_MAC_CYCLES_SHARED + shared_feed
        return macs_per_lane * SCALAR_MAC_CYCLES_GLOBAL

    def _warp_work_cycles(self, n_cols: int) -> np.ndarray:
        """Per-warp cycle counts of the static 2-D grid (one warp per
        ``h x mma_n`` output tile), in launch order."""
        assert self.bcsr is not None
        mma_n = self.precision.mma_shape.n
        n_tiles = -(-max(1, n_cols) // mma_n)
        last_tile_cols = max(1, n_cols) - (n_tiles - 1) * mma_n

        blocks_per_row = self.bcsr.blocks_per_row().astype(np.float64)
        warp_cycles = np.empty(self.bcsr.n_block_rows * n_tiles, dtype=np.float64)
        for tile in range(n_tiles):
            cols = mma_n if tile < n_tiles - 1 else last_tile_cols
            per_block = self._per_block_cycles(cols)
            cycles = WARP_PROLOGUE_CYCLES + blocks_per_row * per_block
            if not self.variant.use_bcsr_pointers:
                cycles = cycles + self.bcsr.n_block_cols * EMPTY_BLOCK_CHECK_CYCLES
            # warps of tile `t` interleave with other tiles in launch order
            # (grid x = block row, grid y = tile)
            warp_cycles[tile::n_tiles] = cycles
        return warp_cycles

    # -- counters ----------------------------------------------------------------------
    def _counters(self, n_cols: int) -> KernelCounters:
        assert self.bcsr is not None
        h, w = self.block_shape
        item = self.precision.itemsize
        n_blocks = self.bcsr.n_blocks
        mma_n = self.precision.mma_shape.n
        n_tiles = -(-max(1, n_cols) // mma_n)

        mma_per_block = self.precision.mma_count_for_block(self.block_shape, n_cols)
        mma_instructions = float(n_blocks) * mma_per_block if self.variant.use_tensor_cores else 0.0
        mma_flops = mma_instructions * self.precision.mma_shape.flops
        cuda_flops = 0.0 if self.variant.use_tensor_cores else 2.0 * n_blocks * h * w * n_cols

        bytes_A = n_blocks * (h * w * item + 4) + (self.bcsr.n_block_rows + 1) * 4
        bytes_B = float(n_blocks) * w * n_cols * item
        bytes_C = float(self.bcsr.nrows) * n_cols * item
        bytes_shared = float(n_blocks) * (h * w + w * mma_n) * item * n_tiles

        return KernelCounters(
            useful_flops=self.useful_flops(self.bcsr.nnz, n_cols),
            mma_instructions=mma_instructions,
            mma_flops=mma_flops,
            cuda_core_flops=cuda_flops,
            bytes_global_read=bytes_A + bytes_B,
            bytes_global_write=bytes_C,
            bytes_shared=bytes_shared,
            scalar_instructions=float(n_blocks) * 4.0,
            warp_work_cycles=self._warp_work_cycles(n_cols),
            extra={
                "n_blocks": float(n_blocks),
                "padding_zeros": float(self.bcsr.padding_zeros),
                "n_warps": float(self.bcsr.n_block_rows * n_tiles),
            },
        )

    def _efficiency(self, n_warps: int) -> KernelEfficiency:
        # DRAM efficiency: the variant's access quality scaled by how much
        # of the device the (possibly small) grid can keep busy.
        if self.variant.use_async_copy:
            base_coalescing = 0.75
        elif self.variant.use_tensor_cores or self.variant.use_bcsr_pointers:
            base_coalescing = 0.5
        else:
            base_coalescing = 0.25
        occupancy = min(1.0, n_warps / HBM_SATURATION_WARPS)
        coalescing = max(0.02, base_coalescing * occupancy)
        tc_eff = 0.85 if self.variant.use_async_copy else 0.75
        return KernelEfficiency(
            tensor_core=tc_eff,
            cuda_core=0.5,
            memory=AccessPattern(coalescing=coalescing, bank_conflict_factor=1.0, l2_hit_rate=0.1),
            scalar_ipc=2.0,
        )

    # -- execution ------------------------------------------------------------------------
    def run(self, B: np.ndarray) -> KernelResult:
        B = self._validate_B(B)
        assert self.bcsr is not None
        n_cols = B.shape[1]

        C = self.bcsr.spmm(B)
        counters = self._counters(n_cols)
        n_warps = int(counters.extra["n_warps"])
        timing = self.cost_model.simulate(counters, self._efficiency(n_warps))
        return KernelResult(
            C=C,
            timing=timing,
            counters=counters,
            kernel=self.name,
            meta={
                "variant": self.variant.label,
                "n_blocks": self.bcsr.n_blocks,
                "block_shape": self.block_shape,
                "fill_in_ratio": self.bcsr.fill_in_ratio,
            },
        )
