"""DASP-like baseline: SpMM as a batched SpMV.

DASP (Lu & Liu, SC'23) is a state-of-the-art SpMV library that maps sparse
matrix--*vector* products onto the dense MMA units by packing rows into
small dense tiles.  It does not provide an SpMM; the paper therefore
evaluates it by "iteratively performing SpMV" -- one kernel launch per
column of ``B`` (Section V-A).  This is competitive for very small ``N``
(DASP is the fastest library at ``N = 1``, Figure 10) but scales linearly
with ``N`` while true SpMM kernels reuse ``A`` across columns.

Model: a single DASP SpMV is bandwidth-bound (it must stream the whole
matrix once per launch) with a well-balanced schedule (DASP's row packing
removes most load imbalance -- which is why it wins on ``dc2``); the SpMM
cost is ``N`` times the SpMV cost plus ``N`` kernel-launch overheads.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..formats import CSRMatrix
from ..gpu import AccessPattern, KernelCounters, KernelEfficiency
from .base import KernelResult, SpMMKernel

__all__ = ["DASPKernel"]

# -- calibration constants ---------------------------------------------------------------
#: fraction of HBM bandwidth a single DASP SpMV sustains (its kernels are
#: heavily optimised; calibrated against the 100-300 GFLOP/s band of Fig. 5)
MEMORY_EFFICIENCY = 0.55
#: per-launch overhead in microseconds (kernel launch + format metadata)
LAUNCH_OVERHEAD_US = 5.0
#: Tensor-Core efficiency of DASP's small-tile MMA formulation for SpMV
TC_EFFICIENCY = 0.08


class DASPKernel(SpMMKernel):
    """Simulated DASP batched-SpMV kernel (one launch per column of B)."""

    name = "DASP"
    input_format = "csr (row-packed)"
    cost_notes = (
        "bandwidth-bound SpMV repeated N times (one launch per column of B); "
        "time linear in nnz x N -- strongest at very small N"
    )

    def __init__(self, arch=None, precision="fp16"):
        if arch is None:
            from ..gpu import A100_SXM4_40GB as _default_arch

            arch = _default_arch
        super().__init__(arch, precision)
        self.csr: Optional[CSRMatrix] = None

    # -- preparation ------------------------------------------------------------------
    def prepare(self, A: CSRMatrix) -> None:
        """DASP preprocesses CSR into its row-packed tile format; the packing
        is cheap and fully balanced, so we keep the CSR and model the
        balanced execution directly."""
        self.csr = A
        self._mark_prepared(A)

    # -- model -------------------------------------------------------------------------------
    def _spmv_counters(self) -> KernelCounters:
        """Counters of a single SpMV launch."""
        assert self.csr is not None
        nnz = self.csr.nnz
        # streamed once per launch: values + column indices + x + y
        bytes_A = nnz * (self.precision.itemsize + 4) + (self.csr.nrows + 1) * 4
        bytes_x = self.csr.ncols * 4.0
        bytes_y = self.csr.nrows * 4.0
        # DASP packs rows into m8n4k4-style tiles; roughly one MMA per 32 nnz
        mma_instructions = nnz / 32.0
        return KernelCounters(
            useful_flops=self.useful_flops(nnz, 1),
            mma_instructions=mma_instructions,
            mma_flops=mma_instructions * self.precision.mma_shape.flops,
            bytes_global_read=bytes_A + bytes_x,
            bytes_global_write=bytes_y,
            scalar_instructions=float(nnz),
            extra={"launches": 1.0},
        )

    def _efficiency(self) -> KernelEfficiency:
        return KernelEfficiency(
            tensor_core=TC_EFFICIENCY,
            cuda_core=0.3,
            memory=AccessPattern(
                coalescing=MEMORY_EFFICIENCY, bank_conflict_factor=1.0, l2_hit_rate=0.1
            ),
            scalar_ipc=4.0,
        )

    # -- execution ------------------------------------------------------------------------------
    def run(self, B: np.ndarray) -> KernelResult:
        B = self._validate_B(B)
        assert self.csr is not None
        n_cols = B.shape[1]

        C = self.csr.spmm(B)
        spmv = self._spmv_counters()
        counters = spmv.scaled(float(n_cols))
        counters.useful_flops = self.useful_flops(self.csr.nnz, n_cols)
        counters.extra["launches"] = float(n_cols)
        timing = self.cost_model.simulate(
            counters,
            self._efficiency(),
            launch_overhead_us=LAUNCH_OVERHEAD_US,
            n_launches=n_cols,
        )
        return KernelResult(
            C=C,
            timing=timing,
            counters=counters,
            kernel=self.name,
            meta={"format": "csr (row-packed)", "launches": n_cols},
        )
