"""cuBLAS-like dense GEMM baseline.

Section VI-C of the paper compares SMaT against cuBLAS: the sparse matrix
is explicitly padded with zeros and multiplied as a dense matrix on the
Tensor Cores.  cuBLAS is extremely efficient -- the question the paper
asks is *at what sparsity a sparse Tensor-Core library overtakes it* (the
answer: 78% for ``N = 8`` and 96% for ``N = 128``, far below the ~99%
conventional wisdom).

Model: a dense ``M x K x N`` GEMM is either Tensor-Core-bound (large
``N``) or DRAM-bound (tall-and-skinny ``N``); cuBLAS reaches a high
fraction of both peaks.  The *effective* GFLOP/s reported by the
benchmarks divides the *useful* work (``2 * nnz * N``) by this time, which
is how the paper scales cuBLAS performance by the fraction of non-zeros.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..formats import CSRMatrix, DenseMatrix
from ..gpu import AccessPattern, KernelCounters, KernelEfficiency
from .base import KernelResult, KernelUnsupportedError, SpMMKernel

__all__ = ["CublasDenseKernel"]

# -- calibration constants -----------------------------------------------------------------
#: fraction of Tensor-Core peak cuBLAS reaches on large GEMMs
TC_EFFICIENCY = 0.80
#: fraction of HBM bandwidth cuBLAS reaches on tall-and-skinny GEMMs
MEMORY_EFFICIENCY = 0.85


class CublasDenseKernel(SpMMKernel):
    """Simulated cuBLAS HGEMM applied to the explicitly densified matrix."""

    name = "cuBLAS"
    input_format = "dense"
    cost_notes = (
        "dense GEMM roofline on the zero-padded operand: time follows M x K "
        "(not nnz), so it wins once the matrix is dense enough (Figure 9)"
    )

    def __init__(self, arch=None, precision="fp16"):
        if arch is None:
            from ..gpu import A100_SXM4_40GB as _default_arch

            arch = _default_arch
        super().__init__(arch, precision)
        self.dense: Optional[DenseMatrix] = None
        self._nnz_logical: int = 0

    # -- preparation ----------------------------------------------------------------
    def prepare(self, A: CSRMatrix) -> None:
        """Densify ``A`` (explicit zero padding).  Refuses matrices whose
        dense form does not fit in device memory, which is exactly the
        practical limit of the "store it densely" approach."""
        dense_bytes = float(A.nrows) * A.ncols * self.precision.itemsize
        if not self.cost_model.memory.fits_in_device_memory(dense_bytes * 1.05):
            raise KernelUnsupportedError(
                f"dense operand of {dense_bytes / 2**30:.1f} GiB does not fit on "
                f"{self.arch.name}"
            )
        self.dense = DenseMatrix.from_sparse(A)
        self._nnz_logical = A.nnz
        self._mark_prepared(A)

    def tuning_work(self, A: CSRMatrix) -> float:
        """cuBLAS pays for the densified operand: ``M x K`` elements,
        independent of the sparsity."""
        return float(A.nrows) * float(A.ncols)

    # -- model ----------------------------------------------------------------------------
    def _counters(self, n_cols: int) -> KernelCounters:
        assert self.dense is not None
        M, K = self.dense.shape
        item = self.precision.itemsize
        dense_flops = 2.0 * M * K * n_cols
        mma_flops_per_inst = self.precision.mma_shape.flops
        return KernelCounters(
            useful_flops=self.useful_flops(self._nnz_logical, n_cols),
            mma_instructions=dense_flops / mma_flops_per_inst,
            mma_flops=dense_flops,
            bytes_global_read=float(M) * K * item + float(K) * n_cols * item,
            bytes_global_write=float(M) * n_cols * item,
            extra={"dense_flops": dense_flops},
        )

    def _efficiency(self) -> KernelEfficiency:
        return KernelEfficiency(
            tensor_core=TC_EFFICIENCY,
            cuda_core=0.7,
            memory=AccessPattern(
                coalescing=MEMORY_EFFICIENCY, bank_conflict_factor=1.0, l2_hit_rate=0.3
            ),
            scalar_ipc=4.0,
        )

    # -- execution --------------------------------------------------------------------------
    def run(self, B: np.ndarray) -> KernelResult:
        B = self._validate_B(B)
        assert self.dense is not None
        C = self.dense.spmm(B)
        counters = self._counters(B.shape[1])
        timing = self.cost_model.simulate(counters, self._efficiency())
        dense_flops = counters.extra["dense_flops"]
        return KernelResult(
            C=C,
            timing=timing,
            counters=counters,
            kernel=self.name,
            meta={
                "format": "dense",
                "dense_gflops": dense_flops / timing.time_s / 1e9,
                "effective_fraction": (
                    counters.useful_flops / dense_flops if dense_flops else 0.0
                ),
            },
        )
