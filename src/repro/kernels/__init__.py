"""Simulated SpMM kernels: SMaT and the paper's comparison targets.

Each kernel executes the SpMM numerically (NumPy) and produces a simulated
A100 execution time through :mod:`repro.gpu`:

* :class:`~repro.kernels.smat.SMaTKernel` -- the paper's BCSR Tensor-Core
  kernel, with the Figure-2 optimisation ladder (naive/B/T/BT/CBT),
* :class:`~repro.kernels.csr_spmm.CusparseCSRKernel` -- cuSPARSE-like CSR
  SpMM on CUDA cores,
* :class:`~repro.kernels.dasp.DASPKernel` -- DASP-like batched SpMV,
* :class:`~repro.kernels.magicube.MagicubeKernel` -- Magicube-like SR-BCRS
  Tensor-Core kernel,
* :class:`~repro.kernels.dense_gemm.CublasDenseKernel` -- cuBLAS-like dense
  GEMM on the densified matrix.

Use :func:`get_kernel` to instantiate by name.
"""

import inspect
from typing import Dict, List, Type

from .base import KernelResult, KernelUnsupportedError, SpMMKernel
from .csr_spmm import CusparseCSRKernel
from .dasp import DASPKernel
from .dense_gemm import CublasDenseKernel
from .magicube import MagicubeKernel
from .smat import SMaTKernel, SMaTVariant

__all__ = [
    "SpMMKernel",
    "KernelResult",
    "KernelUnsupportedError",
    "SMaTKernel",
    "SMaTVariant",
    "CusparseCSRKernel",
    "DASPKernel",
    "MagicubeKernel",
    "CublasDenseKernel",
    "KERNEL_REGISTRY",
    "get_kernel",
    "available_kernels",
    "kernel_info",
]

KERNEL_REGISTRY: Dict[str, Type[SpMMKernel]] = {
    "smat": SMaTKernel,
    "cusparse": CusparseCSRKernel,
    "dasp": DASPKernel,
    "magicube": MagicubeKernel,
    "cublas": CublasDenseKernel,
}


def get_kernel(name: str, *args, **kwargs) -> SpMMKernel:
    """Instantiate a kernel by (case-insensitive) library name.

    Constructor arguments are checked against the kernel's own signature
    *before* instantiation: passing an argument the backend does not
    accept (e.g. SMaT's ``block_shape`` to cuSPARSE) raises a
    :class:`TypeError` naming the backend, instead of an anonymous
    ``__init__`` failure from deep inside the registry.
    """
    key = name.lower()
    if key not in KERNEL_REGISTRY:
        raise ValueError(f"unknown kernel {name!r}; available: {sorted(KERNEL_REGISTRY)}")
    cls = KERNEL_REGISTRY[key]
    try:
        inspect.signature(cls.__init__).bind(None, *args, **kwargs)
    except TypeError as exc:
        raise TypeError(
            f"kernel backend {key!r} ({cls.__name__}) does not accept these "
            f"arguments: {exc}"
        ) from None
    return cls(*args, **kwargs)


def available_kernels() -> list[str]:
    """Names of all registered kernels."""
    return sorted(KERNEL_REGISTRY)


def kernel_info() -> List[dict]:
    """One descriptive row per registered backend (for ``repro kernels``).

    Each row carries the registry key, the display name, the internal
    storage format, whether the backend consumes the block-minimising
    reordering, and a one-line summary of its cost model.
    """
    return [
        {
            "kernel": key,
            "library": cls.name,
            "format": cls.input_format,
            "reordered": cls.wants_reordering,
            "cost_model": cls.cost_notes,
        }
        for key, cls in KERNEL_REGISTRY.items()
    ]
