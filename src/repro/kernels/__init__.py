"""Simulated SpMM kernels: SMaT and the paper's comparison targets.

Each kernel executes the SpMM numerically (NumPy) and produces a simulated
A100 execution time through :mod:`repro.gpu`:

* :class:`~repro.kernels.smat.SMaTKernel` -- the paper's BCSR Tensor-Core
  kernel, with the Figure-2 optimisation ladder (naive/B/T/BT/CBT),
* :class:`~repro.kernels.csr_spmm.CusparseCSRKernel` -- cuSPARSE-like CSR
  SpMM on CUDA cores,
* :class:`~repro.kernels.dasp.DASPKernel` -- DASP-like batched SpMV,
* :class:`~repro.kernels.magicube.MagicubeKernel` -- Magicube-like SR-BCRS
  Tensor-Core kernel,
* :class:`~repro.kernels.dense_gemm.CublasDenseKernel` -- cuBLAS-like dense
  GEMM on the densified matrix.

Use :func:`get_kernel` to instantiate by name.
"""

from typing import Dict, Type

from .base import KernelResult, KernelUnsupportedError, SpMMKernel
from .csr_spmm import CusparseCSRKernel
from .dasp import DASPKernel
from .dense_gemm import CublasDenseKernel
from .magicube import MagicubeKernel
from .smat import SMaTKernel, SMaTVariant

__all__ = [
    "SpMMKernel",
    "KernelResult",
    "KernelUnsupportedError",
    "SMaTKernel",
    "SMaTVariant",
    "CusparseCSRKernel",
    "DASPKernel",
    "MagicubeKernel",
    "CublasDenseKernel",
    "KERNEL_REGISTRY",
    "get_kernel",
    "available_kernels",
]

KERNEL_REGISTRY: Dict[str, Type[SpMMKernel]] = {
    "smat": SMaTKernel,
    "cusparse": CusparseCSRKernel,
    "dasp": DASPKernel,
    "magicube": MagicubeKernel,
    "cublas": CublasDenseKernel,
}


def get_kernel(name: str, *args, **kwargs) -> SpMMKernel:
    """Instantiate a kernel by (case-insensitive) library name."""
    key = name.lower()
    if key not in KERNEL_REGISTRY:
        raise ValueError(f"unknown kernel {name!r}; available: {sorted(KERNEL_REGISTRY)}")
    return KERNEL_REGISTRY[key](*args, **kwargs)


def available_kernels() -> list[str]:
    """Names of all registered kernels."""
    return sorted(KERNEL_REGISTRY)
