"""Magicube-like baseline: SR-BCRS SpMM on Tensor Cores.

Magicube (Li, Osawa, Hoefler, SC'22) targets the structured sparsity of
pruned deep-learning models: the matrix is stored in the Strided Row-major
BCRS format (column vectors grouped into strides, Section IV-B of the SMaT
paper) and multiplied on the Tensor Cores with low-precision integers.
The SMaT paper evaluates its mixed-precision int16 configuration, whose TC
throughput equals FP16 (Section V-A).

Characteristics the model reproduces:

* Tensor-Core execution with a vector-granular format: every stored column
  vector costs an MMA-fragment's worth of work even when mostly padding,
* a large memory footprint (vector padding to the stride plus
  double-buffered index metadata), which makes Magicube run out of device
  memory for large matrices -- the reason only 9 of the 21 DASP matrices
  could be evaluated (Section V-D),
* good scaling with ``N`` (like SMaT it reuses ``A`` across columns) but a
  lower achieved fraction of TC peak than SMaT's block-dense kernel.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..formats import CSRMatrix, SRBCRSMatrix
from ..gpu import AccessPattern, KernelCounters, KernelEfficiency
from .base import KernelResult, KernelUnsupportedError, SpMMKernel

__all__ = ["MagicubeKernel"]

# -- calibration constants -----------------------------------------------------------------
#: per-vector, per-output-tile warp cycles (vector decode + fragment MMA share)
CYCLES_PER_VECTOR_PER_TILE = 16.0
#: fixed per-panel (warp) cost
PANEL_OVERHEAD_CYCLES = 120.0
#: fraction of the idealised issue model Magicube reaches
COMPUTE_EFFICIENCY = 0.25
#: working-set expansion factor of Magicube's preprocessing (device copies
#: of the reordered operand, stride metadata, double buffers)
MEMORY_FOOTPRINT_FACTOR = 6.0


class MagicubeKernel(SpMMKernel):
    """Simulated Magicube SR-BCRS Tensor-Core kernel (int16 mixed precision).

    Parameters
    ----------
    vector_length:
        Column-vector height of the SR-BCRS format (default 8).
    stride:
        Vector-count granularity per row panel (default 4); panels are
        padded with zero vectors up to a multiple of this value.
    """

    name = "Magicube"
    input_format = "sr-bcrs"
    cost_notes = (
        "per-vector Tensor-Core cycles on the SR-BCRS format; ~linear in nnz "
        "but a 6x memory-footprint gate (raises unsupported on large matrices)"
    )

    def __init__(self, arch=None, precision="fp16", *, vector_length: int = 8, stride: int = 4):
        if arch is None:
            from ..gpu import A100_SXM4_40GB as _default_arch

            arch = _default_arch
        super().__init__(arch, precision)
        self.vector_length = int(vector_length)
        self.stride = int(stride)
        self.srbcrs: Optional[SRBCRSMatrix] = None

    # -- preparation -----------------------------------------------------------------
    def prepare(self, A: CSRMatrix) -> None:
        """Convert to SR-BCRS and check the device-memory footprint."""
        srbcrs = SRBCRSMatrix.from_csr(
            A, vector_length=self.vector_length, stride=self.stride
        )
        footprint = srbcrs.memory_footprint_bytes() * MEMORY_FOOTPRINT_FACTOR
        if not self.cost_model.memory.fits_in_device_memory(footprint):
            raise KernelUnsupportedError(
                f"Magicube preprocessing needs ~{footprint / 2**30:.1f} GiB, which "
                f"exceeds the {self.arch.hbm_capacity_gib:.0f} GiB of {self.arch.name}"
            )
        self.srbcrs = srbcrs
        self._mark_prepared(A)

    # -- model -------------------------------------------------------------------------------
    def _warp_work_cycles(self, n_cols: int) -> np.ndarray:
        assert self.srbcrs is not None
        mma_n = self.precision.mma_shape.n
        n_tiles = -(-max(1, n_cols) // mma_n)
        vectors_per_panel = self.srbcrs.vectors_per_panel().astype(np.float64)
        per_panel = PANEL_OVERHEAD_CYCLES + vectors_per_panel * CYCLES_PER_VECTOR_PER_TILE
        # one warp per (panel, output tile)
        return np.repeat(per_panel, n_tiles)

    def _counters(self, n_cols: int) -> KernelCounters:
        assert self.srbcrs is not None
        v = self.vector_length
        item = 2  # int16
        n_vec = self.srbcrs.n_vectors
        mma_n = self.precision.mma_shape.n
        # roughly one MMA per (mma_k / 1)-vector group per output tile
        mma_per_tile = n_vec / max(1, self.precision.mma_shape.k // 1) * 1.0
        n_tiles = -(-max(1, n_cols) // mma_n)
        mma_instructions = mma_per_tile * n_tiles

        bytes_A = n_vec * (v * item + 4) + (self.srbcrs.n_panels + 1) * 4
        bytes_B = float(n_vec) * n_cols * item
        bytes_C = float(self.srbcrs.nrows) * n_cols * item
        return KernelCounters(
            useful_flops=self.useful_flops(self.srbcrs.nnz, n_cols),
            mma_instructions=mma_instructions,
            mma_flops=mma_instructions * self.precision.mma_shape.flops,
            bytes_global_read=bytes_A + bytes_B,
            bytes_global_write=bytes_C,
            scalar_instructions=float(n_vec) * 6.0,
            warp_work_cycles=self._warp_work_cycles(n_cols),
            extra={
                "n_vectors": float(n_vec),
                "n_padding_vectors": float(self.srbcrs.n_padding_vectors),
            },
        )

    def _efficiency(self) -> KernelEfficiency:
        return KernelEfficiency(
            tensor_core=COMPUTE_EFFICIENCY,
            cuda_core=0.4,
            memory=AccessPattern(coalescing=0.45, bank_conflict_factor=1.0, l2_hit_rate=0.2),
            scalar_ipc=2.0,
        )

    # -- execution -------------------------------------------------------------------------------
    def run(self, B: np.ndarray) -> KernelResult:
        B = self._validate_B(B)
        assert self.srbcrs is not None
        C = self.srbcrs.spmm(B)
        counters = self._counters(B.shape[1])
        timing = self.cost_model.simulate(counters, self._efficiency())
        return KernelResult(
            C=C,
            timing=timing,
            counters=counters,
            kernel=self.name,
            meta={
                "format": "sr-bcrs",
                "vector_length": self.vector_length,
                "stride": self.stride,
                "n_vectors": self.srbcrs.n_vectors,
            },
        )
