"""SMaT's core: configuration, end-to-end pipeline, performance model and
library comparison harness."""

from .comparison import DEFAULT_LIBRARIES, LibraryMeasurement, compare_libraries
from .config import SMaTConfig
from .policy import EXECUTOR_KINDS, ExecutionPolicy, OnlineTuningConfig, policy_from_legacy
from .perfmodel import FitResult, LinearPerformanceModel, block_count_bounds
from .plan import ExecutionPlan, PlanSpec, config_signature, matrix_fingerprint, plan_key
from .smat import MultiplyReport, PreprocessReport, SMaT

__all__ = [
    "SMaT",
    "SMaTConfig",
    "ExecutionPolicy",
    "OnlineTuningConfig",
    "EXECUTOR_KINDS",
    "policy_from_legacy",
    "PlanSpec",
    "ExecutionPlan",
    "PreprocessReport",
    "MultiplyReport",
    "matrix_fingerprint",
    "config_signature",
    "plan_key",
    "LinearPerformanceModel",
    "FitResult",
    "block_count_bounds",
    "compare_libraries",
    "LibraryMeasurement",
    "DEFAULT_LIBRARIES",
]
