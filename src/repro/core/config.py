"""Configuration of the SMaT pipeline."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from ..gpu import A100_SXM4_40GB, GPUArchitecture, Precision, get_precision

__all__ = ["SMaTConfig"]


@dataclass
class SMaTConfig:
    """End-to-end configuration of the SMaT library.

    Parameters
    ----------
    kernel:
        Execution backend: ``"smat"`` (the paper's BCSR Tensor-Core
        kernel, default) or one of the baseline libraries the paper
        compares against -- ``"cusparse"``, ``"dasp"``, ``"magicube"``,
        ``"cublas"``.  ``"auto"`` delegates the choice to the per-matrix
        auto-tuner (:mod:`repro.tuner`), which prices every backend with
        its own cost model and measures the survivors -- the per-matrix
        library winner of Figures 8-10, discovered automatically.
    precision:
        Numeric precision of the Tensor-Core path (``"fp16"`` default, as
        in the paper's evaluation).
    block_shape:
        BCSR block shape; ``None`` selects the precision's MMA-matched
        default (16 x 8 for FP16).
    reorder:
        Name of the preprocessing reordering algorithm (``"jaccard"`` --
        the paper's choice, ``"rcm"``, ``"saad"``, ``"graycode"``,
        ``"hypergraph"``, or ``"identity"`` / ``"none"`` to disable).
        ``"auto"`` delegates the choice (together with the block shape)
        to the per-matrix auto-tuner (:mod:`repro.tuner`); the search
        result is persisted in the on-disk tuning cache, so it is paid
        once per matrix.
    reorder_columns:
        Also permute columns (the paper evaluates this and concludes it is
        not worth the extra cost of permuting ``B``; default False).
    reorder_params:
        Extra keyword arguments for the reorderer (e.g. the Jaccard
        ``threshold``).
    auto_skip_reordering:
        Skip the permutation when it does not reduce the block count
        (e.g. band matrices, where the identity is already optimal --
        Section IV-C).
    variant:
        Kernel optimisation set (Figure 2); ``"CBT"`` is the full kernel.
    arch:
        Simulated GPU architecture.
    """

    kernel: str = "smat"
    precision: str = "fp16"
    block_shape: Optional[Tuple[int, int]] = None
    reorder: str = "jaccard"
    reorder_columns: bool = False
    reorder_params: dict = field(default_factory=dict)
    auto_skip_reordering: bool = True
    variant: str = "CBT"
    arch: GPUArchitecture = A100_SXM4_40GB

    def resolved_precision(self) -> Precision:
        return get_precision(self.precision)

    def resolved_block_shape(self) -> Tuple[int, int]:
        if self.block_shape is not None:
            h, w = int(self.block_shape[0]), int(self.block_shape[1])
            if h <= 0 or w <= 0:
                raise ValueError("block dimensions must be positive")
            return (h, w)
        return self.resolved_precision().block_shape

    def resolved_kernel(self) -> str:
        """The backend name, lowercased (``"auto"`` until the tuner
        resolves it to a concrete library)."""
        if not isinstance(self.kernel, str) or not self.kernel:
            raise ValueError("kernel must be a non-empty backend name")
        key = self.kernel.lower()
        from ..kernels import KERNEL_REGISTRY

        if key != "auto" and key not in KERNEL_REGISTRY:
            raise ValueError(
                f"unknown kernel backend {self.kernel!r}; "
                f"available: {sorted(KERNEL_REGISTRY)} or 'auto'"
            )
        return key

    def validate(self) -> "SMaTConfig":
        """Validate the configuration (raises on inconsistency) and return
        self for chaining."""
        self.resolved_precision()
        self.resolved_block_shape()
        self.resolved_kernel()
        if not isinstance(self.reorder, str) or not self.reorder:
            raise ValueError("reorder must be a non-empty algorithm name")
        return self
