"""Unified execution policy for the serving stack.

Five PRs of organic growth scattered execution knobs (``max_workers=``,
``tune=``, ``sharded=``, ``grid=``, ``mode=``, ``latency_window=``)
across :class:`~repro.engine.SpMMEngine`, :class:`~repro.shard.ShardedSpMM`,
every workload function and ``repro serve``.  :class:`ExecutionPolicy`
collects them into one frozen value object that every surface accepts as
``policy=``, and adds the new knob that motivated the redesign: which
*executor* runs sharded work -- the in-process thread pool (``"thread"``)
or the GIL-escaping shared-memory process pool (``"process"``).

The old keyword arguments keep working through
:func:`policy_from_legacy`: each surface routes its legacy kwargs through
the shim, which builds the equivalent policy and emits exactly one
:class:`DeprecationWarning` naming the replacement.
"""

from __future__ import annotations

import dataclasses
import os
import warnings
from dataclasses import dataclass
from typing import Optional, Tuple, Union

from ..obs.config import ObservabilityConfig

__all__ = [
    "EXECUTOR_KINDS",
    "ExecutionPolicy",
    "OnlineTuningConfig",
    "default_executor",
    "default_online_tune",
    "policy_from_legacy",
]

#: executors selectable via ``ExecutionPolicy(executor=...)`` / ``--executor``
EXECUTOR_KINDS = ("thread", "process")

#: environment variable that picks the executor when the policy leaves it
#: ``None`` (the hook the CI process-mode job variant uses)
EXECUTOR_ENV = "REPRO_EXECUTOR"

#: environment variable that enables online tuning when the policy leaves
#: ``online_tune`` as ``None`` (the hook the CI online-mode job uses)
ONLINE_TUNE_ENV = "REPRO_ONLINE_TUNE"

_ENV_FALSE = ("", "0", "false", "off", "no")
_ENV_TRUE = ("1", "true", "on", "yes")

#: shard balancing modes (mirrors ``repro.shard.partition.PARTITION_MODES``;
#: duplicated literally to keep ``repro.core`` import-independent of the
#: shard package)
_SHARD_MODES = ("nnz", "cost")


def default_executor() -> str:
    """Executor used when a policy does not name one.

    Resolves ``$REPRO_EXECUTOR`` at call time (not at policy
    construction), so one policy value behaves identically across
    environments and the CI job variant can flip a whole test suite to
    the process pool without touching code.
    """
    kind = os.environ.get(EXECUTOR_ENV, "").strip() or "thread"
    if kind not in EXECUTOR_KINDS:
        raise ValueError(
            f"${EXECUTOR_ENV} must be one of {EXECUTOR_KINDS}, got {kind!r}"
        )
    return kind


@dataclass(frozen=True)
class OnlineTuningConfig:
    """Switches for the online, self-correcting tuner.

    A frozen, hashable, picklable value object (like
    :class:`~repro.obs.ObservabilityConfig`) that rides on
    :class:`ExecutionPolicy` as ``online_tune``.  Online tuning is **off
    by default**: a policy without it keeps the engine's hot path on a
    single ``is None`` check, and the background worker thread is only
    started once an enabled engine actually executes work.

    Attributes:
        drift_threshold: per-backend drift (geometric mean of
            observed/predicted time over the recent window) beyond which
            the cost model is recalibrated and a background re-tune is
            scheduled.  Symmetric: drift above ``t`` or below ``1/t``
            triggers.  Must be > 1.  The default (2.5) sits above the
            intrinsic extrapolation error of the Eq. 1 fit on matrices
            far from the calibration bands (up to ~2x), so only genuine
            mis-calibration trips it.
        min_samples: observations a backend needs in its drift window
            before the threshold is armed (guards against recalibrating
            off one noisy sample).
        window: drift observations retained per backend (bounded deque);
            must be >= ``min_samples``.
        explore: fraction of served (tuned) traffic routed to near-winner
            configurations, in ``[0, 1)``.  ``0.0`` (default) disables
            exploration; the stride is deterministic, not RNG-driven.
        near_margin: a measured candidate within this factor of the
            winner's time counts as a near-winner eligible for
            exploration.  Must be >= 1.
        max_keys: bound on tracked (matrix, config) keys; beyond it new
            keys are observed for metrics but not re-tuned.
        max_pending: bound on the hot-path observation queue; the worker
            drains it, excess observations are dropped oldest-first.
    """

    drift_threshold: float = 2.5
    min_samples: int = 32
    window: int = 128
    explore: float = 0.0
    near_margin: float = 1.5
    max_keys: int = 256
    max_pending: int = 4096

    def __post_init__(self) -> None:
        """Validate field ranges at construction time."""
        if not float(self.drift_threshold) > 1.0:
            raise ValueError(
                f"drift_threshold must be > 1, got {self.drift_threshold!r}"
            )
        if int(self.min_samples) < 1:
            raise ValueError(f"min_samples must be >= 1, got {self.min_samples!r}")
        if int(self.window) < int(self.min_samples):
            raise ValueError(
                f"window must be >= min_samples, got {self.window!r} < "
                f"{self.min_samples!r}"
            )
        if not (0.0 <= float(self.explore) < 1.0):
            raise ValueError(f"explore must be in [0, 1), got {self.explore!r}")
        if float(self.near_margin) < 1.0:
            raise ValueError(f"near_margin must be >= 1, got {self.near_margin!r}")
        if int(self.max_keys) < 1:
            raise ValueError(f"max_keys must be >= 1, got {self.max_keys!r}")
        if int(self.max_pending) < 1:
            raise ValueError(f"max_pending must be >= 1, got {self.max_pending!r}")


def default_online_tune() -> Optional[OnlineTuningConfig]:
    """Online-tuning config used when a policy does not carry one.

    Resolves ``$REPRO_ONLINE_TUNE`` at call time (not at policy
    construction), mirroring :func:`default_executor`: truthy values
    (``1``/``true``/``on``/``yes``) enable a default
    :class:`OnlineTuningConfig`, unset or falsy values keep online
    tuning off, anything else raises.
    """
    raw = os.environ.get(ONLINE_TUNE_ENV, "").strip().lower()
    if raw in _ENV_FALSE:
        return None
    if raw in _ENV_TRUE:
        return OnlineTuningConfig()
    raise ValueError(
        f"${ONLINE_TUNE_ENV} must be one of {_ENV_TRUE + _ENV_FALSE}, got {raw!r}"
    )


@dataclass(frozen=True)
class ExecutionPolicy:
    """How the serving stack executes SpMM work.

    One frozen value accepted uniformly by ``SpMMEngine(policy=...)``,
    ``ShardedSpMM``, the workload functions, ``SpMMServer`` and the CLI
    subcommands.  Field-for-field it replaces the legacy kwargs:

    ========================  ==============================
    legacy kwarg              policy field
    ========================  ==============================
    ``max_workers=``          :attr:`max_workers`
    ``tune=``                 :attr:`tune`
    ``sharded=``              :attr:`sharded`
    ``grid=``                 :attr:`grid`
    ``mode=``                 :attr:`shard_mode`
    ``latency_window=``       :attr:`latency_window`
    (new)                     :attr:`executor`
    ========================  ==============================
    """

    #: ``"thread"``, ``"process"``, or ``None`` = resolve from
    #: ``$REPRO_EXECUTOR`` (default ``"thread"``) at use time
    executor: Optional[str] = None
    #: pool width -- engine worker threads, or process-pool workers
    max_workers: int = 4
    #: build plans through the auto-tuner (persistent tuning cache)
    tune: bool = False
    #: route ``multiply`` / workload SpMMs through the sharded subsystem
    sharded: bool = False
    #: shard grid: row panels ``"R"``/int or 2D grid ``"RxC"``/tuple
    grid: Union[int, str, Tuple[int, int]] = 4
    #: shard balancing mode: ``"nnz"`` or ``"cost"`` (Eq. 1 predicted cost)
    shard_mode: str = "nnz"
    #: latency samples kept for the telemetry percentiles
    latency_window: int = 1024
    #: tracing/metrics switches (``None`` = tracing off, no-op fast path);
    #: see :class:`repro.obs.ObservabilityConfig`
    obs: Optional[ObservabilityConfig] = None
    #: online self-correcting tuner switches (``None`` = off unless
    #: ``$REPRO_ONLINE_TUNE`` enables the default config at use time);
    #: see :class:`OnlineTuningConfig`
    online_tune: Optional[OnlineTuningConfig] = None

    def __post_init__(self) -> None:
        if self.executor is not None and self.executor not in EXECUTOR_KINDS:
            raise ValueError(
                f"executor must be one of {EXECUTOR_KINDS} or None, got {self.executor!r}"
            )
        if int(self.max_workers) < 1:
            raise ValueError(f"max_workers must be >= 1, got {self.max_workers!r}")
        if self.shard_mode not in _SHARD_MODES:
            raise ValueError(
                f"shard_mode must be one of {_SHARD_MODES}, got {self.shard_mode!r}"
            )
        if int(self.latency_window) < 1:
            raise ValueError(
                f"latency_window must be >= 1, got {self.latency_window!r}"
            )
        if self.obs is not None and not isinstance(self.obs, ObservabilityConfig):
            raise TypeError(
                f"obs must be an ObservabilityConfig or None, got {self.obs!r}"
            )
        if self.online_tune is not None and not isinstance(
            self.online_tune, OnlineTuningConfig
        ):
            raise TypeError(
                f"online_tune must be an OnlineTuningConfig or None, "
                f"got {self.online_tune!r}"
            )

    def resolved_executor(self) -> str:
        """The concrete executor kind: :attr:`executor` or the
        ``$REPRO_EXECUTOR`` / ``"thread"`` default."""
        return self.executor if self.executor is not None else default_executor()

    def resolved_online_tune(self) -> Optional[OnlineTuningConfig]:
        """The effective online-tuning config: :attr:`online_tune` or the
        ``$REPRO_ONLINE_TUNE`` default (``None`` = off)."""
        return (
            self.online_tune
            if self.online_tune is not None
            else default_online_tune()
        )

    def replace(self, **changes) -> "ExecutionPolicy":
        """A copy with ``changes`` applied (``dataclasses.replace``)."""
        return dataclasses.replace(self, **changes)


#: map of legacy kwarg name (as surfaces expose it) -> policy field
_LEGACY_FIELDS = {
    "max_workers": "max_workers",
    "tune": "tune",
    "sharded": "sharded",
    "grid": "grid",
    "mode": "shard_mode",
    "latency_window": "latency_window",
}


def policy_from_legacy(
    policy: Optional[ExecutionPolicy],
    *,
    where: str,
    base: Optional[ExecutionPolicy] = None,
    stacklevel: int = 3,
    **legacy,
) -> ExecutionPolicy:
    """Resolve ``policy=`` against deprecated per-surface kwargs.

    ``legacy`` holds the surface's old keyword arguments with ``None``
    meaning "not passed" (every surface migrated its legacy defaults to
    ``None`` sentinels).  Three outcomes:

    * nothing legacy passed -> ``policy`` (or ``base`` / a default one);
    * legacy kwargs passed and ``policy is None`` -> build the equivalent
      policy and emit **one** :class:`DeprecationWarning` naming the
      ``ExecutionPolicy(...)`` replacement;
    * both passed -> :class:`TypeError` (ambiguous).

    ``where`` names the surface in the warning (e.g. ``"SpMMEngine"``);
    ``base`` supplies defaults for fields the legacy kwargs leave unset.
    """
    provided = {k: v for k, v in legacy.items() if v is not None}
    if not provided:
        if policy is not None:
            return policy
        return base if base is not None else ExecutionPolicy()
    if policy is not None:
        raise TypeError(
            f"{where}: pass either policy= or the legacy keyword(s) "
            f"{sorted(provided)}, not both"
        )
    unknown = sorted(set(provided) - set(_LEGACY_FIELDS))
    if unknown:  # programming error on the calling surface, not the user
        raise TypeError(f"{where}: unknown legacy keyword(s) {unknown}")
    fields = {_LEGACY_FIELDS[k]: v for k, v in provided.items()}
    replacement = ", ".join(f"{k}={v!r}" for k, v in sorted(fields.items()))
    warnings.warn(
        f"{where}: keyword argument(s) {sorted(provided)} are deprecated; "
        f"pass policy=ExecutionPolicy({replacement}) instead",
        DeprecationWarning,
        stacklevel=stacklevel,
    )
    if base is not None:
        return base.replace(**fields)
    return ExecutionPolicy(**fields)
