"""Unified execution policy for the serving stack.

Five PRs of organic growth scattered execution knobs (``max_workers=``,
``tune=``, ``sharded=``, ``grid=``, ``mode=``, ``latency_window=``)
across :class:`~repro.engine.SpMMEngine`, :class:`~repro.shard.ShardedSpMM`,
every workload function and ``repro serve``.  :class:`ExecutionPolicy`
collects them into one frozen value object that every surface accepts as
``policy=``, and adds the new knob that motivated the redesign: which
*executor* runs sharded work -- the in-process thread pool (``"thread"``)
or the GIL-escaping shared-memory process pool (``"process"``).

The old keyword arguments keep working through
:func:`policy_from_legacy`: each surface routes its legacy kwargs through
the shim, which builds the equivalent policy and emits exactly one
:class:`DeprecationWarning` naming the replacement.
"""

from __future__ import annotations

import dataclasses
import os
import warnings
from dataclasses import dataclass
from typing import Optional, Tuple, Union

from ..obs.config import ObservabilityConfig

__all__ = [
    "EXECUTOR_KINDS",
    "ExecutionPolicy",
    "default_executor",
    "policy_from_legacy",
]

#: executors selectable via ``ExecutionPolicy(executor=...)`` / ``--executor``
EXECUTOR_KINDS = ("thread", "process")

#: environment variable that picks the executor when the policy leaves it
#: ``None`` (the hook the CI process-mode job variant uses)
EXECUTOR_ENV = "REPRO_EXECUTOR"

#: shard balancing modes (mirrors ``repro.shard.partition.PARTITION_MODES``;
#: duplicated literally to keep ``repro.core`` import-independent of the
#: shard package)
_SHARD_MODES = ("nnz", "cost")


def default_executor() -> str:
    """Executor used when a policy does not name one.

    Resolves ``$REPRO_EXECUTOR`` at call time (not at policy
    construction), so one policy value behaves identically across
    environments and the CI job variant can flip a whole test suite to
    the process pool without touching code.
    """
    kind = os.environ.get(EXECUTOR_ENV, "").strip() or "thread"
    if kind not in EXECUTOR_KINDS:
        raise ValueError(
            f"${EXECUTOR_ENV} must be one of {EXECUTOR_KINDS}, got {kind!r}"
        )
    return kind


@dataclass(frozen=True)
class ExecutionPolicy:
    """How the serving stack executes SpMM work.

    One frozen value accepted uniformly by ``SpMMEngine(policy=...)``,
    ``ShardedSpMM``, the workload functions, ``SpMMServer`` and the CLI
    subcommands.  Field-for-field it replaces the legacy kwargs:

    ========================  ==============================
    legacy kwarg              policy field
    ========================  ==============================
    ``max_workers=``          :attr:`max_workers`
    ``tune=``                 :attr:`tune`
    ``sharded=``              :attr:`sharded`
    ``grid=``                 :attr:`grid`
    ``mode=``                 :attr:`shard_mode`
    ``latency_window=``       :attr:`latency_window`
    (new)                     :attr:`executor`
    ========================  ==============================
    """

    #: ``"thread"``, ``"process"``, or ``None`` = resolve from
    #: ``$REPRO_EXECUTOR`` (default ``"thread"``) at use time
    executor: Optional[str] = None
    #: pool width -- engine worker threads, or process-pool workers
    max_workers: int = 4
    #: build plans through the auto-tuner (persistent tuning cache)
    tune: bool = False
    #: route ``multiply`` / workload SpMMs through the sharded subsystem
    sharded: bool = False
    #: shard grid: row panels ``"R"``/int or 2D grid ``"RxC"``/tuple
    grid: Union[int, str, Tuple[int, int]] = 4
    #: shard balancing mode: ``"nnz"`` or ``"cost"`` (Eq. 1 predicted cost)
    shard_mode: str = "nnz"
    #: latency samples kept for the telemetry percentiles
    latency_window: int = 1024
    #: tracing/metrics switches (``None`` = tracing off, no-op fast path);
    #: see :class:`repro.obs.ObservabilityConfig`
    obs: Optional[ObservabilityConfig] = None

    def __post_init__(self) -> None:
        if self.executor is not None and self.executor not in EXECUTOR_KINDS:
            raise ValueError(
                f"executor must be one of {EXECUTOR_KINDS} or None, got {self.executor!r}"
            )
        if int(self.max_workers) < 1:
            raise ValueError(f"max_workers must be >= 1, got {self.max_workers!r}")
        if self.shard_mode not in _SHARD_MODES:
            raise ValueError(
                f"shard_mode must be one of {_SHARD_MODES}, got {self.shard_mode!r}"
            )
        if int(self.latency_window) < 1:
            raise ValueError(
                f"latency_window must be >= 1, got {self.latency_window!r}"
            )
        if self.obs is not None and not isinstance(self.obs, ObservabilityConfig):
            raise TypeError(
                f"obs must be an ObservabilityConfig or None, got {self.obs!r}"
            )

    def resolved_executor(self) -> str:
        """The concrete executor kind: :attr:`executor` or the
        ``$REPRO_EXECUTOR`` / ``"thread"`` default."""
        return self.executor if self.executor is not None else default_executor()

    def replace(self, **changes) -> "ExecutionPolicy":
        """A copy with ``changes`` applied (``dataclasses.replace``)."""
        return dataclasses.replace(self, **changes)


#: map of legacy kwarg name (as surfaces expose it) -> policy field
_LEGACY_FIELDS = {
    "max_workers": "max_workers",
    "tune": "tune",
    "sharded": "sharded",
    "grid": "grid",
    "mode": "shard_mode",
    "latency_window": "latency_window",
}


def policy_from_legacy(
    policy: Optional[ExecutionPolicy],
    *,
    where: str,
    base: Optional[ExecutionPolicy] = None,
    stacklevel: int = 3,
    **legacy,
) -> ExecutionPolicy:
    """Resolve ``policy=`` against deprecated per-surface kwargs.

    ``legacy`` holds the surface's old keyword arguments with ``None``
    meaning "not passed" (every surface migrated its legacy defaults to
    ``None`` sentinels).  Three outcomes:

    * nothing legacy passed -> ``policy`` (or ``base`` / a default one);
    * legacy kwargs passed and ``policy is None`` -> build the equivalent
      policy and emit **one** :class:`DeprecationWarning` naming the
      ``ExecutionPolicy(...)`` replacement;
    * both passed -> :class:`TypeError` (ambiguous).

    ``where`` names the surface in the warning (e.g. ``"SpMMEngine"``);
    ``base`` supplies defaults for fields the legacy kwargs leave unset.
    """
    provided = {k: v for k, v in legacy.items() if v is not None}
    if not provided:
        if policy is not None:
            return policy
        return base if base is not None else ExecutionPolicy()
    if policy is not None:
        raise TypeError(
            f"{where}: pass either policy= or the legacy keyword(s) "
            f"{sorted(provided)}, not both"
        )
    unknown = sorted(set(provided) - set(_LEGACY_FIELDS))
    if unknown:  # programming error on the calling surface, not the user
        raise TypeError(f"{where}: unknown legacy keyword(s) {unknown}")
    fields = {_LEGACY_FIELDS[k]: v for k, v in provided.items()}
    replacement = ", ".join(f"{k}={v!r}" for k, v in sorted(fields.items()))
    warnings.warn(
        f"{where}: keyword argument(s) {sorted(provided)} are deprecated; "
        f"pass policy=ExecutionPolicy({replacement}) instead",
        DeprecationWarning,
        stacklevel=stacklevel,
    )
    if base is not None:
        return base.replace(**fields)
    return ExecutionPolicy(**fields)
