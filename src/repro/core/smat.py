"""The SMaT library: public end-to-end API.

This module mirrors the user-facing pipeline of Figure 1:

1. **Input** -- a sparse matrix in CSR (any precision supported by the
   Tensor Cores),
2. **Preprocessing** -- a row permutation that minimises the number of
   non-zero BCSR blocks (done once; Section IV-C),
3. **Execution** -- the BCSR Tensor-Core kernel (Section IV-D), run as
   many times as needed against different dense matrices ``B``.

Example
-------
>>> from repro import SMaT, SMaTConfig
>>> from repro.matrices import suitesparse
>>> import numpy as np
>>> A = suitesparse.load("cop20k_A", scale=0.05)
>>> smat = SMaT(A, SMaTConfig(reorder="jaccard"))
>>> B = np.random.default_rng(0).random((A.ncols, 8), dtype=np.float32)
>>> C, report = smat.multiply(B, return_report=True)
>>> report.gflops > 0
True
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from ..formats import BCSRMatrix, CSRMatrix
from ..kernels import KernelResult, SMaTKernel
from ..reorder import ReorderResult, get_reorderer
from ..reorder.base import identity_permutation
from .config import SMaTConfig

__all__ = ["SMaT", "PreprocessReport", "MultiplyReport"]


@dataclass
class PreprocessReport:
    """Summary of the preprocessing (reordering + blocking) stage."""

    algorithm: str
    applied: bool
    blocks_before: int
    blocks_after: int
    std_before: float
    std_after: float
    n_block_rows: int
    block_shape: Tuple[int, int]

    @property
    def block_reduction(self) -> float:
        """Block-count reduction factor achieved by the permutation."""
        return self.blocks_before / self.blocks_after if self.blocks_after else 1.0

    @property
    def std_reduction(self) -> float:
        """Reduction of the blocks-per-row standard deviation (load balance)."""
        return self.std_before / self.std_after if self.std_after else 1.0


@dataclass
class MultiplyReport:
    """Summary of one SpMM execution."""

    gflops: float
    simulated_ms: float
    n_blocks: int
    useful_flops: float
    bound: str
    kernel_meta: Dict[str, object] = field(default_factory=dict)
    preprocessing: Optional[PreprocessReport] = None


class SMaT:
    """(S)parse (Ma)trix Matrix (T)ensor-core accelerated SpMM.

    Parameters
    ----------
    A:
        The sparse matrix in CSR format.
    config:
        Pipeline configuration; defaults to the paper's setup (FP16,
        Jaccard row reordering, full CBT kernel, A100).
    preprocess:
        Run the preprocessing immediately (default True).  When False, the
        first :meth:`multiply` call triggers it.
    """

    def __init__(self, A: CSRMatrix, config: Optional[SMaTConfig] = None, *, preprocess: bool = True):
        if not isinstance(A, CSRMatrix):
            raise TypeError("SMaT expects a repro.formats.CSRMatrix input (the paper's input format)")
        self.config = (config or SMaTConfig()).validate()
        self.A = A
        self._row_perm: Optional[np.ndarray] = None
        self._col_perm: Optional[np.ndarray] = None
        self._permuted: Optional[CSRMatrix] = None
        self._reorder_result: Optional[ReorderResult] = None
        self._preprocess_report: Optional[PreprocessReport] = None
        self._kernel: Optional[SMaTKernel] = None
        if preprocess:
            self.preprocess()

    # -- preprocessing ------------------------------------------------------------
    def preprocess(self) -> PreprocessReport:
        """Compute (and apply) the block-minimising permutation and build the
        kernel's internal BCSR representation.  Idempotent."""
        if self._preprocess_report is not None:
            return self._preprocess_report

        block_shape = self.config.resolved_block_shape()
        name = self.config.reorder.lower()
        if name in ("identity", "none"):
            reorderer = get_reorderer("identity", block_shape=block_shape)
        else:
            reorderer = get_reorderer(
                name,
                block_shape=block_shape,
                permute_columns=self.config.reorder_columns,
                **self.config.reorder_params,
            )
        result = reorderer.reorder(self.A, with_stats=True)

        applied = True
        if (
            self.config.auto_skip_reordering
            and result.stats_before is not None
            and result.stats_after is not None
            and result.stats_after.n_blocks >= result.stats_before.n_blocks
        ):
            # the input ordering is already at least as good (e.g. band
            # matrices); keep the identity, as the paper's pipeline does
            applied = False

        if applied:
            self._row_perm = result.row_perm
            self._col_perm = result.col_perm
            permuted = self.A.permute_rows(result.row_perm)
            if result.col_perm is not None:
                permuted = permuted.permute_cols(result.col_perm)
        else:
            self._row_perm = identity_permutation(self.A.nrows)
            self._col_perm = None
            permuted = self.A

        self._permuted = permuted
        self._reorder_result = result

        self._kernel = SMaTKernel(
            self.config.arch,
            self.config.precision,
            variant=self.config.variant,
            block_shape=block_shape,
        )
        self._kernel.prepare(permuted)

        stats_before = result.stats_before
        stats_after = result.stats_after if applied else result.stats_before
        self._preprocess_report = PreprocessReport(
            algorithm=result.algorithm if applied else "identity",
            applied=applied,
            blocks_before=stats_before.n_blocks if stats_before else 0,
            blocks_after=stats_after.n_blocks if stats_after else 0,
            std_before=stats_before.std_blocks_per_row if stats_before else 0.0,
            std_after=stats_after.std_blocks_per_row if stats_after else 0.0,
            n_block_rows=stats_after.n_block_rows if stats_after else 0,
            block_shape=block_shape,
        )
        return self._preprocess_report

    # -- accessors ------------------------------------------------------------------
    @property
    def row_permutation(self) -> np.ndarray:
        """Row permutation applied during preprocessing ("new -> old")."""
        self.preprocess()
        assert self._row_perm is not None
        return self._row_perm

    @property
    def column_permutation(self) -> Optional[np.ndarray]:
        """Column permutation, or ``None`` when only rows were permuted."""
        self.preprocess()
        return self._col_perm

    @property
    def bcsr(self) -> BCSRMatrix:
        """The internal BCSR representation of the (permuted) matrix."""
        self.preprocess()
        assert self._kernel is not None and self._kernel.bcsr is not None
        return self._kernel.bcsr

    @property
    def preprocess_report(self) -> PreprocessReport:
        return self.preprocess()

    # -- execution ----------------------------------------------------------------------
    def multiply(
        self,
        B: np.ndarray,
        *,
        return_report: bool = False,
        keep_permuted: bool = False,
    ):
        """Compute ``C = A @ B``.

        Parameters
        ----------
        B:
            Dense right-hand side of shape ``(K, N)`` (or a length-``K``
            vector for SpMV).
        return_report:
            Also return a :class:`MultiplyReport` with the simulated
            performance figures.
        keep_permuted:
            Return the result in the *permuted* row order (``P A B``)
            instead of undoing the row permutation.  Column permutations
            additionally require permuting ``B``; this is handled
            internally either way.

        Returns
        -------
        C or (C, report)
        """
        self.preprocess()
        assert self._kernel is not None and self._row_perm is not None

        B_arr = np.asarray(B)
        was_vector = B_arr.ndim == 1
        if was_vector:
            B_arr = B_arr.reshape(-1, 1)
        if self._col_perm is not None:
            # A' = P_r A P_c^T, so  A B = P_r^T A' (P_c B)
            B_arr = B_arr[self._col_perm]

        result: KernelResult = self._kernel.run(B_arr)
        C = result.C
        if not keep_permuted:
            inverse = np.empty_like(self._row_perm)
            inverse[self._row_perm] = np.arange(self._row_perm.size)
            # row i of the permuted result is original row row_perm[i]
            C_out = np.empty_like(C)
            C_out[self._row_perm] = C
            C = C_out
        if was_vector:
            C = C.ravel()

        if not return_report:
            return C
        report = MultiplyReport(
            gflops=result.gflops,
            simulated_ms=result.time_ms,
            n_blocks=int(result.meta.get("n_blocks", 0)),
            useful_flops=result.counters.useful_flops,
            bound=result.timing.bound,
            kernel_meta=dict(result.meta),
            preprocessing=self._preprocess_report,
        )
        return C, report

    def run_kernel(self, B: np.ndarray) -> KernelResult:
        """Low-level access: run the kernel and return the full
        :class:`~repro.kernels.base.KernelResult` (result rows are in the
        permuted order)."""
        self.preprocess()
        assert self._kernel is not None
        B_arr = np.asarray(B)
        if B_arr.ndim == 1:
            B_arr = B_arr.reshape(-1, 1)
        if self._col_perm is not None:
            B_arr = B_arr[self._col_perm]
        return self._kernel.run(B_arr)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<SMaT A={self.A.shape} nnz={self.A.nnz} reorder={self.config.reorder!r} "
            f"variant={self.config.variant!r}>"
        )
