"""The SMaT library: public end-to-end API.

This module mirrors the user-facing pipeline of Figure 1:

1. **Input** -- a sparse matrix in CSR (any precision supported by the
   Tensor Cores),
2. **Preprocessing** -- a row permutation that minimises the number of
   non-zero BCSR blocks (done once; Section IV-C),
3. **Execution** -- the BCSR Tensor-Core kernel (Section IV-D), run as
   many times as needed against different dense matrices ``B``.

The prepared state of steps 1-2 lives in a reusable
:class:`~repro.core.plan.ExecutionPlan`; ``SMaT`` is the one-matrix
convenience wrapper around it, and :class:`~repro.engine.SpMMEngine`
caches plans across many matrices for serving-style workloads.

Example
-------
>>> from repro import SMaT, SMaTConfig
>>> from repro.matrices import suitesparse
>>> import numpy as np
>>> A = suitesparse.load("cop20k_A", scale=0.05)
>>> smat = SMaT(A, SMaTConfig(reorder="jaccard"))
>>> B = np.random.default_rng(0).random((A.ncols, 8), dtype=np.float32)
>>> C, report = smat.multiply(B, return_report=True)
>>> report.gflops > 0
True
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..formats import BCSRMatrix, CSRMatrix
from ..kernels import KernelResult
from .config import SMaTConfig
from .plan import ExecutionPlan, MultiplyReport, PreprocessReport

__all__ = ["SMaT", "PreprocessReport", "MultiplyReport"]


class SMaT:
    """(S)parse (Ma)trix Matrix (T)ensor-core accelerated SpMM.

    Parameters
    ----------
    A:
        The sparse matrix in CSR format.
    config:
        Pipeline configuration; defaults to the paper's setup (FP16,
        Jaccard row reordering, full CBT kernel, A100).
    preprocess:
        Run the preprocessing immediately (default True).  When False, the
        first :meth:`multiply` call triggers it.
    """

    def __init__(
        self, A: CSRMatrix, config: Optional[SMaTConfig] = None, *, preprocess: bool = True
    ):
        if not isinstance(A, CSRMatrix):
            raise TypeError(
                "SMaT expects a repro.formats.CSRMatrix input (the paper's input format)"
            )
        self.config = (config or SMaTConfig()).validate()
        self.A = A
        self._plan: Optional[ExecutionPlan] = None
        if preprocess:
            self.preprocess()

    # -- preprocessing ------------------------------------------------------------
    def preprocess(self) -> PreprocessReport:
        """Compute (and apply) the block-minimising permutation and build the
        kernel's internal BCSR representation.  Idempotent."""
        if self._plan is None:
            self._plan = ExecutionPlan.build(self.A, self.config)
        return self._plan.report

    # -- accessors ------------------------------------------------------------------
    @property
    def plan(self) -> ExecutionPlan:
        """The underlying (lazily built) :class:`ExecutionPlan`."""
        self.preprocess()
        assert self._plan is not None
        return self._plan

    @property
    def _preprocess_report(self) -> Optional[PreprocessReport]:
        """Report of the preprocessing stage, or ``None`` before it ran."""
        return self._plan.report if self._plan is not None else None

    @property
    def row_permutation(self) -> np.ndarray:
        """Row permutation applied during preprocessing ("new -> old")."""
        return self.plan.row_perm

    @property
    def column_permutation(self) -> Optional[np.ndarray]:
        """Column permutation, or ``None`` when only rows were permuted."""
        return self.plan.col_perm

    @property
    def bcsr(self) -> BCSRMatrix:
        """The internal BCSR representation of the (permuted) matrix."""
        return self.plan.bcsr

    @property
    def preprocess_report(self) -> PreprocessReport:
        return self.preprocess()

    # -- execution ----------------------------------------------------------------------
    def multiply(
        self,
        B: np.ndarray,
        *,
        return_report: bool = False,
        keep_permuted: bool = False,
    ):
        """Compute ``C = A @ B``.

        Parameters
        ----------
        B:
            Dense right-hand side of shape ``(K, N)`` (or a length-``K``
            vector for SpMV).
        return_report:
            Also return a :class:`MultiplyReport` with the simulated
            performance figures.
        keep_permuted:
            Return the result in the *permuted* row order (``P A B``)
            instead of undoing the row permutation.  Column permutations
            additionally require permuting ``B``; this is handled
            internally either way.

        Returns
        -------
        C or (C, report)
        """
        C, report = self.plan.execute(B, keep_permuted=keep_permuted)
        if not return_report:
            return C
        return C, report

    def run_kernel(self, B: np.ndarray) -> KernelResult:
        """Low-level access: run the kernel and return the full
        :class:`~repro.kernels.base.KernelResult` (result rows are in the
        permuted order)."""
        return self.plan.run_kernel(B)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<SMaT A={self.A.shape} nnz={self.A.nnz} reorder={self.config.reorder!r} "
            f"variant={self.config.variant!r}>"
        )
