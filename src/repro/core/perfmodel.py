"""Empirical performance model (paper Section III).

The paper models the kernel runtime as a linear function of the number of
elementary computations:

    T_tot = T_e * n_e + T_init                                   (Eq. 1)

where ``n_e`` is the number of non-zero BCSR blocks (each processed by one
Tensor-Core MMA group), ``T_e`` the time per elementary computation and
``T_init`` the fixed startup/initialisation overhead.  The number of
blocks is bounded by

    nnz / (h*w)  <=  n_e  <=  min(N_blocks_total, nnz)           (Eq. 2)

The paper fits (T_e, T_init) on 16k x 16k band matrices of varying
bandwidth and shows the fit matches measurements of every optimisation
variant (Figure 2).  :class:`LinearPerformanceModel` performs the same
least-squares fit on simulated (or measured) samples and reports the fit
quality, and :func:`block_count_bounds` exposes Eq. 2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence, Tuple

import numpy as np

__all__ = ["LinearPerformanceModel", "FitResult", "block_count_bounds"]


def block_count_bounds(
    nnz: int, n_rows: int, n_cols: int, block_shape: Tuple[int, int]
) -> Tuple[int, int]:
    """Eq. 2: bounds on the number of non-zero blocks of any blocking of a
    matrix with ``nnz`` non-zeros."""
    h, w = int(block_shape[0]), int(block_shape[1])
    if h <= 0 or w <= 0:
        raise ValueError("block dimensions must be positive")
    n_block_rows = -(-n_rows // h) if n_rows else 0
    n_block_cols = -(-n_cols // w) if n_cols else 0
    lower = -(-nnz // (h * w)) if nnz else 0
    upper = min(n_block_rows * n_block_cols, nnz)
    return int(lower), int(upper)


@dataclass(frozen=True)
class FitResult:
    """Least-squares fit of Eq. 1."""

    #: time per elementary computation (seconds per block)
    t_e: float
    #: fixed overhead (seconds)
    t_init: float
    #: coefficient of determination of the fit
    r_squared: float
    #: number of samples used
    n_samples: int

    def predict(self, n_e) -> np.ndarray:
        """Predicted runtime (seconds) for block counts ``n_e``."""
        n_e = np.asarray(n_e, dtype=np.float64)
        return self.t_e * n_e + self.t_init

    def relative_error(self, n_e, times) -> np.ndarray:
        """Per-sample relative error of the model against measurements."""
        times = np.asarray(times, dtype=np.float64)
        pred = self.predict(n_e)
        with np.errstate(divide="ignore", invalid="ignore"):
            return np.where(times > 0, np.abs(pred - times) / times, 0.0)


class LinearPerformanceModel:
    """Fit and evaluate the paper's linear runtime model."""

    def __init__(self):
        self._fit: FitResult | None = None

    @property
    def fit_result(self) -> FitResult:
        if self._fit is None:
            raise RuntimeError("call fit() before using the model")
        return self._fit

    def fit(self, block_counts: Sequence[float], times_s: Sequence[float]) -> FitResult:
        """Least-squares fit of ``T = T_e * n_e + T_init``.

        Parameters
        ----------
        block_counts:
            Elementary-computation counts ``n_e`` of each sample.
        times_s:
            Corresponding runtimes in seconds.
        """
        n_e = np.asarray(block_counts, dtype=np.float64)
        t = np.asarray(times_s, dtype=np.float64)
        if n_e.shape != t.shape or n_e.ndim != 1:
            raise ValueError("block_counts and times_s must be 1-D arrays of equal length")
        if n_e.size < 2:
            raise ValueError("need at least two samples to fit the model")

        A = np.stack([n_e, np.ones_like(n_e)], axis=1)
        coef, *_ = np.linalg.lstsq(A, t, rcond=None)
        t_e, t_init = float(coef[0]), float(coef[1])
        # a negative intercept has no physical meaning; clamp and refit slope
        if t_init < 0:
            t_init = 0.0
            t_e = float((n_e @ t) / (n_e @ n_e))

        pred = t_e * n_e + t_init
        ss_res = float(np.sum((t - pred) ** 2))
        ss_tot = float(np.sum((t - t.mean()) ** 2))
        r2 = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
        self._fit = FitResult(t_e=t_e, t_init=t_init, r_squared=r2, n_samples=int(n_e.size))
        return self._fit

    def predict(self, block_counts) -> np.ndarray:
        """Predict runtimes (seconds) for the given block counts."""
        return self.fit_result.predict(block_counts)

    def fit_from_results(self, results: Iterable) -> FitResult:
        """Fit directly from :class:`~repro.kernels.base.KernelResult`
        objects produced by the SMaT kernel (uses the block count stored in
        the counters and the simulated time)."""
        counts = []
        times = []
        for r in results:
            counts.append(r.counters.extra.get("n_blocks", 0.0))
            times.append(r.timing.time_s)
        return self.fit(counts, times)
