"""Library comparison harness.

The evaluation of the paper repeatedly runs the same SpMM problem through
SMaT and the baseline libraries (cuSPARSE, DASP, Magicube, cuBLAS) and
reports GFLOP/s or wall-clock time per library.  :func:`compare_libraries`
packages that loop: every library runs as an
:class:`~repro.core.plan.ExecutionPlan` through an
:class:`~repro.engine.SpMMEngine`, so each backend's preparation (SMaT's
reordering + BCSR build, Magicube's SR-BCRS conversion, cuBLAS's
densification, ...) is plan-cached -- repeated comparisons against the
same matrix skip all preprocessing.  The harness checks the numerical
results agree and returns a uniform record per library: the rows of
Figures 8, 9 and 10.

The special library name ``"auto"`` adds the auto-tuned backend
(``SMaTConfig(kernel="auto")``): the tuner's per-matrix winner, measured
like any other row.  A backend that cannot handle the matrix (the engine
falls back to SMaT and records it) is reported ``supported=False``, as
the paper reports Magicube's out-of-memory matrices.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from ..formats import CSRMatrix
from ..kernels import KERNEL_REGISTRY, KernelUnsupportedError
from .config import SMaTConfig

__all__ = ["LibraryMeasurement", "compare_libraries", "DEFAULT_LIBRARIES"]

#: libraries compared in the SuiteSparse experiments (Figure 8)
DEFAULT_LIBRARIES: Sequence[str] = ("smat", "dasp", "magicube", "cusparse")


@dataclass
class LibraryMeasurement:
    """One (library, matrix, N) measurement."""

    library: str
    gflops: float
    time_ms: float
    supported: bool = True
    error: Optional[str] = None
    correct: Optional[bool] = None
    meta: Dict[str, object] = field(default_factory=dict)

    def speedup_over(self, other: "LibraryMeasurement") -> float:
        """Runtime speedup of this library over ``other`` (>1 = faster)."""
        if not self.supported or not other.supported or self.time_ms <= 0:
            return float("nan")
        return other.time_ms / self.time_ms


def _max_rel_error(C: np.ndarray, reference: np.ndarray) -> float:
    denom = np.maximum(np.abs(reference), 1.0)
    return float(np.max(np.abs(C.astype(np.float64) - reference.astype(np.float64)) / denom))


def _display_name(backend: str, requested: str) -> str:
    """Figure-8-style row label: the library's display name, or
    ``auto(<winner>)`` for the tuned row."""
    cls = KERNEL_REGISTRY.get(backend)
    name = cls.name if cls is not None else backend
    return f"auto({name})" if requested == "auto" else name


def compare_libraries(
    A: CSRMatrix,
    B: np.ndarray,
    *,
    libraries: Iterable[str] = DEFAULT_LIBRARIES,
    config: Optional[SMaTConfig] = None,
    check_correctness: bool = True,
    correctness_tol: float = 1e-3,
    engine=None,
    tune: bool = False,
) -> List[LibraryMeasurement]:
    """Run one SpMM problem through several libraries.

    Parameters
    ----------
    A, B:
        The sparse matrix and the dense right-hand side.
    libraries:
        Library names (see :func:`repro.kernels.get_kernel`); ``"smat"``
        uses the full pipeline (preprocessing + kernel) configured by
        ``config``, the baselines consume ``A`` as-is -- exactly the
        protocol of the paper's comparison (each library applies its own
        internal preprocessing, Section VI-B).  ``"auto"`` adds the
        auto-tuner's per-matrix backend choice as its own row.
    config:
        SMaT configuration (reordering algorithm, variant, precision).
    check_correctness:
        Compare every library's numerical result against a NumPy reference.
    engine:
        Run through an existing :class:`~repro.engine.SpMMEngine`
        (sharing its plan cache, so repeated comparisons of the same
        matrix skip every library's preprocessing).  When ``None``, a
        private single-worker engine is created for the call -- plans are
        still cached across the libraries of the call.
    tune:
        Create the private engine with ``tune=True`` (plans resolve
        through the auto-tuner).  Raises when combined with a borrowed
        ``engine``, mirroring :class:`~repro.workloads.SpMMOperator`.

    Returns
    -------
    list of LibraryMeasurement, in the order requested.  Each row's
    ``meta`` records the executing ``backend`` (registry key), the
    plan-cache ``cache_hit`` flag and the host ``wall_ms`` of the call.
    """
    from ..engine import SpMMEngine  # deferred: core must import without engine

    import time as _time

    config = config or SMaTConfig()
    B = np.asarray(B)
    reference = A.spmm(B) if check_correctness else None
    libs = [str(lib) for lib in libraries]

    owns_engine = engine is None
    if engine is None:
        from .policy import ExecutionPolicy

        engine = SpMMEngine(
            config,
            cache_size=max(8, 2 * len(libs)),
            policy=ExecutionPolicy(max_workers=1, tune=bool(tune)),
        )
    elif tune:
        raise ValueError("pass tune=True to the engine itself when providing one")

    out: List[LibraryMeasurement] = []
    try:
        for lib in libs:
            requested = lib.lower()
            cfg = replace(config, kernel=requested)
            try:
                before = engine.cache_stats
                start = _time.perf_counter()
                C, report = engine.multiply(A, B, config=cfg, return_report=True)
                wall_ms = 1e3 * (_time.perf_counter() - start)
                after = engine.cache_stats
            except KernelUnsupportedError as exc:
                # no fallback existed (the request was SMaT itself, or the
                # tuner found no runnable candidate)
                out.append(
                    LibraryMeasurement(
                        library=requested,
                        gflops=0.0,
                        time_ms=float("inf"),
                        supported=False,
                        error=str(exc),
                    )
                )
                continue

            pre = report.preprocessing
            if pre is not None and pre.fallback_from is not None:
                # the engine fell back to SMaT: for the comparison this
                # library is unsupported on this matrix (Section V-D)
                out.append(
                    LibraryMeasurement(
                        library=_display_name(pre.fallback_from, requested),
                        gflops=0.0,
                        time_ms=float("inf"),
                        supported=False,
                        error=pre.fallback_error,
                        meta={"backend": pre.fallback_from, "fallback": "smat"},
                    )
                )
                continue

            correct = None
            if reference is not None:
                correct = _max_rel_error(C, reference) <= correctness_tol
            meta = dict(report.kernel_meta)
            meta["backend"] = report.backend
            meta["cache_hit"] = after.hits > before.hits
            meta["wall_ms"] = wall_ms
            if report.backend == "smat" and pre is not None:
                meta["block_reduction"] = pre.block_reduction
            out.append(
                LibraryMeasurement(
                    library=_display_name(report.backend, requested),
                    gflops=report.gflops,
                    time_ms=report.simulated_ms,
                    supported=True,
                    correct=correct,
                    meta=meta,
                )
            )
    finally:
        if owns_engine:
            engine.close()
    return out
