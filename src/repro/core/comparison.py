"""Library comparison harness.

The evaluation of the paper repeatedly runs the same SpMM problem through
SMaT and the baseline libraries (cuSPARSE, DASP, Magicube, cuBLAS) and
reports GFLOP/s or wall-clock time per library.  :func:`compare_libraries`
packages that loop: it prepares each kernel for the (optionally
preprocessed) matrix, runs it, checks the numerical results agree, and
returns a uniform record per library -- the rows of Figures 8, 9 and 10.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from ..formats import CSRMatrix
from ..kernels import KernelUnsupportedError, get_kernel
from .config import SMaTConfig
from .smat import SMaT

__all__ = ["LibraryMeasurement", "compare_libraries", "DEFAULT_LIBRARIES"]

#: libraries compared in the SuiteSparse experiments (Figure 8)
DEFAULT_LIBRARIES: Sequence[str] = ("smat", "dasp", "magicube", "cusparse")


@dataclass
class LibraryMeasurement:
    """One (library, matrix, N) measurement."""

    library: str
    gflops: float
    time_ms: float
    supported: bool = True
    error: Optional[str] = None
    correct: Optional[bool] = None
    meta: Dict[str, object] = field(default_factory=dict)

    def speedup_over(self, other: "LibraryMeasurement") -> float:
        """Runtime speedup of this library over ``other`` (>1 = faster)."""
        if not self.supported or not other.supported or self.time_ms <= 0:
            return float("nan")
        return other.time_ms / self.time_ms


def _max_rel_error(C: np.ndarray, reference: np.ndarray) -> float:
    denom = np.maximum(np.abs(reference), 1.0)
    return float(np.max(np.abs(C.astype(np.float64) - reference.astype(np.float64)) / denom))


def compare_libraries(
    A: CSRMatrix,
    B: np.ndarray,
    *,
    libraries: Iterable[str] = DEFAULT_LIBRARIES,
    config: Optional[SMaTConfig] = None,
    check_correctness: bool = True,
    correctness_tol: float = 1e-3,
) -> List[LibraryMeasurement]:
    """Run one SpMM problem through several libraries.

    Parameters
    ----------
    A, B:
        The sparse matrix and the dense right-hand side.
    libraries:
        Library names (see :func:`repro.kernels.get_kernel`); ``"smat"``
        uses the full pipeline (preprocessing + kernel) configured by
        ``config``, the baselines consume ``A`` as-is -- exactly the
        protocol of the paper's comparison (each library applies its own
        internal preprocessing, Section VI-B).
    config:
        SMaT configuration (reordering algorithm, variant, precision).
    check_correctness:
        Compare every library's numerical result against a NumPy reference.

    Returns
    -------
    list of LibraryMeasurement, in the order requested.
    """
    config = config or SMaTConfig()
    B = np.asarray(B)
    reference = A.spmm(B) if check_correctness else None

    out: List[LibraryMeasurement] = []
    for lib in libraries:
        name = lib.lower()
        try:
            if name == "smat":
                smat = SMaT(A, config)
                result = smat.run_kernel(B)
                # compare in the original row order
                C = result.C
                perm = smat.row_permutation
                C_unpermuted = np.empty_like(C)
                C_unpermuted[perm] = C
                C = C_unpermuted
                meta = dict(result.meta)
                meta["block_reduction"] = smat.preprocess_report.block_reduction
            else:
                kernel = get_kernel(name, config.arch, config.precision)
                kernel.prepare(A)
                result = kernel.run(B)
                C = result.C
                meta = dict(result.meta)

            correct = None
            if reference is not None:
                correct = _max_rel_error(C, reference) <= correctness_tol
            out.append(
                LibraryMeasurement(
                    library=result.kernel,
                    gflops=result.gflops,
                    time_ms=result.time_ms,
                    supported=True,
                    correct=correct,
                    meta=meta,
                )
            )
        except KernelUnsupportedError as exc:
            out.append(
                LibraryMeasurement(
                    library=name,
                    gflops=0.0,
                    time_ms=float("inf"),
                    supported=False,
                    error=str(exc),
                )
            )
    return out
