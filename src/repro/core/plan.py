"""Reusable SpMM execution plans.

The paper's central performance argument (Figure 1) is *amortisation*: one
expensive preprocessing pass -- the block-minimising row permutation plus
the CSR-to-BCSR conversion -- is paid once per sparse matrix and reused
across arbitrarily many SpMM executions against different dense operands
``B``.  An :class:`ExecutionPlan` is that prepared state made explicit and
shareable:

* :class:`~repro.core.smat.SMaT` builds one plan per instance (its
  ``preprocess()`` stage),
* :class:`~repro.engine.SpMMEngine` caches plans across matrices keyed by
  :func:`matrix_fingerprint` so repeated queries skip preprocessing
  entirely.

A built plan is immutable, and executing it does not mutate any of its
state, so one plan may be executed concurrently from several threads (the
engine's batched thread-pool path relies on this).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Tuple

import numpy as np

from ..formats import BCSRMatrix, CSRMatrix
from ..formats.csr import matrix_fingerprint
from ..kernels import (
    KERNEL_REGISTRY,
    KernelResult,
    KernelUnsupportedError,
    SpMMKernel,
    get_kernel,
)
from ..obs.trace import NULL_TRACER
from ..reorder import ReorderResult, get_reorderer
from ..reorder.base import identity_permutation
from .config import SMaTConfig

__all__ = [
    "ExecutionPlan",
    "PreprocessReport",
    "MultiplyReport",
    "build_with_fallback",
    "PlanSpec",
    "matrix_fingerprint",
    "config_signature",
    "plan_key",
]


@dataclass
class PreprocessReport:
    """Summary of the preprocessing (reordering + blocking) stage."""

    algorithm: str
    applied: bool
    blocks_before: int
    blocks_after: int
    std_before: float
    std_after: float
    n_block_rows: int
    block_shape: Tuple[int, int]
    #: execution backend the plan was built for (registry key)
    backend: str = "smat"
    #: backend originally requested when the build fell back to SMaT
    #: because the requested kernel raised ``KernelUnsupportedError``
    fallback_from: Optional[str] = None
    #: the unsupported-kernel error message recorded on fallback
    fallback_error: Optional[str] = None

    @property
    def block_reduction(self) -> float:
        """Block-count reduction factor achieved by the permutation."""
        return self.blocks_before / self.blocks_after if self.blocks_after else 1.0

    @property
    def std_reduction(self) -> float:
        """Reduction of the blocks-per-row standard deviation (load balance)."""
        return self.std_before / self.std_after if self.std_after else 1.0


@dataclass
class MultiplyReport:
    """Summary of one SpMM execution."""

    gflops: float
    simulated_ms: float
    n_blocks: int
    useful_flops: float
    bound: str
    backend: str = "smat"
    kernel_meta: Dict[str, object] = field(default_factory=dict)
    preprocessing: Optional[PreprocessReport] = None


# matrix_fingerprint's canonical implementation lives in the formats layer
# (kernels key their re-prepare check on it too); re-exported here unchanged.


def config_signature(config: SMaTConfig) -> Tuple:
    """Hashable signature of every configuration field that changes the
    prepared state (permutation, BCSR blocking, or kernel instance).

    The execution backend is a first-class component of the signature:
    plans for two different libraries of the same matrix get distinct
    cache keys, so they coexist in one plan cache instead of colliding.
    For non-blocked backends the SMaT-only knobs (reordering, block
    shape, variant) are *normalised away* -- they never reach the build
    (``_build_unblocked`` ignores them), so two configs differing only in
    those fields share one cached plan instead of storing duplicate
    prepared state (e.g. two identical dense copies for cuBLAS).
    """
    kernel = config.resolved_kernel()
    if kernel != "auto" and not KERNEL_REGISTRY[kernel].wants_reordering:
        return (kernel, config.resolved_precision().key, config.arch.name)
    variant = config.variant if isinstance(config.variant, str) else config.variant.label
    return (
        kernel,
        config.resolved_precision().key,
        config.resolved_block_shape(),
        config.reorder.lower(),
        bool(config.reorder_columns),
        repr(sorted(config.reorder_params.items())),
        bool(config.auto_skip_reordering),
        variant,
        config.arch.name,
    )


def plan_key(A: CSRMatrix, config: SMaTConfig) -> Tuple[str, Tuple]:
    """Cache key under which a plan for ``(A, config)`` is stored."""
    return (matrix_fingerprint(A), config_signature(config))


class ExecutionPlan:
    """Prepared state for executing ``C = A @ B`` many times.

    Holds the row (and optional column) permutation, the permuted matrix,
    the preprocessing report, and a prepared kernel instance of the
    configured backend (``config.kernel``): the paper's BCSR Tensor-Core
    kernel by default, or any registered baseline library -- every
    backend's internal format conversion happens at build time, so
    repeated executions amortise it identically.  Create plans with
    :meth:`build`; instances are immutable and thread-safe to
    :meth:`execute`.
    """

    def __init__(
        self,
        A: CSRMatrix,
        config: SMaTConfig,
        *,
        row_perm: np.ndarray,
        col_perm: Optional[np.ndarray],
        permuted: CSRMatrix,
        kernel: SpMMKernel,
        report: PreprocessReport,
        reorder_result: Optional[ReorderResult] = None,
    ):
        self.A = A
        self.config = config
        self.row_perm = row_perm
        self.col_perm = col_perm
        self.permuted = permuted
        self.kernel = kernel
        self.report = report
        self.reorder_result = reorder_result

    @classmethod
    def build(cls, A: CSRMatrix, config: Optional[SMaTConfig] = None) -> "ExecutionPlan":
        """Run the full preprocessing pipeline (Section IV-C) for ``A``.

        Dispatches on ``config.kernel``: for blocked backends (SMaT) it
        computes the block-minimising permutation, applies it (unless
        ``auto_skip_reordering`` decides the input ordering is already at
        least as good), and prepares the BCSR Tensor-Core kernel; for
        non-blocked backends (cuSPARSE, DASP, Magicube, cuBLAS) the
        BCSR-specific reordering pass is skipped entirely -- the library
        consumes ``A`` as-is, exactly the paper's comparison protocol --
        and only the backend's own format conversion runs.  ``"auto"``
        (for the kernel or the reordering) first resolves the
        configuration through the per-matrix auto-tuner.

        May raise :class:`~repro.kernels.KernelUnsupportedError` when the
        backend cannot handle the matrix (e.g. the densified operand does
        not fit in device memory); the engine turns that into a recorded
        fallback to SMaT.
        """
        if not isinstance(A, CSRMatrix):
            raise TypeError("ExecutionPlan expects a repro.formats.CSRMatrix input")
        config = (config or SMaTConfig()).validate()

        if config.reorder.lower() == "auto" or config.resolved_kernel() == "auto":
            # tuned pipeline: resolve the configuration (backend, block
            # shape, reordering) through the auto-tuner (persistent-cache
            # hit, or a one-off search); imported lazily to keep core free
            # of a tuner dependency
            from ..tuner import resolve_auto_config

            config = resolve_auto_config(A, config)

        backend = config.resolved_kernel()
        block_shape = config.resolved_block_shape()
        if KERNEL_REGISTRY[backend].wants_reordering:
            return cls._build_blocked(A, config, backend, block_shape)
        return cls._build_unblocked(A, config, backend, block_shape)

    @classmethod
    def _build_blocked(
        cls, A: CSRMatrix, config: SMaTConfig, backend: str, block_shape: Tuple[int, int]
    ) -> "ExecutionPlan":
        """The paper's pipeline: block-minimising reorder + BCSR kernel."""
        name = config.reorder.lower()
        if name in ("identity", "none"):
            reorderer = get_reorderer("identity", block_shape=block_shape)
        else:
            reorderer = get_reorderer(
                name,
                block_shape=block_shape,
                permute_columns=config.reorder_columns,
                **config.reorder_params,
            )
        result = reorderer.reorder(A, with_stats=True)

        applied = True
        if (
            config.auto_skip_reordering
            and result.stats_before is not None
            and result.stats_after is not None
            and result.stats_after.n_blocks >= result.stats_before.n_blocks
        ):
            # the input ordering is already at least as good (e.g. band
            # matrices); keep the identity, as the paper's pipeline does
            applied = False

        if applied:
            row_perm = result.row_perm
            col_perm = result.col_perm
            permuted = A.permute_rows(result.row_perm)
            if result.col_perm is not None:
                permuted = permuted.permute_cols(result.col_perm)
        else:
            row_perm = identity_permutation(A.nrows)
            col_perm = None
            permuted = A

        kernel = get_kernel(
            backend,
            config.arch,
            config.precision,
            variant=config.variant,
            block_shape=block_shape,
        )
        kernel.prepare(permuted)

        stats_before = result.stats_before
        stats_after = result.stats_after if applied else result.stats_before
        report = PreprocessReport(
            algorithm=result.algorithm if applied else "identity",
            applied=applied,
            blocks_before=stats_before.n_blocks if stats_before else 0,
            blocks_after=stats_after.n_blocks if stats_after else 0,
            std_before=stats_before.std_blocks_per_row if stats_before else 0.0,
            std_after=stats_after.std_blocks_per_row if stats_after else 0.0,
            n_block_rows=stats_after.n_block_rows if stats_after else 0,
            block_shape=block_shape,
            backend=backend,
        )
        return cls(
            A,
            config,
            row_perm=row_perm,
            col_perm=col_perm,
            permuted=permuted,
            kernel=kernel,
            report=report,
            reorder_result=result,
        )

    @classmethod
    def _build_unblocked(
        cls, A: CSRMatrix, config: SMaTConfig, backend: str, block_shape: Tuple[int, int]
    ) -> "ExecutionPlan":
        """Baseline-library pipeline: no reordering, only the backend's
        own format conversion (cuSPARSE keeps CSR, Magicube builds
        SR-BCRS, cuBLAS densifies, ...)."""
        kernel = get_kernel(backend, config.arch, config.precision)
        kernel.prepare(A)
        report = PreprocessReport(
            algorithm="identity",
            applied=False,
            blocks_before=0,
            blocks_after=0,
            std_before=0.0,
            std_after=0.0,
            n_block_rows=0,
            block_shape=block_shape,
            backend=backend,
        )
        return cls(
            A,
            config,
            row_perm=identity_permutation(A.nrows),
            col_perm=None,
            permuted=A,
            kernel=kernel,
            report=report,
            reorder_result=None,
        )

    # -- accessors ------------------------------------------------------------------
    @property
    def backend(self) -> str:
        """Registry key of the backend the plan was built for."""
        return self.report.backend

    @property
    def bcsr(self) -> BCSRMatrix:
        """The internal BCSR representation of the (permuted) matrix
        (blocked backends only)."""
        bcsr = getattr(self.kernel, "bcsr", None)
        if bcsr is None:
            raise AttributeError(
                f"plan built for backend {self.report.backend!r} has no BCSR "
                "representation (only blocked kernels convert to BCSR)"
            )
        return bcsr

    @property
    def shape(self) -> Tuple[int, int]:
        return self.A.shape

    # -- execution ------------------------------------------------------------------
    def run_kernel(self, B: np.ndarray) -> KernelResult:
        """Run the kernel and return the full
        :class:`~repro.kernels.base.KernelResult` (result rows are in the
        permuted order)."""
        B_arr = np.asarray(B)
        if B_arr.ndim == 1:
            B_arr = B_arr.reshape(-1, 1)
        if self.col_perm is not None:
            # A' = P_r A P_c^T, so  A B = P_r^T A' (P_c B)
            B_arr = B_arr[self.col_perm]
        return self.kernel.run(B_arr)

    def execute(
        self,
        B: np.ndarray,
        *,
        keep_permuted: bool = False,
    ) -> Tuple[np.ndarray, MultiplyReport]:
        """Compute ``C = A @ B`` and return it with a :class:`MultiplyReport`.

        ``B`` may be a ``(K, N)`` dense matrix or a length-``K`` vector
        (SpMV); a vector input yields a vector output.  With
        ``keep_permuted`` the result stays in the permuted row order
        (``P A B``) instead of undoing the row permutation.
        """
        B_arr = np.asarray(B)
        was_vector = B_arr.ndim == 1
        result = self.run_kernel(B_arr)
        C = result.C
        if not keep_permuted and self.report.applied:
            # row i of the permuted result is original row row_perm[i]
            # (plans whose permutation was skipped -- every non-blocked
            # backend, and blocked plans where auto_skip_reordering kept
            # the input order -- return the kernel result directly)
            C_out = np.empty_like(C)
            C_out[self.row_perm] = C
            C = C_out
        if was_vector:
            C = C.ravel()
        report = MultiplyReport(
            gflops=result.gflops,
            simulated_ms=result.time_ms,
            n_blocks=int(result.meta.get("n_blocks", 0)),
            useful_flops=result.counters.useful_flops,
            bound=result.timing.bound,
            backend=self.report.backend,
            kernel_meta=dict(result.meta),
            preprocessing=self.report,
        )
        return C, report

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<ExecutionPlan A={self.A.shape} nnz={self.A.nnz} "
            f"backend={self.report.backend!r} reorder={self.config.reorder!r} "
            f"variant={self.config.variant!r} blocks={self.report.blocks_after}>"
        )


def build_with_fallback(
    A: CSRMatrix, config: SMaTConfig, *, tuner=None, tracer=None
) -> ExecutionPlan:
    """Build one plan, falling back to SMaT when the requested backend
    cannot handle the matrix.

    Shared by the engine's plan factory and the per-shard planner so the
    fallback behaves identically across layers.  A
    :class:`~repro.kernels.KernelUnsupportedError` from the build (e.g.
    cuBLAS densification or Magicube preprocessing exceeding device
    memory) is absorbed for every backend except SMaT itself: the plan is
    rebuilt with ``kernel="smat"`` and the fallback -- the *concrete*
    backend that failed (also when ``"auto"`` was requested and the tuner
    selected it), and why -- is recorded in the plan's
    :class:`PreprocessReport`.

    ``tuner`` resolves the configuration before building (the engine's
    tuned path); without one, an ``"auto"`` kernel or reordering is
    resolved here through :func:`~repro.tuner.resolve_auto_config` so the
    failing backend is still known by name on fallback.

    ``tracer`` (a :class:`repro.obs.Tracer`) wraps the build attempt in a
    ``kernel.build`` span and any SMaT rebuild in a ``kernel.fallback``
    span, so traces show exactly where dispatch failed and why.
    """
    tracer = tracer if tracer is not None else NULL_TRACER
    config = config.validate()
    requested = config.resolved_kernel()
    failed = requested
    try:
        if tuner is not None:
            resolved = tuner.resolve(A, config)
        elif requested == "auto" or config.reorder.lower() == "auto":
            from ..tuner import resolve_auto_config

            resolved = resolve_auto_config(A, config)
        else:
            resolved = config
        failed = resolved.resolved_kernel()
        with tracer.span("kernel.build", backend=failed) as span:
            plan = ExecutionPlan.build(A, resolved)
            span.set(blocks=plan.report.blocks_after)
            return plan
    except KernelUnsupportedError as exc:
        if "smat" in (requested, failed):
            raise
        with tracer.span("kernel.fallback", requested=failed) as span:
            plan = ExecutionPlan.build(A, replace(config, kernel="smat"))
            span.set(blocks=plan.report.blocks_after)
        plan.report.fallback_from = failed if failed != "auto" else requested
        plan.report.fallback_error = str(exc)
        return plan


@dataclass(frozen=True)
class PlanSpec:
    """Picklable recipe for rebuilding a plan in another process.

    An :class:`ExecutionPlan` itself never crosses a process boundary --
    it closes over kernel instances, reordering state and matrix views.
    What *does* travel is this spec: the (picklable) configuration plus
    whether tuning applies.  A worker that holds the matrix data (e.g.
    attached through shared memory) calls :meth:`build` to reconstruct an
    equivalent plan locally, resolving tuning through its own tuner
    (normally warmed from the persistent tuning cache).
    """

    config: SMaTConfig
    #: resolve the configuration through a tuner before building
    tuned: bool = False

    def signature(self) -> Tuple:
        """The spec's :func:`config_signature` (worker plan-cache key)."""
        return config_signature(self.config)

    def build(self, A: CSRMatrix, *, tuner=None) -> ExecutionPlan:
        """Rebuild the plan for ``A`` via :func:`build_with_fallback`;
        ``tuner`` is consulted only when the spec says :attr:`tuned`."""
        return build_with_fallback(A, self.config, tuner=tuner if self.tuned else None)
