"""Reusable SpMM execution plans.

The paper's central performance argument (Figure 1) is *amortisation*: one
expensive preprocessing pass -- the block-minimising row permutation plus
the CSR-to-BCSR conversion -- is paid once per sparse matrix and reused
across arbitrarily many SpMM executions against different dense operands
``B``.  An :class:`ExecutionPlan` is that prepared state made explicit and
shareable:

* :class:`~repro.core.smat.SMaT` builds one plan per instance (its
  ``preprocess()`` stage),
* :class:`~repro.engine.SpMMEngine` caches plans across matrices keyed by
  :func:`matrix_fingerprint` so repeated queries skip preprocessing
  entirely.

A built plan is immutable, and executing it does not mutate any of its
state, so one plan may be executed concurrently from several threads (the
engine's batched thread-pool path relies on this).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from ..formats import BCSRMatrix, CSRMatrix
from ..kernels import KernelResult, SMaTKernel
from ..reorder import ReorderResult, get_reorderer
from ..reorder.base import identity_permutation
from .config import SMaTConfig

__all__ = [
    "ExecutionPlan",
    "PreprocessReport",
    "MultiplyReport",
    "matrix_fingerprint",
    "config_signature",
    "plan_key",
]


@dataclass
class PreprocessReport:
    """Summary of the preprocessing (reordering + blocking) stage."""

    algorithm: str
    applied: bool
    blocks_before: int
    blocks_after: int
    std_before: float
    std_after: float
    n_block_rows: int
    block_shape: Tuple[int, int]

    @property
    def block_reduction(self) -> float:
        """Block-count reduction factor achieved by the permutation."""
        return self.blocks_before / self.blocks_after if self.blocks_after else 1.0

    @property
    def std_reduction(self) -> float:
        """Reduction of the blocks-per-row standard deviation (load balance)."""
        return self.std_before / self.std_after if self.std_after else 1.0


@dataclass
class MultiplyReport:
    """Summary of one SpMM execution."""

    gflops: float
    simulated_ms: float
    n_blocks: int
    useful_flops: float
    bound: str
    kernel_meta: Dict[str, object] = field(default_factory=dict)
    preprocessing: Optional[PreprocessReport] = None


def matrix_fingerprint(A: CSRMatrix) -> str:
    """Content hash identifying a CSR matrix for plan reuse.

    Covers the shape, the sparsity structure (``rowptr``/``col``) *and*
    the stored values: two matrices with the same pattern but different
    values produce different products, so they must not share a cached
    plan.  The hash is a 128-bit BLAKE2b digest -- collisions are
    negligible, and hashing is orders of magnitude cheaper than the
    reordering pass it guards.

    The digest is memoised on the matrix instance so per-query cache
    lookups are O(1) instead of re-hashing O(nnz) bytes per batch item;
    like the rest of the pipeline (plans keep references to ``A``), this
    treats the matrix arrays as immutable once constructed.
    """
    cached = getattr(A, "_fingerprint", None)
    if cached is not None:
        return cached
    h = hashlib.blake2b(digest_size=16)
    h.update(np.asarray([A.nrows, A.ncols, A.nnz], dtype=np.int64).tobytes())
    h.update(np.ascontiguousarray(A.rowptr).tobytes())
    h.update(np.ascontiguousarray(A.col).tobytes())
    h.update(np.ascontiguousarray(A.val).tobytes())
    digest = h.hexdigest()
    A._fingerprint = digest
    return digest


def config_signature(config: SMaTConfig) -> Tuple:
    """Hashable signature of every configuration field that changes the
    prepared state (permutation, BCSR blocking, or kernel instance)."""
    variant = config.variant if isinstance(config.variant, str) else config.variant.label
    return (
        config.resolved_precision().key,
        config.resolved_block_shape(),
        config.reorder.lower(),
        bool(config.reorder_columns),
        repr(sorted(config.reorder_params.items())),
        bool(config.auto_skip_reordering),
        variant,
        config.arch.name,
    )


def plan_key(A: CSRMatrix, config: SMaTConfig) -> Tuple[str, Tuple]:
    """Cache key under which a plan for ``(A, config)`` is stored."""
    return (matrix_fingerprint(A), config_signature(config))


class ExecutionPlan:
    """Prepared state for executing ``C = A @ B`` many times.

    Holds the row (and optional column) permutation, the permuted matrix,
    the preprocessing report, and a kernel instance whose internal BCSR
    representation is already built.  Create plans with :meth:`build`;
    instances are immutable and thread-safe to :meth:`execute`.
    """

    def __init__(
        self,
        A: CSRMatrix,
        config: SMaTConfig,
        *,
        row_perm: np.ndarray,
        col_perm: Optional[np.ndarray],
        permuted: CSRMatrix,
        kernel: SMaTKernel,
        report: PreprocessReport,
        reorder_result: Optional[ReorderResult] = None,
    ):
        self.A = A
        self.config = config
        self.row_perm = row_perm
        self.col_perm = col_perm
        self.permuted = permuted
        self.kernel = kernel
        self.report = report
        self.reorder_result = reorder_result

    @classmethod
    def build(cls, A: CSRMatrix, config: Optional[SMaTConfig] = None) -> "ExecutionPlan":
        """Run the full preprocessing pipeline (Section IV-C) for ``A``.

        Computes the block-minimising permutation, applies it (unless
        ``auto_skip_reordering`` decides the input ordering is already at
        least as good), and prepares the BCSR Tensor-Core kernel.
        """
        if not isinstance(A, CSRMatrix):
            raise TypeError("ExecutionPlan expects a repro.formats.CSRMatrix input")
        config = (config or SMaTConfig()).validate()

        if config.reorder.lower() == "auto":
            # tuned pipeline: resolve the configuration through the
            # auto-tuner (persistent-cache hit, or a one-off search);
            # imported lazily to keep core free of a tuner dependency
            from ..tuner import resolve_auto_config

            config = resolve_auto_config(A, config)

        block_shape = config.resolved_block_shape()
        name = config.reorder.lower()
        if name in ("identity", "none"):
            reorderer = get_reorderer("identity", block_shape=block_shape)
        else:
            reorderer = get_reorderer(
                name,
                block_shape=block_shape,
                permute_columns=config.reorder_columns,
                **config.reorder_params,
            )
        result = reorderer.reorder(A, with_stats=True)

        applied = True
        if (
            config.auto_skip_reordering
            and result.stats_before is not None
            and result.stats_after is not None
            and result.stats_after.n_blocks >= result.stats_before.n_blocks
        ):
            # the input ordering is already at least as good (e.g. band
            # matrices); keep the identity, as the paper's pipeline does
            applied = False

        if applied:
            row_perm = result.row_perm
            col_perm = result.col_perm
            permuted = A.permute_rows(result.row_perm)
            if result.col_perm is not None:
                permuted = permuted.permute_cols(result.col_perm)
        else:
            row_perm = identity_permutation(A.nrows)
            col_perm = None
            permuted = A

        kernel = SMaTKernel(
            config.arch,
            config.precision,
            variant=config.variant,
            block_shape=block_shape,
        )
        kernel.prepare(permuted)

        stats_before = result.stats_before
        stats_after = result.stats_after if applied else result.stats_before
        report = PreprocessReport(
            algorithm=result.algorithm if applied else "identity",
            applied=applied,
            blocks_before=stats_before.n_blocks if stats_before else 0,
            blocks_after=stats_after.n_blocks if stats_after else 0,
            std_before=stats_before.std_blocks_per_row if stats_before else 0.0,
            std_after=stats_after.std_blocks_per_row if stats_after else 0.0,
            n_block_rows=stats_after.n_block_rows if stats_after else 0,
            block_shape=block_shape,
        )
        return cls(
            A,
            config,
            row_perm=row_perm,
            col_perm=col_perm,
            permuted=permuted,
            kernel=kernel,
            report=report,
            reorder_result=result,
        )

    # -- accessors ------------------------------------------------------------------
    @property
    def bcsr(self) -> BCSRMatrix:
        """The internal BCSR representation of the (permuted) matrix."""
        assert self.kernel.bcsr is not None
        return self.kernel.bcsr

    @property
    def shape(self) -> Tuple[int, int]:
        return self.A.shape

    # -- execution ------------------------------------------------------------------
    def run_kernel(self, B: np.ndarray) -> KernelResult:
        """Run the kernel and return the full
        :class:`~repro.kernels.base.KernelResult` (result rows are in the
        permuted order)."""
        B_arr = np.asarray(B)
        if B_arr.ndim == 1:
            B_arr = B_arr.reshape(-1, 1)
        if self.col_perm is not None:
            # A' = P_r A P_c^T, so  A B = P_r^T A' (P_c B)
            B_arr = B_arr[self.col_perm]
        return self.kernel.run(B_arr)

    def execute(
        self,
        B: np.ndarray,
        *,
        keep_permuted: bool = False,
    ) -> Tuple[np.ndarray, MultiplyReport]:
        """Compute ``C = A @ B`` and return it with a :class:`MultiplyReport`.

        ``B`` may be a ``(K, N)`` dense matrix or a length-``K`` vector
        (SpMV); a vector input yields a vector output.  With
        ``keep_permuted`` the result stays in the permuted row order
        (``P A B``) instead of undoing the row permutation.
        """
        B_arr = np.asarray(B)
        was_vector = B_arr.ndim == 1
        result = self.run_kernel(B_arr)
        C = result.C
        if not keep_permuted:
            # row i of the permuted result is original row row_perm[i]
            C_out = np.empty_like(C)
            C_out[self.row_perm] = C
            C = C_out
        if was_vector:
            C = C.ravel()
        report = MultiplyReport(
            gflops=result.gflops,
            simulated_ms=result.time_ms,
            n_blocks=int(result.meta.get("n_blocks", 0)),
            useful_flops=result.counters.useful_flops,
            bound=result.timing.bound,
            kernel_meta=dict(result.meta),
            preprocessing=self.report,
        )
        return C, report

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<ExecutionPlan A={self.A.shape} nnz={self.A.nnz} "
            f"reorder={self.config.reorder!r} variant={self.config.variant!r} "
            f"blocks={self.report.blocks_after}>"
        )
