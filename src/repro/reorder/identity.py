"""Identity (no-op) reordering.

Used as the "base" configuration of the reordering experiments
(Figures 4-7 compare base / row / row+column) and as the default when a
matrix is known to be well-structured already -- the paper notes that for
band matrices the optimal permutation *is* the identity.
"""

from __future__ import annotations

import numpy as np

from ..formats import CSRMatrix
from .base import Reorderer, identity_permutation

__all__ = ["IdentityReorderer"]


class IdentityReorderer(Reorderer):
    """Return the identity permutation for rows (and columns)."""

    name = "identity"

    def compute_row_perm(self, csr: CSRMatrix) -> np.ndarray:
        return identity_permutation(csr.nrows)

    def compute_col_perm(self, csr: CSRMatrix) -> np.ndarray:
        return identity_permutation(csr.ncols)
