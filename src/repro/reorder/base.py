"""Reordering interfaces.

A *reorderer* computes a row permutation (and optionally a column
permutation) of a sparse matrix that reduces the number of non-zero BCSR
blocks.  The paper evaluates several published heuristics (Section IV-C)
and adopts Jaccard-similarity row clustering (Sylos Labini et al.) as
SMaT's default; it also evaluates row+column permutation and rejects it.

Conventions
-----------
Permutations follow the "new position -> old index" convention used by
:meth:`repro.formats.csr.CSRMatrix.permute_rows`: the permuted matrix's
row ``i`` is the original row ``perm[i]`` (``A' = P A``).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple, Type

import numpy as np

from ..formats import CSRMatrix
from .metrics import BlockingStats, blocking_stats

__all__ = [
    "ReorderResult",
    "Reorderer",
    "register_reorderer",
    "get_reorderer",
    "available_reorderers",
    "identity_permutation",
]


def identity_permutation(n: int) -> np.ndarray:
    """The identity permutation of length ``n``."""
    return np.arange(n, dtype=np.int64)


@dataclass
class ReorderResult:
    """Outcome of a reordering pass.

    Attributes
    ----------
    row_perm, col_perm:
        Permutation vectors ("new -> old"); ``col_perm`` is ``None`` when
        only rows were permuted (SMaT's default).
    stats_before, stats_after:
        Blocking statistics of the matrix before/after applying the
        permutations, for the block shape the reorderer targeted.
    algorithm:
        Name of the algorithm that produced the permutation.
    """

    row_perm: np.ndarray
    col_perm: Optional[np.ndarray] = None
    stats_before: Optional[BlockingStats] = None
    stats_after: Optional[BlockingStats] = None
    algorithm: str = "identity"
    extra: Dict[str, float] = field(default_factory=dict)

    @property
    def block_reduction(self) -> float:
        """Block-count reduction factor (``>1`` means the reordering helped)."""
        if not self.stats_before or not self.stats_after or not self.stats_after.n_blocks:
            return 1.0
        return self.stats_before.n_blocks / self.stats_after.n_blocks

    @property
    def std_reduction(self) -> float:
        """Reduction factor of the blocks-per-row standard deviation."""
        if (
            not self.stats_before
            or not self.stats_after
            or not self.stats_after.std_blocks_per_row
        ):
            return 1.0
        return self.stats_before.std_blocks_per_row / self.stats_after.std_blocks_per_row

    def apply(self, csr: CSRMatrix) -> CSRMatrix:
        """Apply the stored permutations to a CSR matrix."""
        out = csr.permute_rows(self.row_perm)
        if self.col_perm is not None:
            out = out.permute_cols(self.col_perm)
        return out


class Reorderer(abc.ABC):
    """Base class of all reordering heuristics.

    Parameters
    ----------
    block_shape:
        Target BCSR block shape ``(h, w)``; heuristics that operate at
        block-column granularity use ``w``, and the final evaluation of
        block counts uses both.
    permute_columns:
        Also compute a column permutation (the paper's "row+column"
        variant).  The default column strategy applies the same heuristic
        to the transposed matrix; subclasses may override
        :meth:`compute_col_perm`.
    """

    name: str = "abstract"

    def __init__(self, block_shape: Tuple[int, int] = (16, 8), *, permute_columns: bool = False):
        h, w = int(block_shape[0]), int(block_shape[1])
        if h <= 0 or w <= 0:
            raise ValueError("block dimensions must be positive")
        self.block_shape = (h, w)
        self.permute_columns = bool(permute_columns)

    # -- to be implemented by subclasses -------------------------------------
    @abc.abstractmethod
    def compute_row_perm(self, csr: CSRMatrix) -> np.ndarray:
        """Return the row permutation ("new -> old") for ``csr``."""

    def compute_col_perm(self, csr: CSRMatrix) -> np.ndarray:
        """Return a column permutation; by default, applies the row
        heuristic to the transposed matrix."""
        return self.compute_row_perm(csr.transpose())

    # -- public API --------------------------------------------------------------
    def reorder(self, csr: CSRMatrix, *, with_stats: bool = True) -> ReorderResult:
        """Compute permutations for ``csr`` and return a
        :class:`ReorderResult` (the matrix itself is not modified)."""
        row_perm = np.asarray(self.compute_row_perm(csr), dtype=np.int64)
        if row_perm.shape != (csr.nrows,):
            raise ValueError(
                f"{self.name}: row permutation has wrong length "
                f"{row_perm.shape} for {csr.nrows} rows"
            )
        col_perm = None
        if self.permute_columns:
            col_perm = np.asarray(self.compute_col_perm(csr), dtype=np.int64)

        stats_before = stats_after = None
        if with_stats:
            stats_before = blocking_stats(csr, self.block_shape)
            stats_after = blocking_stats(
                csr, self.block_shape, row_perm=row_perm, col_perm=col_perm
            )
        return ReorderResult(
            row_perm=row_perm,
            col_perm=col_perm,
            stats_before=stats_before,
            stats_after=stats_after,
            algorithm=self.name + ("+column" if self.permute_columns else ""),
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<{type(self).__name__} block_shape={self.block_shape} "
            f"columns={self.permute_columns}>"
        )


# -- registry -------------------------------------------------------------------
_REORDERERS: Dict[str, Type[Reorderer]] = {}


def register_reorderer(name: str, cls: Type[Reorderer]) -> None:
    """Register a reorderer class under ``name`` (used by config strings)."""
    _REORDERERS[name.lower()] = cls


def get_reorderer(name: str, **kwargs) -> Reorderer:
    """Instantiate a registered reorderer by name.

    Known names include ``"identity"``, ``"jaccard"``, ``"rcm"``,
    ``"saad"``, ``"graycode"`` and ``"hypergraph"``.
    """
    key = name.lower()
    if key not in _REORDERERS:
        raise ValueError(
            f"unknown reorderer {name!r}; available: {sorted(_REORDERERS)}"
        )
    return _REORDERERS[key](**kwargs)


def available_reorderers() -> list[str]:
    """Names of all registered reordering algorithms."""
    return sorted(_REORDERERS)
