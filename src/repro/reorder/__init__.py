"""Sparse-matrix reordering (preprocessing) algorithms.

SMaT's preprocessing step permutes the rows of the sparse matrix to
minimise the number of non-zero BCSR blocks (paper Section IV-C).  This
package implements the algorithms the paper evaluates:

* :class:`~repro.reorder.jaccard.JaccardReorderer` -- Sylos Labini et al.
  Jaccard-similarity clustering, SMaT's default,
* :class:`~repro.reorder.rcm.RCMReorderer` -- Reverse Cuthill--McKee,
* :class:`~repro.reorder.saad.SaadReorderer` -- Saad's cosine-similarity
  grouping,
* :class:`~repro.reorder.graycode.GrayCodeReorderer` -- Gray-code ordering
  (Zhao et al.),
* :class:`~repro.reorder.hypergraph.HypergraphReorderer` -- recursive
  bisection in the spirit of hypergraph partitioners,
* :class:`~repro.reorder.identity.IdentityReorderer` -- no-op baseline.

Use :func:`get_reorderer` to instantiate by name, and
:mod:`repro.reorder.metrics` to evaluate blocking quality.
"""

from .base import (
    Reorderer,
    ReorderResult,
    available_reorderers,
    get_reorderer,
    identity_permutation,
    register_reorderer,
)
from .graycode import GrayCodeReorderer
from .hypergraph import HypergraphReorderer
from .identity import IdentityReorderer
from .jaccard import JaccardReorderer, jaccard_distance
from .metrics import (
    BlockingStats,
    block_coordinates,
    blocking_stats,
    blocks_per_block_row,
    count_blocks,
)
from .rcm import RCMReorderer, rcm_permutation
from .saad import SaadReorderer, cosine_similarity

register_reorderer("identity", IdentityReorderer)
register_reorderer("none", IdentityReorderer)
register_reorderer("jaccard", JaccardReorderer)
register_reorderer("rcm", RCMReorderer)
register_reorderer("saad", SaadReorderer)
register_reorderer("graycode", GrayCodeReorderer)
register_reorderer("hypergraph", HypergraphReorderer)

__all__ = [
    "Reorderer",
    "ReorderResult",
    "available_reorderers",
    "get_reorderer",
    "register_reorderer",
    "identity_permutation",
    "IdentityReorderer",
    "JaccardReorderer",
    "jaccard_distance",
    "RCMReorderer",
    "rcm_permutation",
    "SaadReorderer",
    "cosine_similarity",
    "GrayCodeReorderer",
    "HypergraphReorderer",
    "BlockingStats",
    "blocking_stats",
    "blocks_per_block_row",
    "block_coordinates",
    "count_blocks",
]
