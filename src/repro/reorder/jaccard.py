"""Jaccard-similarity row clustering (Sylos Labini et al.) -- SMaT's default.

Paper Section IV-C: rows are clustered greedily; two rows belong to the
same cluster when their Jaccard *distance*

    J(v, w) = 1 - |v ∩ w| / |v ∪ w|

(computed on the block-column support sets) is below a threshold.  Rows of
a cluster are placed consecutively in the permuted matrix, so non-zeros of
similar rows share BCSR blocks and the total block count drops.

The implementation clusters at block-column granularity (``w`` of the
target block shape), which is both cheaper and directly minimises the
quantity that matters (the number of blocks).
"""

from __future__ import annotations

import numpy as np

from ..formats import CSRMatrix
from ._clustering import RowPatterns, greedy_cluster_rows
from .base import Reorderer

__all__ = ["JaccardReorderer", "jaccard_distance"]


def jaccard_distance(a: np.ndarray, b: np.ndarray) -> float:
    """Jaccard distance between two sorted index sets (utility/tests)."""
    if a.size == 0 and b.size == 0:
        return 0.0
    inter = np.intersect1d(a, b, assume_unique=True).size
    union = a.size + b.size - inter
    return 1.0 - inter / union if union else 0.0


class JaccardReorderer(Reorderer):
    """Greedy Jaccard row clustering.

    Parameters
    ----------
    block_shape:
        Target BCSR block shape; the block width sets the granularity of
        the row support sets.
    threshold:
        Maximum Jaccard *distance* for a row to join a cluster (the paper
        formulates the test as ``dist(w, pc) < threshold``).  ``0.0``
        merges only identical patterns; ``1.0`` merges everything that
        shares a single block column.
    max_cluster_size:
        Optional cap on cluster size; ``None`` (default) leaves clusters
        unbounded as in the original algorithm.
    permute_columns:
        Also compute a column permutation by clustering the transposed
        matrix (the paper's "row+column" variant).
    """

    name = "jaccard"

    def __init__(
        self,
        block_shape=(16, 8),
        *,
        threshold: float = 0.6,
        max_cluster_size: int | None = None,
        permute_columns: bool = False,
    ):
        super().__init__(block_shape, permute_columns=permute_columns)
        if not 0.0 <= threshold <= 1.0:
            raise ValueError("threshold must be in [0, 1]")
        self.threshold = float(threshold)
        self.max_cluster_size = max_cluster_size

    def compute_row_perm(self, csr: CSRMatrix) -> np.ndarray:
        _, w = self.block_shape
        patterns = RowPatterns.from_csr(csr, w)

        def similarity(inter, cand_sizes, seed_size):
            union = cand_sizes + seed_size - inter
            with np.errstate(divide="ignore", invalid="ignore"):
                jac = np.where(union > 0, inter / union, 1.0)
            return jac  # similarity = 1 - distance; compare against 1 - threshold

        clusters = greedy_cluster_rows(
            patterns,
            similarity,
            threshold=1.0 - self.threshold,
            max_cluster_size=self.max_cluster_size,
        )
        if clusters:
            return np.concatenate(clusters)
        return np.arange(csr.nrows, dtype=np.int64)

    def compute_col_perm(self, csr: CSRMatrix) -> np.ndarray:
        # cluster columns by their row-support similarity at block-row
        # granularity (h), i.e. apply the row algorithm to A^T with the
        # transposed block shape.
        h, w = self.block_shape
        transposed = JaccardReorderer(
            (w, h),
            threshold=self.threshold,
            max_cluster_size=self.max_cluster_size,
        )
        return transposed.compute_row_perm(csr.transpose())
