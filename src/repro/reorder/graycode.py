"""Gray-code row ordering (Zhao et al., ICCD 2020).

Zhao et al. sort the rows of a sparse matrix by the Gray-code value of
their (coarsened) sparsity bit pattern: rows whose non-zeros occupy
similar column regions end up adjacent, which improves data locality for
SpMV and, in our setting, packs non-zeros of consecutive rows into shared
BCSR blocks.  The paper lists this among the candidate preprocessing
schemes (Section IV-C).

Implementation: the column space is divided into ``n_bits`` equal buckets;
each row is summarised by the bitmask of the buckets it touches; the mask
is converted to its Gray-code value (``mask ^ (mask >> 1)``) and rows are
sorted by that value (ties broken by the first column index to keep the
sort deterministic).
"""

from __future__ import annotations

import numpy as np

from ..formats import CSRMatrix
from .base import Reorderer

__all__ = ["GrayCodeReorderer", "row_bucket_masks"]


def row_bucket_masks(csr: CSRMatrix, n_bits: int) -> np.ndarray:
    """Per-row bitmask of the column buckets each row touches.

    The most significant bit corresponds to the left-most bucket so that
    the subsequent integer sort groups rows by their leading columns, like
    the published algorithm.
    """
    if n_bits <= 0 or n_bits > 63:
        raise ValueError("n_bits must be in 1..63")
    n = csr.nrows
    masks = np.zeros(n, dtype=np.uint64)
    if csr.nnz == 0 or csr.ncols == 0:
        return masks
    rows = np.repeat(np.arange(n, dtype=np.int64), np.diff(csr.rowptr))
    bucket = (csr.col.astype(np.int64) * n_bits) // csr.ncols
    bits = np.uint64(1) << (np.uint64(n_bits - 1) - bucket.astype(np.uint64))
    np.bitwise_or.at(masks, rows, bits)
    return masks


class GrayCodeReorderer(Reorderer):
    """Sort rows by the Gray code of their bucketed column bitmask."""

    name = "graycode"

    def __init__(self, block_shape=(16, 8), *, n_bits: int = 48, permute_columns: bool = False):
        super().__init__(block_shape, permute_columns=permute_columns)
        self.n_bits = int(n_bits)

    def compute_row_perm(self, csr: CSRMatrix) -> np.ndarray:
        masks = row_bucket_masks(csr, self.n_bits)
        gray = masks ^ (masks >> np.uint64(1))
        # tie-break by first column index so rows inside a bucket stay banded
        first_col = np.full(csr.nrows, csr.ncols, dtype=np.int64)
        nnz_rows = np.diff(csr.rowptr) > 0
        if csr.nnz:
            first_col[nnz_rows] = csr.col[csr.rowptr[:-1][nnz_rows]]
        order = np.lexsort((first_col, gray))
        # empty rows (mask 0) sort first; move them to the end instead
        empty = ~nnz_rows[order]
        return np.concatenate([order[~empty], order[empty]]).astype(np.int64)
