"""Saad's similarity-based row grouping.

Saad (2001, "Finding exact and approximate block structures for ILU
preconditioning") groups rows whose sparsity patterns have a large cosine
similarity; the paper lists it among the candidate preprocessing schemes
(Section IV-C).  We implement the angle/cosine variant on block-column
support sets: rows ``v`` and ``w`` are grouped when

    cos(v, w) = |v ∩ w| / sqrt(|v| * |w|)  >=  tau.

The greedy driver is shared with the Jaccard reorderer
(:mod:`repro.reorder._clustering`); only the similarity function differs.
"""

from __future__ import annotations

import numpy as np

from ..formats import CSRMatrix
from ._clustering import RowPatterns, greedy_cluster_rows
from .base import Reorderer

__all__ = ["SaadReorderer", "cosine_similarity"]


def cosine_similarity(a: np.ndarray, b: np.ndarray) -> float:
    """Cosine similarity between two sorted index sets (utility/tests)."""
    if a.size == 0 or b.size == 0:
        return 0.0
    inter = np.intersect1d(a, b, assume_unique=True).size
    return inter / float(np.sqrt(a.size * b.size))


class SaadReorderer(Reorderer):
    """Greedy cosine-similarity row grouping (Saad's algorithm).

    Parameters
    ----------
    tau:
        Minimum cosine similarity for a row to join a group (Saad's
        recommendation is around 0.7-0.8 for approximate block detection).
    """

    name = "saad"

    def __init__(
        self,
        block_shape=(16, 8),
        *,
        tau: float = 0.7,
        max_cluster_size: int | None = None,
        permute_columns: bool = False,
    ):
        super().__init__(block_shape, permute_columns=permute_columns)
        if not 0.0 <= tau <= 1.0:
            raise ValueError("tau must be in [0, 1]")
        self.tau = float(tau)
        self.max_cluster_size = max_cluster_size

    def compute_row_perm(self, csr: CSRMatrix) -> np.ndarray:
        _, w = self.block_shape
        patterns = RowPatterns.from_csr(csr, w)

        def similarity(inter, cand_sizes, seed_size):
            denom = np.sqrt(cand_sizes * float(seed_size))
            with np.errstate(divide="ignore", invalid="ignore"):
                return np.where(denom > 0, inter / denom, 0.0)

        clusters = greedy_cluster_rows(
            patterns,
            similarity,
            threshold=self.tau,
            max_cluster_size=self.max_cluster_size,
        )
        if clusters:
            return np.concatenate(clusters)
        return np.arange(csr.nrows, dtype=np.int64)
