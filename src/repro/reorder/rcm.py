"""Reverse Cuthill--McKee (RCM) bandwidth-minimising reordering.

RCM (Cuthill & McKee 1969, reversed per George 1971) orders the vertices
of the matrix's adjacency graph by breadth-first search from a peripheral
low-degree vertex, visiting neighbours in increasing degree order, and
finally reverses the order.  The permutation concentrates non-zeros near
the diagonal, which also tends to pack them into fewer BCSR blocks --
this is one of the candidate preprocessing schemes the paper evaluates
(Section IV-C) before settling on Jaccard clustering.

The implementation is self-contained (no scipy.sparse.csgraph): the
symmetrised sparsity pattern is built explicitly and traversed with an
iterative BFS.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from ..formats import CSRMatrix
from .base import Reorderer

__all__ = ["RCMReorderer", "rcm_permutation"]


def _symmetrized_adjacency(csr: CSRMatrix) -> tuple[np.ndarray, np.ndarray]:
    """Return (ptr, idx) adjacency of the pattern of ``A + A^T`` without
    self-loops.  Only valid for square matrices."""
    n = csr.nrows
    rows = np.repeat(np.arange(n, dtype=np.int64), np.diff(csr.rowptr))
    cols = csr.col.astype(np.int64)
    src = np.concatenate([rows, cols])
    dst = np.concatenate([cols, rows])
    keep = src != dst
    src, dst = src[keep], dst[keep]
    if src.size:
        pairs = np.unique(src * n + dst)
        src = pairs // n
        dst = pairs - src * n
    counts = np.bincount(src, minlength=n)
    ptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=ptr[1:])
    return ptr, dst


def rcm_permutation(csr: CSRMatrix) -> np.ndarray:
    """Compute the RCM permutation ("new -> old") of a square matrix."""
    if csr.nrows != csr.ncols:
        raise ValueError("RCM requires a square matrix")
    n = csr.nrows
    if n == 0:
        return np.empty(0, dtype=np.int64)
    ptr, adj = _symmetrized_adjacency(csr)
    degree = np.diff(ptr)

    visited = np.zeros(n, dtype=bool)
    order = np.empty(n, dtype=np.int64)
    pos = 0

    # process components in order of increasing minimum degree
    candidates = np.argsort(degree, kind="stable")
    for start in candidates:
        if visited[start]:
            continue
        visited[start] = True
        queue = deque([int(start)])
        while queue:
            u = queue.popleft()
            order[pos] = u
            pos += 1
            nbrs = adj[ptr[u] : ptr[u + 1]]
            nbrs = nbrs[~visited[nbrs]]
            if nbrs.size:
                nbrs = nbrs[np.argsort(degree[nbrs], kind="stable")]
                visited[nbrs] = True
                queue.extend(int(v) for v in nbrs)
    assert pos == n
    return order[::-1].copy()


class RCMReorderer(Reorderer):
    """Reverse Cuthill--McKee reordering (row permutation; the same
    permutation is reused for columns in the "row+column" variant, which
    preserves symmetry of symmetric matrices)."""

    name = "rcm"

    def compute_row_perm(self, csr: CSRMatrix) -> np.ndarray:
        if csr.nrows == csr.ncols:
            return rcm_permutation(csr)
        # rectangular fall-back: order rows by mean column index (keeps the
        # BFS spirit of grouping rows with nearby supports)
        mean_col = np.full(csr.nrows, np.inf)
        for i in range(csr.nrows):
            cols = csr.row_indices(i)
            if cols.size:
                mean_col[i] = float(cols.mean())
        return np.argsort(mean_col, kind="stable").astype(np.int64)

    def compute_col_perm(self, csr: CSRMatrix) -> np.ndarray:
        if csr.nrows == csr.ncols:
            return self.compute_row_perm(csr)
        return super().compute_col_perm(csr)
