"""Shared machinery for similarity-based row clustering.

Both Jaccard clustering (Sylos Labini et al., SMaT's default) and Saad's
similarity grouping follow the same greedy scheme:

1. pick an unclustered *seed* row,
2. compare every other unclustered row that shares at least one
   (block-)column with the seed's pattern,
3. merge all rows whose similarity passes a threshold into the seed's
   cluster,
4. repeat until every row is clustered.

They differ only in the similarity measure.  This module provides the row
pattern data structure (row -> block-column support, in CSR and CSC form)
and the greedy driver, both fully vectorised over candidate rows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List

import numpy as np

from ..formats import CSRMatrix

__all__ = ["RowPatterns", "greedy_cluster_rows"]


@dataclass
class RowPatterns:
    """Block-column support patterns of every row of a matrix.

    Attributes
    ----------
    rowptr, bcol:
        CSR-like structure over (row, block-column) incidences with
        duplicate block columns removed.
    colptr, rows_of_col:
        The transposed (CSC-like) structure: for each block column, the
        rows whose pattern contains it.
    sizes:
        Per-row pattern size (number of distinct block columns).
    n_block_cols:
        Number of block columns of the matrix.
    """

    rowptr: np.ndarray
    bcol: np.ndarray
    colptr: np.ndarray
    rows_of_col: np.ndarray
    sizes: np.ndarray
    n_block_cols: int

    @property
    def nrows(self) -> int:
        return self.rowptr.size - 1

    def pattern(self, row: int) -> np.ndarray:
        """Sorted block-column support of ``row``."""
        return self.bcol[self.rowptr[row] : self.rowptr[row + 1]]

    def rows_touching(self, block_col: int) -> np.ndarray:
        """Rows whose pattern contains ``block_col``."""
        return self.rows_of_col[self.colptr[block_col] : self.colptr[block_col + 1]]

    @classmethod
    def from_csr(cls, csr: CSRMatrix, block_width: int) -> "RowPatterns":
        """Build the pattern structure from a CSR matrix at block-column
        granularity ``block_width``."""
        w = int(block_width)
        n_block_cols = -(-csr.ncols // w) if csr.ncols else 0
        rows = np.repeat(np.arange(csr.nrows, dtype=np.int64), np.diff(csr.rowptr))
        bcols = csr.col.astype(np.int64) // w
        if rows.size:
            pairs = np.unique(rows * max(1, n_block_cols) + bcols)
            u_rows = pairs // max(1, n_block_cols)
            u_bcol = pairs - u_rows * max(1, n_block_cols)
        else:
            u_rows = np.empty(0, dtype=np.int64)
            u_bcol = np.empty(0, dtype=np.int64)

        sizes = np.bincount(u_rows, minlength=csr.nrows).astype(np.int64)
        rowptr = np.zeros(csr.nrows + 1, dtype=np.int64)
        np.cumsum(sizes, out=rowptr[1:])

        # transposed structure
        order = np.argsort(u_bcol, kind="stable")
        rows_of_col = u_rows[order]
        col_counts = np.bincount(u_bcol, minlength=n_block_cols).astype(np.int64)
        colptr = np.zeros(n_block_cols + 1, dtype=np.int64)
        np.cumsum(col_counts, out=colptr[1:])

        return cls(
            rowptr=rowptr,
            bcol=u_bcol,
            colptr=colptr,
            rows_of_col=rows_of_col,
            sizes=sizes,
            n_block_cols=n_block_cols,
        )


def greedy_cluster_rows(
    patterns: RowPatterns,
    similarity: Callable[[np.ndarray, np.ndarray, int], np.ndarray],
    threshold: float,
    *,
    seed_order: np.ndarray | None = None,
    max_cluster_size: int | None = None,
) -> List[np.ndarray]:
    """Greedy single-pass row clustering.

    Parameters
    ----------
    patterns:
        Row pattern structure.
    similarity:
        ``similarity(inter, cand_sizes, seed_size) -> scores`` computing a
        similarity in ``[0, 1]`` for every candidate row given the
        intersection sizes with the seed pattern (vectorised).
    threshold:
        Minimum similarity for a row to join the seed's cluster.
    seed_order:
        Order in which unclustered rows are considered as seeds; defaults
        to decreasing pattern size (denser rows first), which mirrors the
        published heuristic and produces more stable clusters.
    max_cluster_size:
        Optional cap on cluster size (excess rows stay unclustered and can
        seed later clusters).

    Returns
    -------
    list of ndarray
        Clusters in creation order; each array lists the member rows,
        seed first.  Empty rows (no non-zeros) are gathered into a final
        cluster so they end up at the bottom of the permuted matrix.
    """
    n = patterns.nrows
    unclustered = np.ones(n, dtype=bool)
    clusters: List[np.ndarray] = []

    empty_rows = np.nonzero(patterns.sizes == 0)[0]
    unclustered[empty_rows] = False

    if seed_order is None:
        seed_order = np.argsort(-patterns.sizes, kind="stable")
    for seed in seed_order:
        seed = int(seed)
        if not unclustered[seed]:
            continue
        unclustered[seed] = False
        seed_pattern = patterns.pattern(seed)
        seed_size = int(seed_pattern.size)
        if seed_size == 0:
            clusters.append(np.array([seed], dtype=np.int64))
            continue

        # candidate rows: all unclustered rows sharing >= 1 block column
        cand_chunks = [patterns.rows_touching(int(c)) for c in seed_pattern]
        cand_all = np.concatenate(cand_chunks) if cand_chunks else np.empty(0, dtype=np.int64)
        if cand_all.size:
            cand, inter = np.unique(cand_all, return_counts=True)
            keep = unclustered[cand]
            cand, inter = cand[keep], inter[keep]
        else:
            cand = np.empty(0, dtype=np.int64)
            inter = np.empty(0, dtype=np.int64)

        if cand.size:
            scores = similarity(
                inter.astype(np.float64), patterns.sizes[cand].astype(np.float64), seed_size
            )
            chosen = cand[scores >= threshold]
            if max_cluster_size is not None and chosen.size > max_cluster_size - 1:
                # keep the most similar rows
                top = np.argsort(-scores[scores >= threshold])[: max_cluster_size - 1]
                chosen = chosen[top]
        else:
            chosen = np.empty(0, dtype=np.int64)

        unclustered[chosen] = False
        clusters.append(np.concatenate([[seed], chosen]).astype(np.int64))

    if empty_rows.size:
        clusters.append(empty_rows.astype(np.int64))
    return clusters
