"""Hypergraph-partitioning-style reordering (Catalyurek et al. family).

Hypergraph partitioners model rows as vertices and columns as nets; a
balanced partition with small net cut places rows that share columns in
the same part.  Production partitioners (PaToH, KaHyPar, Mt-KaHyPar) are
multilevel; the paper cites this line of work as one of the candidate
preprocessing schemes (Section IV-C).

Here we implement a lightweight recursive-bisection heuristic with a
Fiduccia--Mattheyses-style refinement pass:

1. order the rows of the current part by the centroid of their column
   support and split at the median (a geometric initial bisection),
2. greedily move boundary rows to the side where more of their
   block-columns already live (one FM-like pass with a balance constraint),
3. recurse until parts are at most ``leaf_size`` rows.

The final permutation is the concatenation of the leaves, which places
rows sharing column structure next to each other -- the property the BCSR
blocking benefits from.  This is a faithful, if simplified, representative
of the hypergraph-partitioning approach; it is not a replacement for a
multilevel partitioner.
"""

from __future__ import annotations

import numpy as np

from ..formats import CSRMatrix
from ._clustering import RowPatterns
from .base import Reorderer

__all__ = ["HypergraphReorderer"]


class HypergraphReorderer(Reorderer):
    """Recursive bisection with a single FM-style refinement pass."""

    name = "hypergraph"

    def __init__(
        self,
        block_shape=(16, 8),
        *,
        leaf_size: int = 64,
        balance_tolerance: float = 0.1,
        refinement_passes: int = 1,
        permute_columns: bool = False,
    ):
        super().__init__(block_shape, permute_columns=permute_columns)
        if leaf_size < 1:
            raise ValueError("leaf_size must be >= 1")
        self.leaf_size = int(leaf_size)
        self.balance_tolerance = float(balance_tolerance)
        self.refinement_passes = int(refinement_passes)

    # -- internals ------------------------------------------------------------
    def _centroids(self, patterns: RowPatterns, rows: np.ndarray) -> np.ndarray:
        cent = np.empty(rows.size, dtype=np.float64)
        for k, r in enumerate(rows):
            p = patterns.pattern(int(r))
            cent[k] = float(p.mean()) if p.size else float(patterns.n_block_cols)
        return cent

    def _refine(
        self,
        patterns: RowPatterns,
        left: np.ndarray,
        right: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        """One FM-like pass: move rows to the side containing more of their
        block-columns, subject to a balance constraint."""
        total = left.size + right.size
        min_side = int((0.5 - self.balance_tolerance) * total)

        # column ownership score: +1 for each row on the left touching it,
        # -1 for each row on the right
        score = np.zeros(patterns.n_block_cols, dtype=np.int64)
        for r in left:
            score[patterns.pattern(int(r))] += 1
        for r in right:
            score[patterns.pattern(int(r))] -= 1

        def gain(row: int, on_left: bool) -> float:
            p = patterns.pattern(row)
            if p.size == 0:
                return 0.0
            s = float(score[p].sum())
            # positive s means the row's columns lean left
            return -s if on_left else s

        left_list = list(map(int, left))
        right_list = list(map(int, right))
        for _ in range(self.refinement_passes):
            moved = False
            # move from the larger side first to preserve balance
            for source, dest, on_left in (
                (left_list, right_list, True),
                (right_list, left_list, False),
            ):
                if len(source) <= min_side:
                    continue
                gains = np.array([gain(r, on_left) for r in source])
                order = np.argsort(-gains)
                for idx in order:
                    if gains[idx] <= 0 or len(source) <= min_side:
                        break
                    row = source[idx]
                    p = patterns.pattern(row)
                    # the row leaves one side and joins the other: net score
                    # change of 2 for each of its block-columns
                    score[p] += -2 if on_left else 2
                    dest.append(row)
                    source[idx] = -1
                    moved = True
                source[:] = [r for r in source if r >= 0]
            if not moved:
                break
        return np.array(left_list, dtype=np.int64), np.array(right_list, dtype=np.int64)

    def _bisect(self, patterns: RowPatterns, rows: np.ndarray, out: list) -> None:
        if rows.size <= self.leaf_size:
            out.append(rows)
            return
        cent = self._centroids(patterns, rows)
        order = np.argsort(cent, kind="stable")
        rows_sorted = rows[order]
        mid = rows_sorted.size // 2
        left, right = rows_sorted[:mid], rows_sorted[mid:]
        refined_left, refined_right = self._refine(patterns, left, right)
        # guard against degenerate refinements (an emptied side would make
        # the recursion stop progressing); fall back to the median split
        if refined_left.size == 0 or refined_right.size == 0:
            refined_left, refined_right = left, right
        self._bisect(patterns, refined_left, out)
        self._bisect(patterns, refined_right, out)

    # -- Reorderer API ------------------------------------------------------------
    def compute_row_perm(self, csr: CSRMatrix) -> np.ndarray:
        _, w = self.block_shape
        patterns = RowPatterns.from_csr(csr, w)
        parts: list[np.ndarray] = []
        self._bisect(patterns, np.arange(csr.nrows, dtype=np.int64), parts)
        if parts:
            return np.concatenate(parts)
        return np.arange(csr.nrows, dtype=np.int64)
