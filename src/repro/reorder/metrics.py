"""Blocking metrics used to evaluate reordering quality.

The paper's preprocessing step is judged by two quantities (Section VI-A,
Figure 3):

* the total number of non-zero BCSR blocks ``n_e`` (fewer blocks = fewer
  Tensor-Core MMA operations, Eq. 1), and
* the *distribution* of blocks per block-row -- its standard deviation /
  coefficient of variation determines the load balance of SMaT's static
  2-D parallel schedule.

The helpers below compute these metrics directly from a CSR matrix and a
candidate permutation *without* materialising the BCSR blocks, so that
reordering heuristics can evaluate many candidate orderings cheaply.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..formats import CSRMatrix

__all__ = [
    "BlockingStats",
    "block_coordinates",
    "count_blocks",
    "blocks_per_block_row",
    "blocking_stats",
    "block_row_support",
]


@dataclass(frozen=True)
class BlockingStats:
    """Summary of the blocking produced by a (possibly permuted) matrix."""

    n_blocks: int
    n_block_rows: int
    mean_blocks_per_row: float
    std_blocks_per_row: float
    max_blocks_per_row: int
    padding_zeros: int
    fill_in_ratio: float

    @property
    def cv(self) -> float:
        """Coefficient of variation of the blocks-per-row distribution."""
        if not self.mean_blocks_per_row:
            return 0.0
        return self.std_blocks_per_row / self.mean_blocks_per_row


def _apply_perms(
    csr: CSRMatrix,
    row_perm: Optional[np.ndarray],
    col_perm: Optional[np.ndarray],
) -> Tuple[np.ndarray, np.ndarray]:
    """Return (rows, cols) coordinate arrays of the permuted matrix."""
    rows = np.repeat(np.arange(csr.nrows, dtype=np.int64), np.diff(csr.rowptr))
    cols = csr.col.astype(np.int64, copy=False)
    if row_perm is not None:
        row_perm = np.asarray(row_perm, dtype=np.int64)
        inv = np.empty_like(row_perm)
        inv[row_perm] = np.arange(row_perm.size, dtype=np.int64)
        rows = inv[rows]
    if col_perm is not None:
        col_perm = np.asarray(col_perm, dtype=np.int64)
        inv = np.empty_like(col_perm)
        inv[col_perm] = np.arange(col_perm.size, dtype=np.int64)
        cols = inv[cols]
    return rows, cols


def block_coordinates(
    csr: CSRMatrix,
    block_shape: Tuple[int, int],
    *,
    row_perm: Optional[np.ndarray] = None,
    col_perm: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Unique linear block ids touched by the (permuted) matrix.

    The linear id of block ``(I, J)`` is ``I * n_block_cols + J``.
    """
    h, w = int(block_shape[0]), int(block_shape[1])
    rows, cols = _apply_perms(csr, row_perm, col_perm)
    n_block_cols = -(-csr.ncols // w) if csr.ncols else 0
    block_ids = (rows // h) * n_block_cols + (cols // w)
    return np.unique(block_ids)


def count_blocks(
    csr: CSRMatrix,
    block_shape: Tuple[int, int],
    *,
    row_perm: Optional[np.ndarray] = None,
    col_perm: Optional[np.ndarray] = None,
) -> int:
    """Number of non-zero BCSR blocks of the (permuted) matrix."""
    return int(block_coordinates(csr, block_shape, row_perm=row_perm, col_perm=col_perm).size)


def blocks_per_block_row(
    csr: CSRMatrix,
    block_shape: Tuple[int, int],
    *,
    row_perm: Optional[np.ndarray] = None,
    col_perm: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Number of non-zero blocks in each block row of the (permuted) matrix."""
    h, w = int(block_shape[0]), int(block_shape[1])
    n_block_rows = -(-csr.nrows // h) if csr.nrows else 0
    n_block_cols = -(-csr.ncols // w) if csr.ncols else 0
    ids = block_coordinates(csr, block_shape, row_perm=row_perm, col_perm=col_perm)
    brows = ids // n_block_cols if n_block_cols else ids
    return np.bincount(brows, minlength=n_block_rows)


def blocking_stats(
    csr: CSRMatrix,
    block_shape: Tuple[int, int],
    *,
    row_perm: Optional[np.ndarray] = None,
    col_perm: Optional[np.ndarray] = None,
) -> BlockingStats:
    """Full blocking summary (block count, distribution, padding) of the
    (permuted) matrix."""
    h, w = int(block_shape[0]), int(block_shape[1])
    bpr = blocks_per_block_row(csr, block_shape, row_perm=row_perm, col_perm=col_perm)
    n_blocks = int(bpr.sum())
    stored = n_blocks * h * w
    nnz = csr.nnz
    mean = float(bpr.mean()) if bpr.size else 0.0
    return BlockingStats(
        n_blocks=n_blocks,
        n_block_rows=int(bpr.size),
        mean_blocks_per_row=mean,
        std_blocks_per_row=float(bpr.std()) if bpr.size else 0.0,
        max_blocks_per_row=int(bpr.max()) if bpr.size else 0,
        padding_zeros=stored - nnz,
        fill_in_ratio=(stored / nnz) if nnz else 0.0,
    )


def block_row_support(csr: CSRMatrix, block_width: int) -> list[np.ndarray]:
    """Per-row block-column support sets.

    Returns a list of sorted arrays: entry ``i`` holds the distinct block
    columns (``col // block_width``) touched by row ``i``.  This is the
    representation on which the similarity-based reordering heuristics
    (Jaccard, Saad) operate.
    """
    w = int(block_width)
    supports: list[np.ndarray] = []
    for i in range(csr.nrows):
        lo, hi = int(csr.rowptr[i]), int(csr.rowptr[i + 1])
        if hi == lo:
            supports.append(np.empty(0, dtype=np.int64))
        else:
            supports.append(np.unique(csr.col[lo:hi] // w).astype(np.int64))
    return supports
