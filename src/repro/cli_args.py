"""Shared argparse validators and flag groups of the ``repro`` CLI.

Every subcommand used to carry its own copy of the ``--workers`` /
``--batch`` / ``--grid`` definitions, so adding one execution flag meant
editing five parsers.  This module is the single source of those
validators and of the execution flag group (``--workers`` +
``--executor``), and it owns the one mapping from parsed arguments to an
:class:`~repro.core.policy.ExecutionPolicy` -- the CLI's half of the
policy API.

The validators are argparse ``type=`` callables: they raise
:class:`argparse.ArgumentTypeError` with a message naming the constraint,
so ``repro <cmd> --workers 0`` fails at parse time with a usage error
instead of deep inside the engine.
"""

from __future__ import annotations

import argparse
from typing import Optional

from .core.policy import EXECUTOR_KINDS, ExecutionPolicy

__all__ = [
    "scale_type",
    "grid_type",
    "damping_type",
    "positive_int",
    "add_executor_arg",
    "add_workers_arg",
    "add_batch_arg",
    "add_grid_arg",
    "add_shard_mode_arg",
    "add_trace_arg",
    "policy_from_args",
]

#: kernel backends selectable from the command line (``auto`` = tuner pick)
KERNEL_CHOICES = ("smat", "cusparse", "dasp", "magicube", "cublas", "auto")

#: shard balancing modes selectable from the command line
SHARD_MODE_CHOICES = ("nnz", "cost")


# -- type= validators ---------------------------------------------------------
def scale_type(text: str) -> float:
    """Argparse type for ``--scale``: a float in (0, 1]."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid scale value: {text!r}") from None
    if not 0.0 < value <= 1.0:
        raise argparse.ArgumentTypeError(f"scale must be in (0, 1], got {value!r}")
    return value


def grid_type(text: str) -> str:
    """Argparse type for ``--grid``: validates 'R' / 'RxC' early, keeps
    the string form (the shard API accepts it directly)."""
    from .shard.partition import parse_grid

    try:
        parse_grid(text)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None
    return text


def damping_type(text: str) -> float:
    """Argparse type for ``--damping``: a float strictly inside (0, 1)."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid damping value: {text!r}") from None
    if not 0.0 < value < 1.0:
        raise argparse.ArgumentTypeError(f"damping must be in (0, 1), got {value!r}")
    return value


def positive_int(text: str) -> int:
    """Argparse type for counts that must be >= 1."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid integer value: {text!r}") from None
    if value < 1:
        raise argparse.ArgumentTypeError(f"value must be >= 1, got {value}")
    return value


# -- shared flag groups -------------------------------------------------------
def add_workers_arg(parser: argparse.ArgumentParser, *, default: int = 4) -> None:
    """The ``--workers`` flag (engine pool width, >= 1)."""
    parser.add_argument(
        "--workers",
        type=positive_int,
        default=default,
        help="engine worker pool width (threads, or processes with --executor process)",
    )


def add_executor_arg(parser: argparse.ArgumentParser) -> None:
    """The ``--executor`` flag: thread pool vs shared-memory process pool.

    The default is ``None`` so the engine falls back to the
    ``REPRO_EXECUTOR`` environment variable (and then to ``thread``),
    keeping CLI runs overridable from CI without editing commands.
    """
    parser.add_argument(
        "--executor",
        choices=EXECUTOR_KINDS,
        default=None,
        help="shard execution backend: 'thread' (in-process pool) or 'process' "
        "(shared-memory process pool, escapes the GIL); default: "
        "$REPRO_EXECUTOR or 'thread'",
    )


def add_batch_arg(parser: argparse.ArgumentParser, *, default: int = 16) -> None:
    """The ``--batch`` flag (operands per engine batch, >= 1)."""
    parser.add_argument(
        "--batch", type=positive_int, default=default, help="operands per batch"
    )


def add_grid_arg(
    parser: argparse.ArgumentParser, *, default: str = "4", help: Optional[str] = None
) -> None:
    """The ``--grid`` flag (shard grid, 'R' or 'RxC')."""
    parser.add_argument(
        "--grid",
        type=grid_type,
        default=default,
        help=help or "shard grid: row panels 'R' or 2D grid 'RxC'",
    )


def add_shard_mode_arg(
    parser: argparse.ArgumentParser, *, help: Optional[str] = None
) -> None:
    """The ``--mode`` flag (shard balancing mode)."""
    parser.add_argument(
        "--mode",
        choices=SHARD_MODE_CHOICES,
        default="nnz",
        help=help or "shard balancing mode: non-zeros or Eq.1 predicted cost",
    )


def add_trace_arg(parser: argparse.ArgumentParser) -> None:
    """The ``--trace`` flag: write a Chrome trace of the run to a file.

    Passing it turns tracing on (``ObservabilityConfig(tracing=True)``
    rides into the policy via :func:`policy_from_args`); the subcommand
    is responsible for writing the collected spans to the file.
    """
    parser.add_argument(
        "--trace",
        default=None,
        metavar="FILE",
        help="record spans and write a Chrome trace-event JSON to FILE "
        "(open with Perfetto / chrome://tracing)",
    )


def policy_from_args(args: argparse.Namespace, **overrides) -> ExecutionPolicy:
    """The :class:`ExecutionPolicy` described by parsed CLI arguments.

    Reads whichever of ``--executor`` / ``--workers`` / ``--tune`` /
    ``--sharded`` / ``--grid`` / ``--mode`` / ``--trace`` the subcommand
    defined (absent flags keep the policy defaults); ``overrides`` win
    over both.
    """
    from .obs import ObservabilityConfig

    fields = {}
    if getattr(args, "trace", None):
        fields["obs"] = ObservabilityConfig(
            tracing=True, sample_rate=float(getattr(args, "sample_rate", None) or 1.0)
        )
    if getattr(args, "executor", None) is not None:
        fields["executor"] = args.executor
    if getattr(args, "workers", None) is not None:
        fields["max_workers"] = args.workers
    if getattr(args, "tune", None) is not None:
        fields["tune"] = bool(args.tune)
    if getattr(args, "sharded", None) is not None:
        fields["sharded"] = bool(args.sharded)
    if getattr(args, "grid", None) is not None:
        fields["grid"] = args.grid
    if getattr(args, "mode", None) is not None:
        fields["shard_mode"] = args.mode
    fields.update(overrides)
    return ExecutionPolicy(**fields)
