"""Dense matrix wrapper.

The cuBLAS-like baseline of the paper multiplies the sparse matrix *as if
it were dense* (explicitly storing all zeros).  :class:`DenseMatrix`
provides the same :class:`~repro.formats.base.SparseFormat` interface so
the benchmark harness can treat it uniformly, while the ``nnz`` property
still reports only the logically non-zero entries so that *effective*
GFLOP/s (paper Section VI-C: cuBLAS performance scaled by the fraction of
non-zeros) can be computed.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from .base import DEFAULT_VALUE_DTYPE, SparseFormat, check_dense_operand

__all__ = ["DenseMatrix"]


class DenseMatrix(SparseFormat):
    """A dense 2-D array exposed through the sparse-format interface."""

    format_name = "dense"

    def __init__(self, data: np.ndarray):
        data = np.asarray(data)
        if data.ndim != 2:
            raise ValueError("DenseMatrix expects a 2-D array")
        dtype = data.dtype if data.dtype.kind in "fiu" else DEFAULT_VALUE_DTYPE
        super().__init__(data.shape, dtype=dtype)
        self.data = np.ascontiguousarray(data, dtype=dtype)

    @classmethod
    def zeros(cls, shape: Tuple[int, int], dtype=DEFAULT_VALUE_DTYPE) -> "DenseMatrix":
        return cls(np.zeros(shape, dtype=dtype))

    @classmethod
    def from_sparse(cls, sparse: SparseFormat) -> "DenseMatrix":
        """Materialise any sparse format as a dense matrix (the explicit
        zero-padding step of the cuBLAS baseline)."""
        return cls(sparse.to_dense())

    # -- SparseFormat API -----------------------------------------------------
    @property
    def nnz(self) -> int:
        return int(np.count_nonzero(self.data))

    @property
    def stored_values(self) -> int:
        """All entries are stored explicitly."""
        return int(self.data.size)

    def to_dense(self) -> np.ndarray:
        return self.data.copy()

    def to_coo(self):
        from .coo import COOMatrix

        return COOMatrix.from_dense(self.data)

    def to_csr(self):
        from .csr import CSRMatrix

        return CSRMatrix.from_dense(self.data)

    def spmm(self, B: np.ndarray) -> np.ndarray:
        B = check_dense_operand(B, self.ncols)
        out_dtype = np.result_type(self.dtype, B.dtype, np.float32)
        return self.data.astype(out_dtype) @ B.astype(out_dtype)

    def _storage_arrays(self):
        return (self.data,)
