"""Graph-operator constructions on sparse matrices.

Iterative graph workloads (PageRank, GCN forward passes, smoothers) do
not multiply by the raw adjacency matrix but by a *derived operator*:
the column-stochastic transition matrix, the symmetrically normalised
adjacency :math:`\\hat{A} = D^{-1/2} (A + I) D^{-1/2}`, or the matrix
with its diagonal split out.  This module builds those operators once,
in the formats layer, so every consumer (workloads, examples, tests)
shares one vectorised, duplicate-safe implementation instead of
re-deriving it from COO triples ad hoc.

All helpers treat the input as an edge-weight matrix: degrees are sums
of *absolute* values by default, so matrices with signed stand-in values
(the synthetic SuiteSparse generators) still yield valid stochastic /
normalised operators.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .coo import COOMatrix
from .csr import CSRMatrix

__all__ = [
    "degree_vector",
    "extract_diagonal",
    "add_self_loops",
    "gcn_normalize",
    "transition_matrix",
]


def degree_vector(A: CSRMatrix, *, absolute: bool = True, axis: int = 1) -> np.ndarray:
    """Weighted degree of every node of the graph with adjacency ``A``.

    ``axis=1`` (default) sums over columns -- the out-degree of each row
    node; ``axis=0`` sums over rows -- the in-degree of each column node.
    With ``absolute`` (default) weights enter by magnitude, so signed
    matrices still produce non-negative degrees.
    """
    if axis not in (0, 1):
        raise ValueError(f"axis must be 0 or 1, got {axis!r}")
    coo = A.to_coo()
    val = np.abs(coo.val) if absolute else coo.val
    idx = coo.row if axis == 1 else coo.col
    n = A.nrows if axis == 1 else A.ncols
    return np.bincount(idx, weights=val.astype(np.float64), minlength=n)


def extract_diagonal(A: CSRMatrix) -> np.ndarray:
    """The main diagonal of ``A`` as a dense vector (zeros where the
    diagonal entry is not stored)."""
    coo = A.to_coo()
    n = min(A.nrows, A.ncols)
    diag = np.zeros(n, dtype=A.val.dtype)
    mask = coo.row == coo.col
    diag[coo.row[mask]] = coo.val[mask]
    return diag


def add_self_loops(A: CSRMatrix, value: float = 1.0) -> CSRMatrix:
    """Return ``A + value * I`` (existing diagonal entries are summed
    with ``value``, as in the GCN renormalisation trick)."""
    if A.nrows != A.ncols:
        raise ValueError(f"self-loops need a square matrix, got shape {A.shape}")
    coo = A.to_coo()
    n = A.nrows
    eye = np.arange(n, dtype=np.int64)
    rows = np.concatenate([coo.row, eye])
    cols = np.concatenate([coo.col, eye])
    vals = np.concatenate([coo.val, np.full(n, value, dtype=coo.val.dtype)])
    return COOMatrix(rows, cols, vals, (n, n)).to_csr()


def gcn_normalize(
    A: CSRMatrix,
    *,
    self_loops: bool = True,
    dtype=np.float32,
) -> CSRMatrix:
    """Symmetric GCN normalisation ``D^-1/2 (A + I) D^-1/2`` (Kipf & Welling).

    ``D`` is the diagonal degree matrix of ``A + I`` (absolute-value
    degrees, so signed adjacency weights stay well-defined); isolated
    nodes keep a unit self-loop instead of dividing by zero.  Set
    ``self_loops=False`` to normalise the raw adjacency.
    """
    a_hat = add_self_loops(A) if self_loops else A
    if a_hat.nrows != a_hat.ncols:
        raise ValueError(f"gcn_normalize needs a square matrix, got shape {A.shape}")
    degree = degree_vector(a_hat)
    d_inv_sqrt = 1.0 / np.sqrt(np.maximum(degree, 1e-12))
    coo = a_hat.to_coo()
    vals = (coo.val * d_inv_sqrt[coo.row] * d_inv_sqrt[coo.col]).astype(dtype)
    return COOMatrix(coo.row, coo.col, vals, a_hat.shape).to_csr()


def transition_matrix(
    A: CSRMatrix,
    *,
    dtype=np.float32,
    dangling: Optional[np.ndarray] = None,
) -> CSRMatrix:
    """Column-stochastic transition matrix ``M = |A|^T D_out^-1``.

    Each column ``j`` of ``M`` distributes node ``j``'s unit of
    probability mass over its out-neighbours proportionally to the
    absolute edge weights, so PageRank is the fixed point of
    ``x = d M x + (1 - d) v``.  Columns of dangling nodes (zero
    out-degree) stay all-zero; their mass is redistributed by the
    PageRank iteration itself.  Pass a boolean ``dangling`` output array
    of length ``n`` to receive the dangling-node mask.
    """
    if A.nrows != A.ncols:
        raise ValueError(f"transition matrix needs a square adjacency, got shape {A.shape}")
    out_degree = degree_vector(A, absolute=True, axis=1)
    is_dangling = out_degree <= 0.0
    if dangling is not None:
        dangling[:] = is_dangling
    coo = A.to_coo()
    safe_degree = np.where(is_dangling, 1.0, out_degree)
    vals = (np.abs(coo.val) / safe_degree[coo.row]).astype(dtype)
    # M[j, i] = |A[i, j]| / deg(i): transpose by swapping coordinates
    return COOMatrix(coo.col, coo.row, vals, (A.ncols, A.nrows)).to_csr()
