"""Sparse and dense matrix storage formats.

This package implements every storage format that appears in the SMaT
paper and its baselines:

* :class:`~repro.formats.coo.COOMatrix` -- coordinate interchange format,
* :class:`~repro.formats.csr.CSRMatrix` -- the paper's input format,
* :class:`~repro.formats.csc.CSCMatrix` -- column-compressed variant,
* :class:`~repro.formats.bcsr.BCSRMatrix` -- SMaT's internal blocked format,
* :class:`~repro.formats.srbcrs.SRBCRSMatrix` -- Magicube's strided format,
* :class:`~repro.formats.dense.DenseMatrix` -- the cuBLAS baseline's view.

Use :func:`~repro.formats.conversions.convert` for generic conversions,
:mod:`repro.formats.io` for Matrix Market I/O, and
:mod:`repro.formats.graphops` for derived graph operators (normalised
adjacency, transition matrix) consumed by the iterative workloads.
"""

from .base import DEFAULT_VALUE_DTYPE, SparseFormat, index_dtype_for
from .bcsr import BCSRMatrix
from .conversions import FORMAT_REGISTRY, convert, register_format
from .coo import COOMatrix
from .csc import CSCMatrix
from .csr import CSRMatrix, matrix_fingerprint
from .dense import DenseMatrix
from .graphops import (
    add_self_loops,
    degree_vector,
    extract_diagonal,
    gcn_normalize,
    transition_matrix,
)
from .io import read_matrix_market, write_matrix_market
from .srbcrs import SRBCRSMatrix

__all__ = [
    "SparseFormat",
    "DEFAULT_VALUE_DTYPE",
    "index_dtype_for",
    "COOMatrix",
    "CSRMatrix",
    "matrix_fingerprint",
    "CSCMatrix",
    "BCSRMatrix",
    "SRBCRSMatrix",
    "DenseMatrix",
    "convert",
    "register_format",
    "FORMAT_REGISTRY",
    "read_matrix_market",
    "write_matrix_market",
    "degree_vector",
    "extract_diagonal",
    "add_self_loops",
    "gcn_normalize",
    "transition_matrix",
]
