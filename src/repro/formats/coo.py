"""Coordinate (COO) sparse format.

COO stores a matrix as three parallel arrays ``(row, col, val)``.  It is
the interchange format of the library: every other format knows how to
convert to and from COO, and :mod:`repro.formats.conversions` routes
arbitrary conversions through it.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from .base import (
    DEFAULT_VALUE_DTYPE,
    SparseFormat,
    check_dense_operand,
    check_shape,
    index_dtype_for,
)

__all__ = ["COOMatrix"]


class COOMatrix(SparseFormat):
    """Sparse matrix in coordinate format.

    Parameters
    ----------
    row, col:
        Integer arrays of equal length with the coordinates of each stored
        entry.
    val:
        Array of stored values, same length as ``row``/``col``.
    shape:
        Logical ``(rows, cols)`` of the matrix.
    sum_duplicates:
        When True (default) duplicate coordinates are summed; otherwise a
        ``ValueError`` is raised if duplicates are present.
    """

    format_name = "coo"

    def __init__(self, row, col, val, shape: Tuple[int, int], *, sum_duplicates: bool = True):
        shape = check_shape(shape)
        row = np.asarray(row)
        col = np.asarray(col)
        val = np.asarray(val)
        if not (row.shape == col.shape == val.shape) or row.ndim != 1:
            raise ValueError("row, col and val must be 1-D arrays of equal length")
        if row.size:
            if row.min(initial=0) < 0 or col.min(initial=0) < 0:
                raise ValueError("negative indices are not allowed")
            if row.max(initial=0) >= shape[0] or col.max(initial=0) >= shape[1]:
                raise ValueError(
                    f"coordinates out of bounds for shape {shape}: "
                    f"max row {row.max()}, max col {col.max()}"
                )
        dtype = val.dtype if val.dtype.kind in "fiu" else DEFAULT_VALUE_DTYPE
        super().__init__(shape, dtype=dtype)

        idx_dtype = index_dtype_for(shape[0], shape[1], row.size)
        row = row.astype(idx_dtype, copy=False)
        col = col.astype(idx_dtype, copy=False)
        val = val.astype(dtype, copy=False)

        # canonical order: sorted by (row, col), duplicates merged
        if row.size:
            order = np.lexsort((col, row))
            row, col, val = row[order], col[order], val[order]
            dup = np.zeros(row.size, dtype=bool)
            dup[1:] = (row[1:] == row[:-1]) & (col[1:] == col[:-1])
            if dup.any():
                if not sum_duplicates:
                    raise ValueError("duplicate coordinates present")
                # segment-sum values of duplicate runs into the first element
                keep = ~dup
                group = np.cumsum(keep) - 1
                summed = np.zeros(int(keep.sum()), dtype=val.dtype)
                np.add.at(summed, group, val)
                row, col, val = row[keep], col[keep], summed

        self.row = row
        self.col = col
        self.val = val

    # -- construction helpers ----------------------------------------------
    @classmethod
    def from_dense(cls, dense: np.ndarray, *, tol: float = 0.0) -> "COOMatrix":
        """Create a COO matrix from a dense array, dropping entries with
        ``abs(value) <= tol``."""
        dense = np.asarray(dense)
        if dense.ndim != 2:
            raise ValueError("from_dense expects a 2-D array")
        mask = np.abs(dense) > tol
        row, col = np.nonzero(mask)
        return cls(row, col, dense[mask], dense.shape)

    @classmethod
    def empty(cls, shape: Tuple[int, int], dtype=DEFAULT_VALUE_DTYPE) -> "COOMatrix":
        """Create an all-zero matrix of the given shape."""
        return cls(
            np.empty(0, dtype=np.int32),
            np.empty(0, dtype=np.int32),
            np.empty(0, dtype=dtype),
            shape,
        )

    # -- SparseFormat API ----------------------------------------------------
    @property
    def nnz(self) -> int:
        return int(self.val.size)

    def to_dense(self) -> np.ndarray:
        out = np.zeros(self.shape, dtype=self.dtype)
        out[self.row, self.col] = self.val
        return out

    def to_coo(self) -> "COOMatrix":
        return self

    def to_csr(self):
        """Convert to :class:`repro.formats.csr.CSRMatrix`."""
        from .csr import CSRMatrix

        return CSRMatrix.from_coo(self)

    def to_csc(self):
        """Convert to :class:`repro.formats.csc.CSCMatrix`."""
        from .csc import CSCMatrix

        return CSCMatrix.from_coo(self)

    def spmm(self, B: np.ndarray) -> np.ndarray:
        B = check_dense_operand(B, self.ncols)
        out_dtype = np.result_type(self.dtype, B.dtype, np.float32)
        C = np.zeros((self.nrows, B.shape[1]), dtype=out_dtype)
        if self.nnz:
            contrib = self.val[:, None].astype(out_dtype) * B[self.col]
            np.add.at(C, self.row, contrib)
        return C

    # -- transforms ----------------------------------------------------------
    def transpose(self) -> "COOMatrix":
        """Return the transposed matrix (swaps rows and columns)."""
        return COOMatrix(self.col, self.row, self.val, (self.ncols, self.nrows))

    def permute(self, row_perm=None, col_perm=None) -> "COOMatrix":
        """Return ``P_r @ A @ P_c^T`` for permutation vectors given as
        "new position -> old index" arrays (the convention used throughout
        :mod:`repro.reorder`)."""
        row = self.row
        col = self.col
        if row_perm is not None:
            row_perm = np.asarray(row_perm)
            inv = np.empty_like(row_perm)
            inv[row_perm] = np.arange(row_perm.size, dtype=row_perm.dtype)
            row = inv[row]
        if col_perm is not None:
            col_perm = np.asarray(col_perm)
            inv = np.empty_like(col_perm)
            inv[col_perm] = np.arange(col_perm.size, dtype=col_perm.dtype)
            col = inv[col]
        return COOMatrix(row, col, self.val, self.shape)

    def _storage_arrays(self):
        return (self.row, self.col, self.val)
