"""Blocked CSR (BCSR) -- SMaT's internal execution format.

A matrix of shape ``(M, K)`` is tiled into blocks of fixed size ``h x w``
(paper Section II-B3).  Block ``(I, J)`` covers entries ``A[k, l]`` with
``k // h == I`` and ``l // w == J``.  Only blocks containing at least one
non-zero are stored; such a block is stored *densely*, i.e. all ``h * w``
values are materialised and missing entries become explicit zeros
("padding").

Storage mirrors CSR at block granularity:

* ``brow_ptr`` -- length ``n_block_rows + 1``; block row ``I`` owns the
  blocks ``brow_ptr[I]:brow_ptr[I+1]``,
* ``bcol``     -- block-column index of each stored block,
* ``blocks``   -- array of shape ``(n_blocks, h, w)`` with the dense block
  contents (the ``val`` array of Figure 1 in the paper, reshaped).

The number of stored blocks ``n_e = n_blocks`` is the count of elementary
Tensor-Core computations in the paper's performance model (Eq. 1); the
bounds of Eq. 2 are exposed via :meth:`block_count_bounds`.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from .base import (
    DEFAULT_VALUE_DTYPE,
    SparseFormat,
    check_dense_operand,
    check_shape,
    index_dtype_for,
)

__all__ = ["BCSRMatrix"]


def _check_block_shape(block_shape: Tuple[int, int]) -> Tuple[int, int]:
    h, w = int(block_shape[0]), int(block_shape[1])
    if h <= 0 or w <= 0:
        raise ValueError(f"block dimensions must be positive, got {(h, w)}")
    return h, w


class BCSRMatrix(SparseFormat):
    """Blocked-CSR sparse matrix with dense ``h x w`` blocks.

    Parameters
    ----------
    brow_ptr, bcol, blocks:
        Block-level CSR arrays as described in the module docstring.
    shape:
        Logical (element-level) shape of the matrix.  It does not need to
        be a multiple of the block size: trailing partial blocks are
        zero-padded up to ``h x w``.
    block_shape:
        ``(h, w)`` dimensions of each block.  For the paper's FP16
        configuration this is ``(16, 8)`` (the ``m16n8k16`` MMA tile of
        the output/operand fragments).
    nnz_logical:
        Number of *logical* non-zeros (before padding).  If omitted it is
        recomputed by counting non-zero entries of ``blocks``.
    """

    format_name = "bcsr"

    def __init__(
        self,
        brow_ptr,
        bcol,
        blocks,
        shape: Tuple[int, int],
        block_shape: Tuple[int, int],
        *,
        nnz_logical: int | None = None,
        check: bool = True,
    ):
        shape = check_shape(shape)
        h, w = _check_block_shape(block_shape)
        blocks = np.asarray(blocks)
        dtype = blocks.dtype if blocks.dtype.kind in "fiu" else DEFAULT_VALUE_DTYPE
        super().__init__(shape, dtype=dtype)

        self.block_shape = (h, w)
        self.n_block_rows = -(-shape[0] // h) if shape[0] else 0
        self.n_block_cols = -(-shape[1] // w) if shape[1] else 0

        brow_ptr = np.asarray(brow_ptr)
        bcol = np.asarray(bcol)
        if blocks.ndim != 3 or blocks.shape[1:] != (h, w):
            raise ValueError(
                f"blocks must have shape (n_blocks, {h}, {w}), got {blocks.shape}"
            )
        if brow_ptr.ndim != 1 or brow_ptr.size != self.n_block_rows + 1:
            raise ValueError(
                f"brow_ptr must have length n_block_rows+1 = {self.n_block_rows + 1}"
            )
        if bcol.ndim != 1 or bcol.size != blocks.shape[0]:
            raise ValueError("bcol must have one entry per stored block")
        if check:
            if brow_ptr[0] != 0 or brow_ptr[-1] != blocks.shape[0]:
                raise ValueError("brow_ptr must start at 0 and end at n_blocks")
            if np.any(np.diff(brow_ptr) < 0):
                raise ValueError("brow_ptr must be non-decreasing")
            if bcol.size and (bcol.min() < 0 or bcol.max() >= self.n_block_cols):
                raise ValueError("block column indices out of bounds")

        idx_dtype = index_dtype_for(self.n_block_rows, self.n_block_cols, blocks.shape[0])
        self.brow_ptr = brow_ptr.astype(idx_dtype, copy=False)
        self.bcol = bcol.astype(idx_dtype, copy=False)
        self.blocks = blocks.astype(dtype, copy=False)
        if nnz_logical is None:
            nnz_logical = int(np.count_nonzero(self.blocks))
        self._nnz_logical = int(nnz_logical)

    # -- construction -------------------------------------------------------------
    @classmethod
    def from_csr(cls, csr, block_shape: Tuple[int, int]) -> "BCSRMatrix":
        """Convert a :class:`~repro.formats.csr.CSRMatrix` into BCSR.

        The conversion is fully vectorised: each non-zero is assigned to a
        block via integer division of its coordinates, unique blocks are
        found with a lexicographic sort, and values are scattered into
        block-local positions.
        """
        h, w = _check_block_shape(block_shape)
        M, K = csr.shape
        n_block_rows = -(-M // h) if M else 0
        n_block_cols = -(-K // w) if K else 0

        if csr.nnz == 0:
            idx_dtype = index_dtype_for(n_block_rows, n_block_cols, 0)
            return cls(
                np.zeros(n_block_rows + 1, dtype=idx_dtype),
                np.empty(0, dtype=idx_dtype),
                np.empty((0, h, w), dtype=csr.dtype),
                (M, K),
                (h, w),
                nnz_logical=0,
                check=False,
            )

        rows = np.repeat(np.arange(M, dtype=np.int64), np.diff(csr.rowptr))
        cols = csr.col.astype(np.int64, copy=False)
        vals = csr.val

        brow = rows // h
        bcol = cols // w
        in_r = rows - brow * h
        in_c = cols - bcol * w

        # linear block id, then find unique blocks preserving (brow, bcol) order
        block_id = brow * n_block_cols + bcol
        order = np.argsort(block_id, kind="stable")
        block_id_sorted = block_id[order]
        unique_ids, first_pos = np.unique(block_id_sorted, return_index=True)
        n_blocks = unique_ids.size
        # index of the owning stored block for each nnz (in sorted order)
        owner_sorted = np.searchsorted(unique_ids, block_id_sorted)

        blocks = np.zeros((n_blocks, h, w), dtype=vals.dtype)
        blocks[owner_sorted, in_r[order], in_c[order]] = vals[order]

        u_brow = (unique_ids // n_block_cols).astype(np.int64)
        u_bcol = (unique_ids - u_brow * n_block_cols).astype(np.int64)

        idx_dtype = index_dtype_for(n_block_rows, n_block_cols, n_blocks)
        counts = np.bincount(u_brow, minlength=n_block_rows).astype(idx_dtype)
        brow_ptr = np.zeros(n_block_rows + 1, dtype=idx_dtype)
        np.cumsum(counts, out=brow_ptr[1:])

        return cls(
            brow_ptr,
            u_bcol.astype(idx_dtype),
            blocks,
            (M, K),
            (h, w),
            nnz_logical=csr.nnz,
            check=False,
        )

    @classmethod
    def from_dense(cls, dense: np.ndarray, block_shape: Tuple[int, int]) -> "BCSRMatrix":
        from .csr import CSRMatrix

        return cls.from_csr(CSRMatrix.from_dense(dense), block_shape)

    # -- SparseFormat API -----------------------------------------------------------
    @property
    def nnz(self) -> int:
        """Number of *logical* non-zeros (padding zeros are not counted)."""
        return self._nnz_logical

    @property
    def n_blocks(self) -> int:
        """Number of stored (non-zero) blocks -- ``n_e`` of the paper's Eq. 1."""
        return int(self.blocks.shape[0])

    @property
    def stored_values(self) -> int:
        """Number of explicitly stored values including padding zeros."""
        h, w = self.block_shape
        return self.n_blocks * h * w

    @property
    def padding_zeros(self) -> int:
        """Explicitly stored zeros (paper Figure 1: "# zeros stored")."""
        return self.stored_values - self.nnz

    @property
    def fill_in_ratio(self) -> float:
        """Stored values per logical non-zero (1.0 = perfectly packed)."""
        return self.stored_values / self.nnz if self.nnz else 0.0

    def to_dense(self) -> np.ndarray:
        h, w = self.block_shape
        Mp, Kp = self.n_block_rows * h, self.n_block_cols * w
        out = np.zeros((Mp, Kp), dtype=self.dtype)
        for I in range(self.n_block_rows):
            for k in range(int(self.brow_ptr[I]), int(self.brow_ptr[I + 1])):
                J = int(self.bcol[k])
                out[I * h : (I + 1) * h, J * w : (J + 1) * w] = self.blocks[k]
        return out[: self.nrows, : self.ncols]

    def to_coo(self):
        from .coo import COOMatrix

        h, w = self.block_shape
        if self.n_blocks == 0:
            return COOMatrix.empty(self.shape, dtype=self.dtype)
        brow = np.repeat(np.arange(self.n_block_rows), np.diff(self.brow_ptr))
        bi, bj = np.nonzero(self.blocks.reshape(self.n_blocks, h * w))
        in_r, in_c = np.divmod(bj, w)
        rows = brow[bi] * h + in_r
        cols = self.bcol[bi] * w + in_c
        vals = self.blocks.reshape(self.n_blocks, h * w)[bi, bj]
        return COOMatrix(rows, cols, vals, self.shape)

    def to_csr(self):
        from .csr import CSRMatrix

        return CSRMatrix.from_coo(self.to_coo())

    def spmm(self, B: np.ndarray) -> np.ndarray:
        """Reference block-wise SpMM: for each stored block ``A_IJ``,
        ``C[I*h:(I+1)*h] += A_IJ @ B[J*w:(J+1)*w]``.  Mirrors the dataflow of
        the SMaT kernel (one output tile per block row) but without cost
        modelling."""
        B = check_dense_operand(B, self.ncols)
        h, w = self.block_shape
        N = B.shape[1]
        out_dtype = np.result_type(self.dtype, B.dtype, np.float32)
        # pad B to a multiple of w rows so block slices are uniform
        Kp = self.n_block_cols * w
        if Kp != B.shape[0]:
            Bp = np.zeros((Kp, N), dtype=B.dtype)
            Bp[: B.shape[0]] = B
        else:
            Bp = B
        C = np.zeros((self.n_block_rows, h, N), dtype=out_dtype)
        if self.n_blocks:
            # batched block x B-tile products; blocks are stored in block-row
            # order, so the per-block-row sums are contiguous segments and
            # can be reduced with add.reduceat.  Work in bounded chunks of
            # blocks to keep the (chunk, h, N) temporary small.
            chunk = max(1, int(2**28 // max(1, h * N * 4)))
            B_panels = Bp.reshape(self.n_block_cols, w, N)
            ptr = self.brow_ptr.astype(np.int64)
            for lo in range(0, self.n_blocks, chunk):
                hi = min(lo + chunk, self.n_blocks)
                B_tiles = B_panels[self.bcol[lo:hi]]
                contrib = np.matmul(
                    self.blocks[lo:hi].astype(out_dtype), B_tiles.astype(out_dtype)
                )
                # block rows overlapping [lo, hi)
                first = int(np.searchsorted(ptr, lo, side="right") - 1)
                last = int(np.searchsorted(ptr, hi, side="left"))
                seg_ptr = np.clip(ptr[first:last], lo, hi) - lo
                seg_rows = np.arange(first, last)
                nonempty = np.diff(np.append(seg_ptr, hi - lo)) > 0
                if nonempty.any():
                    sums = np.add.reduceat(contrib, seg_ptr[nonempty], axis=0)
                    np.add.at(C, seg_rows[nonempty], sums)
        return C.reshape(self.n_block_rows * h, N)[: self.nrows]

    # -- statistics ---------------------------------------------------------------------
    def blocks_per_row(self) -> np.ndarray:
        """Number of stored blocks in each block row (Figure 3 of the paper)."""
        return np.diff(self.brow_ptr)

    def block_count_bounds(self) -> Tuple[int, int]:
        """Lower/upper bounds on the number of stored blocks (paper Eq. 2).

        ``nnz / (h*w) <= n_e <= min(N_blocks_total, nnz)`` where
        ``N_blocks_total = n_block_rows * n_block_cols``.
        """
        h, w = self.block_shape
        lower = -(-self.nnz // (h * w)) if self.nnz else 0
        upper = min(self.n_block_rows * self.n_block_cols, self.nnz)
        return int(lower), int(upper)

    def block_density(self) -> np.ndarray:
        """Per-block fraction of non-zero entries (1.0 = fully dense block)."""
        h, w = self.block_shape
        if self.n_blocks == 0:
            return np.empty(0, dtype=np.float64)
        counts = np.count_nonzero(self.blocks.reshape(self.n_blocks, h * w), axis=1)
        return counts / float(h * w)

    def row_block_stats(self) -> dict:
        """Summary statistics of the blocks-per-row distribution used in the
        paper's load-balance discussion (mean, std, max, coefficient of
        variation)."""
        bpr = self.blocks_per_row().astype(np.float64)
        mean = float(bpr.mean()) if bpr.size else 0.0
        std = float(bpr.std()) if bpr.size else 0.0
        return {
            "mean": mean,
            "std": std,
            "max": float(bpr.max()) if bpr.size else 0.0,
            "cv": (std / mean) if mean else 0.0,
            "n_blocks": self.n_blocks,
        }

    def _storage_arrays(self):
        return (self.brow_ptr, self.bcol, self.blocks)
