"""Compressed Sparse Column (CSC) format.

CSC mirrors CSR with the roles of rows and columns exchanged.  It is used
by the column-reordering experiments (paper Section IV-C evaluates row
*and* column permutations) where per-column support sets are needed.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from .base import (
    DEFAULT_VALUE_DTYPE,
    SparseFormat,
    check_dense_operand,
    check_shape,
    index_dtype_for,
)

__all__ = ["CSCMatrix"]


class CSCMatrix(SparseFormat):
    """Sparse matrix in CSC format (``colptr``, ``row``, ``val``)."""

    format_name = "csc"

    def __init__(self, colptr, row, val, shape: Tuple[int, int], *, check: bool = True):
        shape = check_shape(shape)
        colptr = np.asarray(colptr)
        row = np.asarray(row)
        val = np.asarray(val)
        dtype = val.dtype if val.dtype.kind in "fiu" else DEFAULT_VALUE_DTYPE
        super().__init__(shape, dtype=dtype)

        if colptr.ndim != 1 or colptr.size != shape[1] + 1:
            raise ValueError(
                f"colptr must have length cols+1 = {shape[1] + 1}, got {colptr.size}"
            )
        if row.ndim != 1 or val.ndim != 1 or row.size != val.size:
            raise ValueError("row and val must be 1-D arrays of equal length")
        if check:
            if colptr[0] != 0 or colptr[-1] != row.size:
                raise ValueError("colptr must start at 0 and end at nnz")
            if np.any(np.diff(colptr) < 0):
                raise ValueError("colptr must be non-decreasing")
            if row.size and (row.min() < 0 or row.max() >= shape[0]):
                raise ValueError("row indices out of bounds")

        idx_dtype = index_dtype_for(shape[0], shape[1], row.size)
        self.colptr = colptr.astype(idx_dtype, copy=False)
        self.row = row.astype(idx_dtype, copy=False)
        self.val = val.astype(dtype, copy=False)

    # -- construction -----------------------------------------------------------
    @classmethod
    def from_coo(cls, coo) -> "CSCMatrix":
        """Build a CSC matrix from a COO matrix."""
        shape = coo.shape
        idx_dtype = index_dtype_for(shape[0], shape[1], coo.nnz)
        order = np.lexsort((coo.row, coo.col))
        row = coo.row[order]
        col = coo.col[order]
        val = coo.val[order]
        counts = np.bincount(col, minlength=shape[1]).astype(idx_dtype)
        colptr = np.zeros(shape[1] + 1, dtype=idx_dtype)
        np.cumsum(counts, out=colptr[1:])
        return cls(colptr, row, val, shape, check=False)

    @classmethod
    def from_dense(cls, dense: np.ndarray, *, tol: float = 0.0) -> "CSCMatrix":
        from .coo import COOMatrix

        return cls.from_coo(COOMatrix.from_dense(dense, tol=tol))

    # -- SparseFormat API ---------------------------------------------------------
    @property
    def nnz(self) -> int:
        return int(self.val.size)

    def to_dense(self) -> np.ndarray:
        out = np.zeros(self.shape, dtype=self.dtype)
        cols = np.repeat(np.arange(self.ncols), np.diff(self.colptr))
        out[self.row, cols] = self.val
        return out

    def to_coo(self):
        from .coo import COOMatrix

        cols = np.repeat(np.arange(self.ncols), np.diff(self.colptr))
        return COOMatrix(self.row, cols, self.val, self.shape)

    def to_csr(self):
        from .csr import CSRMatrix

        return CSRMatrix.from_coo(self.to_coo())

    def spmm(self, B: np.ndarray) -> np.ndarray:
        B = check_dense_operand(B, self.ncols)
        out_dtype = np.result_type(self.dtype, B.dtype, np.float32)
        C = np.zeros((self.nrows, B.shape[1]), dtype=out_dtype)
        if self.nnz:
            cols = np.repeat(np.arange(self.ncols), np.diff(self.colptr))
            contrib = self.val[:, None].astype(out_dtype) * B[cols]
            np.add.at(C, self.row, contrib)
        return C

    # -- statistics ------------------------------------------------------------------
    def col_nnz(self) -> np.ndarray:
        """Number of stored entries in each column."""
        return np.diff(self.colptr)

    def col_indices(self, j: int) -> np.ndarray:
        """Row-index support set of column ``j``."""
        lo, hi = int(self.colptr[j]), int(self.colptr[j + 1])
        return self.row[lo:hi]

    def _storage_arrays(self):
        return (self.colptr, self.row, self.val)
