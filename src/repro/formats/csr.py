"""Compressed Sparse Row (CSR) format.

CSR is the paper's *input* format: SMaT reads a CSR matrix, permutes its
rows during preprocessing, and converts it to BCSR for execution.  The
class below also provides the row/column statistics that the reordering
heuristics and the performance analysis need (non-zeros per row, row
support sets, bandwidth).
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Tuple

import numpy as np

from .base import (
    DEFAULT_VALUE_DTYPE,
    SparseFormat,
    check_dense_operand,
    check_shape,
    index_dtype_for,
)

__all__ = ["CSRMatrix", "matrix_fingerprint"]


def matrix_fingerprint(A: "CSRMatrix") -> str:
    """Content hash identifying a CSR matrix for prepared-state reuse.

    Covers the shape, the sparsity structure (``rowptr``/``col``) *and*
    the stored values: two matrices with the same pattern but different
    values produce different products, so they must not share a cached
    plan or a prepared kernel.  The hash is a 128-bit BLAKE2b digest --
    collisions are negligible, and hashing is orders of magnitude cheaper
    than the preprocessing it guards.

    The digest is memoised on the matrix instance so per-query cache
    lookups are O(1) instead of re-hashing O(nnz) bytes per batch item;
    like the rest of the pipeline (plans keep references to ``A``), this
    treats the matrix arrays as immutable once constructed.
    """
    cached = getattr(A, "_fingerprint", None)
    if cached is not None:
        return cached
    h = hashlib.blake2b(digest_size=16)
    h.update(np.asarray([A.nrows, A.ncols, A.nnz], dtype=np.int64).tobytes())
    h.update(np.ascontiguousarray(A.rowptr).tobytes())
    h.update(np.ascontiguousarray(A.col).tobytes())
    h.update(np.ascontiguousarray(A.val).tobytes())
    digest = h.hexdigest()
    A._fingerprint = digest
    return digest


class CSRMatrix(SparseFormat):
    """Sparse matrix in CSR format (``rowptr``, ``col``, ``val``).

    Parameters
    ----------
    rowptr:
        Integer array of length ``rows + 1``; ``rowptr[i]:rowptr[i+1]``
        addresses the entries of row ``i`` in ``col``/``val``.
    col:
        Column index of each stored entry.
    val:
        Value of each stored entry.
    shape:
        Logical matrix shape.
    check:
        When True (default) the structure is validated (monotone rowptr,
        in-bounds and sorted column indices).
    """

    format_name = "csr"

    def __init__(self, rowptr, col, val, shape: Tuple[int, int], *, check: bool = True):
        shape = check_shape(shape)
        rowptr = np.asarray(rowptr)
        col = np.asarray(col)
        val = np.asarray(val)
        dtype = val.dtype if val.dtype.kind in "fiu" else DEFAULT_VALUE_DTYPE
        super().__init__(shape, dtype=dtype)

        if rowptr.ndim != 1 or rowptr.size != shape[0] + 1:
            raise ValueError(
                f"rowptr must have length rows+1 = {shape[0] + 1}, got {rowptr.size}"
            )
        if col.ndim != 1 or val.ndim != 1 or col.size != val.size:
            raise ValueError("col and val must be 1-D arrays of equal length")
        if check:
            if rowptr[0] != 0 or rowptr[-1] != col.size:
                raise ValueError("rowptr must start at 0 and end at nnz")
            if np.any(np.diff(rowptr) < 0):
                raise ValueError("rowptr must be non-decreasing")
            if col.size and (col.min() < 0 or col.max() >= shape[1]):
                raise ValueError("column indices out of bounds")

        idx_dtype = index_dtype_for(shape[0], shape[1], col.size)
        self.rowptr = rowptr.astype(idx_dtype, copy=False)
        self.col = col.astype(idx_dtype, copy=False)
        self.val = val.astype(dtype, copy=False)
        if check:
            self._sort_indices_inplace()

    def _sort_indices_inplace(self) -> None:
        """Sort column indices within each row (canonical CSR)."""
        rowptr, col, val = self.rowptr, self.col, self.val
        for i in range(self.nrows):
            lo, hi = int(rowptr[i]), int(rowptr[i + 1])
            if hi - lo > 1:
                seg = col[lo:hi]
                if np.any(seg[1:] < seg[:-1]):
                    order = np.argsort(seg, kind="stable")
                    col[lo:hi] = seg[order]
                    val[lo:hi] = val[lo:hi][order]

    # -- construction --------------------------------------------------------
    @classmethod
    def from_coo(cls, coo) -> "CSRMatrix":
        """Build a CSR matrix from a (canonicalised) COO matrix."""
        shape = coo.shape
        idx_dtype = index_dtype_for(shape[0], shape[1], coo.nnz)
        counts = np.bincount(coo.row, minlength=shape[0]).astype(idx_dtype)
        rowptr = np.zeros(shape[0] + 1, dtype=idx_dtype)
        np.cumsum(counts, out=rowptr[1:])
        # COOMatrix guarantees lexicographic (row, col) order.
        return cls(rowptr, coo.col.copy(), coo.val.copy(), shape, check=False)

    @classmethod
    def from_dense(cls, dense: np.ndarray, *, tol: float = 0.0) -> "CSRMatrix":
        """Create a CSR matrix from a dense array."""
        from .coo import COOMatrix

        return cls.from_coo(COOMatrix.from_dense(dense, tol=tol))

    @classmethod
    def from_scipy(cls, mat) -> "CSRMatrix":
        """Create from a ``scipy.sparse`` matrix (any scipy format)."""
        m = mat.tocsr()
        m.sort_indices()
        return cls(m.indptr, m.indices, m.data, m.shape, check=False)

    def to_scipy(self):
        """Convert to ``scipy.sparse.csr_matrix`` (used in tests)."""
        import scipy.sparse as sp

        return sp.csr_matrix(
            (self.val, self.col, self.rowptr), shape=self.shape
        )

    @classmethod
    def empty(cls, shape: Tuple[int, int], dtype=DEFAULT_VALUE_DTYPE) -> "CSRMatrix":
        shape = check_shape(shape)
        return cls(
            np.zeros(shape[0] + 1, dtype=np.int32),
            np.empty(0, dtype=np.int32),
            np.empty(0, dtype=dtype),
            shape,
            check=False,
        )

    # -- SparseFormat API -----------------------------------------------------
    @property
    def nnz(self) -> int:
        return int(self.val.size)

    def to_dense(self) -> np.ndarray:
        out = np.zeros(self.shape, dtype=self.dtype)
        rows = np.repeat(np.arange(self.nrows), np.diff(self.rowptr))
        out[rows, self.col] = self.val
        return out

    def to_coo(self):
        from .coo import COOMatrix

        rows = np.repeat(np.arange(self.nrows), np.diff(self.rowptr))
        return COOMatrix(rows, self.col, self.val, self.shape)

    def to_csc(self):
        from .csc import CSCMatrix

        return CSCMatrix.from_coo(self.to_coo())

    def to_bcsr(self, block_shape: Tuple[int, int]):
        """Convert to :class:`repro.formats.bcsr.BCSRMatrix`."""
        from .bcsr import BCSRMatrix

        return BCSRMatrix.from_csr(self, block_shape)

    def spmm(self, B: np.ndarray) -> np.ndarray:
        B = check_dense_operand(B, self.ncols)
        out_dtype = np.result_type(self.dtype, B.dtype, np.float32)
        N = B.shape[1]
        C = np.zeros((self.nrows, N), dtype=out_dtype)
        if not self.nnz:
            return C
        # Fast path for nearly-dense matrices (the dense end of the paper's
        # band-matrix sweep): materialise the dense operand and let BLAS do
        # the product instead of gathering per non-zero.
        dense_bytes = self.nrows * self.ncols * np.dtype(out_dtype).itemsize
        if self.density >= 0.2 and dense_bytes <= 4 * 2**30:
            return self.to_dense().astype(out_dtype) @ B.astype(out_dtype)
        # Row-segmented reduction: contributions of a row are contiguous in
        # CSR order, so summing them is an add.reduceat over the row-pointer
        # boundaries.  Work in bounded chunks of rows to keep the temporary
        # (chunk_nnz x N) product small even for dense-like matrices.
        target_chunk_nnz = 2_000_000
        row_start = 0
        while row_start < self.nrows:
            lo = int(self.rowptr[row_start])
            row_end = int(
                np.searchsorted(self.rowptr, lo + target_chunk_nnz, side="right") - 1
            )
            row_end = min(max(row_end, row_start + 1), self.nrows)
            hi = int(self.rowptr[row_end])
            if hi > lo:
                prod = self.val[lo:hi, None].astype(out_dtype) * B[self.col[lo:hi]]
                ptr = self.rowptr[row_start : row_end + 1].astype(np.int64) - lo
                nonempty = np.diff(ptr) > 0
                starts = ptr[:-1][nonempty]
                sums = np.add.reduceat(prod, starts, axis=0)
                C[row_start:row_end][nonempty] = sums
            row_start = row_end
        return C

    # -- statistics used by reordering / analysis ------------------------------
    def row_nnz(self) -> np.ndarray:
        """Number of stored entries in each row."""
        return np.diff(self.rowptr)

    def col_nnz(self) -> np.ndarray:
        """Number of stored entries in each column."""
        return np.bincount(self.col, minlength=self.ncols)

    def row_indices(self, i: int) -> np.ndarray:
        """Column-index support set of row ``i`` (sorted)."""
        lo, hi = int(self.rowptr[i]), int(self.rowptr[i + 1])
        return self.col[lo:hi]

    def row_values(self, i: int) -> np.ndarray:
        """Stored values of row ``i``."""
        lo, hi = int(self.rowptr[i]), int(self.rowptr[i + 1])
        return self.val[lo:hi]

    def bandwidth(self) -> int:
        """Matrix bandwidth: ``max |i - j|`` over stored entries (0 if empty)."""
        if self.nnz == 0:
            return 0
        rows = np.repeat(np.arange(self.nrows), np.diff(self.rowptr))
        return int(np.max(np.abs(rows - self.col)))

    def rows_iter(self) -> Iterable[Tuple[int, np.ndarray, np.ndarray]]:
        """Iterate over ``(row, col_indices, values)`` for non-empty rows."""
        for i in range(self.nrows):
            lo, hi = int(self.rowptr[i]), int(self.rowptr[i + 1])
            if hi > lo:
                yield i, self.col[lo:hi], self.val[lo:hi]

    # -- transforms -------------------------------------------------------------
    def transpose(self) -> "CSRMatrix":
        """Return the transposed matrix as CSR."""
        return CSRMatrix.from_coo(self.to_coo().transpose())

    def permute_rows(self, perm: np.ndarray) -> "CSRMatrix":
        """Apply a row permutation.

        ``perm`` follows the "new position -> old index" convention: row
        ``perm[i]`` of the original matrix becomes row ``i`` of the result
        (i.e. the result is ``P A`` where ``P`` has ``P[i, perm[i]] = 1``).
        """
        perm = np.asarray(perm)
        if perm.shape != (self.nrows,):
            raise ValueError(f"row permutation must have length {self.nrows}")
        if not np.array_equal(np.sort(perm), np.arange(self.nrows)):
            raise ValueError("perm is not a permutation of 0..rows-1")
        counts = np.diff(self.rowptr)[perm]
        idx_dtype = self.rowptr.dtype
        new_rowptr = np.zeros(self.nrows + 1, dtype=idx_dtype)
        np.cumsum(counts, out=new_rowptr[1:])
        new_col = np.empty_like(self.col)
        new_val = np.empty_like(self.val)
        for new_i, old_i in enumerate(perm):
            lo, hi = int(self.rowptr[old_i]), int(self.rowptr[old_i + 1])
            nlo = int(new_rowptr[new_i])
            new_col[nlo : nlo + hi - lo] = self.col[lo:hi]
            new_val[nlo : nlo + hi - lo] = self.val[lo:hi]
        return CSRMatrix(new_rowptr, new_col, new_val, self.shape, check=False)

    def permute_cols(self, perm: np.ndarray) -> "CSRMatrix":
        """Apply a column permutation (same convention as
        :meth:`permute_rows`): column ``perm[j]`` of the original matrix
        becomes column ``j`` of the result, i.e. the result is ``A P^T``."""
        perm = np.asarray(perm)
        if perm.shape != (self.ncols,):
            raise ValueError(f"column permutation must have length {self.ncols}")
        if not np.array_equal(np.sort(perm), np.arange(self.ncols)):
            raise ValueError("perm is not a permutation of 0..cols-1")
        inv = np.empty_like(perm)
        inv[perm] = np.arange(self.ncols, dtype=perm.dtype)
        new_col = inv[self.col]
        out = CSRMatrix(self.rowptr.copy(), new_col, self.val.copy(), self.shape, check=False)
        out._sort_indices_inplace()
        return out

    def extract_rows(self, rows: np.ndarray) -> "CSRMatrix":
        """Return a new CSR matrix containing only the given rows
        (in the given order); the column dimension is unchanged."""
        rows = np.asarray(rows)
        counts = np.diff(self.rowptr)[rows]
        idx_dtype = self.rowptr.dtype
        new_rowptr = np.zeros(rows.size + 1, dtype=idx_dtype)
        np.cumsum(counts, out=new_rowptr[1:])
        new_col = np.empty(int(new_rowptr[-1]), dtype=self.col.dtype)
        new_val = np.empty(int(new_rowptr[-1]), dtype=self.val.dtype)
        for k, old_i in enumerate(rows):
            lo, hi = int(self.rowptr[old_i]), int(self.rowptr[old_i + 1])
            nlo = int(new_rowptr[k])
            new_col[nlo : nlo + hi - lo] = self.col[lo:hi]
            new_val[nlo : nlo + hi - lo] = self.val[lo:hi]
        return CSRMatrix(new_rowptr, new_col, new_val, (rows.size, self.ncols), check=False)

    def extract_cols(self, cols: np.ndarray) -> "CSRMatrix":
        """Return a new CSR matrix containing only the given columns
        (in the given order); the row dimension is unchanged.

        Mirrors :meth:`extract_rows` for the column dimension (the sharded
        SpMM partitioner slices column panels this way).  ``cols`` must be
        unique: unlike row extraction, duplicating a column would require
        duplicating stored entries, which CSR cannot express in one pass.
        """
        cols = np.asarray(cols)
        if cols.ndim != 1:
            raise ValueError("cols must be a 1-D index array")
        if cols.size:
            if cols.min() < 0 or cols.max() >= self.ncols:
                raise ValueError("column indices out of bounds")
            if np.unique(cols).size != cols.size:
                raise ValueError("duplicate column indices are not supported")
        contiguous = cols.size > 0 and np.array_equal(
            cols, np.arange(cols[0], cols[0] + cols.size)
        )
        if contiguous:
            # the common panel-extraction case: a range test instead of an
            # O(ncols) lookup table
            keep = (self.col >= cols[0]) & (self.col < cols[0] + cols.size)
            new_col = self.col[keep].astype(np.int64) - int(cols[0])
            rows = np.repeat(np.arange(self.nrows), np.diff(self.rowptr))[keep]
            new_val = self.val[keep]
        else:
            # old column -> position in the selection (-1 drops the entry)
            lut = np.full(self.ncols, -1, dtype=np.int64)
            lut[cols] = np.arange(cols.size)
            mapped = lut[self.col]
            keep = mapped >= 0
            rows = np.repeat(np.arange(self.nrows), np.diff(self.rowptr))[keep]
            new_col = mapped[keep]
            new_val = self.val[keep]
            if cols.size > 1 and np.any(np.diff(cols) < 0):
                # non-monotone selection scrambles the within-row order
                order = np.lexsort((new_col, rows))
                new_col = new_col[order]
                new_val = new_val[order]
        counts = np.bincount(rows, minlength=self.nrows)
        new_rowptr = np.zeros(self.nrows + 1, dtype=np.int64)
        np.cumsum(counts, out=new_rowptr[1:])
        return CSRMatrix(new_rowptr, new_col, new_val, (self.nrows, cols.size), check=False)

    def submatrix(self, rows: np.ndarray, cols: np.ndarray) -> "CSRMatrix":
        """Return the submatrix addressed by the given row and column index
        arrays (both in the given order), equivalent to scipy's
        ``A[rows][:, cols]``."""
        return self.extract_rows(rows).extract_cols(cols)

    def _storage_arrays(self):
        return (self.rowptr, self.col, self.val)
