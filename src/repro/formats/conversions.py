"""Generic format conversions.

:func:`convert` turns any :class:`~repro.formats.base.SparseFormat` into
any other registered format, routing through COO when no direct conversion
exists.  This is used by the benchmark harness, which builds each baseline
kernel's preferred format (CSR for cuSPARSE/DASP, BCSR for SMaT, SR-BCRS
for Magicube, dense for cuBLAS) from a single input matrix.
"""

from __future__ import annotations

from typing import Callable, Dict

from .base import SparseFormat
from .bcsr import BCSRMatrix
from .coo import COOMatrix
from .csc import CSCMatrix
from .csr import CSRMatrix
from .dense import DenseMatrix
from .srbcrs import SRBCRSMatrix

__all__ = ["convert", "FORMAT_REGISTRY", "register_format"]

#: name -> constructor-from-COO
FORMAT_REGISTRY: Dict[str, Callable] = {}


def register_format(name: str, from_coo: Callable) -> None:
    """Register a conversion ``COOMatrix -> format`` under ``name``."""
    FORMAT_REGISTRY[name.lower()] = from_coo


register_format("coo", lambda coo, **kw: coo)
register_format("csr", lambda coo, **kw: CSRMatrix.from_coo(coo))
register_format("csc", lambda coo, **kw: CSCMatrix.from_coo(coo))
register_format(
    "bcsr",
    lambda coo, block_shape=(16, 8), **kw: BCSRMatrix.from_csr(
        CSRMatrix.from_coo(coo), block_shape
    ),
)
register_format(
    "srbcrs",
    lambda coo, vector_length=8, stride=4, **kw: SRBCRSMatrix.from_csr(
        CSRMatrix.from_coo(coo), vector_length=vector_length, stride=stride
    ),
)
register_format("dense", lambda coo, **kw: DenseMatrix(coo.to_dense()))


def convert(matrix: SparseFormat, target: str, **kwargs) -> SparseFormat:
    """Convert ``matrix`` to the format named ``target``.

    Parameters
    ----------
    matrix:
        Any sparse-format instance.
    target:
        Registered format name: ``"coo"``, ``"csr"``, ``"csc"``, ``"bcsr"``,
        ``"srbcrs"``, or ``"dense"``.
    kwargs:
        Extra format parameters, e.g. ``block_shape=(16, 8)`` for BCSR or
        ``vector_length=8, stride=4`` for SR-BCRS.

    Returns
    -------
    SparseFormat
        The converted matrix.  If the matrix is already in the requested
        format *and* no extra parameters were passed, it is returned as-is.
    """
    name = target.lower()
    if name not in FORMAT_REGISTRY:
        raise ValueError(
            f"unknown format {target!r}; known formats: {sorted(FORMAT_REGISTRY)}"
        )
    if matrix.format_name == name and not kwargs:
        return matrix
    return FORMAT_REGISTRY[name](matrix.to_coo(), **kwargs)
