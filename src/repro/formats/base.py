"""Common base class and helpers for sparse-matrix storage formats.

The SMaT paper (SC'24) operates on a sparse matrix ``A`` of shape
``(M, K)`` multiplied by a dense matrix ``B`` of shape ``(K, N)``.  The
library internally converts between several storage formats:

* ``COO``     -- coordinate triples, the interchange format,
* ``CSR``     -- compressed sparse rows, the paper's *input* format,
* ``CSC``     -- compressed sparse columns (used by column reordering),
* ``BCSR``    -- blocked CSR, the paper's *internal execution* format,
* ``SRBCRS``  -- strided row-major blocked CRS, Magicube's format,
* ``Dense``   -- a thin wrapper used by the cuBLAS-like baseline.

Every format subclasses :class:`SparseFormat` and provides conversions to
and from :class:`~repro.formats.coo.COOMatrix`; generic conversions are
routed through COO by :mod:`repro.formats.conversions`.

Index arrays use ``int32`` by default (mirroring what the CUDA kernels in
the paper use) but are transparently widened to ``int64`` when a dimension
or the number of non-zeros does not fit.
"""

from __future__ import annotations

import abc
from typing import Tuple

import numpy as np

__all__ = [
    "SparseFormat",
    "index_dtype_for",
    "check_shape",
    "check_dense_operand",
    "as_value_dtype",
    "DEFAULT_VALUE_DTYPE",
]

#: Default dtype of stored values.  The paper's kernels run FP16 inputs with
#: FP16/FP32 accumulation; for CPU-side numerics we keep values in float32
#: by default (the simulated precision is tracked separately by
#: :mod:`repro.gpu.precision`).
DEFAULT_VALUE_DTYPE = np.float32

_INT32_MAX = np.iinfo(np.int32).max


def index_dtype_for(*extents: int) -> np.dtype:
    """Return the narrowest index dtype able to address all ``extents``.

    Parameters
    ----------
    extents:
        Any number of non-negative integers (matrix dimensions, nnz, block
        counts, ...).

    Returns
    -------
    numpy.dtype
        ``int32`` when every extent fits in a signed 32-bit integer,
        otherwise ``int64``.
    """
    for extent in extents:
        if extent > _INT32_MAX:
            return np.dtype(np.int64)
    return np.dtype(np.int32)


def check_shape(shape: Tuple[int, int]) -> Tuple[int, int]:
    """Validate a 2-D matrix shape and return it as a tuple of ints."""
    if len(shape) != 2:
        raise ValueError(f"expected a 2-D shape, got {shape!r}")
    rows, cols = int(shape[0]), int(shape[1])
    if rows < 0 or cols < 0:
        raise ValueError(f"shape dimensions must be non-negative, got {shape!r}")
    return rows, cols


def as_value_dtype(dtype) -> np.dtype:
    """Validate that ``dtype`` is a real floating or integer value type."""
    dt = np.dtype(dtype)
    if dt.kind not in "fiu":
        raise TypeError(f"unsupported value dtype {dt!r}; expected float or int")
    return dt


def check_dense_operand(B: np.ndarray, K: int) -> np.ndarray:
    """Validate the dense right-hand side of an SpMM product.

    ``B`` must be a 1-D vector of length ``K`` (SpMV case, treated as a
    single column) or a 2-D array with ``K`` rows.  A C-contiguous float
    array is returned; 1-D inputs are reshaped to ``(K, 1)``.
    """
    B = np.asarray(B)
    if B.ndim == 1:
        B = B.reshape(-1, 1)
    if B.ndim != 2:
        raise ValueError(f"dense operand must be 1-D or 2-D, got ndim={B.ndim}")
    if B.shape[0] != K:
        raise ValueError(
            f"dimension mismatch: sparse matrix has {K} columns, dense operand has "
            f"{B.shape[0]} rows"
        )
    if B.dtype.kind not in "fiu":
        raise TypeError(f"unsupported dense operand dtype {B.dtype!r}")
    return np.ascontiguousarray(B)


class SparseFormat(abc.ABC):
    """Abstract base class of every matrix storage format in the library.

    Subclasses store a (possibly sparse) matrix of logical shape
    ``self.shape`` and expose:

    * :attr:`nnz` -- number of explicitly stored non-zero *logical* entries,
    * :meth:`to_dense` -- materialise a dense ``numpy.ndarray``,
    * :meth:`to_coo` / :meth:`from_coo` -- conversions through the COO
      interchange format,
    * :meth:`spmm` -- a NumPy reference multiplication used for correctness
      checks (kernel classes in :mod:`repro.kernels` implement the
      simulated GPU execution).
    """

    #: short lowercase name of the format ("csr", "bcsr", ...)
    format_name: str = "abstract"

    def __init__(self, shape: Tuple[int, int], dtype=DEFAULT_VALUE_DTYPE):
        self._shape = check_shape(shape)
        self._dtype = as_value_dtype(dtype)

    # -- basic properties --------------------------------------------------
    @property
    def shape(self) -> Tuple[int, int]:
        """Logical ``(rows, cols)`` of the matrix."""
        return self._shape

    @property
    def nrows(self) -> int:
        return self._shape[0]

    @property
    def ncols(self) -> int:
        return self._shape[1]

    @property
    def dtype(self) -> np.dtype:
        """Dtype of the stored values."""
        return self._dtype

    @property
    @abc.abstractmethod
    def nnz(self) -> int:
        """Number of logically non-zero entries stored in the matrix."""

    @property
    def density(self) -> float:
        """Fraction of non-zero entries, ``nnz / (rows * cols)``."""
        total = self.nrows * self.ncols
        return (self.nnz / total) if total else 0.0

    @property
    def sparsity(self) -> float:
        """Fraction of zero entries, ``1 - density`` (as used in the paper)."""
        return 1.0 - self.density

    # -- conversions -------------------------------------------------------
    @abc.abstractmethod
    def to_dense(self) -> np.ndarray:
        """Return the matrix as a dense 2-D :class:`numpy.ndarray`."""

    @abc.abstractmethod
    def to_coo(self):
        """Return an equivalent :class:`repro.formats.coo.COOMatrix`."""

    # -- reference numerics -------------------------------------------------
    @abc.abstractmethod
    def spmm(self, B: np.ndarray) -> np.ndarray:
        """Reference (NumPy) sparse @ dense product.

        This is *functional* only -- GPU cost modelling lives in
        :mod:`repro.kernels`.
        """

    def spmv(self, x: np.ndarray) -> np.ndarray:
        """Reference sparse matrix--vector product (``N = 1`` SpMM)."""
        x = np.asarray(x)
        if x.ndim != 1:
            raise ValueError("spmv expects a 1-D vector; use spmm for matrices")
        return self.spmm(x.reshape(-1, 1)).ravel()

    # -- misc ----------------------------------------------------------------
    def memory_footprint_bytes(self) -> int:
        """Total bytes of all stored arrays (index + value storage)."""
        total = 0
        for arr in self._storage_arrays():
            total += int(np.asarray(arr).nbytes)
        return total

    def _storage_arrays(self):
        """Yield the ndarrays used for storage (override in subclasses)."""
        return ()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<{type(self).__name__} shape={self.shape} nnz={self.nnz} "
            f"dtype={self.dtype} sparsity={self.sparsity:.4f}>"
        )
