"""Strided Row-major Blocked CRS (SR-BCRS) -- Magicube's storage format.

The Magicube baseline (Li, Osawa, Hoefler, SC'22) stores the sparse matrix
as *column vectors*: the matrix is cut into row panels of height ``v``
(the vector length); inside a panel, every column that contains at least
one non-zero is stored as a dense length-``v`` vector.  Vectors of a panel
are stored contiguously ("row-major" over panels) and padded with zero
vectors so the vector count of every panel is a multiple of the
``stride`` (the paper: "If the number of dense vectors in the row is not a
multiple-of-stride, zero vectors are padded for the last stride").

This padding is the reason Magicube's memory footprint grows quickly for
large unstructured matrices -- which the paper reports as out-of-memory
failures for most SuiteSparse matrices.  The :meth:`memory_footprint_bytes`
of this class is therefore used by the Magicube kernel model to reproduce
that behaviour.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from .base import (
    DEFAULT_VALUE_DTYPE,
    SparseFormat,
    check_dense_operand,
    check_shape,
    index_dtype_for,
)

__all__ = ["SRBCRSMatrix"]


class SRBCRSMatrix(SparseFormat):
    """Sparse matrix stored as strided row-major column vectors.

    Parameters
    ----------
    panel_ptr:
        Length ``n_panels + 1``; panel ``p`` owns vectors
        ``panel_ptr[p]:panel_ptr[p+1]`` (including padding vectors).
    vec_col:
        Column index of each stored vector; padding vectors use ``-1``.
    vectors:
        Array of shape ``(n_vectors, v)`` with the dense vector contents.
    shape:
        Logical matrix shape.
    vector_length:
        Height ``v`` of each column vector (the row-panel height).
    stride:
        Vector-count granularity; every panel's vector count is padded up
        to a multiple of this value.
    """

    format_name = "srbcrs"

    def __init__(
        self,
        panel_ptr,
        vec_col,
        vectors,
        shape: Tuple[int, int],
        *,
        vector_length: int,
        stride: int,
        nnz_logical: int | None = None,
    ):
        shape = check_shape(shape)
        vectors = np.asarray(vectors)
        dtype = vectors.dtype if vectors.dtype.kind in "fiu" else DEFAULT_VALUE_DTYPE
        super().__init__(shape, dtype=dtype)

        v = int(vector_length)
        s = int(stride)
        if v <= 0 or s <= 0:
            raise ValueError("vector_length and stride must be positive")
        self.vector_length = v
        self.stride = s
        self.n_panels = -(-shape[0] // v) if shape[0] else 0

        panel_ptr = np.asarray(panel_ptr)
        vec_col = np.asarray(vec_col)
        if vectors.ndim != 2 or vectors.shape[1] != v:
            raise ValueError(f"vectors must have shape (n_vectors, {v})")
        if panel_ptr.size != self.n_panels + 1:
            raise ValueError(f"panel_ptr must have length {self.n_panels + 1}")
        if vec_col.size != vectors.shape[0]:
            raise ValueError("vec_col must have one entry per stored vector")

        idx_dtype = index_dtype_for(shape[0], shape[1], vectors.shape[0])
        self.panel_ptr = panel_ptr.astype(idx_dtype, copy=False)
        self.vec_col = vec_col.astype(np.int64, copy=False)
        self.vectors = vectors.astype(dtype, copy=False)
        if nnz_logical is None:
            nnz_logical = int(np.count_nonzero(self.vectors))
        self._nnz_logical = int(nnz_logical)

    # -- construction -------------------------------------------------------------
    @classmethod
    def from_csr(cls, csr, *, vector_length: int = 8, stride: int = 4) -> "SRBCRSMatrix":
        """Convert a CSR matrix into SR-BCRS with the given vector length and
        stride."""
        v = int(vector_length)
        s = int(stride)
        if v <= 0 or s <= 0:
            raise ValueError("vector_length and stride must be positive")
        M, K = csr.shape
        n_panels = -(-M // v) if M else 0

        if csr.nnz == 0:
            idx = index_dtype_for(M, K, 0)
            return cls(
                np.zeros(n_panels + 1, dtype=idx),
                np.empty(0, dtype=np.int64),
                np.empty((0, v), dtype=csr.dtype),
                (M, K),
                vector_length=v,
                stride=s,
                nnz_logical=0,
            )

        rows = np.repeat(np.arange(M, dtype=np.int64), np.diff(csr.rowptr))
        cols = csr.col.astype(np.int64, copy=False)
        vals = csr.val
        panel = rows // v
        in_r = rows - panel * v

        # unique (panel, col) pairs define the stored vectors
        key = panel * K + cols
        order = np.argsort(key, kind="stable")
        key_sorted = key[order]
        unique_keys, first_pos = np.unique(key_sorted, return_index=True)
        owner = np.searchsorted(unique_keys, key_sorted)

        u_panel = unique_keys // K
        u_col = unique_keys - u_panel * K

        # pad each panel's vector count up to a multiple of the stride
        counts = np.bincount(u_panel, minlength=n_panels)
        padded_counts = ((counts + s - 1) // s) * s
        padded_counts[counts == 0] = 0  # fully empty panels stay empty
        panel_ptr = np.zeros(n_panels + 1, dtype=np.int64)
        np.cumsum(padded_counts, out=panel_ptr[1:])

        n_vectors = int(panel_ptr[-1])
        vectors = np.zeros((n_vectors, v), dtype=vals.dtype)
        vec_col = np.full(n_vectors, -1, dtype=np.int64)

        # destination slot of each unique vector: panel start + rank inside panel
        panel_start_unpadded = np.zeros(n_panels + 1, dtype=np.int64)
        np.cumsum(counts, out=panel_start_unpadded[1:])
        rank_in_panel = np.arange(unique_keys.size) - panel_start_unpadded[u_panel]
        dest = panel_ptr[u_panel] + rank_in_panel
        vec_col[dest] = u_col

        vectors[dest[owner], in_r[order]] = vals[order]

        idx = index_dtype_for(M, K, n_vectors)
        return cls(
            panel_ptr.astype(idx),
            vec_col,
            vectors,
            (M, K),
            vector_length=v,
            stride=s,
            nnz_logical=csr.nnz,
        )

    # -- SparseFormat API -----------------------------------------------------------
    @property
    def nnz(self) -> int:
        return self._nnz_logical

    @property
    def n_vectors(self) -> int:
        """Total stored vectors, including zero-padding vectors."""
        return int(self.vectors.shape[0])

    @property
    def n_padding_vectors(self) -> int:
        """Vectors added only to satisfy the stride constraint."""
        return int(np.count_nonzero(self.vec_col < 0))

    @property
    def stored_values(self) -> int:
        """Explicitly stored values (vector storage, including padding)."""
        return self.n_vectors * self.vector_length

    def to_dense(self) -> np.ndarray:
        v = self.vector_length
        out = np.zeros((self.n_panels * v, self.ncols), dtype=self.dtype)
        for p in range(self.n_panels):
            for k in range(int(self.panel_ptr[p]), int(self.panel_ptr[p + 1])):
                c = int(self.vec_col[k])
                if c < 0:
                    continue
                out[p * v : (p + 1) * v, c] = self.vectors[k]
        return out[: self.nrows]

    def to_coo(self):
        from .coo import COOMatrix

        if self.n_vectors == 0:
            return COOMatrix.empty(self.shape, dtype=self.dtype)
        panel_of_vec = np.repeat(np.arange(self.n_panels), np.diff(self.panel_ptr))
        vi, ri = np.nonzero(self.vectors)
        keep = self.vec_col[vi] >= 0
        vi, ri = vi[keep], ri[keep]
        rows = panel_of_vec[vi] * self.vector_length + ri
        cols = self.vec_col[vi]
        vals = self.vectors[vi, ri]
        return COOMatrix(rows, cols, vals, self.shape)

    def to_csr(self):
        from .csr import CSRMatrix

        return CSRMatrix.from_coo(self.to_coo())

    def spmm(self, B: np.ndarray) -> np.ndarray:
        """Reference SpMM with the Magicube dataflow: each panel accumulates
        outer products ``vector (v x 1) @ B[col] (1 x N)``."""
        B = check_dense_operand(B, self.ncols)
        N = B.shape[1]
        v = self.vector_length
        out_dtype = np.result_type(self.dtype, B.dtype, np.float32)
        C = np.zeros((self.n_panels, v, N), dtype=out_dtype)
        if self.n_vectors:
            # Per-panel accumulation as one small matrix product: the sum of
            # outer products sum_k vec_k (v) x B[col_k] (N) over a panel's
            # vectors equals  vectors_panel^T-free form
            #     (v x k_panel) @ (k_panel x N).
            # Padding vectors are all-zero, so gathering B row 0 for their
            # (negative) column index contributes nothing.
            safe_col = np.maximum(self.vec_col, 0)
            Bf = B.astype(out_dtype, copy=False)
            vectors = self.vectors.astype(out_dtype, copy=False)
            for p in range(self.n_panels):
                lo, hi = int(self.panel_ptr[p]), int(self.panel_ptr[p + 1])
                if hi == lo:
                    continue
                C[p] = vectors[lo:hi].T @ Bf[safe_col[lo:hi]]
        return C.reshape(self.n_panels * v, N)[: self.nrows]

    # -- statistics -------------------------------------------------------------------
    def vectors_per_panel(self) -> np.ndarray:
        """Stored vectors per row panel (including stride padding)."""
        return np.diff(self.panel_ptr)

    def _storage_arrays(self):
        return (self.panel_ptr, self.vec_col, self.vectors)
