"""Static audit for unseeded random-number generators in test code.

CI-stable tests and benchmarks must construct every RNG with an explicit
seed: ``np.random.default_rng(1234)``, ``random.Random(7)``.  An
unseeded ``default_rng()`` makes a failure irreproducible -- the one
property a regression suite cannot afford to lose.

:func:`audit_source` walks a module's AST and flags every call that
constructs an unseeded generator:

* ``default_rng()`` / ``np.random.default_rng()`` / ``...default_rng(None)``
  -- NumPy seeds from the OS when the first argument is missing or
  ``None``;
* ``random.Random()`` / bare ``Random()`` with no arguments -- the stdlib
  equivalent;
* ``np.random.seed()`` / ``random.seed()`` with no arguments -- re-seeding
  from the OS clock.

The root ``conftest.py`` runs :func:`audit_paths` over ``tests/`` and
``benchmarks/`` after collection and fails the session on any finding,
so an unseeded RNG cannot land silently.  Lines that intentionally
construct an unseeded generator (there should be a comment explaining
why) opt out with a trailing ``# seedcheck: allow``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, List, Sequence

__all__ = ["SeedViolation", "audit_source", "audit_paths"]

#: trailing comment that exempts one line from the audit
ALLOW_MARKER = "seedcheck: allow"

#: callable names that construct (or re-seed) a generator and take the
#: seed as their first positional argument
_SEEDED_CALLABLES = ("default_rng", "Random", "RandomState", "seed")


@dataclass(frozen=True)
class SeedViolation:
    """One unseeded-RNG construction found by the audit."""

    path: str
    line: int
    call: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: unseeded RNG: {self.call}"


def _call_name(node: ast.Call) -> str:
    """Trailing identifier of the called expression (``a.b.c()`` -> ``c``)."""
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return ""


def _is_unseeded(node: ast.Call) -> bool:
    """True when the call constructs a generator without an explicit seed."""
    name = _call_name(node)
    if name not in _SEEDED_CALLABLES:
        return False
    if not node.args and not node.keywords:
        return True
    if node.args:
        first = node.args[0]
        return isinstance(first, ast.Constant) and first.value is None
    # keyword-only spelling: default_rng(seed=None) vs default_rng(seed=7)
    for kw in node.keywords:
        if kw.arg == "seed":
            return isinstance(kw.value, ast.Constant) and kw.value.value is None
    return True


def audit_source(source: str, path: str = "<string>") -> List[SeedViolation]:
    """Audit one module's source text; returns all violations found."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError:
        return []  # not this audit's job to report parse errors
    lines = source.splitlines()
    violations = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Call) and _is_unseeded(node):
            line_text = lines[node.lineno - 1] if node.lineno <= len(lines) else ""
            if ALLOW_MARKER in line_text:
                continue
            violations.append(
                SeedViolation(
                    path=path,
                    line=node.lineno,
                    call=ast.unparse(node) if hasattr(ast, "unparse") else _call_name(node),
                )
            )
    return violations


def audit_paths(paths: Iterable[Path]) -> List[SeedViolation]:
    """Audit every ``*.py`` file under the given files/directories."""
    violations: List[SeedViolation] = []
    for path in paths:
        path = Path(path)
        files: Sequence[Path]
        if path.is_dir():
            files = sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            files = [path]
        else:
            continue
        for file in files:
            try:
                source = file.read_text(encoding="utf-8")
            except OSError:
                continue
            violations.extend(audit_source(source, str(file)))
    return violations
