"""Result analysis and reporting utilities used by the benchmarks,
the CI perf-regression gate (:mod:`repro.analysis.regression`) and the
executable-documentation checker (:mod:`repro.analysis.doccheck`)."""

from .doccheck import check_file, extract_code_blocks, rescale_source
from .export import measurements_to_rows, rows_to_csv, rows_to_json
from .regression import MetricComparison, compare_metrics, extract_metrics
from .report import format_speedup_summary, format_table, series_to_rows
from .seedcheck import SeedViolation, audit_paths, audit_source
from .stats import (
    DistributionSummary,
    coefficient_of_variation,
    distribution_summary,
    geometric_mean,
    histogram,
    speedup_summary,
)

__all__ = [
    "extract_code_blocks",
    "rescale_source",
    "check_file",
    "rows_to_csv",
    "rows_to_json",
    "measurements_to_rows",
    "extract_metrics",
    "compare_metrics",
    "MetricComparison",
    "format_table",
    "format_speedup_summary",
    "series_to_rows",
    "SeedViolation",
    "audit_paths",
    "audit_source",
    "geometric_mean",
    "coefficient_of_variation",
    "speedup_summary",
    "DistributionSummary",
    "distribution_summary",
    "histogram",
]
