"""Statistical helpers used by the evaluation.

The paper summarises results with a handful of statistics: geometric-mean
speedups across matrices (Section VI-B), the coefficient of variation of
repeated timings (Section V-E), and the distribution of blocks per row
before/after reordering (Figure 3).  This module implements them plus the
histogramming used to regenerate Figure 3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Sequence

import numpy as np

__all__ = [
    "geometric_mean",
    "coefficient_of_variation",
    "speedup_summary",
    "DistributionSummary",
    "distribution_summary",
    "histogram",
]


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean of positive values (NaN/zero entries are ignored,
    mirroring how the paper aggregates per-matrix speedups)."""
    arr = np.asarray([v for v in values if v and np.isfinite(v) and v > 0], dtype=np.float64)
    if arr.size == 0:
        return float("nan")
    return float(np.exp(np.mean(np.log(arr))))


def coefficient_of_variation(values: Sequence[float]) -> float:
    """sigma / mu of a sample (the paper reports CV = 0.0182 across runs)."""
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0 or arr.mean() == 0:
        return 0.0
    return float(arr.std() / arr.mean())


def speedup_summary(
    baseline_times: Sequence[float], candidate_times: Sequence[float]
) -> Dict[str, float]:
    """Per-pair speedups of candidate over baseline plus aggregate stats
    (geometric mean, min, max) -- the numbers quoted in Section VI-B."""
    baseline = np.asarray(baseline_times, dtype=np.float64)
    candidate = np.asarray(candidate_times, dtype=np.float64)
    if baseline.shape != candidate.shape:
        raise ValueError("baseline and candidate must have equal length")
    with np.errstate(divide="ignore", invalid="ignore"):
        speedups = np.where(candidate > 0, baseline / candidate, np.nan)
    finite = speedups[np.isfinite(speedups)]
    return {
        "geomean": geometric_mean(finite),
        "min": float(finite.min()) if finite.size else float("nan"),
        "max": float(finite.max()) if finite.size else float("nan"),
        "mean": float(finite.mean()) if finite.size else float("nan"),
    }


@dataclass(frozen=True)
class DistributionSummary:
    """Summary of a blocks-per-row (or similar) distribution."""

    mean: float
    std: float
    minimum: float
    maximum: float
    median: float
    cv: float
    total: float
    count: int

    def as_dict(self) -> Dict[str, float]:
        return {
            "mean": self.mean,
            "std": self.std,
            "min": self.minimum,
            "max": self.maximum,
            "median": self.median,
            "cv": self.cv,
            "total": self.total,
            "count": float(self.count),
        }


def distribution_summary(values: Sequence[float]) -> DistributionSummary:
    """Summary statistics of a distribution (Figure 3 uses mean and std of
    blocks per row to quantify load balance)."""
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0:
        return DistributionSummary(0, 0, 0, 0, 0, 0, 0, 0)
    mean = float(arr.mean())
    std = float(arr.std())
    return DistributionSummary(
        mean=mean,
        std=std,
        minimum=float(arr.min()),
        maximum=float(arr.max()),
        median=float(np.median(arr)),
        cv=std / mean if mean else 0.0,
        total=float(arr.sum()),
        count=int(arr.size),
    )


def histogram(values: Sequence[float], *, bins: int = 30, log: bool = False):
    """Histogram of a distribution (counts, bin edges).

    ``log=True`` uses logarithmically spaced bins, matching the log-scale
    panels of Figure 3 for heavy-tailed matrices such as ``dc2``.
    """
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0:
        return np.zeros(bins), np.linspace(0, 1, bins + 1)
    if log:
        positive = arr[arr > 0]
        lo = positive.min() if positive.size else 1.0
        hi = max(arr.max(), lo * 1.0001)
        edges = np.geomspace(lo, hi, bins + 1)
    else:
        edges = np.linspace(arr.min(), max(arr.max(), arr.min() + 1e-9), bins + 1)
    counts, edges = np.histogram(arr, bins=edges)
    return counts, edges
