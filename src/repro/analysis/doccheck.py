"""Executable-documentation checker.

Documentation rots when its code samples drift from the library; this
module keeps README.md and docs/ honest by extracting every fenced
``python`` code block and executing it.  Blocks within one file share a
namespace (so a quickstart can build on earlier imports, exactly as a
reader would run them top to bottom), and an optional ``--scale``
override rewrites the ``scale=<float>`` keyword of matrix-loader
(``load(...)``) calls so CI can run the samples on small stand-ins.

Skip a block that is illustrative only (pseudo-code, expensive full-size
runs) by putting ``# doccheck: skip`` on its first line.

Usage::

    python -m repro.analysis.doccheck README.md docs/architecture.md --scale 0.05

Exit code 0 when every block runs, 1 on the first failure (with the
offending file, line and traceback reported).
"""

from __future__ import annotations

import argparse
import re
import sys
import traceback
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional

__all__ = ["CodeBlock", "extract_code_blocks", "rescale_source", "check_file", "main"]

#: opening fence of a python block (``` or ~~~, optional attributes)
_FENCE_OPEN = re.compile(r"^(```|~~~)\s*python\s*$", re.IGNORECASE)
#: a ``scale=<float>`` keyword inside a matrix-loader call --
#: ``load("name", scale=0.1)`` -- rewritten by ``--scale``.  Anchoring on
#: ``load(`` keeps unrelated ``scale=`` kwargs (e.g. ``rng.normal(scale=...)``)
#: exactly as the documentation shows them.
_SCALE_KWARG = re.compile(r"(load\([^()]*?\bscale\s*=\s*)([0-9]*\.?[0-9]+)")

SKIP_MARKER = "doccheck: skip"


@dataclass
class CodeBlock:
    """One fenced ``python`` block of a markdown file."""

    path: Path
    lineno: int  # 1-based line of the first code line
    source: str

    @property
    def skipped(self) -> bool:
        """Whether the block opts out of execution via the skip marker."""
        first = self.source.lstrip().splitlines()
        return bool(first) and SKIP_MARKER in first[0]


def extract_code_blocks(path: Path) -> List[CodeBlock]:
    """Every fenced ``python`` code block of a markdown file, in order."""
    blocks: List[CodeBlock] = []
    lines = Path(path).read_text().splitlines()
    in_block = False
    fence = ""
    start = 0
    buf: List[str] = []
    for i, line in enumerate(lines):
        if not in_block:
            match = _FENCE_OPEN.match(line.strip())
            if match:
                in_block = True
                fence = match.group(1)
                start = i + 2  # first code line, 1-based
                buf = []
        elif line.strip() == fence:
            in_block = False
            blocks.append(CodeBlock(Path(path), start, "\n".join(buf) + "\n"))
        else:
            buf.append(line)
    if in_block:
        raise ValueError(f"{path}: unterminated ``` fence starting at line {start - 1}")
    return blocks


def rescale_source(source: str, scale: Optional[float]) -> str:
    """Rewrite ``scale=<float>`` literals of matrix-loader calls to the
    override (no-op when ``scale`` is None), so docs show realistic sizes
    but CI runs small.  ``scale=`` kwargs outside ``load(...)`` calls are
    left untouched."""
    if scale is None:
        return source
    return _SCALE_KWARG.sub(lambda m: f"{m.group(1)}{scale}", source)


def check_file(path: Path, *, scale: Optional[float] = None, verbose: bool = True) -> int:
    """Execute every python block of one file; returns the failure count.

    Blocks share one namespace per file and run in document order, so
    later samples may rely on imports and variables from earlier ones.
    """
    namespace: Dict[str, object] = {"__name__": f"doccheck:{path}"}
    failures = 0
    blocks = extract_code_blocks(path)
    for block in blocks:
        label = f"{path}:{block.lineno}"
        if block.skipped:
            if verbose:
                print(f"SKIP  {label}")
            continue
        source = rescale_source(block.source, scale)
        try:
            code = compile(source, str(label), "exec")
            exec(code, namespace)  # noqa: S102 - executing our own docs is the point
        except Exception:
            failures += 1
            print(f"FAIL  {label}")
            traceback.print_exc()
        else:
            if verbose:
                print(f"ok    {label}")
    if verbose:
        print(f"{path}: {len(blocks)} block(s), {failures} failure(s)")
    return failures


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro.analysis.doccheck",
        description="extract and execute the ```python blocks of markdown docs",
    )
    parser.add_argument("files", nargs="+", type=Path, help="markdown files to check")
    parser.add_argument(
        "--scale",
        type=float,
        default=None,
        help="rewrite scale=<float> literals to this value before executing",
    )
    parser.add_argument("-q", "--quiet", action="store_true", help="only report failures")
    args = parser.parse_args(argv)

    failures = 0
    for path in args.files:
        if not path.exists():
            print(f"FAIL  {path}: no such file")
            failures += 1
            continue
        failures += check_file(path, scale=args.scale, verbose=not args.quiet)
    return 1 if failures else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
