"""Export of benchmark series to CSV / JSON.

The benchmark harness prints its regenerated tables as text; downstream
users typically want the underlying series in a machine-readable form to
plot their own versions of the paper's figures.  These helpers write the
row dictionaries produced by the benchmarks (and by
:func:`repro.core.compare_libraries`) to CSV or JSON without any extra
dependency.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Iterable, Mapping, Sequence, Union

__all__ = ["rows_to_csv", "rows_to_json", "measurements_to_rows"]

PathLike = Union[str, Path]


def _collect_columns(rows: Sequence[Mapping[str, object]]) -> list[str]:
    columns: list[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    return columns


def rows_to_csv(rows: Sequence[Mapping[str, object]], path: PathLike) -> Path:
    """Write a list of row dictionaries to ``path`` as CSV.

    Columns are the union of all keys, in first-seen order; missing values
    are left empty.  Returns the path written.
    """
    rows = list(rows)
    path = Path(path)
    columns = _collect_columns(rows)
    with path.open("w", newline="", encoding="utf-8") as fh:
        writer = csv.DictWriter(fh, fieldnames=columns, restval="")
        writer.writeheader()
        for row in rows:
            writer.writerow({k: row.get(k, "") for k in columns})
    return path


def rows_to_json(rows: Sequence[Mapping[str, object]], path: PathLike, *, indent: int = 2) -> Path:
    """Write a list of row dictionaries to ``path`` as a JSON array."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as fh:
        json.dump(list(rows), fh, indent=indent, default=float)
        fh.write("\n")
    return path


def measurements_to_rows(measurements: Iterable) -> list[dict]:
    """Convert :class:`~repro.core.comparison.LibraryMeasurement` objects
    into flat row dictionaries suitable for :func:`rows_to_csv`."""
    rows = []
    for m in measurements:
        rows.append(
            {
                "library": m.library,
                "gflops": m.gflops,
                "time_ms": m.time_ms,
                "supported": m.supported,
                "correct": m.correct,
                "error": m.error or "",
            }
        )
    return rows
