"""Plain-text report formatting for the benchmark harness.

The benchmark scripts print the same rows/series the paper's tables and
figures contain.  These helpers render aligned text tables and the
per-library speedup summaries of Section VI-B without any plotting
dependency (the environment has no display), so every figure is
regenerated as a table of its underlying series.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from .stats import geometric_mean

__all__ = ["format_table", "format_speedup_summary", "series_to_rows"]


def _fmt(value, float_fmt: str) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "n/a"
        if value == float("inf"):
            return "inf"
        return format(value, float_fmt)
    return str(value)


def format_table(
    rows: Sequence[Mapping[str, object]],
    *,
    columns: Optional[Sequence[str]] = None,
    float_fmt: str = ".3g",
    title: Optional[str] = None,
) -> str:
    """Render a list of dictionaries as an aligned text table."""
    rows = list(rows)
    if not rows:
        return (title + "\n" if title else "") + "(no data)"
    if columns is None:
        columns = list(rows[0].keys())
    rendered = [[_fmt(r.get(c, ""), float_fmt) for c in columns] for r in rows]
    widths = [
        max(len(str(c)), *(len(row[i]) for row in rendered)) for i, c in enumerate(columns)
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    header = "  ".join(str(c).ljust(widths[i]) for i, c in enumerate(columns))
    lines.append(header)
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(columns))))
    return "\n".join(lines)


def format_speedup_summary(
    smat_times: Mapping[str, float],
    baseline_times: Mapping[str, Mapping[str, float]],
    *,
    float_fmt: str = ".3g",
) -> str:
    """Per-baseline speedup summary across a set of matrices.

    Parameters
    ----------
    smat_times:
        matrix name -> SMaT time.
    baseline_times:
        baseline library -> (matrix name -> time).

    Returns the "SMaT is X times faster than <lib> (geomean), up to Y"
    summary of Section VI-B as a text table.
    """
    rows = []
    for lib, times in baseline_times.items():
        speedups = []
        for name, t_smat in smat_times.items():
            t_base = times.get(name)
            if t_base is None or not t_smat or t_base != t_base or t_base == float("inf"):
                continue
            speedups.append(t_base / t_smat)
        if not speedups:
            rows.append({"baseline": lib, "geomean_speedup": float("nan"),
                         "max_speedup": float("nan"), "min_speedup": float("nan"),
                         "n_matrices": 0})
            continue
        rows.append(
            {
                "baseline": lib,
                "geomean_speedup": geometric_mean(speedups),
                "max_speedup": max(speedups),
                "min_speedup": min(speedups),
                "n_matrices": len(speedups),
            }
        )
    return format_table(rows, float_fmt=float_fmt, title="SMaT speedup over baselines")


def series_to_rows(
    x_name: str,
    x_values: Iterable,
    series: Mapping[str, Sequence[float]],
) -> List[Dict[str, object]]:
    """Convert one figure's series (e.g. GFLOP/s per library over a sweep)
    into table rows keyed by the sweep variable."""
    x_values = list(x_values)
    rows: List[Dict[str, object]] = []
    for i, x in enumerate(x_values):
        row: Dict[str, object] = {x_name: x}
        for label, values in series.items():
            row[label] = values[i] if i < len(values) else float("nan")
        rows.append(row)
    return rows
