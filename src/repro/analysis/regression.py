"""Performance-regression gate for the CI benchmark job.

The benchmark suite publishes its headline numbers (cache-hit speedup,
batched throughput, tuned-vs-default ratio, ...) in the pytest-benchmark
JSON output, under each benchmark's ``extra_info``.  This module

1. **extracts** those numbers into a flat ``{metric: value}`` mapping,
   where a metric is named ``<group>.<test>.<key>`` (e.g.
   ``engine_batching.test_plan_cache_hit_speedup.speedup``),
2. **compares** them against a committed baseline
   (``benchmarks/BENCH_baseline.json``), where every baseline entry
   carries its own tolerance direction (``"higher"`` is better for
   throughputs/speedups, ``"lower"`` for latencies), and
3. **emits** a ``BENCH_pr.json`` report -- the artifact CI uploads --
   and exits non-zero when any baseline metric regressed by more than
   the threshold (default 30%).

A metric listed in the baseline but missing from the current run also
fails the gate: silently dropping a benchmark must not pass as "no
regression".

Run as a module::

    python -m repro.analysis.regression bench_raw.json \\
        --baseline benchmarks/BENCH_baseline.json \\
        --output BENCH_pr.json --threshold 0.30
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, List, Optional

__all__ = [
    "MetricComparison",
    "extract_metrics",
    "compare_metrics",
    "build_report",
    "main",
]

#: default failure threshold: >30% regression vs the committed baseline
DEFAULT_THRESHOLD = 0.30


@dataclass
class MetricComparison:
    """Verdict for one baseline metric."""

    metric: str
    #: "higher" or "lower" (which direction is better)
    direction: str
    baseline: float
    current: Optional[float]
    #: current/baseline for "higher", baseline/current for "lower";
    #: >= 1.0 means at-or-better than baseline, None when unmeasurable
    ratio: Optional[float]
    regressed: bool
    #: optional absolute floor/ceiling (see ``min_value`` in the baseline)
    min_value: Optional[float] = None

    @property
    def change_pct(self) -> Optional[float]:
        """Signed percent change vs baseline (positive = improvement)."""
        if self.ratio is None:
            return None
        return 100.0 * (self.ratio - 1.0)


def extract_metrics(benchmark_json: dict) -> Dict[str, float]:
    """Flatten a pytest-benchmark JSON document into named metrics.

    Every numeric ``extra_info`` entry of every benchmark becomes one
    metric ``<group>.<test>.<key>`` (the group falls back to the test
    name when the benchmark has no group).  Parametrised benchmarks keep
    their ``[...]`` suffix so variants never collapse onto (and silently
    overwrite) one metric.  Non-numeric extras (tables, strings) are
    ignored.
    """
    metrics: Dict[str, float] = {}
    for bench in benchmark_json.get("benchmarks", []):
        test = bench.get("name", "")
        group = bench.get("group") or test.split("[", 1)[0]
        for key, value in (bench.get("extra_info") or {}).items():
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            metrics[f"{group}.{test}.{key}"] = float(value)
    return metrics


def compare_metrics(
    current: Dict[str, float],
    baseline: Dict[str, dict],
    threshold: float = DEFAULT_THRESHOLD,
) -> List[MetricComparison]:
    """Compare current metrics against the committed baseline.

    ``baseline`` maps metric names to ``{"value": float, "direction":
    "higher"|"lower"}`` records (extra keys -- e.g. a comment -- are
    ignored).  Metrics present in the current run but absent from the
    baseline are not compared: the baseline pins exactly the metrics the
    gate guards.

    A baseline entry may additionally set ``"min_value"``: an absolute
    floor ("higher" metrics) or ceiling ("lower" metrics) that fails the
    gate regardless of the relative threshold.  This is how metrics with
    a structural lower bound stay guarded -- e.g. ``tuned_vs_default`` is
    >= 1.0 by construction, so a 30% relative band below a ~1.3 baseline
    can never trip, but a floor of 1.25 catches the tuner losing its
    benefit.
    """
    if not 0.0 < threshold < 1.0:
        raise ValueError("threshold must be a fraction in (0, 1)")
    comparisons: List[MetricComparison] = []
    for metric in sorted(baseline):
        spec = baseline[metric]
        direction = str(spec.get("direction", "higher")).lower()
        if direction not in ("higher", "lower"):
            raise ValueError(
                f"baseline metric {metric!r}: direction must be 'higher' or 'lower'"
            )
        base_value = float(spec["value"])
        min_value = float(spec["min_value"]) if "min_value" in spec else None
        value = current.get(metric)
        if value is None or base_value <= 0 or value <= 0:
            # a vanished (or degenerate) metric cannot prove it did not
            # regress -- fail closed
            comparisons.append(
                MetricComparison(
                    metric=metric,
                    direction=direction,
                    baseline=base_value,
                    current=value,
                    ratio=None,
                    regressed=True,
                    min_value=min_value,
                )
            )
            continue
        ratio = value / base_value if direction == "higher" else base_value / value
        regressed = ratio < 1.0 - threshold
        if min_value is not None:
            if direction == "higher":
                regressed = regressed or value < min_value
            else:
                regressed = regressed or value > min_value
        comparisons.append(
            MetricComparison(
                metric=metric,
                direction=direction,
                baseline=base_value,
                current=value,
                ratio=ratio,
                regressed=regressed,
                min_value=min_value,
            )
        )
    return comparisons


def build_report(
    current: Dict[str, float],
    comparisons: List[MetricComparison],
    threshold: float,
) -> dict:
    """The ``BENCH_pr.json`` payload uploaded as a CI artifact."""
    return {
        "threshold": threshold,
        "passed": not any(c.regressed for c in comparisons),
        "comparisons": [asdict(c) for c in comparisons],
        "metrics": dict(sorted(current.items())),
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.regression",
        description="gate benchmark results against a committed baseline",
    )
    parser.add_argument("benchmark_json", help="pytest-benchmark --benchmark-json output")
    parser.add_argument(
        "--baseline",
        required=True,
        help="committed baseline file (metric -> {value, direction})",
    )
    parser.add_argument(
        "--output", default="BENCH_pr.json", help="report file to write (CI artifact)"
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        help="fail on regressions beyond this fraction (default 0.30)",
    )
    args = parser.parse_args(argv)

    with open(args.benchmark_json, encoding="utf-8") as fh:
        current = extract_metrics(json.load(fh))
    with open(args.baseline, encoding="utf-8") as fh:
        baseline_doc = json.load(fh)
    baseline = baseline_doc.get("metrics", baseline_doc)

    comparisons = compare_metrics(current, baseline, threshold=args.threshold)
    report = build_report(current, comparisons, args.threshold)
    Path(args.output).write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")

    for comp in comparisons:
        status = "REGRESSED" if comp.regressed else "ok"
        shown = "missing" if comp.current is None else f"{comp.current:.4g}"
        change = "" if comp.change_pct is None else f" ({comp.change_pct:+.1f}%)"
        print(
            f"[{status:>9}] {comp.metric}: {shown} vs baseline "
            f"{comp.baseline:.4g} ({comp.direction} is better){change}"
        )
    print(f"report written to {args.output}")
    if not report["passed"]:
        print(
            f"FAIL: regression beyond {100 * args.threshold:.0f}% of baseline",
            file=sys.stderr,
        )
        return 1
    print("all baseline metrics within threshold")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
