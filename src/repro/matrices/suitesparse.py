"""SuiteSparse Table-I stand-ins.

The paper evaluates on nine matrices from the SuiteSparse collection
(Table I).  The collection cannot be downloaded in this offline
environment, so this module generates *structurally equivalent stand-ins*:
for each matrix we reproduce

* the exact dimensions,
* the non-zero count (within a few percent),
* the sparsity, and
* the structural character of its application domain (FEM mesh, lattice
  QCD block band, protein contact map, scale-free circuit graph, ...),

using the generators in :mod:`repro.matrices`.  The amount of "hidden"
row-cluster structure is chosen per matrix so that the Jaccard reordering
pass recovers roughly the block-count reductions reported in Figure 3
(e.g. large gains for ``cop20k_A`` and ``mip1``, no gain -- in fact a
loss -- for the already-banded ``conf5_4-8x8``, and a pathological
power-law imbalance for ``dc2``).

Every generator accepts a ``scale`` parameter that shrinks the matrix
dimension while keeping the per-row non-zero count (and hence the
structure) fixed, so tests and quick benchmark runs can use small
instances and the full-size matrices remain available for complete runs.

See DESIGN.md ("Hardware/data gates and substitutions") for the
substitution rationale.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..formats import CSRMatrix
from .band import band_matrix
from .clustered import hidden_cluster_matrix, shuffle_rows
from .graph import contact_map_graph, scale_free_graph
from .lattice import block_band_matrix
from .mesh import fem_block_mesh, shell_structure

__all__ = ["MatrixInfo", "TABLE1", "TABLE1_NAMES", "load", "info", "clear_cache"]


@dataclass(frozen=True)
class MatrixInfo:
    """Metadata of one Table-I matrix and its stand-in generator."""

    name: str
    domain: str
    nrows: int
    ncols: int
    nnz: int
    #: builder(nrows, rng) -> CSRMatrix; nrows is the (possibly scaled) dimension
    builder: Callable[[int, np.random.Generator], CSRMatrix] = field(repr=False)
    #: fraction of rows randomly shuffled after generation (hides structure
    #: that the reordering pass can then recover)
    shuffle_fraction: float = 0.0
    seed: int = 0

    @property
    def sparsity(self) -> float:
        """Fraction of zero entries (paper Table I reports this column)."""
        return 1.0 - self.nnz / (self.nrows * self.ncols)

    @property
    def nnz_per_row(self) -> float:
        return self.nnz / self.nrows


# --------------------------------------------------------------------------
# per-matrix builders.  Each takes the (scaled) dimension and an RNG and
# returns a CSR matrix whose per-row nnz matches the real matrix.
# --------------------------------------------------------------------------

def _build_mip1(n: int, rng: np.random.Generator) -> CSRMatrix:
    # optimisation (interior point): strong hidden row clusters plus a set of
    # dense constraint rows that all touch the *same* variable block.  The
    # dense rows are scattered through the matrix by the input ordering
    # (large std of blocks per row); clustering groups them into a few block
    # rows, which is the load-balance improvement Figure 3 reports for mip1.
    m = hidden_cluster_matrix(
        n,
        n,
        cluster_size=16,
        segments_per_cluster=25,
        segment_width=8,
        row_fill=0.76,
        noise_nnz_per_row=1.0,
        shuffle=True,
        rng=rng,
    )
    coo = m.to_coo()
    n_heavy = max(32, n // 500)
    heavy_rows = rng.choice(n, size=n_heavy, replace=False).astype(np.int64)
    heavy_cols = np.sort(rng.choice(n, size=max(16, int(0.02 * n)), replace=False)).astype(np.int64)
    rows = np.concatenate([coo.row, np.repeat(heavy_rows, heavy_cols.size)])
    cols = np.concatenate([coo.col, np.tile(heavy_cols, n_heavy)])
    vals = np.concatenate(
        [coo.val, rng.uniform(0.5, 1.5, size=n_heavy * heavy_cols.size).astype(m.dtype)]
    )
    from ..formats import COOMatrix

    return COOMatrix(rows, cols, vals, (n, n)).to_csr()


def _build_conf5(n: int, rng: np.random.Generator) -> CSRMatrix:
    # lattice QCD: already a dense block band; reordering cannot help
    return block_band_matrix(n, block_size=8, block_bandwidth=2, rng=rng)


def _build_cant(n: int, rng: np.random.Generator) -> CSRMatrix:
    return fem_block_mesh(n // 3, dof=3, neighbors=10, rng=rng)


def _build_pdb1hys(n: int, rng: np.random.Generator) -> CSRMatrix:
    return contact_map_graph(
        n, backbone_width=55, n_contacts=3 * n, contact_locality=0.03, rng=rng
    )


def _build_rma10(n: int, rng: np.random.Generator) -> CSRMatrix:
    return fem_block_mesh(n // 5, dof=5, neighbors=5, rng=rng)


def _build_cop20k(n: int, rng: np.random.Generator) -> CSRMatrix:
    return fem_block_mesh(n // 3, dof=3, neighbors=3, rng=rng)


def _build_consph(n: int, rng: np.random.Generator) -> CSRMatrix:
    return fem_block_mesh(n // 3, dof=3, neighbors=11, rng=rng)


def _build_shipsec1(n: int, rng: np.random.Generator) -> CSRMatrix:
    return shell_structure(n, band=27, n_stringers=24, stringer_width=4, rng=rng)


def _build_dc2(n: int, rng: np.random.Generator) -> CSRMatrix:
    return scale_free_graph(n, avg_degree=6.5, exponent=1.9, symmetric=True, rng=rng)


#: the nine matrices of Table I, in the paper's order
TABLE1: List[MatrixInfo] = [
    MatrixInfo("mip1", "optimization", 66_463, 66_463, 10_352_819, _build_mip1,
               shuffle_fraction=0.0, seed=11),
    MatrixInfo("conf5_4-8x8", "quantum chemistry", 49_152, 49_152, 1_916_928, _build_conf5,
               shuffle_fraction=0.0, seed=12),
    MatrixInfo("cant", "2D/3D mesh", 62_451, 62_451, 4_007_383, _build_cant,
               shuffle_fraction=0.30, seed=13),
    MatrixInfo("pdb1HYS", "weighted graph", 36_417, 36_417, 4_344_765, _build_pdb1hys,
               shuffle_fraction=0.20, seed=14),
    MatrixInfo("rma10", "fluid dynamics", 46_835, 46_835, 2_329_092, _build_rma10,
               shuffle_fraction=0.30, seed=15),
    MatrixInfo("cop20k_A", "2D/3D mesh", 121_192, 121_192, 2_624_331, _build_cop20k,
               shuffle_fraction=1.00, seed=16),
    MatrixInfo("consph", "2D/3D mesh", 83_334, 83_334, 6_010_480, _build_consph,
               shuffle_fraction=0.40, seed=17),
    MatrixInfo("shipsec1", "structural", 140_874, 140_874, 7_813_404, _build_shipsec1,
               shuffle_fraction=0.30, seed=18),
    MatrixInfo("dc2", "circuit simulation", 116_835, 116_835, 766_396, _build_dc2,
               shuffle_fraction=0.0, seed=19),
]

TABLE1_NAMES: List[str] = [m.name for m in TABLE1]

_BY_NAME: Dict[str, MatrixInfo] = {m.name.lower(): m for m in TABLE1}

#: cache of generated matrices keyed by (name, scaled dimension)
_CACHE: Dict[Tuple[str, int], CSRMatrix] = {}


def info(name: str) -> MatrixInfo:
    """Return the :class:`MatrixInfo` record for a Table-I matrix."""
    try:
        return _BY_NAME[name.lower()]
    except KeyError:
        raise KeyError(
            f"unknown SuiteSparse matrix {name!r}; available: {TABLE1_NAMES}"
        ) from None


def _scaled_dimension(meta: MatrixInfo, scale: float) -> int:
    n = int(round(meta.nrows * scale))
    # keep the dimension compatible with the builders' internal granularity
    # (dof expansion, 8x8 QCD blocks, ...): round to a multiple of 120,
    # which is divisible by 3, 5, 8 and the 16x8 BCSR block grid.
    n = max(240, (n // 120) * 120)
    return n


def load(
    name: str,
    *,
    scale: float = 1.0,
    rng: Optional[np.random.Generator] = None,
    use_cache: bool = True,
) -> CSRMatrix:
    """Generate (or fetch from cache) the stand-in for a Table-I matrix.

    Parameters
    ----------
    name:
        Matrix name as in Table I (case-insensitive), e.g. ``"cop20k_A"``.
    scale:
        Dimension scale factor.  ``1.0`` reproduces the full size of the
        real matrix; smaller values shrink the dimension (rounded to a
        builder-friendly multiple) while keeping the per-row nnz constant.
    rng:
        Optional generator overriding the per-matrix deterministic seed.
    use_cache:
        Cache generated matrices per ``(name, scaled_dimension)``; only
        applies when ``rng`` is not supplied.

    Returns
    -------
    CSRMatrix
    """
    meta = info(name)
    if not 0.0 < scale <= 1.0:
        raise ValueError("scale must be in (0, 1]")
    n = _scaled_dimension(meta, scale)
    cache_key = (meta.name, n)
    if use_cache and rng is None and cache_key in _CACHE:
        return _CACHE[cache_key]

    local_rng = rng or np.random.default_rng(meta.seed)
    matrix = meta.builder(n, local_rng)
    if meta.shuffle_fraction > 0.0:
        matrix = shuffle_rows(matrix, fraction=meta.shuffle_fraction, rng=local_rng)

    if use_cache and rng is None:
        _CACHE[cache_key] = matrix
    return matrix


def clear_cache() -> None:
    """Drop all cached generated matrices (frees memory in long test runs)."""
    _CACHE.clear()


def summary_table(scale: float = 1.0) -> List[dict]:
    """Regenerate Table I: per-matrix domain, size, nnz and sparsity of the
    stand-in alongside the values reported in the paper."""
    rows = []
    for meta in TABLE1:
        m = load(meta.name, scale=scale)
        rows.append(
            {
                "name": meta.name,
                "domain": meta.domain,
                "paper_rows": meta.nrows,
                "paper_nnz": meta.nnz,
                "paper_sparsity": meta.sparsity,
                "standin_rows": m.nrows,
                "standin_nnz": m.nnz,
                "standin_sparsity": m.sparsity,
                "standin_nnz_per_row": m.nnz / max(1, m.nrows),
                "paper_nnz_per_row": meta.nnz_per_row,
            }
        )
    return rows
