"""Matrices with a *hidden* row-cluster structure.

The SMaT preprocessing step (Jaccard row clustering, Section IV-C of the
paper) pays off when groups of rows share most of their column support but
are scattered throughout the matrix by the input ordering.  Optimisation
matrices such as ``mip1`` have exactly this property: constraint rows that
touch the same variable groups are interleaved with unrelated rows.

:func:`hidden_cluster_matrix` generates such matrices with a controllable
amount of hidden structure, and :func:`shuffle_rows` destroys an existing
good ordering to a controllable degree.  Together they let the benchmarks
dial in how much a reordering pass can recover -- which is how the
SuiteSparse stand-ins (``repro.matrices.suitesparse``) mimic the per-matrix
reordering gains reported in Figure 3.
"""

from __future__ import annotations

import numpy as np

from ..formats import COOMatrix, CSRMatrix

__all__ = ["hidden_cluster_matrix", "shuffle_rows", "add_dense_rows"]


def hidden_cluster_matrix(
    nrows: int,
    ncols: int,
    *,
    cluster_size: int = 16,
    segments_per_cluster: int = 12,
    segment_width: int = 8,
    row_fill: float = 0.8,
    noise_nnz_per_row: float = 1.0,
    shuffle: bool = True,
    dtype=np.float32,
    rng: np.random.Generator | None = None,
) -> CSRMatrix:
    """Matrix whose rows form hidden clusters with shared column segments.

    Rows are partitioned into clusters of ``cluster_size`` consecutive rows
    (before shuffling).  Each cluster selects ``segments_per_cluster``
    random column segments of width ``segment_width``; every row of the
    cluster contains a random fraction ``row_fill`` of the cluster's
    columns, plus ``noise_nnz_per_row`` uniformly random "noise" entries.
    Finally the rows are shuffled (``shuffle=True``) so that the input
    ordering hides the clusters.

    With ``shuffle=True`` a similarity-based row reordering can reduce the
    BCSR block count by roughly ``cluster_size / block_height``; with
    ``shuffle=False`` the matrix is already well ordered and reordering has
    little effect.
    """
    rng = rng or np.random.default_rng(0)
    cs = int(cluster_size)
    n_clusters = max(1, nrows // cs)

    seg_starts = rng.integers(
        0, max(1, ncols - segment_width), size=(n_clusters, segments_per_cluster)
    )
    # columns of each cluster: union of its segments
    seg_offsets = np.arange(segment_width, dtype=np.int64)

    rows_list = []
    cols_list = []
    for c in range(n_clusters):
        cluster_cols = np.unique(
            (seg_starts[c][:, None] + seg_offsets[None, :]).ravel()
        )
        row_ids = np.arange(c * cs, min(nrows, (c + 1) * cs), dtype=np.int64)
        n_keep = max(1, int(round(row_fill * cluster_cols.size)))
        # each row keeps a random subset of the cluster columns
        keys = rng.random((row_ids.size, cluster_cols.size))
        keep_idx = np.argpartition(keys, n_keep - 1, axis=1)[:, :n_keep]
        rows_list.append(np.repeat(row_ids, n_keep))
        cols_list.append(cluster_cols[keep_idx].ravel())

    rows = np.concatenate(rows_list)
    cols = np.concatenate(cols_list)

    # uniform random noise entries
    n_noise = int(round(noise_nnz_per_row * nrows))
    if n_noise:
        rows = np.concatenate([rows, rng.integers(0, nrows, size=n_noise, dtype=np.int64)])
        cols = np.concatenate([cols, rng.integers(0, ncols, size=n_noise, dtype=np.int64)])

    vals = rng.uniform(0.5, 1.5, size=rows.size).astype(dtype)
    csr = COOMatrix(rows, cols, vals, (nrows, ncols)).to_csr()
    if shuffle:
        perm = rng.permutation(nrows)
        csr = csr.permute_rows(perm)
    return csr


def shuffle_rows(
    csr: CSRMatrix,
    *,
    fraction: float = 1.0,
    rng: np.random.Generator | None = None,
) -> CSRMatrix:
    """Randomly permute a fraction of the rows of ``csr``.

    ``fraction=1.0`` applies a full random permutation; smaller values
    permute only a random subset of the rows among themselves, leaving the
    remaining rows in place.  This controls how much structure a subsequent
    reordering pass can recover.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be in [0, 1]")
    rng = rng or np.random.default_rng(0)
    n = csr.nrows
    perm = np.arange(n)
    k = int(round(fraction * n))
    if k >= 2:
        chosen = rng.choice(n, size=k, replace=False)
        shuffled = chosen.copy()
        rng.shuffle(shuffled)
        perm[chosen] = shuffled
    return csr.permute_rows(perm)


def add_dense_rows(
    csr: CSRMatrix,
    *,
    n_dense_rows: int,
    row_density: float = 0.05,
    rng: np.random.Generator | None = None,
) -> CSRMatrix:
    """Overlay a few very dense rows onto an existing matrix.

    Used to inject the row-imbalance (hub rows) that makes static per-row
    parallel schedules struggle -- e.g. the ``mip1`` and ``dc2`` stand-ins.
    """
    rng = rng or np.random.default_rng(0)
    coo = csr.to_coo()
    nrows, ncols = csr.shape
    dense_rows = rng.choice(nrows, size=min(n_dense_rows, nrows), replace=False)
    per_row = max(1, int(round(row_density * ncols)))
    new_rows = np.repeat(dense_rows.astype(np.int64), per_row)
    new_cols = rng.integers(0, ncols, size=new_rows.size, dtype=np.int64)
    new_vals = rng.uniform(0.5, 1.5, size=new_rows.size).astype(csr.dtype)
    rows = np.concatenate([coo.row, new_rows])
    cols = np.concatenate([coo.col, new_cols])
    vals = np.concatenate([coo.val, new_vals])
    return COOMatrix(rows, cols, vals, csr.shape).to_csr()
