"""Synthetic matrix generators and SuiteSparse stand-ins.

The SMaT evaluation uses two matrix families:

* synthetic **band matrices** (Section VI-C; :mod:`repro.matrices.band`),
* nine **SuiteSparse matrices** (Table I) for which this package provides
  structurally-equivalent synthetic stand-ins
  (:mod:`repro.matrices.suitesparse`), since the real collection cannot be
  downloaded offline.

Additional generators cover the application domains the paper motivates
(FEM meshes, lattice QCD, graphs/GNNs, circuits) and the structures used
by unit tests (uniform random, block random, hidden clusters).
"""

from . import suitesparse
from .band import band_matrix, band_sparsity, bandwidth_for_sparsity
from .clustered import add_dense_rows, hidden_cluster_matrix, shuffle_rows
from .graph import contact_map_graph, rmat_graph, scale_free_graph
from .lattice import block_band_matrix, lattice_qcd_like
from .mesh import fem_block_mesh, shell_structure, stencil_2d, stencil_3d
from .random import (
    block_random,
    diagonal_plus_random,
    row_skewed_random,
    uniform_random,
)

__all__ = [
    "band_matrix",
    "band_sparsity",
    "bandwidth_for_sparsity",
    "hidden_cluster_matrix",
    "shuffle_rows",
    "add_dense_rows",
    "scale_free_graph",
    "rmat_graph",
    "contact_map_graph",
    "block_band_matrix",
    "lattice_qcd_like",
    "stencil_2d",
    "stencil_3d",
    "fem_block_mesh",
    "shell_structure",
    "uniform_random",
    "block_random",
    "row_skewed_random",
    "diagonal_plus_random",
    "suitesparse",
]
