"""Synthetic band matrices (paper Section VI-C).

The paper's synthetic benchmark multiplies a ``16,384 x 16,384`` band
matrix of bandwidth ``b`` (``a[i, j] = 0`` if ``j < i - b`` or
``j > i + b``) by a tall-and-skinny dense matrix, sweeping ``b`` from 64
up to the full dimension (which makes the matrix dense).  Band matrices
isolate the effect of the block count ``n_e``: their BCSR blocks are
already dense, load balance is perfect and no reordering is needed.
"""

from __future__ import annotations

import numpy as np

from ..formats import CSRMatrix

__all__ = ["band_matrix", "band_sparsity", "bandwidth_for_sparsity"]


def band_sparsity(n: int, bandwidth: int) -> float:
    """Exact sparsity (fraction of zeros) of an ``n x n`` band matrix with
    half-bandwidth ``bandwidth`` (band fully filled)."""
    nnz = _band_nnz(n, bandwidth)
    return 1.0 - nnz / float(n * n)


def _band_nnz(n: int, bandwidth: int) -> int:
    b = min(int(bandwidth), n - 1)
    if b < 0:
        return 0
    # full rows have 2b+1 entries; the first/last b rows are clipped
    full = n * (2 * b + 1)
    clipped = b * (b + 1)  # sum_{i=1..b} i, clipped on each side
    return full - clipped


def bandwidth_for_sparsity(n: int, sparsity: float) -> int:
    """Smallest half-bandwidth whose band matrix has at most the requested
    sparsity (i.e. at least the corresponding density)."""
    if not 0.0 <= sparsity <= 1.0:
        raise ValueError("sparsity must be in [0, 1]")
    target_nnz = (1.0 - sparsity) * n * n
    lo, hi = 0, n - 1
    while lo < hi:
        mid = (lo + hi) // 2
        if _band_nnz(n, mid) >= target_nnz:
            hi = mid
        else:
            lo = mid + 1
    return lo


def band_matrix(
    n: int,
    bandwidth: int,
    *,
    dtype=np.float32,
    rng: np.random.Generator | None = None,
    value_mode: str = "random",
) -> CSRMatrix:
    """Generate an ``n x n`` band matrix with half-bandwidth ``bandwidth``.

    Parameters
    ----------
    n:
        Matrix dimension.
    bandwidth:
        Half-bandwidth ``b``; entries with ``|i - j| <= b`` are non-zero.
        ``bandwidth >= n - 1`` produces a fully dense matrix.
    dtype:
        Value dtype.
    rng:
        Random generator for the values (``value_mode="random"``).
    value_mode:
        ``"random"`` (uniform in ``[0.5, 1.5)``), ``"ones"`` or
        ``"diagonal_dominant"`` (random off-diagonals, large diagonal --
        the HPCG-like stencil case mentioned in the paper's motivation).

    Returns
    -------
    CSRMatrix
        The band matrix in CSR format.
    """
    if n <= 0:
        raise ValueError("n must be positive")
    b = min(int(bandwidth), n - 1)
    if b < 0:
        raise ValueError("bandwidth must be non-negative")
    rng = rng or np.random.default_rng(0)

    row_start = np.maximum(np.arange(n) - b, 0)
    row_end = np.minimum(np.arange(n) + b, n - 1)
    counts = (row_end - row_start + 1).astype(np.int64)
    rowptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=rowptr[1:])
    nnz = int(rowptr[-1])

    # column indices: for each row i, row_start[i] .. row_end[i]
    rows = np.repeat(np.arange(n, dtype=np.int64), counts)
    offsets = np.arange(nnz, dtype=np.int64) - np.repeat(rowptr[:-1], counts)
    cols = np.repeat(row_start, counts) + offsets

    if value_mode == "ones":
        vals = np.ones(nnz, dtype=dtype)
    elif value_mode == "random":
        vals = rng.uniform(0.5, 1.5, size=nnz).astype(dtype)
    elif value_mode == "diagonal_dominant":
        vals = rng.uniform(-1.0, 0.0, size=nnz).astype(dtype)
        diag = rows == cols
        vals[diag] = (2.0 * b + 1.0)
    else:
        raise ValueError(f"unknown value_mode {value_mode!r}")

    return CSRMatrix(rowptr, cols, vals, (n, n), check=False)
