"""Random sparse matrix generators.

These generators exercise the "unstructured sparsity" regime the paper
targets: uniformly random non-zeros, block-structured random matrices
(used to validate the blocking/reordering pipeline on matrices with a
known hidden block structure) and skewed row distributions (the adversarial
``dc2``-like power-law case of Section VI-B).

All generators are vectorised NumPy code so that matrices with millions of
non-zeros (the sizes of Table I) are produced in well under a second.
"""

from __future__ import annotations

import numpy as np

from ..formats import COOMatrix, CSRMatrix

__all__ = [
    "uniform_random",
    "block_random",
    "row_skewed_random",
    "diagonal_plus_random",
]


def _values(rng: np.random.Generator, n: int, dtype) -> np.ndarray:
    return rng.uniform(0.5, 1.5, size=n).astype(dtype)


def _sample_linear_indices(
    rng: np.random.Generator, total: int, nnz: int
) -> np.ndarray:
    """Sample ``nnz`` distinct linear indices from ``range(total)``.

    Uses a full permutation when the sample is dense relative to the index
    space and vectorised rejection sampling (sample-with-replacement, then
    de-duplicate, repeat) otherwise.
    """
    if nnz >= total:
        return np.arange(total, dtype=np.int64)
    if nnz > total // 3:
        return rng.permutation(total)[:nnz].astype(np.int64)
    chosen = np.unique(rng.integers(0, total, size=int(nnz * 1.2) + 16, dtype=np.int64))
    while chosen.size < nnz:
        extra = rng.integers(0, total, size=int((nnz - chosen.size) * 1.5) + 16, dtype=np.int64)
        chosen = np.unique(np.concatenate([chosen, extra]))
    rng.shuffle(chosen)
    return chosen[:nnz]


def uniform_random(
    nrows: int,
    ncols: int,
    *,
    density: float | None = None,
    nnz: int | None = None,
    dtype=np.float32,
    rng: np.random.Generator | None = None,
) -> CSRMatrix:
    """Uniformly random sparse matrix with exactly the requested nnz.

    Exactly one of ``density`` and ``nnz`` must be given; the non-zero
    count is capped at ``nrows * ncols``.
    """
    if (density is None) == (nnz is None):
        raise ValueError("specify exactly one of density and nnz")
    rng = rng or np.random.default_rng(0)
    total = nrows * ncols
    if nnz is None:
        if not 0.0 <= density <= 1.0:
            raise ValueError("density must be in [0, 1]")
        nnz = int(round(density * total))
    nnz = min(int(nnz), total)
    if nnz == 0:
        return CSRMatrix.empty((nrows, ncols), dtype=dtype)
    lin = _sample_linear_indices(rng, total, nnz)
    rows, cols = np.divmod(lin, ncols)
    coo = COOMatrix(rows, cols, _values(rng, nnz, dtype), (nrows, ncols))
    return coo.to_csr()


def block_random(
    nrows: int,
    ncols: int,
    block_shape: tuple[int, int],
    *,
    block_density: float,
    fill: float = 1.0,
    dtype=np.float32,
    rng: np.random.Generator | None = None,
) -> CSRMatrix:
    """Random matrix with an exact hidden block structure.

    A fraction ``block_density`` of the ``(nrows/h) x (ncols/w)`` block
    grid positions is selected uniformly at random; each selected block is
    filled with a fraction ``fill`` of non-zero entries.  With
    ``fill == 1.0`` the resulting BCSR representation (with the same block
    shape) has zero padding, which several tests rely on.
    """
    h, w = int(block_shape[0]), int(block_shape[1])
    if nrows % h or ncols % w:
        raise ValueError("matrix dimensions must be multiples of the block shape")
    if not 0.0 <= block_density <= 1.0 or not 0.0 < fill <= 1.0:
        raise ValueError("block_density must be in [0,1] and fill in (0,1]")
    rng = rng or np.random.default_rng(0)
    n_brow, n_bcol = nrows // h, ncols // w
    total_blocks = n_brow * n_bcol
    n_sel = int(round(block_density * total_blocks))
    if n_sel == 0:
        return CSRMatrix.empty((nrows, ncols), dtype=dtype)
    sel = _sample_linear_indices(rng, total_blocks, n_sel)
    brow, bcol = np.divmod(sel, n_bcol)

    per_block = h * w
    keep = max(1, int(round(fill * per_block)))
    if keep == per_block:
        local = np.tile(np.arange(per_block, dtype=np.int64), n_sel)
        owner = np.repeat(np.arange(n_sel, dtype=np.int64), per_block)
    else:
        # independent local samples per block: draw random keys and take the
        # `keep` smallest per block (vectorised partial argsort)
        keys = rng.random((n_sel, per_block))
        local = np.argpartition(keys, keep - 1, axis=1)[:, :keep].ravel().astype(np.int64)
        owner = np.repeat(np.arange(n_sel, dtype=np.int64), keep)
    lr, lc = np.divmod(local, w)
    rows = brow[owner] * h + lr
    cols = bcol[owner] * w + lc
    coo = COOMatrix(rows, cols, _values(rng, rows.size, dtype), (nrows, ncols))
    return coo.to_csr()


def row_skewed_random(
    nrows: int,
    ncols: int,
    *,
    nnz: int,
    alpha: float = 1.5,
    dtype=np.float32,
    rng: np.random.Generator | None = None,
) -> CSRMatrix:
    """Random matrix whose per-row non-zero counts follow a power law.

    This reproduces the structure of ``dc2`` (circuit simulation): extreme
    sparsity with a heavy-tailed distribution of non-zeros per row, the
    adversarial case for SMaT's static 2-D schedule (paper Section VI-B).
    The realised nnz may be slightly below the request because duplicate
    coordinates within a row are merged.

    Parameters
    ----------
    alpha:
        Power-law exponent; larger values concentrate more non-zeros in a
        few rows.
    """
    if nnz <= 0:
        return CSRMatrix.empty((nrows, ncols), dtype=dtype)
    rng = rng or np.random.default_rng(0)
    weights = (np.arange(1, nrows + 1, dtype=np.float64)) ** (-alpha)
    rng.shuffle(weights)
    weights /= weights.sum()
    row_counts = rng.multinomial(nnz, weights)
    # rows cannot hold more than ncols entries; redistribute the overflow of
    # capped hub rows onto rows that still have capacity so the total count
    # stays close to the request
    for _ in range(4):
        overflow = int(np.maximum(row_counts - ncols, 0).sum())
        row_counts = np.minimum(row_counts, ncols)
        if overflow == 0:
            break
        spare = (ncols - row_counts).astype(np.float64)
        if spare.sum() <= 0:
            break
        row_counts = row_counts + rng.multinomial(
            min(overflow, int(spare.sum())), spare / spare.sum()
        )
    row_counts = np.minimum(row_counts, ncols)

    # light rows sample columns with replacement (duplicates are rare and
    # merged away); heavy rows -- the interesting tail -- sample without
    # replacement so their realised degree matches the power law.
    heavy_threshold = max(8, ncols // 8)
    rows_parts = []
    cols_parts = []
    light_mask = row_counts <= heavy_threshold
    light_rows = np.repeat(np.nonzero(light_mask)[0].astype(np.int64),
                           row_counts[light_mask])
    if light_rows.size:
        rows_parts.append(light_rows)
        cols_parts.append(rng.integers(0, ncols, size=light_rows.size, dtype=np.int64))
    for r in np.nonzero(~light_mask)[0]:
        c = int(row_counts[r])
        rows_parts.append(np.full(c, r, dtype=np.int64))
        cols_parts.append(rng.permutation(ncols)[:c].astype(np.int64))
    rows = np.concatenate(rows_parts) if rows_parts else np.empty(0, dtype=np.int64)
    cols = np.concatenate(cols_parts) if cols_parts else np.empty(0, dtype=np.int64)
    coo = COOMatrix(rows, cols, _values(rng, rows.size, dtype), (nrows, ncols))
    return coo.to_csr()


def diagonal_plus_random(
    n: int,
    *,
    extra_nnz: int,
    dtype=np.float32,
    rng: np.random.Generator | None = None,
) -> CSRMatrix:
    """Identity-like diagonal plus uniformly random off-diagonal entries.

    Typical of optimisation / interior-point matrices (``mip1``-like):
    every row is non-empty, but a subset of rows and columns is much
    denser than the rest.
    """
    rng = rng or np.random.default_rng(0)
    diag_rows = np.arange(n, dtype=np.int64)
    extra = uniform_random(n, n, nnz=extra_nnz, dtype=dtype, rng=rng).to_coo()
    rows = np.concatenate([diag_rows, extra.row])
    cols = np.concatenate([diag_rows, extra.col])
    vals = np.concatenate([np.full(n, 2.0, dtype=dtype), extra.val])
    return COOMatrix(rows, cols, vals, (n, n)).to_csr()
