"""Mesh / finite-element style matrix generators.

Several Table-I matrices come from 2-D/3-D mesh problems (``cant``,
``consph``, ``cop20k_A``, ``shipsec1``) or fluid dynamics (``rma10``).
Their sparsity pattern is that of a discretised PDE: each row couples a
node with its geometric neighbours, often with a small dense coupling
block per node pair (one entry per degree of freedom).  These generators
produce structurally equivalent matrices: stencil Laplacians on regular
grids, FEM-like node graphs with multiple degrees of freedom per node,
and shell/structural matrices with banded plus long-range couplings.
"""

from __future__ import annotations

import numpy as np

from ..formats import COOMatrix, CSRMatrix

__all__ = [
    "stencil_2d",
    "stencil_3d",
    "fem_block_mesh",
    "shell_structure",
]


def _merge(rows, cols, vals, shape) -> CSRMatrix:
    return COOMatrix(
        np.concatenate(rows), np.concatenate(cols), np.concatenate(vals), shape
    ).to_csr()


def stencil_2d(
    nx: int,
    ny: int,
    *,
    stencil: str = "5pt",
    dtype=np.float32,
    rng: np.random.Generator | None = None,
) -> CSRMatrix:
    """Laplacian-like matrix of a 2-D ``nx x ny`` grid.

    ``stencil`` is ``"5pt"`` (N/S/E/W neighbours) or ``"9pt"`` (including
    diagonals).  The matrix dimension is ``nx * ny``.  This is the HPCG-like
    structured case mentioned in the paper's motivation for the synthetic
    experiments.
    """
    rng = rng or np.random.default_rng(0)
    n = nx * ny
    ix, iy = np.meshgrid(np.arange(nx), np.arange(ny), indexing="ij")
    idx = (ix * ny + iy).ravel()

    if stencil == "5pt":
        offsets = [(-1, 0), (1, 0), (0, -1), (0, 1)]
    elif stencil == "9pt":
        offsets = [(di, dj) for di in (-1, 0, 1) for dj in (-1, 0, 1) if (di, dj) != (0, 0)]
    else:
        raise ValueError(f"unknown stencil {stencil!r}")

    rows = [idx]
    cols = [idx]
    vals = [np.full(n, float(len(offsets)) + 1.0, dtype=dtype)]
    for di, dj in offsets:
        jx, jy = ix + di, iy + dj
        valid = (jx >= 0) & (jx < nx) & (jy >= 0) & (jy < ny)
        r = idx.reshape(nx, ny)[valid.reshape(nx, ny)]
        c = (jx * ny + jy)[valid]
        rows.append(r)
        cols.append(c)
        vals.append(rng.uniform(-1.0, -0.5, size=r.size).astype(dtype))
    return _merge(rows, cols, vals, (n, n))


def stencil_3d(
    nx: int,
    ny: int,
    nz: int,
    *,
    stencil: str = "7pt",
    dtype=np.float32,
    rng: np.random.Generator | None = None,
) -> CSRMatrix:
    """Laplacian-like matrix of a 3-D grid (``"7pt"`` or ``"27pt"`` stencil)."""
    rng = rng or np.random.default_rng(0)
    n = nx * ny * nz
    ix, iy, iz = np.meshgrid(
        np.arange(nx), np.arange(ny), np.arange(nz), indexing="ij"
    )
    idx = ((ix * ny + iy) * nz + iz).ravel()

    if stencil == "7pt":
        offsets = [
            (-1, 0, 0), (1, 0, 0), (0, -1, 0), (0, 1, 0), (0, 0, -1), (0, 0, 1)
        ]
    elif stencil == "27pt":
        offsets = [
            (di, dj, dk)
            for di in (-1, 0, 1)
            for dj in (-1, 0, 1)
            for dk in (-1, 0, 1)
            if (di, dj, dk) != (0, 0, 0)
        ]
    else:
        raise ValueError(f"unknown stencil {stencil!r}")

    rows = [idx]
    cols = [idx]
    vals = [np.full(n, float(len(offsets)) + 1.0, dtype=dtype)]
    flat_i = idx.reshape(nx, ny, nz)
    for di, dj, dk in offsets:
        jx, jy, jz = ix + di, iy + dj, iz + dk
        valid = (
            (jx >= 0) & (jx < nx) & (jy >= 0) & (jy < ny) & (jz >= 0) & (jz < nz)
        )
        r = flat_i[valid]
        c = ((jx * ny + jy) * nz + jz)[valid]
        rows.append(r)
        cols.append(c)
        vals.append(rng.uniform(-1.0, -0.5, size=r.size).astype(dtype))
    return _merge(rows, cols, vals, (n, n))


def fem_block_mesh(
    n_nodes: int,
    *,
    dof: int = 3,
    neighbors: int = 8,
    dtype=np.float32,
    rng: np.random.Generator | None = None,
) -> CSRMatrix:
    """FEM-style matrix: a random geometric node graph expanded by a dense
    ``dof x dof`` coupling block per node pair.

    Nodes are placed on a 1-D chain with local random connections (each node
    couples to ``neighbors`` nearby nodes), which yields the banded-with-
    fringes pattern typical of structural FEM matrices such as ``cant`` and
    ``consph``.  The matrix dimension is ``n_nodes * dof``.
    """
    if dof <= 0 or neighbors <= 0:
        raise ValueError("dof and neighbors must be positive")
    rng = rng or np.random.default_rng(0)
    n = n_nodes * dof

    # node adjacency: each node connects to `neighbors` nodes within a local
    # window (plus itself), symmetrised
    half_window = max(neighbors * 2, 4)
    src = np.repeat(np.arange(n_nodes, dtype=np.int64), neighbors)
    offset = rng.integers(1, half_window + 1, size=src.size, dtype=np.int64)
    sign = rng.choice(np.array([-1, 1], dtype=np.int64), size=src.size)
    dst = np.clip(src + sign * offset, 0, n_nodes - 1)

    pairs = np.unique(
        np.concatenate(
            [
                np.stack([src, dst], axis=1),
                np.stack([dst, src], axis=1),
                np.stack([np.arange(n_nodes, dtype=np.int64)] * 2, axis=1),
            ]
        ),
        axis=0,
    )

    # expand each node pair into a dense dof x dof block
    lr, lc = np.meshgrid(np.arange(dof), np.arange(dof), indexing="ij")
    lr, lc = lr.ravel(), lc.ravel()
    rows = (pairs[:, 0, None] * dof + lr[None, :]).ravel()
    cols = (pairs[:, 1, None] * dof + lc[None, :]).ravel()
    vals = rng.uniform(-1.0, 1.0, size=rows.size).astype(dtype)
    # make the diagonal blocks dominant
    diag = rows == cols
    vals[diag] = np.abs(vals[diag]) + float(2 * neighbors * dof)
    return COOMatrix(rows, cols, vals, (n, n)).to_csr()


def shell_structure(
    n: int,
    *,
    band: int = 24,
    n_stringers: int = 12,
    stringer_width: int = 4,
    dtype=np.float32,
    rng: np.random.Generator | None = None,
) -> CSRMatrix:
    """Ship-section / shell structural matrix (``shipsec1``-like).

    Combines a dense-ish diagonal band (plate elements) with a set of
    long-range "stringer" couplings: groups of rows that additionally
    couple to a few remote column ranges, producing the off-band clusters
    characteristic of stiffened-shell models.
    """
    rng = rng or np.random.default_rng(0)
    from .band import band_matrix

    base = band_matrix(n, band, dtype=dtype, rng=rng).to_coo()
    rows = [base.row]
    cols = [base.col]
    vals = [base.val]

    for _ in range(n_stringers):
        r0 = int(rng.integers(0, max(1, n - stringer_width)))
        c0 = int(rng.integers(0, max(1, n - stringer_width)))
        length = int(rng.integers(n // 64 + 1, n // 16 + 2))
        r = np.repeat(
            np.arange(r0, min(n, r0 + length), dtype=np.int64), stringer_width
        )
        c = (
            c0
            + (np.arange(r.size, dtype=np.int64) % stringer_width)
            + (np.arange(r.size, dtype=np.int64) // stringer_width)
        )
        c = np.clip(c, 0, n - 1)
        rows.append(r)
        cols.append(c)
        vals.append(rng.uniform(-0.5, 0.5, size=r.size).astype(dtype))
        # symmetric counterpart
        rows.append(c)
        cols.append(r)
        vals.append(rng.uniform(-0.5, 0.5, size=r.size).astype(dtype))

    return _merge(rows, cols, vals, (n, n))
