"""Graph-structured matrix generators.

``pdb1HYS`` (weighted protein-interaction graph), ``dc2`` (circuit
simulation) and the GNN motivation of the paper all operate on adjacency
or Laplacian matrices of graphs.  This module generates:

* scale-free (power-law / preferential-attachment style) adjacency
  matrices -- the hub-dominated structure of circuits and web graphs,
* R-MAT / Kronecker-like adjacency matrices,
* small-world "contact map" graphs (protein-structure style: a banded
  backbone plus geometric contacts).
"""

from __future__ import annotations

import numpy as np

from ..formats import COOMatrix, CSRMatrix

__all__ = ["scale_free_graph", "rmat_graph", "contact_map_graph"]


def _to_weighted_csr(rows, cols, n, dtype, rng, symmetric=True) -> CSRMatrix:
    rows = np.asarray(rows, dtype=np.int64)
    cols = np.asarray(cols, dtype=np.int64)
    if symmetric:
        rows, cols = np.concatenate([rows, cols]), np.concatenate([cols, rows])
    vals = rng.uniform(0.5, 1.5, size=rows.size).astype(dtype)
    return COOMatrix(rows, cols, vals, (n, n)).to_csr()


def scale_free_graph(
    n: int,
    *,
    avg_degree: float = 8.0,
    exponent: float = 2.1,
    symmetric: bool = True,
    dtype=np.float32,
    rng: np.random.Generator | None = None,
) -> CSRMatrix:
    """Scale-free graph adjacency matrix.

    Node "attractiveness" follows a Zipf-like distribution with the given
    ``exponent``; edges are sampled by drawing both endpoints from that
    distribution.  The resulting degree distribution is heavy-tailed
    (a few hub rows carry most of the non-zeros), reproducing the extreme
    row imbalance of ``dc2`` that the paper identifies as SMaT's worst
    case.
    """
    rng = rng or np.random.default_rng(0)
    n_edges = int(round(avg_degree * n / (2.0 if symmetric else 1.0)))
    # draw out-degrees from a Zipf-like distribution over a random node
    # permutation (so hub nodes are scattered through the index space), then
    # connect each edge stub to a uniformly random destination.  This keeps
    # the heavy-tailed per-row structure without collapsing most samples
    # into duplicate hub-hub edges.
    weights = np.arange(1, n + 1, dtype=np.float64) ** (-exponent)
    rng.shuffle(weights)
    weights /= weights.sum()
    out_degree = rng.multinomial(n_edges, weights)
    rows = np.repeat(np.arange(n, dtype=np.int64), out_degree)
    cols = rng.integers(0, n, size=rows.size, dtype=np.int64)
    keep = rows != cols
    return _to_weighted_csr(rows[keep], cols[keep], n, dtype, rng, symmetric)


def rmat_graph(
    scale: int,
    *,
    edge_factor: int = 8,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    symmetric: bool = False,
    dtype=np.float32,
    rng: np.random.Generator | None = None,
) -> CSRMatrix:
    """Recursive-MATrix (R-MAT) graph generator (Graph500-style).

    The adjacency matrix has ``2**scale`` vertices and approximately
    ``edge_factor * 2**scale`` edges, recursively placed into quadrants
    with probabilities ``(a, b, c, 1-a-b-c)``.
    """
    if a + b + c >= 1.0:
        raise ValueError("a + b + c must be < 1")
    rng = rng or np.random.default_rng(0)
    n = 1 << scale
    n_edges = edge_factor * n
    d = 1.0 - a - b - c
    probs = np.array([a, b, c, d])
    rows = np.zeros(n_edges, dtype=np.int64)
    cols = np.zeros(n_edges, dtype=np.int64)
    for level in range(scale):
        quad = rng.choice(4, size=n_edges, p=probs)
        bit = 1 << (scale - 1 - level)
        rows += np.where((quad == 2) | (quad == 3), bit, 0)
        cols += np.where((quad == 1) | (quad == 3), bit, 0)
    keep = rows != cols
    return _to_weighted_csr(rows[keep], cols[keep], n, dtype, rng, symmetric)


def contact_map_graph(
    n: int,
    *,
    backbone_width: int = 12,
    n_contacts: int | None = None,
    contact_locality: float = 0.05,
    dtype=np.float32,
    rng: np.random.Generator | None = None,
) -> CSRMatrix:
    """Protein contact-map style matrix (``pdb1HYS``-like).

    A banded "backbone" (residues adjacent in the chain interact) plus
    geometrically local long-range contacts whose distance along the chain
    follows an exponential distribution with scale ``contact_locality * n``.
    """
    rng = rng or np.random.default_rng(0)
    from .band import band_matrix

    base = band_matrix(n, backbone_width, dtype=dtype, rng=rng).to_coo()
    if n_contacts is None:
        n_contacts = 4 * n
    src = rng.integers(0, n, size=n_contacts, dtype=np.int64)
    dist = rng.exponential(scale=max(2.0, contact_locality * n), size=n_contacts)
    dst = np.clip(src + np.round(dist).astype(np.int64) + 1, 0, n - 1)
    rows = np.concatenate([base.row, src, dst])
    cols = np.concatenate([base.col, dst, src])
    vals = np.concatenate(
        [base.val, rng.uniform(0.5, 1.5, size=2 * n_contacts).astype(dtype)]
    )
    return COOMatrix(rows, cols, vals, (n, n)).to_csr()
