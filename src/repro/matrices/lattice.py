"""Lattice / quantum-chemistry style matrix generators.

``conf5_4-8x8`` in Table I originates from lattice quantum chromodynamics:
sites of a 4-D lattice interact with their nearest lattice neighbours and
each interaction is a small dense complex block (colour-spin degrees of
freedom).  The resulting real matrix is a *block band* matrix: all
non-zeros live close to the diagonal in a small number of dense diagonal
stripes.  The paper notes this structure is already well blocked, so
Jaccard reordering can only hurt it -- a behaviour the benchmarks verify.
"""

from __future__ import annotations

import numpy as np

from ..formats import COOMatrix, CSRMatrix

__all__ = ["block_band_matrix", "lattice_qcd_like"]


def block_band_matrix(
    n: int,
    *,
    block_size: int = 8,
    block_bandwidth: int = 2,
    dtype=np.float32,
    rng: np.random.Generator | None = None,
) -> CSRMatrix:
    """Band matrix at block granularity: dense ``block_size x block_size``
    blocks on the diagonals ``-block_bandwidth .. +block_bandwidth`` of the
    block grid.

    The element-level matrix has dimension ``n`` (rounded down to a
    multiple of ``block_size``).
    """
    bs = int(block_size)
    n_blocks = n // bs
    if n_blocks == 0:
        raise ValueError("n must be at least block_size")
    n = n_blocks * bs
    rng = rng or np.random.default_rng(0)

    brow = np.repeat(np.arange(n_blocks, dtype=np.int64), 2 * block_bandwidth + 1)
    offs = np.tile(
        np.arange(-block_bandwidth, block_bandwidth + 1, dtype=np.int64), n_blocks
    )
    bcol = brow + offs
    keep = (bcol >= 0) & (bcol < n_blocks)
    brow, bcol = brow[keep], bcol[keep]

    lr, lc = np.meshgrid(np.arange(bs), np.arange(bs), indexing="ij")
    lr, lc = lr.ravel(), lc.ravel()
    rows = (brow[:, None] * bs + lr[None, :]).ravel()
    cols = (bcol[:, None] * bs + lc[None, :]).ravel()
    vals = rng.uniform(-1.0, 1.0, size=rows.size).astype(dtype)
    diag = rows == cols
    vals[diag] = np.abs(vals[diag]) + float(2 * block_bandwidth + 1)
    return COOMatrix(rows, cols, vals, (n, n)).to_csr()


def lattice_qcd_like(
    lattice_extent: int,
    *,
    site_dof: int = 12,
    dims: int = 4,
    dtype=np.float32,
    rng: np.random.Generator | None = None,
) -> CSRMatrix:
    """Wilson-Dirac-operator-like matrix on a ``lattice_extent**dims``
    periodic lattice with ``site_dof`` degrees of freedom per site.

    Each lattice site couples to itself and to its ``2 * dims`` nearest
    neighbours (periodic boundary), with a dense ``site_dof x site_dof``
    block per coupling.  ``conf5_4-8x8`` corresponds roughly to
    ``lattice_extent=8, dims=4, site_dof=12`` halved by even-odd
    preconditioning; use a smaller extent for a scaled-down stand-in.
    """
    rng = rng or np.random.default_rng(0)
    L = int(lattice_extent)
    n_sites = L**dims
    n = n_sites * site_dof

    # site coordinates and neighbour indices with periodic wrap-around
    coords = np.indices((L,) * dims).reshape(dims, -1).T  # (n_sites, dims)
    site_id = np.arange(n_sites, dtype=np.int64)

    pairs_src = [site_id]
    pairs_dst = [site_id]
    for d in range(dims):
        for step in (-1, 1):
            nb = coords.copy()
            nb[:, d] = (nb[:, d] + step) % L
            nb_id = np.zeros(n_sites, dtype=np.int64)
            mult = 1
            for dd in range(dims - 1, -1, -1):
                nb_id += nb[:, dd] * mult
                mult *= L
            pairs_src.append(site_id)
            pairs_dst.append(nb_id)
    src = np.concatenate(pairs_src)
    dst = np.concatenate(pairs_dst)

    lr, lc = np.meshgrid(np.arange(site_dof), np.arange(site_dof), indexing="ij")
    lr, lc = lr.ravel(), lc.ravel()
    rows = (src[:, None] * site_dof + lr[None, :]).ravel()
    cols = (dst[:, None] * site_dof + lc[None, :]).ravel()
    vals = rng.uniform(-0.5, 0.5, size=rows.size).astype(dtype)
    diag = rows == cols
    vals[diag] = np.abs(vals[diag]) + float(2 * dims + 1)
    return COOMatrix(rows, cols, vals, (n, n)).to_csr()
