"""Candidate configuration space of the auto-tuner.

The paper fixes the BCSR block shape to the MMA tile of the chosen
precision (Section IV-B) and picks the Jaccard reordering after a manual
ablation (Section IV-C).  The tuner re-runs exactly that search per
matrix: the cross product of

* **block shapes** -- the MMA-tile menu of the precision (the shapes the
  block-shape ablation sweeps: multiples of the warp-level MMA tile, so
  every candidate remains Tensor-Core mappable), and
* **reordering algorithms** -- the registered preprocessing heuristics
  the paper evaluates, plus the identity baseline, and
* optionally the **row+column permutation** knob the paper evaluates and
  rejects (off by default; enable it to re-test that conclusion on a new
  matrix).

With ``kernel="auto"`` the space additionally grows a **backend axis**:
one candidate per registered baseline library (cuSPARSE, DASP, Magicube,
cuBLAS) rides along with the SMaT block x reordering cross product, so
the search discovers the per-matrix library winner -- the paper's central
comparative result (Figures 8-10) -- automatically.  Non-blocked backends
contribute a single candidate each, because the block shape and the
reordering only affect the BCSR kernel.

Each point of the space is a :class:`Candidate`; ``expand`` turns a base
:class:`~repro.core.config.SMaTConfig` into the concrete configuration to
build an :class:`~repro.core.plan.ExecutionPlan` from.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.config import SMaTConfig
from ..gpu import Precision, get_precision
from ..kernels import KERNEL_REGISTRY

__all__ = [
    "Candidate",
    "backend_menu",
    "block_shape_menu",
    "candidate_space",
    "DEFAULT_REORDERERS",
]

#: reordering algorithms searched by default (the Section IV-C ablation
#: set; hypergraph is excluded from the default budget because its
#: recursive bisection is an order of magnitude slower to *run* than the
#: others while rarely winning -- pass it explicitly to include it)
DEFAULT_REORDERERS: Tuple[str, ...] = ("identity", "jaccard", "saad", "rcm", "graycode")


@dataclass(frozen=True)
class Candidate:
    """One point of the tuning search space."""

    block_shape: Tuple[int, int]
    reorder: str
    reorder_columns: bool = False
    reorder_params: Dict[str, object] = field(default_factory=dict, hash=False)
    #: execution backend of this candidate (registry key)
    kernel: str = "smat"

    @property
    def label(self) -> str:
        """Compact display name used by the CLI search table."""
        if self.kernel != "smat":
            # block shape and reordering do not apply to non-blocked
            # backends; the library name is the whole story
            return self.kernel
        h, w = self.block_shape
        cols = "+cols" if self.reorder_columns else ""
        params = (
            "(" + ",".join(f"{k}={v}" for k, v in sorted(self.reorder_params.items())) + ")"
            if self.reorder_params
            else ""
        )
        return f"{h}x{w}/{self.reorder}{params}{cols}"

    def expand(self, base: SMaTConfig) -> SMaTConfig:
        """Concrete pipeline configuration for this candidate, inheriting
        every non-searched knob (precision, variant, arch, ...) from
        ``base``."""
        return replace(
            base,
            kernel=self.kernel,
            block_shape=self.block_shape,
            reorder=self.reorder,
            reorder_columns=self.reorder_columns,
            reorder_params=dict(self.reorder_params),
        )


def block_shape_menu(precision) -> List[Tuple[int, int]]:
    """The MMA-tile block-shape menu of a precision.

    Starting from the precision's MMA-matched default ``(h0, w0)`` (16 x 8
    for FP16), the menu contains the halved, default, and doubled tiles in
    each dimension -- the same menu the block-shape ablation benchmark
    sweeps.  Every shape keeps ``h`` a multiple (or clean divisor) of the
    MMA ``m`` dimension so warps still own whole output tiles.
    """
    p: Precision = get_precision(precision)
    h0, w0 = p.block_shape
    menu = []
    for h in (h0 // 2, h0, 2 * h0):
        for w in (w0, 2 * w0):
            if h >= 4 and (h, w) not in menu:
                menu.append((h, w))
    # keep the default first so budget-limited searches always contain it
    menu.sort(key=lambda s: (s != (h0, w0), s))
    return menu


def backend_menu(config: Optional[SMaTConfig] = None) -> List[str]:
    """The backends one tuning search considers.

    ``kernel="auto"`` opens the full registry (SMaT plus every baseline
    library); a concrete kernel pins the menu to that single backend.
    """
    config = config or SMaTConfig()
    requested = config.resolved_kernel()
    if requested == "auto":
        # smat first: budget-limited searches must always contain the
        # paper's default configuration
        return ["smat"] + sorted(k for k in KERNEL_REGISTRY if k != "smat")
    return [requested]


def candidate_space(
    config: Optional[SMaTConfig] = None,
    *,
    block_shapes: Optional[Sequence[Tuple[int, int]]] = None,
    reorderers: Sequence[str] = DEFAULT_REORDERERS,
    include_column_permutation: bool = False,
    kernels: Optional[Sequence[str]] = None,
) -> List[Candidate]:
    """Enumerate the candidate configurations for one tuning search.

    With a SMaT backend in the menu, the paper's default configuration
    (MMA-matched block shape, Jaccard row reordering) is always a member
    of the returned space, so a search over it can never select something
    worse than the default.  ``kernels`` overrides the backend menu
    (default: :func:`backend_menu` of the config -- the full registry for
    ``kernel="auto"``, a single backend otherwise).
    """
    config = config or SMaTConfig()
    precision = config.resolved_precision()
    if block_shapes is None:
        block_shapes = block_shape_menu(precision)
    shapes = [(int(h), int(w)) for h, w in block_shapes]
    if not shapes:
        raise ValueError("candidate space needs at least one block shape")
    names = [r.strip().lower() for r in reorderers if r and r.strip()]
    if not names:
        raise ValueError("candidate space needs at least one reordering algorithm")
    backends = [k.strip().lower() for k in kernels] if kernels else backend_menu(config)
    if not backends:
        raise ValueError("candidate space needs at least one kernel backend")
    unknown = [k for k in backends if k not in KERNEL_REGISTRY]
    if unknown:
        raise ValueError(
            f"unknown kernel backend(s) {unknown}; available: {sorted(KERNEL_REGISTRY)}"
        )

    space: List[Candidate] = []
    seen = set()
    for backend in backends:
        if not KERNEL_REGISTRY[backend].wants_reordering:
            # block shape and reordering only affect the blocked kernel;
            # one candidate covers the whole library
            cand = Candidate(
                block_shape=precision.block_shape, reorder="identity", kernel=backend
            )
            if (backend,) not in seen:
                seen.add((backend,))
                space.append(cand)
            continue
        for shape in shapes:
            for name in names:
                key = (backend, shape, name, False)
                if key not in seen:
                    seen.add(key)
                    space.append(Candidate(block_shape=shape, reorder=name, kernel=backend))
        if include_column_permutation:
            # the paper's rejected row+column variant, re-tested on the
            # default shape only (permuting B is what makes it costly)
            for name in names:
                if name not in ("identity", "none"):
                    space.append(
                        Candidate(
                            block_shape=shapes[0],
                            reorder=name,
                            reorder_columns=True,
                            kernel=backend,
                        )
                    )
    return space
