"""Candidate configuration space of the auto-tuner.

The paper fixes the BCSR block shape to the MMA tile of the chosen
precision (Section IV-B) and picks the Jaccard reordering after a manual
ablation (Section IV-C).  The tuner re-runs exactly that search per
matrix: the cross product of

* **block shapes** -- the MMA-tile menu of the precision (the shapes the
  block-shape ablation sweeps: multiples of the warp-level MMA tile, so
  every candidate remains Tensor-Core mappable), and
* **reordering algorithms** -- the registered preprocessing heuristics
  the paper evaluates, plus the identity baseline, and
* optionally the **row+column permutation** knob the paper evaluates and
  rejects (off by default; enable it to re-test that conclusion on a new
  matrix).

Each point of the space is a :class:`Candidate`; ``expand`` turns a base
:class:`~repro.core.config.SMaTConfig` into the concrete configuration to
build an :class:`~repro.core.plan.ExecutionPlan` from.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.config import SMaTConfig
from ..gpu import Precision, get_precision

__all__ = ["Candidate", "block_shape_menu", "candidate_space", "DEFAULT_REORDERERS"]

#: reordering algorithms searched by default (the Section IV-C ablation
#: set; hypergraph is excluded from the default budget because its
#: recursive bisection is an order of magnitude slower to *run* than the
#: others while rarely winning -- pass it explicitly to include it)
DEFAULT_REORDERERS: Tuple[str, ...] = ("identity", "jaccard", "saad", "rcm", "graycode")


@dataclass(frozen=True)
class Candidate:
    """One point of the tuning search space."""

    block_shape: Tuple[int, int]
    reorder: str
    reorder_columns: bool = False
    reorder_params: Dict[str, object] = field(default_factory=dict, hash=False)

    @property
    def label(self) -> str:
        """Compact display name used by the CLI search table."""
        h, w = self.block_shape
        cols = "+cols" if self.reorder_columns else ""
        params = (
            "(" + ",".join(f"{k}={v}" for k, v in sorted(self.reorder_params.items())) + ")"
            if self.reorder_params
            else ""
        )
        return f"{h}x{w}/{self.reorder}{params}{cols}"

    def expand(self, base: SMaTConfig) -> SMaTConfig:
        """Concrete pipeline configuration for this candidate, inheriting
        every non-searched knob (precision, variant, arch, ...) from
        ``base``."""
        return replace(
            base,
            block_shape=self.block_shape,
            reorder=self.reorder,
            reorder_columns=self.reorder_columns,
            reorder_params=dict(self.reorder_params),
        )


def block_shape_menu(precision) -> List[Tuple[int, int]]:
    """The MMA-tile block-shape menu of a precision.

    Starting from the precision's MMA-matched default ``(h0, w0)`` (16 x 8
    for FP16), the menu contains the halved, default, and doubled tiles in
    each dimension -- the same menu the block-shape ablation benchmark
    sweeps.  Every shape keeps ``h`` a multiple (or clean divisor) of the
    MMA ``m`` dimension so warps still own whole output tiles.
    """
    p: Precision = get_precision(precision)
    h0, w0 = p.block_shape
    menu = []
    for h in (h0 // 2, h0, 2 * h0):
        for w in (w0, 2 * w0):
            if h >= 4 and (h, w) not in menu:
                menu.append((h, w))
    # keep the default first so budget-limited searches always contain it
    menu.sort(key=lambda s: (s != (h0, w0), s))
    return menu


def candidate_space(
    config: Optional[SMaTConfig] = None,
    *,
    block_shapes: Optional[Sequence[Tuple[int, int]]] = None,
    reorderers: Sequence[str] = DEFAULT_REORDERERS,
    include_column_permutation: bool = False,
) -> List[Candidate]:
    """Enumerate the candidate configurations for one tuning search.

    The paper's default configuration (MMA-matched block shape, Jaccard
    row reordering) is always a member of the returned space, so a search
    over it can never select something worse than the default.
    """
    config = config or SMaTConfig()
    precision = config.resolved_precision()
    if block_shapes is None:
        block_shapes = block_shape_menu(precision)
    shapes = [(int(h), int(w)) for h, w in block_shapes]
    if not shapes:
        raise ValueError("candidate space needs at least one block shape")
    names = [r.strip().lower() for r in reorderers if r and r.strip()]
    if not names:
        raise ValueError("candidate space needs at least one reordering algorithm")

    space: List[Candidate] = []
    seen = set()
    for shape in shapes:
        for name in names:
            key = (shape, name, False)
            if key not in seen:
                seen.add(key)
                space.append(Candidate(block_shape=shape, reorder=name))
    if include_column_permutation:
        # the paper's rejected row+column variant, re-tested on the
        # default shape only (permuting B is what makes it costly)
        for name in names:
            if name not in ("identity", "none"):
                space.append(
                    Candidate(
                        block_shape=shapes[0], reorder=name, reorder_columns=True
                    )
                )
    return space
