"""Model-guided pruning of the tuning search space.

Measuring a candidate is expensive: it runs a full preprocessing pass
(reordering + BCSR conversion) before the kernel can be timed.  This
module prices candidates *without* reordering, using the paper's own
machinery:

1. **Calibration** (per kernel backend / block shape / variant /
   precision / arch / operand width): the linear runtime model of Eq. 1,
   ``T = T_e * n_e + T_init``, is fitted with
   :class:`~repro.core.perfmodel.LinearPerformanceModel` on a handful of
   tiny synthetic matrices run through the real kernel and
   :class:`~repro.gpu.cost.CostModel` -- exactly the fit of Figure 2,
   just automated.  The predictor ``n_e`` is *each kernel's own* work
   measure (:meth:`~repro.kernels.base.SpMMKernel.tuning_work`): BCSR
   block count for SMaT, streamed non-zeros for the CSR-based libraries,
   densified ``M x K`` elements for cuBLAS.  Calibrations are memoised
   process-wide, so they are paid once, not per matrix.
2. **Block-count bounds** (per matrix x block shape, SMaT only): the
   candidate's ``n_e`` after reordering is unknown before the reordering
   runs, but it is bracketed by Eq. 2: no permutation can pack the matrix
   below ``ceil(nnz / (h*w))`` blocks, and ``auto_skip_reordering``
   guarantees it never ends up *above* the current ordering's block count
   (which is a cheap O(nnz) :func:`~repro.reorder.metrics.count_blocks`
   pass).  Non-blocked backends have no reordering bracket: their work
   measure is exact, so optimistic == guaranteed.

Together these give every candidate an optimistic / guaranteed predicted
time, and the search discards candidates whose *optimistic* time is worse
than the best *guaranteed* time of the space -- they cannot win even with
a perfect permutation.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from ..core.config import SMaTConfig
from ..core.perfmodel import FitResult, LinearPerformanceModel, block_count_bounds
from ..formats import CSRMatrix
from ..kernels import SMaTKernel, get_kernel
from ..matrices import band_matrix
from ..reorder.metrics import count_blocks

__all__ = ["CandidateEstimate", "calibrate", "estimate_candidate", "clear_calibration_cache"]

#: dimension of the synthetic calibration matrices; small enough that one
#: calibration costs a few milliseconds, large enough to span block counts
CALIBRATION_DIM = 512
#: band widths of the calibration samples (varying n_e, as in Figure 2)
CALIBRATION_BANDWIDTHS = (2, 8, 32, 96)
#: (dimension, bandwidth) calibration samples for non-SMaT backends: the
#: dimensions vary too, so work measures that do not follow nnz (cuBLAS's
#: M x K) still span a fittable range
CALIBRATION_SAMPLES = ((256, 8), (384, 24), (512, 8), (512, 64), (768, 48))

_CalKey = Tuple[str, Tuple[int, int], str, str, str, int]
_CALIBRATIONS: Dict[_CalKey, FitResult] = {}
_CAL_LOCK = threading.Lock()


@dataclass(frozen=True)
class CandidateEstimate:
    """Analytical prediction for one candidate on one matrix."""

    #: the backend's work measure at the current ordering -- BCSR block
    #: count for SMaT (guaranteed achievable: auto_skip_reordering falls
    #: back to it), nnz / densified elements for the baseline libraries
    blocks_now: int
    #: Eq. 2 lower bound on the block count of *any* ordering (SMaT);
    #: equal to ``blocks_now`` for backends with no reordering bracket
    blocks_lower_bound: int
    #: predicted time at ``blocks_now`` (seconds)
    guaranteed_s: float
    #: predicted time at ``blocks_lower_bound`` (seconds)
    optimistic_s: float

    @property
    def optimistic_ms(self) -> float:
        """Predicted time at the Eq. 2 lower block-count bound (ms)."""
        return 1e3 * self.optimistic_s

    @property
    def guaranteed_ms(self) -> float:
        """Predicted time at the unreordered block count (ms)."""
        return 1e3 * self.guaranteed_s


def _calibration_key(
    config: SMaTConfig, block_shape: Tuple[int, int], n_cols: int, kernel: str
) -> _CalKey:
    variant = config.variant if isinstance(config.variant, str) else config.variant.label
    return (
        kernel,
        (int(block_shape[0]), int(block_shape[1])),
        config.resolved_precision().key,
        variant,
        config.arch.name,
        int(n_cols),
    )


def calibrate(
    config: SMaTConfig,
    block_shape: Tuple[int, int],
    n_cols: int,
    kernel: str = "smat",
) -> FitResult:
    """Fit Eq. 1 for one (backend, block shape, variant, precision, arch,
    N) point.

    Runs the real kernel on tiny synthetic matrices and fits simulated
    time against the kernel's own work measure
    (:meth:`~repro.kernels.base.SpMMKernel.tuning_work`): BCSR block
    counts for SMaT (band matrices of varying bandwidth, the Figure-2
    fit), nnz for the CSR libraries, densified elements for cuBLAS (the
    sample dimensions vary so the measure spans a range).  Memoised
    process-wide.

    May raise :class:`~repro.kernels.KernelUnsupportedError` when the
    backend cannot run even the calibration samples (e.g. a simulated
    device too small to densify them); the search treats such a backend
    as unsupported.
    """
    key = _calibration_key(config, block_shape, n_cols, kernel)
    with _CAL_LOCK:
        cached = _CALIBRATIONS.get(key)
    if cached is not None:
        return cached

    rng = np.random.default_rng(0)
    work = []
    times = []
    if kernel == "smat":
        B = rng.normal(size=(CALIBRATION_DIM, n_cols)).astype(np.float32)
        for bw in CALIBRATION_BANDWIDTHS:
            A = band_matrix(CALIBRATION_DIM, bw, rng=np.random.default_rng(bw))
            k = SMaTKernel(
                config.arch,
                config.precision,
                variant=config.variant,
                block_shape=block_shape,
            )
            k.prepare(A)
            result = k.run(B)
            work.append(float(result.counters.extra.get("n_blocks", 0.0)))
            times.append(result.timing.time_s)
    else:
        for dim, bw in CALIBRATION_SAMPLES:
            A = band_matrix(dim, bw, rng=np.random.default_rng(bw))
            B = rng.normal(size=(dim, n_cols)).astype(np.float32)
            k = get_kernel(kernel, config.arch, config.precision)
            k.prepare(A)
            result = k.run(B)
            work.append(k.tuning_work(A))
            times.append(result.timing.time_s)
    fit = LinearPerformanceModel().fit(work, times)
    with _CAL_LOCK:
        _CALIBRATIONS[key] = fit
    return fit


def clear_calibration_cache() -> None:
    """Drop the memoised Eq. 1 calibrations (mainly for tests)."""
    with _CAL_LOCK:
        _CALIBRATIONS.clear()


def estimate_candidate(
    A: CSRMatrix,
    config: SMaTConfig,
    block_shape: Tuple[int, int],
    *,
    reorders: bool,
    n_cols: int,
    blocks_now: Optional[int] = None,
    kernel: str = "smat",
) -> CandidateEstimate:
    """Predicted time bracket for one candidate.

    For SMaT candidates, ``reorders`` is False for the identity
    candidate, whose block count is exactly the current ordering's (no
    bracket), and ``blocks_now`` lets the caller reuse one
    :func:`count_blocks` pass across every candidate sharing a block
    shape (the count is an O(nnz) scan of ``A``).

    Non-SMaT candidates are priced with their own backend's calibrated
    cost model against the backend's exact work measure (nnz, densified
    elements, ...): no permutation changes it, so the bracket collapses
    (optimistic == guaranteed).
    """
    fit = calibrate(config, block_shape, n_cols, kernel=kernel)
    if kernel != "smat":
        work = get_kernel(kernel, config.arch, config.precision).tuning_work(A)
        predicted = float(fit.predict(work))
        return CandidateEstimate(
            blocks_now=int(work),
            blocks_lower_bound=int(work),
            guaranteed_s=predicted,
            optimistic_s=predicted,
        )
    if blocks_now is None:
        blocks_now = count_blocks(A, block_shape)
    lower, _ = block_count_bounds(A.nnz, A.nrows, A.ncols, block_shape)
    blocks_best = lower if reorders else blocks_now
    return CandidateEstimate(
        blocks_now=blocks_now,
        blocks_lower_bound=blocks_best,
        guaranteed_s=float(fit.predict(blocks_now)),
        optimistic_s=float(fit.predict(blocks_best)),
    )
