"""Model-guided pruning of the tuning search space.

Measuring a candidate is expensive: it runs a full preprocessing pass
(reordering + BCSR conversion) before the kernel can be timed.  This
module prices candidates *without* reordering, using the paper's own
machinery:

1. **Calibration** (per block shape / kernel variant / precision / arch /
   operand width): the linear runtime model of Eq. 1,
   ``T = T_e * n_e + T_init``, is fitted with
   :class:`~repro.core.perfmodel.LinearPerformanceModel` on a handful of
   tiny synthetic band matrices run through the real
   :class:`~repro.kernels.SMaTKernel` and :class:`~repro.gpu.cost.CostModel`
   -- exactly the fit of Figure 2, just automated.  Calibrations are
   memoised process-wide, so they are paid once, not per matrix.
2. **Block-count bounds** (per matrix x block shape): the candidate's
   ``n_e`` after reordering is unknown before the reordering runs, but it
   is bracketed by Eq. 2: no permutation can pack the matrix below
   ``ceil(nnz / (h*w))`` blocks, and ``auto_skip_reordering`` guarantees
   it never ends up *above* the current ordering's block count (which is
   a cheap O(nnz) :func:`~repro.reorder.metrics.count_blocks` pass).

Together these give every candidate an optimistic / guaranteed predicted
time, and the search discards candidates whose *optimistic* time is worse
than the best *guaranteed* time of the space -- they cannot win even with
a perfect permutation.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from ..core.config import SMaTConfig
from ..core.perfmodel import FitResult, LinearPerformanceModel, block_count_bounds
from ..formats import CSRMatrix
from ..kernels import SMaTKernel
from ..matrices import band_matrix
from ..reorder.metrics import count_blocks

__all__ = ["CandidateEstimate", "calibrate", "estimate_candidate", "clear_calibration_cache"]

#: dimension of the synthetic calibration matrices; small enough that one
#: calibration costs a few milliseconds, large enough to span block counts
CALIBRATION_DIM = 512
#: band widths of the calibration samples (varying n_e, as in Figure 2)
CALIBRATION_BANDWIDTHS = (2, 8, 32, 96)

_CalKey = Tuple[Tuple[int, int], str, str, str, int]
_CALIBRATIONS: Dict[_CalKey, FitResult] = {}
_CAL_LOCK = threading.Lock()


@dataclass(frozen=True)
class CandidateEstimate:
    """Analytical prediction for one candidate on one matrix."""

    #: block count of the matrix in its current ordering (guaranteed
    #: achievable: auto_skip_reordering falls back to it)
    blocks_now: int
    #: Eq. 2 lower bound on the block count of *any* ordering
    blocks_lower_bound: int
    #: predicted time at ``blocks_now`` (seconds)
    guaranteed_s: float
    #: predicted time at ``blocks_lower_bound`` (seconds)
    optimistic_s: float

    @property
    def optimistic_ms(self) -> float:
        """Predicted time at the Eq. 2 lower block-count bound (ms)."""
        return 1e3 * self.optimistic_s

    @property
    def guaranteed_ms(self) -> float:
        """Predicted time at the unreordered block count (ms)."""
        return 1e3 * self.guaranteed_s


def _calibration_key(config: SMaTConfig, block_shape: Tuple[int, int], n_cols: int) -> _CalKey:
    variant = config.variant if isinstance(config.variant, str) else config.variant.label
    return (
        (int(block_shape[0]), int(block_shape[1])),
        config.resolved_precision().key,
        variant,
        config.arch.name,
        int(n_cols),
    )


def calibrate(config: SMaTConfig, block_shape: Tuple[int, int], n_cols: int) -> FitResult:
    """Fit Eq. 1 for one (block shape, variant, precision, arch, N) point.

    Runs the real kernel on tiny band matrices of varying bandwidth and
    fits simulated time against the resulting block counts.  Memoised
    process-wide.
    """
    key = _calibration_key(config, block_shape, n_cols)
    with _CAL_LOCK:
        cached = _CALIBRATIONS.get(key)
    if cached is not None:
        return cached

    rng = np.random.default_rng(0)
    B = rng.normal(size=(CALIBRATION_DIM, n_cols)).astype(np.float32)
    counts = []
    times = []
    for bw in CALIBRATION_BANDWIDTHS:
        A = band_matrix(CALIBRATION_DIM, bw, rng=np.random.default_rng(bw))
        kernel = SMaTKernel(
            config.arch,
            config.precision,
            variant=config.variant,
            block_shape=block_shape,
        )
        kernel.prepare(A)
        result = kernel.run(B)
        counts.append(float(result.counters.extra.get("n_blocks", 0.0)))
        times.append(result.timing.time_s)
    fit = LinearPerformanceModel().fit(counts, times)
    with _CAL_LOCK:
        _CALIBRATIONS[key] = fit
    return fit


def clear_calibration_cache() -> None:
    """Drop the memoised Eq. 1 calibrations (mainly for tests)."""
    with _CAL_LOCK:
        _CALIBRATIONS.clear()


def estimate_candidate(
    A: CSRMatrix,
    config: SMaTConfig,
    block_shape: Tuple[int, int],
    *,
    reorders: bool,
    n_cols: int,
    blocks_now: Optional[int] = None,
) -> CandidateEstimate:
    """Predicted time bracket for one candidate.

    ``reorders`` is False for the identity candidate, whose block count is
    exactly the current ordering's (no bracket).  ``blocks_now`` lets the
    caller reuse one :func:`count_blocks` pass across every candidate
    sharing a block shape (the count is an O(nnz) scan of ``A``).
    """
    fit = calibrate(config, block_shape, n_cols)
    if blocks_now is None:
        blocks_now = count_blocks(A, block_shape)
    lower, _ = block_count_bounds(A.nnz, A.nrows, A.ncols, block_shape)
    blocks_best = lower if reorders else blocks_now
    return CandidateEstimate(
        blocks_now=blocks_now,
        blocks_lower_bound=blocks_best,
        guaranteed_s=float(fit.predict(blocks_now)),
        optimistic_s=float(fit.predict(blocks_best)),
    )
