"""Fingerprint-keyed persistent cache of tuning results.

A tuning search costs several preprocessing passes; its *result* is a few
dozen bytes of configuration.  This cache persists that result as JSON on
disk so the search is paid once per (matrix, tuning context) across
processes, engine instances, and sessions -- the disk-backed sibling of
the in-memory :class:`~repro.engine.cache.PlanCache`, with the same
semantics: keyed by content fingerprint, hit/miss counters, and safe for
concurrent use.

Entries are keyed by the matrix fingerprint
(:func:`~repro.core.plan.matrix_fingerprint`) plus a *tuning signature*
covering everything that changes the search outcome: precision, kernel
variant, architecture, operand width, and the searched space.  Writes are
atomic (temp file + ``os.replace``) and merge with whatever another
process wrote in the meantime, so concurrent tuners cannot clobber each
other's results.
"""

from __future__ import annotations

import contextlib
import json
import os
import tempfile
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, Optional

try:  # POSIX advisory locking; absent on some platforms
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None  # type: ignore[assignment]

__all__ = ["TuningCache", "TuningCacheStats", "default_cache_path"]

#: environment variable overriding the default on-disk location
CACHE_PATH_ENV = "REPRO_TUNING_CACHE"
_SCHEMA_VERSION = 1


def default_cache_path() -> Path:
    """Default location of the tuning cache file.

    ``$REPRO_TUNING_CACHE`` wins when set; otherwise the file lives under
    the user cache directory (``$XDG_CACHE_HOME`` or ``~/.cache``).
    """
    env = os.environ.get(CACHE_PATH_ENV)
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro-smat" / "tuning_cache.json"


@dataclass
class TuningCacheStats:
    """Hit/miss/store counters of one :class:`TuningCache` instance."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    size: int = 0


class TuningCache:
    """JSON-file-backed mapping of tuning keys to winning configurations.

    Parameters
    ----------
    path:
        Cache file location (created on first store).  ``None`` selects
        :func:`default_cache_path`.
    """

    def __init__(self, path: Optional[os.PathLike] = None):
        self.path = Path(path) if path is not None else default_cache_path()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._stores = 0

    # -- persistence ----------------------------------------------------------
    @contextlib.contextmanager
    def _file_lock(self) -> Iterator[None]:
        """Cross-process exclusive lock around read-merge-write updates.

        The thread lock alone cannot stop two *processes* interleaving
        load -> merge -> replace and losing one writer's entry, so writes
        also take an advisory ``flock`` on a ``.lock`` sidecar (never on
        the data file itself: ``os.replace`` swaps that inode out).  On
        platforms without ``fcntl`` the thread lock is all there is --
        same behaviour as before this fix.
        """
        if fcntl is None:  # pragma: no cover - non-POSIX fallback
            yield
            return
        self.path.parent.mkdir(parents=True, exist_ok=True)
        lock_path = self.path.with_name(self.path.name + ".lock")
        fd = os.open(lock_path, os.O_CREAT | os.O_RDWR, 0o644)
        try:
            fcntl.flock(fd, fcntl.LOCK_EX)
            yield
        finally:
            os.close(fd)  # closing drops the flock

    def _load(self) -> Dict[str, dict]:
        try:
            with open(self.path, encoding="utf-8") as fh:
                payload = json.load(fh)
        except (FileNotFoundError, json.JSONDecodeError, OSError):
            return {}
        if not isinstance(payload, dict) or payload.get("version") != _SCHEMA_VERSION:
            return {}
        entries = payload.get("entries", {})
        return entries if isinstance(entries, dict) else {}

    def _dump(self, entries: Dict[str, dict]) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        payload = {"version": _SCHEMA_VERSION, "entries": entries}
        fd, tmp = tempfile.mkstemp(
            prefix=self.path.name + ".", dir=str(self.path.parent)
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(payload, fh, indent=2, sort_keys=True)
            os.replace(tmp, self.path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # -- mapping API ----------------------------------------------------------
    def get(self, key: str) -> Optional[dict]:
        """Return the stored entry for ``key`` or ``None``.  Always reads
        the file, so results written by other processes (or other engine
        instances) are visible immediately."""
        with self._lock:
            entry = self._load().get(key)
            if entry is None:
                self._misses += 1
            else:
                self._hits += 1
            return entry

    def put(self, key: str, entry: dict) -> None:
        """Store ``entry`` under ``key``.

        Read-merge-write under both the instance's thread lock and a
        cross-process file lock, then an atomic rename -- concurrent
        writers (threads or processes) each land their own entry without
        clobbering anyone else's.
        """
        with self._lock, self._file_lock():
            entries = self._load()
            entries[key] = entry
            self._dump(entries)
            self._stores += 1

    def clear(self) -> None:
        """Delete every entry (the file itself is removed)."""
        with self._lock:
            try:
                os.unlink(self.path)
            except FileNotFoundError:
                pass

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._load()

    def __len__(self) -> int:
        with self._lock:
            return len(self._load())

    @property
    def stats(self) -> TuningCacheStats:
        """Snapshot of the cache's hit/miss/store counters."""
        with self._lock:
            return TuningCacheStats(
                hits=self._hits,
                misses=self._misses,
                stores=self._stores,
                size=len(self._load()),
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        s = self.stats
        return (
            f"<TuningCache path={str(self.path)!r} size={s.size} "
            f"hits={s.hits} misses={s.misses}>"
        )
