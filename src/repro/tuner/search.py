"""The tuning search: model-guided pruning + measured candidate runs.

The paper arrives at its configuration (16 x 8 blocks, Jaccard
reordering) through manual ablations -- a block-shape sweep (Section
IV-B) and a reordering study (Section IV-C) -- and its *comparative*
result (which library wins on which matrix, Figures 8-10) through manual
benchmarking.  :class:`Tuner` automates exactly those experiments per
matrix; with ``SMaTConfig(kernel="auto")`` the search space grows a
backend axis, each backend is priced with its own calibrated cost model,
and the persisted winner is the full *(backend, block shape, reordering)*
triple:

1. enumerate the candidate space (:mod:`repro.tuner.space`),
2. price every candidate with the Eq. 1 / Eq. 2 analytical bracket
   (:mod:`repro.tuner.model`) and discard candidates whose *optimistic*
   predicted time is worse than the best *guaranteed* time -- they cannot
   win even with a perfect permutation,
3. measure the survivors with real timed runs (a full
   :class:`~repro.core.plan.ExecutionPlan` build plus an executed
   multiply), and
4. return a :class:`TuningResult` whose winner is the candidate with the
   lowest measured multiply time.

The paper's default configuration is always measured, so the winner is
*never worse than the default* in the selection metric.  Results persist
in a :class:`~repro.tuner.cache.TuningCache`, which is how
``SMaTConfig(reorder="auto")`` and ``SpMMEngine(tune=True)`` amortise the
search across processes.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.config import SMaTConfig
from ..core.plan import ExecutionPlan, matrix_fingerprint
from ..formats import CSRMatrix
from ..kernels import KernelUnsupportedError
from ..reorder.metrics import count_blocks
from .cache import TuningCache
from .model import CandidateEstimate, estimate_candidate
from .space import DEFAULT_REORDERERS, Candidate, candidate_space

__all__ = [
    "CandidateOutcome",
    "TuningResult",
    "Tuner",
    "tune",
    "resolve_auto_config",
    "tuning_key",
]

#: candidates whose optimistic prediction is within this factor of the
#: best guaranteed time survive pruning (guards against float-edge pruning
#: of model-equivalent candidates)
PRUNE_SLACK = 1.05

#: placeholder estimate for candidates whose backend raised
#: KernelUnsupportedError before it could be priced
_UNSUPPORTED_ESTIMATE = CandidateEstimate(
    blocks_now=0,
    blocks_lower_bound=0,
    guaranteed_s=float("inf"),
    optimistic_s=float("inf"),
)


@dataclass
class CandidateOutcome:
    """One candidate's journey through the search."""

    candidate: Candidate
    estimate: CandidateEstimate
    measured: bool = False
    pruned: bool = False
    #: the candidate's backend raised KernelUnsupportedError (during
    #: calibration or measurement); skipped, never selected
    unsupported: bool = False
    #: the unsupported-kernel error message, when one was raised
    error: Optional[str] = None
    #: measured (simulated device) multiply time -- the selection metric
    simulated_ms: float = float("inf")
    #: host wall-clock of one multiply on the built plan
    wall_ms: float = float("inf")
    #: host wall-clock of the preprocessing (reorder + BCSR build)
    preprocess_ms: float = 0.0
    #: block count of the plan that was actually built
    blocks_after: int = 0
    #: whether the plan kept the permutation (auto_skip_reordering)
    applied: bool = False

    def as_row(self) -> dict:
        """One row of the CLI search table."""
        if self.unsupported:
            status = "unsupported"
        elif self.pruned:
            status = "pruned"
        elif self.measured:
            status = "measured"
        else:
            status = "skipped"
        return {
            "candidate": self.candidate.label,
            "kernel": self.candidate.kernel,
            "predicted_ms": self.estimate.optimistic_ms,
            "blocks": self.blocks_after if self.measured else self.estimate.blocks_now,
            "measured_ms": self.simulated_ms if self.measured else float("nan"),
            "wall_ms": self.wall_ms if self.measured else float("nan"),
            "status": status,
        }


@dataclass
class TuningResult:
    """Outcome of one tuning search."""

    fingerprint: str
    base_config: SMaTConfig
    n_cols: int
    outcomes: List[CandidateOutcome] = field(default_factory=list)
    best: Optional[CandidateOutcome] = None
    default: Optional[CandidateOutcome] = None
    from_cache: bool = False
    search_ms: float = 0.0

    @property
    def best_config(self) -> SMaTConfig:
        """The winning configuration, ready to build plans from."""
        assert self.best is not None, "tuning produced no measured candidate"
        return self.best.candidate.expand(self.base_config)

    @property
    def tuned_vs_default(self) -> float:
        """Speedup of the winner over the paper's default configuration
        (``>= 1.0`` by construction: the default is always measured)."""
        if (
            self.best is None
            or self.default is None
            or not self.default.measured
            or self.best.simulated_ms <= 0
        ):
            return 1.0
        return self.default.simulated_ms / self.best.simulated_ms

    @property
    def n_measured(self) -> int:
        """Candidates given a real timed run."""
        return sum(1 for o in self.outcomes if o.measured)

    @property
    def n_pruned(self) -> int:
        """Candidates rejected by the analytical model without a run."""
        return sum(1 for o in self.outcomes if o.pruned)

    def table(self) -> List[dict]:
        """Search table rows (candidate, predicted, measured, winner)."""
        rows = []
        for outcome in sorted(
            self.outcomes, key=lambda o: (not o.measured, o.simulated_ms)
        ):
            row = outcome.as_row()
            row["winner"] = "*" if outcome is self.best else ""
            rows.append(row)
        return rows

    def cache_entry(self) -> dict:
        """Serialisable record stored in the :class:`TuningCache`."""
        assert self.best is not None
        cand = self.best.candidate
        return {
            "kernel": cand.kernel,
            "block_shape": list(cand.block_shape),
            "reorder": cand.reorder,
            "reorder_columns": cand.reorder_columns,
            "reorder_params": dict(cand.reorder_params),
            "simulated_ms": self.best.simulated_ms,
            "tuned_vs_default": self.tuned_vs_default,
            "n_measured": self.n_measured,
            "n_pruned": self.n_pruned,
            "n_cols": self.n_cols,
            "tuned_at": time.time(),
        }


def _candidate_signature(c: Candidate) -> Tuple:
    return (
        c.kernel,
        c.block_shape,
        c.reorder,
        c.reorder_columns,
        tuple(sorted(c.reorder_params.items())),
    )


def _search_signature(
    config: SMaTConfig,
    n_cols: int,
    space: Sequence[Candidate],
) -> str:
    variant = config.variant if isinstance(config.variant, str) else config.variant.label
    payload = repr(
        (
            config.resolved_kernel(),
            config.resolved_precision().key,
            variant,
            config.arch.name,
            bool(config.auto_skip_reordering),
            int(n_cols),
            tuple(_candidate_signature(c) for c in space),
        )
    )
    return hashlib.blake2b(payload.encode(), digest_size=8).hexdigest()


def tuning_key(A: CSRMatrix, config: SMaTConfig, n_cols: int, space: Sequence[Candidate]) -> str:
    """Cache key of one (matrix, tuning context) pair."""
    return f"{matrix_fingerprint(A)}:{_search_signature(config, n_cols, space)}"


class Tuner:
    """Per-matrix configuration search with model-guided pruning.

    Parameters
    ----------
    cache:
        Persistent result store: a :class:`TuningCache`, a path for one,
        or ``None`` for the default on-disk location.  Pass
        ``cache=False`` to disable persistence entirely.
    n_cols:
        Operand width ``N`` the search optimises for (the paper's serving
        sweet spot, ``N=8``, by default).
    reorderers, block_shapes, include_column_permutation, kernels:
        Candidate space knobs (see :func:`~repro.tuner.space.candidate_space`).
        ``kernels`` overrides the backend menu; by default the menu follows
        the base configuration -- the full registry for
        ``SMaTConfig(kernel="auto")``, a single backend otherwise.
    max_measure:
        Measurement budget: at most this many surviving candidates get a
        real timed run (the rest are skipped, best-predicted first wins a
        slot).  The default configuration always gets a slot.
    repeats:
        Timed executions per measured candidate; the wall-clock is the
        minimum over repeats (the simulated time is deterministic).
    seed:
        Seed of the dense operand used for the measured runs.
    model_scales:
        Per-backend multipliers applied to the Eq. 1 predicted times
        during pruning (``{"smat": 2.0}`` prices every SMaT candidate
        twice as slow).  The online tuner
        (:class:`~repro.tuner.online.OnlineTuner`) recalibrates these
        from live serving telemetry; measured selection is unaffected
        (the winner is still the fastest *measured* candidate), so the
        scales only change which candidates get a timed run.  The dict
        is held by reference: external recalibration is picked up by the
        next search.
    """

    def __init__(
        self,
        *,
        cache=None,
        n_cols: int = 8,
        reorderers: Sequence[str] = DEFAULT_REORDERERS,
        block_shapes: Optional[Sequence[Tuple[int, int]]] = None,
        include_column_permutation: bool = False,
        kernels: Optional[Sequence[str]] = None,
        max_measure: int = 8,
        repeats: int = 1,
        seed: int = 0,
        tracer=None,
        model_scales: Optional[Dict[str, float]] = None,
    ):
        if cache is False:
            self.cache: Optional[TuningCache] = None
        elif isinstance(cache, TuningCache):
            self.cache = cache
        else:
            self.cache = TuningCache(cache)
        if max_measure < 1:
            raise ValueError("max_measure must be >= 1")
        if repeats < 1:
            raise ValueError("repeats must be >= 1")
        self.n_cols = int(n_cols)
        self.reorderers = tuple(reorderers)
        self.block_shapes = tuple(tuple(s) for s in block_shapes) if block_shapes else None
        self.include_column_permutation = bool(include_column_permutation)
        self.kernels = tuple(k.lower() for k in kernels) if kernels else None
        self.max_measure = int(max_measure)
        self.repeats = int(repeats)
        self.seed = int(seed)
        #: per-backend Eq. 1 price multipliers (shared by reference with
        #: the online tuner's recalibration loop)
        self.model_scales: Dict[str, float] = (
            dict(model_scales) if model_scales is not None else {}
        )
        #: called with every completed :class:`TuningResult` (the online
        #: tuner uses this to learn near-winner configs for exploration)
        self.result_observer: Optional[Callable[[TuningResult], None]] = None
        # the engine shares its tracer after construction; a bare tuner
        # stays on the disabled (no-op) one
        from ..obs.trace import NULL_TRACER

        self.tracer = tracer if tracer is not None else NULL_TRACER

    # -- space ----------------------------------------------------------------
    def _space(self, config: SMaTConfig) -> List[Candidate]:
        """The searched candidate space, always containing the default."""
        space = candidate_space(
            config,
            block_shapes=self.block_shapes,
            reorderers=self.reorderers,
            include_column_permutation=self.include_column_permutation,
            kernels=self.kernels,
        )
        default = self._default_candidate(config)
        if default not in space:
            space.insert(0, default)
        return space

    def key_for(self, A: CSRMatrix, config: Optional[SMaTConfig] = None) -> str:
        """Persistent-cache key of one (matrix, tuning context) pair."""
        base = (config or SMaTConfig()).validate()
        return tuning_key(A, base, self.n_cols, self._space(base))

    @staticmethod
    def _default_candidate(config: SMaTConfig) -> Candidate:
        """The never-lose anchor the search always measures.

        For ``kernel="auto"`` (and of course ``"smat"``) this is the
        paper's default configuration -- SMaT with the MMA-matched block
        shape and Jaccard row reordering -- so a backend search can never
        select something worse than fixed-SMaT.  A concrete baseline
        backend anchors on itself (block shape and reordering are inert
        there)."""
        kernel = config.resolved_kernel()
        if kernel in ("auto", "smat"):
            reorder = config.reorder.lower()
            if reorder in ("auto", ""):
                reorder = "jaccard"
            return Candidate(
                block_shape=config.resolved_precision().block_shape,
                reorder=reorder,
                kernel="smat",
            )
        return Candidate(
            block_shape=config.resolved_precision().block_shape,
            reorder="identity",
            kernel=kernel,
        )

    # -- search ---------------------------------------------------------------
    def tune(
        self,
        A: CSRMatrix,
        config: Optional[SMaTConfig] = None,
        *,
        store: bool = False,
    ) -> TuningResult:
        """Run the full search for ``A``, ignoring any cached result.

        With ``store`` the winner is persisted to the tuner's cache (when
        one is configured); see :meth:`resolve` for the read-through
        entry point.
        """
        with self.tracer.span("tuner.search") as span:
            result = self._tune(A, config, store=store)
            span.set(
                candidates=len(result.outcomes),
                measured=sum(1 for o in result.outcomes if o.measured),
                pruned=sum(1 for o in result.outcomes if o.pruned),
                winner=result.best.candidate.label,
                search_ms=round(result.search_ms, 2),
            )
        if self.result_observer is not None:
            self.result_observer(result)
        return result

    def _tune(
        self,
        A: CSRMatrix,
        config: Optional[SMaTConfig] = None,
        *,
        store: bool = False,
    ) -> TuningResult:
        """The search body behind :meth:`tune` (span-free)."""
        base = (config or SMaTConfig()).validate()
        space = self._space(base)
        default = self._default_candidate(base)

        start = time.perf_counter()
        # one O(nnz) block-count pass per distinct SMaT shape, shared by
        # every candidate using it (non-SMaT backends price their own
        # work measure inside estimate_candidate)
        block_counts = {
            shape: count_blocks(A, shape)
            for shape in {c.block_shape for c in space if c.kernel == "smat"}
        }
        outcomes = []
        for cand in space:
            try:
                estimate = estimate_candidate(
                    A,
                    base,
                    cand.block_shape,
                    reorders=cand.reorder not in ("identity", "none"),
                    n_cols=self.n_cols,
                    blocks_now=block_counts.get(cand.block_shape),
                    kernel=cand.kernel,
                )
                scale = self.model_scales.get(cand.kernel, 1.0)
                if scale != 1.0:
                    estimate = CandidateEstimate(
                        blocks_now=estimate.blocks_now,
                        blocks_lower_bound=estimate.blocks_lower_bound,
                        guaranteed_s=estimate.guaranteed_s * scale,
                        optimistic_s=estimate.optimistic_s * scale,
                    )
                outcomes.append(CandidateOutcome(candidate=cand, estimate=estimate))
            except KernelUnsupportedError as exc:
                # the backend cannot even run the calibration samples:
                # keep the candidate in the table, but never measure it
                outcomes.append(
                    CandidateOutcome(
                        candidate=cand,
                        estimate=_UNSUPPORTED_ESTIMATE,
                        unsupported=True,
                        error=str(exc),
                    )
                )

        # prune: a candidate whose *optimistic* time cannot beat the best
        # *guaranteed* time of the space can never win
        supported = [o for o in outcomes if not o.unsupported]
        viable = []
        if supported:
            best_guaranteed = min(o.estimate.guaranteed_s for o in supported)
            for outcome in supported:
                if outcome.estimate.optimistic_s <= best_guaranteed * PRUNE_SLACK:
                    viable.append(outcome)
                else:
                    outcome.pruned = True

        # measurement budget: the default anchor first (it must always be
        # measured), then best-predicted candidates until max_measure
        # *successful* measurements -- a candidate that turns out
        # unsupported at build time frees its slot for the next-best one
        viable.sort(key=lambda o: o.estimate.optimistic_s)
        rng = np.random.default_rng(self.seed)
        B = rng.normal(size=(A.ncols, self.n_cols)).astype(np.float32)
        default_outcome = next(o for o in outcomes if o.candidate == default)
        measured_count = 0
        if not default_outcome.unsupported:
            self._measure(A, base, default_outcome, B)
            measured_count += int(default_outcome.measured)
        for outcome in viable:
            if outcome is default_outcome:
                continue
            if measured_count >= self.max_measure:
                break
            self._measure(A, base, outcome, B)
            measured_count += int(outcome.measured)

        if measured_count < self.max_measure and any(o.unsupported for o in viable):
            # a candidate the model admitted turned out unsupported at
            # build time -- its (invalid) prediction may also have pruned
            # genuinely viable candidates, so refill the freed budget
            # from the pruned pool, best-predicted first
            for outcome in sorted(
                (o for o in outcomes if o.pruned and not o.unsupported),
                key=lambda o: o.estimate.optimistic_s,
            ):
                if measured_count >= self.max_measure:
                    break
                self._measure(A, base, outcome, B)
                measured_count += int(outcome.measured)

        measured = [o for o in outcomes if o.measured]
        if not measured:
            # every candidate's backend refused the matrix (possible only
            # when the menu was pinned to unsupported backends); surface
            # it as the kernel error so the engine's fallback engages
            errors = "; ".join(
                f"{o.candidate.label}: {o.error}" for o in outcomes if o.unsupported
            )
            raise KernelUnsupportedError(
                f"no tuning candidate could run on this matrix ({errors})"
            )
        # select by measured device time; prefer the default on exact ties
        best = min(
            measured,
            key=lambda o: (o.simulated_ms, o is not default_outcome, o.wall_ms),
        )
        result = TuningResult(
            fingerprint=matrix_fingerprint(A),
            base_config=base,
            n_cols=self.n_cols,
            outcomes=outcomes,
            best=best,
            default=default_outcome,
            search_ms=1e3 * (time.perf_counter() - start),
        )
        if store and self.cache is not None:
            self.cache.put(tuning_key(A, base, self.n_cols, space), result.cache_entry())
        return result

    def _measure(
        self,
        A: CSRMatrix,
        base: SMaTConfig,
        outcome: CandidateOutcome,
        B: np.ndarray,
    ) -> None:
        cfg = outcome.candidate.expand(base)
        start = time.perf_counter()
        try:
            plan = ExecutionPlan.build(A, cfg)
        except KernelUnsupportedError as exc:
            # the backend refuses *this* matrix (e.g. Magicube's memory
            # gate): skip the candidate instead of crashing the search
            outcome.unsupported = True
            outcome.error = str(exc)
            outcome.pruned = False
            return
        outcome.preprocess_ms = 1e3 * (time.perf_counter() - start)
        wall = float("inf")
        simulated = float("inf")
        for _ in range(self.repeats):
            t0 = time.perf_counter()
            _, report = plan.execute(B)
            wall = min(wall, 1e3 * (time.perf_counter() - t0))
            simulated = min(simulated, report.simulated_ms)
        outcome.simulated_ms = simulated
        outcome.wall_ms = wall
        outcome.blocks_after = plan.report.blocks_after
        outcome.applied = plan.report.applied
        outcome.measured = True
        outcome.pruned = False

    # -- cached entry point ---------------------------------------------------
    def resolve(self, A: CSRMatrix, config: Optional[SMaTConfig] = None) -> SMaTConfig:
        """Return the tuned configuration for ``A``, searching at most once.

        On a cache hit the stored winner is rebuilt without any search;
        on a miss the search runs and its winner is persisted.
        """
        base = (config or SMaTConfig()).validate()
        if self.cache is not None:
            entry = self.cache.get(self.key_for(A, base))
            if entry is not None:
                with self.tracer.span("tuner.resolve", cache_hit=True):
                    cand = Candidate(
                        block_shape=(
                            int(entry["block_shape"][0]),
                            int(entry["block_shape"][1]),
                        ),
                        reorder=str(entry["reorder"]),
                        reorder_columns=bool(entry.get("reorder_columns", False)),
                        reorder_params=dict(entry.get("reorder_params", {})),
                        kernel=str(entry.get("kernel", "smat")),
                    )
                    return cand.expand(base)
        with self.tracer.span("tuner.resolve", cache_hit=False):
            return self.tune(A, base, store=True).best_config


def tune(A: CSRMatrix, config: Optional[SMaTConfig] = None, **tuner_kwargs) -> TuningResult:
    """Convenience wrapper: run one tuning search with default settings."""
    return Tuner(cache=False, **tuner_kwargs).tune(A, config)


def resolve_auto_config(
    A: CSRMatrix, config: SMaTConfig, *, cache=None
) -> SMaTConfig:
    """Resolve ``SMaTConfig(reorder="auto")`` to a concrete tuned
    configuration (used by :meth:`repro.core.plan.ExecutionPlan.build`).

    The persistent tuning cache makes this cheap after the first sight of
    a matrix; the search itself runs with the default small budget.
    """
    return Tuner(cache=cache).resolve(A, config)
