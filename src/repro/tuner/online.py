"""Online self-correcting tuner driven by serving telemetry.

The offline :class:`~repro.tuner.search.Tuner` searches once per matrix
against the calibrated Eq. 1 model; after that, every real engine
execution is a free measurement the model never sees.
:class:`OnlineTuner` closes the loop:

1. **record** -- the engine's per-item execution path (the same site that
   feeds the ``repro_engine_item_wall_ms`` histogram) appends one
   observation per executed plan to a bounded queue.  The hot-path cost
   is one ``deque.append`` plus an event set; all analysis happens on a
   background worker thread.
2. **drift** -- the worker compares each observation's measured (simulated
   device) time against the backend's calibrated prediction at the
   plan's actual work measure (BCSR blocks for SMaT,
   :meth:`~repro.kernels.base.SpMMKernel.tuning_work` otherwise) and
   maintains a per-backend geometric-mean drift over a bounded window.
3. **recalibrate** -- when a backend's drift crosses the policy threshold
   (:class:`~repro.core.policy.OnlineTuningConfig.drift_threshold`), the
   backend's Eq. 1 price is rescaled by the observed drift (the tuner's
   ``model_scales``), the window resets, and every tracked key is queued
   for a background re-tune.
4. **re-tune + swap** -- the worker re-runs the full search with the
   corrected model (``store=True``, so the winner lands in the
   persistent :class:`~repro.tuner.cache.TuningCache` and cold processes
   start from live-learned state) and, when the winner changed, builds
   the new plan and swaps it atomically into the engine's
   :class:`~repro.engine.cache.PlanCache` under the unchanged tuned key.
   Serving threads keep hitting the cache throughout; they observe
   either the old or the new plan, never a partial one.
5. **explore (optional)** -- with ``explore > 0`` a deterministic stride
   of tuned lookups is routed to near-winner configurations (measured
   candidates within ``near_margin`` of the winner); when an explored
   configuration's observed times beat the incumbent's, it is promoted:
   plan swap + persisted winner, without waiting for drift.

Everything is observable: the engine's metrics registry gains
``repro_online_*`` counters/gauges plus a per-(backend, block shape)
labelled histogram of observed times, ``engine.telemetry().online``
carries the same numbers as a snapshot, and the serving daemon
republishes both through ``GET /metrics``.

The worker thread never lets an exception escape: failures (a search
raising mid-re-tune, a corrupted tuning-cache file, ...) are counted in
``repro_online_errors_total`` and serving continues on the incumbent
plans.
"""

from __future__ import annotations

import math
import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

from ..core.config import SMaTConfig
from ..core.plan import build_with_fallback, config_signature, matrix_fingerprint
from ..core.policy import OnlineTuningConfig
from ..formats import CSRMatrix
from ..kernels import KernelUnsupportedError, get_kernel
from .model import calibrate
from .search import Tuner, TuningResult

__all__ = ["OnlineTelemetry", "OnlineTuner"]

#: an explored configuration must beat the incumbent's observed time by
#: this factor before it is promoted (guards against float-edge flapping)
PROMOTE_SLACK = 0.98

#: near-winner configurations kept per key for exploration
MAX_ALTERNATES = 4

#: observed samples retained per (key, configuration) for promotions
_OBS_WINDOW = 32


@dataclass
class OnlineTelemetry:
    """Point-in-time snapshot of one :class:`OnlineTuner`.

    Republished by :meth:`repro.engine.SpMMEngine.telemetry` (``online``
    field) and by the serving daemon's ``GET /metrics`` document.
    """

    enabled: bool = True
    #: observations recorded (hot-path samples the worker has processed)
    observations: int = 0
    #: distinct (matrix, config) keys tracked
    keys: int = 0
    #: hot-path samples queued but not yet processed
    pending: int = 0
    #: per-backend geometric-mean observed/predicted drift (current window)
    drift: Dict[str, float] = field(default_factory=dict)
    #: per-backend Eq. 1 price multipliers after recalibration
    model_scales: Dict[str, float] = field(default_factory=dict)
    recalibrations: int = 0
    #: background re-tunes completed
    retunes: int = 0
    retunes_failed: int = 0
    #: re-tuned/promoted plans swapped into the plan cache
    plan_swaps: int = 0
    #: observations served from explored (near-winner) configurations
    explored: int = 0
    #: explored / total observations
    exploration_share: float = 0.0
    #: explored configurations promoted to incumbent
    promotions: int = 0
    #: worker-loop errors survived (serving continued)
    errors: int = 0
    last_error: Optional[str] = None
    worker_alive: bool = False


class _KeyState:
    """Everything the worker tracks about one served (matrix, config) key."""

    __slots__ = (
        "key",
        "A",
        "base",
        "fingerprint",
        "incumbent_sig",
        "incumbent_window",
        "alternates",
        "explore_windows",
        "explore_rr",
        "retune_pending",
        "work",
    )

    def __init__(self, key: object, A: CSRMatrix, base: SMaTConfig) -> None:
        self.key = key
        self.A = A
        self.base = base
        self.fingerprint = matrix_fingerprint(A)
        self.incumbent_sig: Optional[tuple] = None
        self.incumbent_window: Deque[float] = deque(maxlen=_OBS_WINDOW)
        self.alternates: List[SMaTConfig] = []
        self.explore_windows: Dict[tuple, Tuple[SMaTConfig, Deque[float]]] = {}
        self.explore_rr = 0
        self.retune_pending = False
        #: memoised per-backend work measures of ``A`` (tuning_work is
        #: O(1) but constructs a kernel; pay it once per backend)
        self.work: Dict[str, float] = {}


class OnlineTuner:
    """Background drift tracking, recalibration and re-tuning for an engine.

    Parameters
    ----------
    config:
        The :class:`~repro.core.policy.OnlineTuningConfig` thresholds.
    tuner:
        The engine's :class:`~repro.tuner.search.Tuner`.  ``None`` puts
        the online tuner in *passive* mode: observations and drift are
        recorded (telemetry/metrics only) but nothing is recalibrated or
        re-tuned -- an untuned engine's explicitly-requested
        configurations are never overridden behind the caller's back.
    plan_cache:
        The engine's :class:`~repro.engine.cache.PlanCache`; re-tuned
        winners swap in through :meth:`~repro.engine.cache.PlanCache.put`
        under the unchanged tuned key.
    metrics:
        The engine's :class:`~repro.obs.MetricsRegistry`; the
        ``repro_online_*`` series are registered there so the serving
        daemon's Prometheus endpoint picks them up with no extra wiring.
    tracer:
        Span tracer shared with the engine (re-tunes run under
        ``tuner.online_retune`` spans).
    """

    def __init__(
        self,
        config: OnlineTuningConfig,
        *,
        tuner: Optional[Tuner] = None,
        plan_cache=None,
        metrics=None,
        tracer=None,
    ) -> None:
        from ..obs import MetricsRegistry
        from ..obs.trace import NULL_TRACER

        self.config = config
        self._tuner = tuner
        self._plan_cache = plan_cache
        self._tracer = tracer if tracer is not None else NULL_TRACER
        #: per-backend Eq. 1 price multipliers -- the *same dict object*
        #: as the tuner's ``model_scales``, so recalibration reprices the
        #: next search without any handoff
        self.scales: Dict[str, float] = (
            tuner.model_scales if tuner is not None else {}
        )
        if tuner is not None:
            tuner.result_observer = self._on_tuning_result

        self._pending: Deque[tuple] = deque(maxlen=int(config.max_pending))
        self._event = threading.Event()
        self._stop = threading.Event()
        self._worker: Optional[threading.Thread] = None
        self._worker_lock = threading.Lock()

        # worker-owned state (reads from other threads are snapshots)
        self._keys: Dict[object, _KeyState] = {}
        self._drift_logs: Dict[str, Deque[float]] = {}
        self._drift: Dict[str, float] = {}
        self._near: Dict[str, List[SMaTConfig]] = {}
        self._near_lock = threading.Lock()
        self._observations = 0
        self._explored = 0
        self._recalibrations = 0
        self._retunes = 0
        self._retunes_failed = 0
        self._plan_swaps = 0
        self._promotions = 0
        self._errors = 0
        self._last_error: Optional[str] = None
        self._explore_tick = 0
        explore = float(config.explore)
        #: deterministic stride: every Nth tuned lookup explores
        self._explore_every = int(round(1.0 / explore)) if explore > 0 else 0

        registry = metrics if metrics is not None else MetricsRegistry()
        self.metrics = registry
        self._m_obs = registry.counter(
            "repro_online_observations_total",
            "Engine executions observed by the online tuner, by backend",
            labels=("backend",),
        )
        self._m_drift = registry.gauge(
            "repro_online_drift",
            "Geometric-mean observed/predicted drift per backend (current window)",
            labels=("backend",),
        )
        self._m_scale = registry.gauge(
            "repro_online_model_scale",
            "Eq. 1 price multiplier per backend after recalibration",
            labels=("backend",),
        )
        self._m_recal = registry.counter(
            "repro_online_recalibrations_total",
            "Cost-model recalibrations triggered by drift, by backend",
            labels=("backend",),
        )
        self._m_retunes = registry.counter(
            "repro_online_retunes_total", "Background re-tunes completed"
        )
        self._m_swaps = registry.counter(
            "repro_online_plan_swaps_total",
            "Re-tuned or promoted plans swapped into the plan cache",
        )
        self._m_promotions = registry.counter(
            "repro_online_promotions_total",
            "Explored configurations promoted to incumbent",
        )
        self._m_errors = registry.counter(
            "repro_online_errors_total",
            "Worker-loop errors survived (serving continued)",
        )
        self._m_share = registry.gauge(
            "repro_online_exploration_share",
            "Fraction of observed executions served from explored configs",
        )
        self._m_observed = registry.histogram(
            "repro_online_observed_ms",
            "Observed (simulated device) time per backend and block shape, ms",
            window=256,
            labels=("backend", "block_shape"),
        )

    # -- hot path -------------------------------------------------------------
    def record(
        self,
        key: object,
        A: CSRMatrix,
        config: SMaTConfig,
        plan,
        report,
        wall_ms: float,
        n_cols: int = 8,
        explored_cfg: Optional[SMaTConfig] = None,
    ) -> None:
        """Queue one executed-item observation (engine execution path).

        O(1) and allocation-light: everything heavier than a deque append
        happens on the worker thread.
        """
        if self._stop.is_set():
            return
        self._pending.append(
            (key, A, config, plan, report, float(wall_ms), int(n_cols), explored_cfg)
        )
        if self._worker is None:
            self._ensure_worker()
        self._event.set()

    def maybe_explore(self, key: object) -> Optional[SMaTConfig]:
        """Near-winner configuration to serve instead of the incumbent,
        or ``None`` (the overwhelmingly common case).

        Deterministic stride over tuned lookups -- no RNG -- bounded by
        the policy's ``explore`` traffic fraction.  Exploration only has
        candidates after a search ran in this process (the observer on
        :meth:`Tuner.tune` supplies them), so a purely cache-hit engine
        explores nothing.
        """
        every = self._explore_every
        if not every:
            return None
        state = self._keys.get(key)
        if state is None:
            return None
        alternates = state.alternates
        if not alternates:
            return None
        self._explore_tick += 1
        if self._explore_tick % every:
            return None
        cfg = alternates[state.explore_rr % len(alternates)]
        state.explore_rr += 1
        return cfg

    # -- lifecycle ------------------------------------------------------------
    def _ensure_worker(self) -> None:
        with self._worker_lock:
            if self._worker is not None or self._stop.is_set():
                return
            self._worker = threading.Thread(
                target=self._run, name="spmm-online-tuner", daemon=True
            )
            self._worker.start()

    def close(self, timeout: float = 10.0) -> None:
        """Stop the worker (idempotent).  An in-flight re-tune finishes on
        the daemon thread; the join is bounded so engine shutdown never
        hangs on it."""
        self._stop.set()
        self._event.set()
        worker = self._worker
        if worker is not None and worker.is_alive():
            worker.join(timeout=timeout)

    # -- worker ---------------------------------------------------------------
    def _run(self) -> None:
        while True:
            self._event.wait(timeout=0.1)
            self._event.clear()
            if self._stop.is_set():
                return
            try:
                self._drain()
                self._run_pending_retunes()
            except Exception as exc:  # noqa: BLE001 - serving must stay green
                self._note_error(exc)

    def _note_error(self, exc: BaseException) -> None:
        self._errors += 1
        self._last_error = f"{type(exc).__name__}: {exc}"
        self._m_errors.inc()

    def _drain(self) -> None:
        while True:
            try:
                sample = self._pending.popleft()
            except IndexError:
                return
            try:
                self._process(sample)
            except Exception as exc:  # noqa: BLE001 - one bad sample is not fatal
                self._note_error(exc)

    def _process(self, sample: tuple) -> None:
        key, A, base, plan, report, _wall_ms, n_cols, explored_cfg = sample
        backend = str(report.backend)
        observed_ms = float(report.simulated_ms)
        exec_cfg = plan.config
        shape = exec_cfg.resolved_block_shape()

        self._observations += 1
        self._m_obs.inc(backend=backend)
        self._m_observed.observe(
            observed_ms, backend=backend, block_shape=f"{shape[0]}x{shape[1]}"
        )

        state = self._keys.get(key)
        if state is None and len(self._keys) < int(self.config.max_keys):
            state = _KeyState(key, A, base)
            with self._near_lock:
                state.alternates = list(self._near.get(state.fingerprint, ()))
            self._keys[key] = state

        if explored_cfg is not None:
            self._explored += 1
            if state is not None:
                self._observe_explored(state, explored_cfg, observed_ms)
        elif state is not None:
            if state.incumbent_sig is None:
                state.incumbent_sig = config_signature(exec_cfg)
            state.incumbent_window.append(observed_ms)
            if not state.alternates:
                with self._near_lock:
                    state.alternates = list(self._near.get(state.fingerprint, ()))

        if self._observations:
            self._m_share.set(self._explored / self._observations)

        if explored_cfg is None:
            self._update_drift(state, A, exec_cfg, backend, report, n_cols)

    # -- drift + recalibration ------------------------------------------------
    def _update_drift(
        self,
        state: Optional[_KeyState],
        A: CSRMatrix,
        exec_cfg: SMaTConfig,
        backend: str,
        report,
        n_cols: int,
    ) -> None:
        predicted_ms = self._predicted_ms(state, A, exec_cfg, backend, report, n_cols)
        if predicted_ms is None or predicted_ms <= 0:
            return
        observed_ms = float(report.simulated_ms)
        if observed_ms <= 0:
            return
        logs = self._drift_logs.get(backend)
        if logs is None:
            logs = self._drift_logs[backend] = deque(maxlen=int(self.config.window))
        logs.append(math.log(observed_ms / predicted_ms))
        drift = math.exp(sum(logs) / len(logs))
        self._drift[backend] = drift
        self._m_drift.set(drift, backend=backend)

        threshold = float(self.config.drift_threshold)
        if len(logs) >= int(self.config.min_samples) and (
            drift > threshold or drift < 1.0 / threshold
        ):
            self._recalibrate(backend, drift)

    def _predicted_ms(
        self,
        state: Optional[_KeyState],
        A: CSRMatrix,
        exec_cfg: SMaTConfig,
        backend: str,
        report,
        n_cols: int,
    ) -> Optional[float]:
        """Calibrated Eq. 1 prediction (including the current recalibration
        scale) at the executed plan's actual work measure."""
        shape = exec_cfg.resolved_block_shape()
        try:
            fit = calibrate(exec_cfg, shape, n_cols, kernel=backend)
        except KernelUnsupportedError:
            return None
        if backend == "smat":
            work = float(report.n_blocks)
        else:
            cached = state.work.get(backend) if state is not None else None
            if cached is None:
                kernel = get_kernel(backend, exec_cfg.arch, exec_cfg.precision)
                cached = float(kernel.tuning_work(A))
                if state is not None:
                    state.work[backend] = cached
            work = cached
        return 1e3 * float(fit.predict(work)) * self.scales.get(backend, 1.0)

    def _recalibrate(self, backend: str, drift: float) -> None:
        """Fold the observed drift into the backend's Eq. 1 price and queue
        re-tunes for every tracked key (active mode only)."""
        self.scales[backend] = self.scales.get(backend, 1.0) * drift
        self._drift_logs[backend].clear()
        self._drift[backend] = 1.0
        self._recalibrations += 1
        self._m_recal.inc(backend=backend)
        self._m_scale.set(self.scales[backend], backend=backend)
        self._m_drift.set(1.0, backend=backend)
        if self._tuner is not None:
            for state in self._keys.values():
                state.retune_pending = True

    # -- background re-tune + swap -------------------------------------------
    def _run_pending_retunes(self) -> None:
        if self._tuner is None:
            return
        for state in list(self._keys.values()):
            if self._stop.is_set():
                return
            if not state.retune_pending:
                continue
            state.retune_pending = False
            try:
                self._retune(state)
            except Exception as exc:  # noqa: BLE001 - keep serving on the incumbent
                self._retunes_failed += 1
                self._note_error(exc)

    def _retune(self, state: _KeyState) -> None:
        """Re-run the search with the recalibrated model and swap the plan
        when the winner changed.  ``store=True`` persists the winner, so
        a fresh process resolves straight to the live-learned config."""
        assert self._tuner is not None
        with self._tracer.span(
            "tuner.online_retune", fingerprint=state.fingerprint[:12]
        ) as span:
            result = self._tuner.tune(state.A, state.base, store=True)
            self._retunes += 1
            self._m_retunes.inc()
            best_cfg = result.best_config
            sig = config_signature(best_cfg)
            span.set(winner=result.best.candidate.label, changed=sig != state.incumbent_sig)
            if sig != state.incumbent_sig:
                self._swap_plan(state, best_cfg, sig)

    def _swap_plan(self, state: _KeyState, cfg: SMaTConfig, sig: str) -> None:
        """Build the new winner's plan and publish it under the unchanged
        tuned key -- one locked ``PlanCache.put``, so serving threads see
        either the old or the new plan, never a partial one."""
        if self._plan_cache is None:
            return
        plan = build_with_fallback(state.A, cfg, tracer=self._tracer)
        self._plan_cache.put(state.key, plan)
        state.incumbent_sig = sig
        state.incumbent_window.clear()
        self._plan_swaps += 1
        self._m_swaps.inc()

    # -- exploration ----------------------------------------------------------
    def _on_tuning_result(self, result: TuningResult) -> None:
        """Observer on :meth:`Tuner.tune`: remember near-winner configs per
        fingerprint so exploration has candidates (called from whichever
        thread ran the search)."""
        best = result.best
        if best is None:
            return
        ceiling = float(best.simulated_ms) * float(self.config.near_margin)
        alternates = [
            o.candidate.expand(result.base_config)
            for o in result.outcomes
            if o.measured and o is not best and o.simulated_ms <= ceiling
        ][:MAX_ALTERNATES]
        with self._near_lock:
            self._near[result.fingerprint] = alternates
        for state in self._keys.values():
            if state.fingerprint == result.fingerprint:
                state.alternates = alternates

    def _observe_explored(
        self, state: _KeyState, cfg: SMaTConfig, observed_ms: float
    ) -> None:
        sig = config_signature(cfg)
        entry = state.explore_windows.get(sig)
        if entry is None:
            entry = state.explore_windows[sig] = (cfg, deque(maxlen=_OBS_WINDOW))
        entry[1].append(observed_ms)
        self._maybe_promote(state, sig, cfg, entry[1])

    def _maybe_promote(
        self, state: _KeyState, sig: str, cfg: SMaTConfig, window: Deque[float]
    ) -> None:
        """Promote an explored config that demonstrably beats the incumbent:
        plan swap + persisted winner, without waiting for drift."""
        needed = min(8, int(self.config.min_samples))
        if len(window) < needed or len(state.incumbent_window) < needed:
            return
        explored_mean = sum(window) / len(window)
        incumbent_mean = sum(state.incumbent_window) / len(state.incumbent_window)
        if explored_mean >= incumbent_mean * PROMOTE_SLACK:
            return
        self._swap_plan(state, cfg, sig)
        self._persist_winner(state, cfg, explored_mean)
        state.explore_windows.clear()
        state.incumbent_window.clear()
        state.alternates = [a for a in state.alternates if config_signature(a) != sig]
        self._promotions += 1
        self._m_promotions.inc()

    def _persist_winner(
        self, state: _KeyState, cfg: SMaTConfig, observed_ms: float
    ) -> None:
        """Write a promoted configuration into the persistent tuning cache
        (same entry shape as :meth:`TuningResult.cache_entry`)."""
        if self._tuner is None or self._tuner.cache is None:
            return
        import time as _time

        entry = {
            "kernel": cfg.resolved_kernel(),
            "block_shape": list(cfg.resolved_block_shape()),
            "reorder": cfg.reorder,
            "reorder_columns": bool(getattr(cfg, "reorder_columns", False)),
            "reorder_params": dict(getattr(cfg, "reorder_params", {}) or {}),
            "simulated_ms": float(observed_ms),
            "tuned_vs_default": 1.0,
            "n_measured": 0,
            "n_pruned": 0,
            "n_cols": self._tuner.n_cols,
            "tuned_at": _time.time(),
            "promoted_online": True,
        }
        self._tuner.cache.put(self._tuner.key_for(state.A, state.base), entry)

    # -- telemetry ------------------------------------------------------------
    def telemetry(self) -> OnlineTelemetry:
        """Snapshot of the online loop's counters and per-backend drift."""
        worker = self._worker
        return OnlineTelemetry(
            enabled=True,
            observations=self._observations,
            keys=len(self._keys),
            pending=len(self._pending),
            drift=dict(self._drift),
            model_scales=dict(self.scales),
            recalibrations=self._recalibrations,
            retunes=self._retunes,
            retunes_failed=self._retunes_failed,
            plan_swaps=self._plan_swaps,
            explored=self._explored,
            exploration_share=(
                self._explored / self._observations if self._observations else 0.0
            ),
            promotions=self._promotions,
            errors=self._errors,
            last_error=self._last_error,
            worker_alive=worker is not None and worker.is_alive(),
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        t = self.telemetry()
        return (
            f"<OnlineTuner observations={t.observations} keys={t.keys} "
            f"recalibrations={t.recalibrations} retunes={t.retunes}>"
        )
