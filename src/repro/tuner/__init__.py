"""Auto-tuning: per-matrix block-shape x reordering configuration search.

The paper picks its configuration (MMA-matched 16 x 8 blocks, Jaccard row
reordering) by hand through the ablations of Sections IV-B and IV-C.
This package turns those ablations into a self-optimising subsystem:

* :mod:`~repro.tuner.space` enumerates the candidate configurations
  (MMA-tile block-shape menu x reordering algorithms x the row+column
  knob),
* :mod:`~repro.tuner.model` prices candidates with the paper's own
  analytical model (Eq. 1 fitted through the real kernel + cost model,
  Eq. 2 block-count bounds) so hopeless candidates are pruned before any
  expensive reordering runs,
* :class:`~repro.tuner.search.Tuner` measures the survivors with real
  timed runs and returns a :class:`~repro.tuner.search.TuningResult`
  whose winner is never worse than the paper's default, and
* :class:`~repro.tuner.cache.TuningCache` persists winners on disk keyed
  by matrix fingerprint, so ``SMaTConfig(reorder="auto")`` and
  ``SpMMEngine(tune=True)`` pay the search once per matrix across
  processes and engine instances.

Quick start
-----------
>>> from repro.matrices import suitesparse
>>> from repro.tuner import tune
>>> A = suitesparse.load("cant", scale=0.05)
>>> result = tune(A)                       # doctest: +SKIP
>>> result.best_config.reorder             # doctest: +SKIP
'jaccard'
>>> result.tuned_vs_default >= 1.0         # doctest: +SKIP
True
"""

from ..core.policy import OnlineTuningConfig
from .cache import TuningCache, TuningCacheStats, default_cache_path
from .model import CandidateEstimate, calibrate, clear_calibration_cache, estimate_candidate
from .online import OnlineTelemetry, OnlineTuner
from .search import (
    CandidateOutcome,
    Tuner,
    TuningResult,
    resolve_auto_config,
    tune,
    tuning_key,
)
from .space import (
    DEFAULT_REORDERERS,
    Candidate,
    backend_menu,
    block_shape_menu,
    candidate_space,
)

__all__ = [
    "Tuner",
    "TuningResult",
    "OnlineTuner",
    "OnlineTelemetry",
    "OnlineTuningConfig",
    "CandidateOutcome",
    "tune",
    "resolve_auto_config",
    "tuning_key",
    "Candidate",
    "candidate_space",
    "backend_menu",
    "block_shape_menu",
    "DEFAULT_REORDERERS",
    "CandidateEstimate",
    "estimate_candidate",
    "calibrate",
    "clear_calibration_cache",
    "TuningCache",
    "TuningCacheStats",
    "default_cache_path",
]
