"""repro -- a Python reproduction of SMaT (SC'24).

SMaT ("High Performance Unstructured SpMM Computation Using Tensor Cores",
Okanovic et al., SC 2024) is an SpMM library that runs unstructured sparse
matrices on NVIDIA Tensor Cores via a BCSR blocking, a block-minimising
row permutation, and a low-level MMA kernel.  This package reproduces the
full system in Python: the storage formats, the reordering algorithms, the
kernel (and every baseline the paper compares against) on an analytical
A100 performance simulator, and the complete benchmark harness for every
table and figure of the evaluation.

Quick start
-----------
>>> import numpy as np
>>> from repro import SMaT, SMaTConfig
>>> from repro.matrices import band_matrix
>>> A = band_matrix(2048, 32)
>>> smat = SMaT(A, SMaTConfig(reorder="jaccard"))
>>> B = np.ones((2048, 8), dtype=np.float32)
>>> C, report = smat.multiply(B, return_report=True)
>>> C.shape
(2048, 8)
"""

from . import (
    analysis,
    core,
    engine,
    formats,
    gpu,
    kernels,
    matrices,
    reorder,
    serve,
    shard,
    tuner,
    workloads,
)
from .core import (
    DEFAULT_LIBRARIES,
    ExecutionPlan,
    ExecutionPolicy,
    LibraryMeasurement,
    LinearPerformanceModel,
    MultiplyReport,
    OnlineTuningConfig,
    PreprocessReport,
    SMaT,
    SMaTConfig,
    compare_libraries,
)
from .engine import SpMMEngine
from .serve import SpMMClient, SpMMServer
from .formats import BCSRMatrix, COOMatrix, CSCMatrix, CSRMatrix, DenseMatrix, SRBCRSMatrix
from .shard import ShardedSpMM
from .tuner import Tuner, TuningCache, TuningResult
from .workloads import WorkloadReport
from .gpu import A100_SXM4_40GB, GPUArchitecture, Precision
from .kernels import (
    CublasDenseKernel,
    CusparseCSRKernel,
    DASPKernel,
    KernelResult,
    MagicubeKernel,
    SMaTKernel,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "SMaT",
    "SMaTConfig",
    "ExecutionPolicy",
    "OnlineTuningConfig",
    "SpMMEngine",
    "SpMMServer",
    "SpMMClient",
    "ShardedSpMM",
    "Tuner",
    "TuningResult",
    "TuningCache",
    "WorkloadReport",
    "ExecutionPlan",
    "PreprocessReport",
    "MultiplyReport",
    "LinearPerformanceModel",
    "compare_libraries",
    "LibraryMeasurement",
    "DEFAULT_LIBRARIES",
    "CSRMatrix",
    "CSCMatrix",
    "COOMatrix",
    "BCSRMatrix",
    "SRBCRSMatrix",
    "DenseMatrix",
    "SMaTKernel",
    "CusparseCSRKernel",
    "DASPKernel",
    "MagicubeKernel",
    "CublasDenseKernel",
    "KernelResult",
    "GPUArchitecture",
    "A100_SXM4_40GB",
    "Precision",
    "formats",
    "matrices",
    "reorder",
    "gpu",
    "kernels",
    "core",
    "engine",
    "serve",
    "shard",
    "tuner",
    "workloads",
    "analysis",
]
