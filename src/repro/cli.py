"""Command-line interface.

``python -m repro`` gives quick access to the library without writing a
script:

* ``python -m repro compare --matrix cop20k_A --scale 0.1 --n 8``
  runs one Table-I stand-in through SMaT and the baselines and prints the
  comparison table (a single row of Figure 8);
* ``python -m repro band --size 4096 --n 8`` runs the band-matrix sweep of
  Figure 9 at a configurable size;
* ``python -m repro reorder --matrix mip1 --scale 0.1`` reports the
  block-count reduction of every reordering algorithm (the Section IV-C
  ablation);
* ``python -m repro engine --matrix cant --scale 0.1 --batch 16`` pushes a
  batch of operands through the plan-caching :class:`~repro.engine.SpMMEngine`
  twice (cold then warm) and reports the cache-hit speedup and batched
  throughput;
* ``python -m repro matrices`` lists the available Table-I stand-ins.
"""

from __future__ import annotations

import argparse
import time
from typing import List, Optional

import numpy as np

from .analysis import format_table
from .core import SMaTConfig, compare_libraries
from .engine import SpMMEngine
from .matrices import band_matrix, band_sparsity, suitesparse
from .reorder import get_reorderer

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SMaT reproduction: simulated Tensor-Core SpMM experiments",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_compare = sub.add_parser("compare", help="compare libraries on one matrix")
    p_compare.add_argument("--matrix", default="cop20k_A", help="Table-I matrix name")
    p_compare.add_argument("--scale", type=float, default=0.1, help="stand-in scale (0..1]")
    p_compare.add_argument("--n", type=int, default=8, help="columns of the dense matrix B")
    p_compare.add_argument(
        "--libraries",
        default="smat,dasp,magicube,cusparse",
        help="comma-separated library list",
    )
    p_compare.add_argument("--reorder", default="jaccard", help="SMaT preprocessing algorithm")

    p_band = sub.add_parser("band", help="band-matrix sweep against cuBLAS (Figure 9)")
    p_band.add_argument("--size", type=int, default=4096, help="matrix dimension")
    p_band.add_argument("--n", type=int, default=8, help="columns of B")

    p_reorder = sub.add_parser("reorder", help="reordering-algorithm ablation")
    p_reorder.add_argument("--matrix", default="mip1")
    p_reorder.add_argument("--scale", type=float, default=0.1)
    p_reorder.add_argument(
        "--algorithms", default="jaccard,saad,rcm,graycode,hypergraph"
    )

    p_engine = sub.add_parser(
        "engine", help="batched SpMM through the plan-caching execution engine"
    )
    p_engine.add_argument("--matrix", default="cant", help="Table-I matrix name")
    p_engine.add_argument("--scale", type=float, default=0.1, help="stand-in scale (0..1]")
    p_engine.add_argument("--n", type=int, default=8, help="columns of each dense operand B")
    p_engine.add_argument("--batch", type=int, default=16, help="operands per batch")
    p_engine.add_argument("--workers", type=int, default=4, help="engine worker threads")
    p_engine.add_argument("--cache-size", type=int, default=8, help="plan-cache capacity")
    p_engine.add_argument("--reorder", default="jaccard", help="preprocessing algorithm")

    sub.add_parser("matrices", help="list the Table-I stand-ins")
    return parser


def _cmd_compare(args) -> int:
    A = suitesparse.load(args.matrix, scale=args.scale)
    rng = np.random.default_rng(0)
    B = rng.normal(size=(A.ncols, args.n)).astype(np.float32)
    libraries = [x.strip() for x in args.libraries.split(",") if x.strip()]
    results = compare_libraries(
        A, B, libraries=libraries, config=SMaTConfig(reorder=args.reorder)
    )
    rows = [
        {
            "library": r.library,
            "GFLOP/s": r.gflops,
            "time_ms": r.time_ms,
            "supported": r.supported,
            "correct": r.correct,
        }
        for r in results
    ]
    print(format_table(
        rows,
        title=f"{args.matrix} stand-in (scale={args.scale}), N={args.n}, simulated A100",
    ))
    return 0


def _cmd_band(args) -> int:
    rng = np.random.default_rng(0)
    B = rng.normal(size=(args.size, args.n)).astype(np.float32)
    rows = []
    for bw in (64, 256, 1024, args.size // 4, args.size - 1):
        bw = min(max(1, bw), args.size - 1)
        A = band_matrix(args.size, bw, rng=rng)
        res = compare_libraries(
            A, B, libraries=("smat", "cublas", "cusparse", "dasp"), check_correctness=False
        )
        rows.append(
            {
                "bandwidth": bw,
                "sparsity_%": 100 * band_sparsity(args.size, bw),
                **{r.library: r.gflops for r in res},
            }
        )
    print(format_table(rows, title=f"band sweep {args.size}x{args.size}, N={args.n}"))
    return 0


def _cmd_reorder(args) -> int:
    A = suitesparse.load(args.matrix, scale=args.scale)
    rows = []
    for algo in (x.strip() for x in args.algorithms.split(",") if x.strip()):
        result = get_reorderer(algo, block_shape=(16, 8)).reorder(A)
        rows.append(
            {
                "algorithm": algo,
                "blocks_before": result.stats_before.n_blocks,
                "blocks_after": result.stats_after.n_blocks,
                "reduction": result.block_reduction,
                "std_after": result.stats_after.std_blocks_per_row,
            }
        )
    print(format_table(rows, title=f"reordering ablation on {args.matrix} (scale={args.scale})"))
    return 0


def _cmd_engine(args) -> int:
    A = suitesparse.load(args.matrix, scale=args.scale)
    rng = np.random.default_rng(0)
    Bs = [
        rng.normal(size=(A.ncols, args.n)).astype(np.float32) for _ in range(max(1, args.batch))
    ]
    rows = []
    with SpMMEngine(
        SMaTConfig(reorder=args.reorder),
        cache_size=args.cache_size,
        max_workers=args.workers,
    ) as engine:
        for label in ("cold", "warm"):
            before = engine.cache_stats
            outcome = engine.multiply_many(A, Bs)
            after = outcome.summary.cache
            rows.append(
                {
                    "pass": label,
                    "items": outcome.summary.n_items,
                    "wall_ms": outcome.summary.wall_ms,
                    "items/s": outcome.summary.items_per_second,
                    "sim_GFLOP/s": outcome.summary.simulated_gflops,
                    "cache_hits": after.hits - before.hits,
                    "cache_misses": after.misses - before.misses,
                }
            )
        # single-item latency: cold preprocessing vs cached plan
        engine.clear_cache()
        start = time.perf_counter()
        engine.multiply(A, Bs[0])
        cold_ms = 1e3 * (time.perf_counter() - start)
        start = time.perf_counter()
        engine.multiply(A, Bs[0])
        warm_ms = 1e3 * (time.perf_counter() - start)
    print(format_table(
        rows,
        title=(
            f"engine batching on {args.matrix} (scale={args.scale}), N={args.n}, "
            f"batch={args.batch}, workers={args.workers}"
        ),
    ))
    speedup = cold_ms / warm_ms if warm_ms > 0 else float("inf")
    print(
        f"single-query latency: cold (preprocess + execute) {cold_ms:.2f} ms, "
        f"cached plan {warm_ms:.2f} ms -> {speedup:.1f}x speedup"
    )
    return 0


def _cmd_matrices(_args) -> int:
    rows = [
        {
            "name": m.name,
            "domain": m.domain,
            "rows": m.nrows,
            "nnz": m.nnz,
            "sparsity_%": 100 * m.sparsity,
        }
        for m in suitesparse.TABLE1
    ]
    print(format_table(rows, title="Table I matrices (paper metadata)"))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {
        "compare": _cmd_compare,
        "band": _cmd_band,
        "reorder": _cmd_reorder,
        "engine": _cmd_engine,
        "matrices": _cmd_matrices,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
