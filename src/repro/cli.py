"""Command-line interface.

``python -m repro`` gives quick access to the library without writing a
script:

* ``python -m repro compare --matrix cop20k_A --scale 0.1 --n 8``
  runs one Table-I stand-in through SMaT and the baselines and prints the
  comparison table (a single row of Figure 8);
* ``python -m repro band --size 4096 --n 8`` runs the band-matrix sweep of
  Figure 9 at a configurable size;
* ``python -m repro reorder --matrix mip1 --scale 0.1`` reports the
  block-count reduction of every reordering algorithm (the Section IV-C
  ablation);
* ``python -m repro engine --matrix cant --scale 0.1 --batch 16`` pushes a
  batch of operands through the plan-caching :class:`~repro.engine.SpMMEngine`
  twice (cold then warm) and reports the cache-hit speedup and batched
  throughput;
* ``python -m repro tune --matrix cant --scale 0.1`` runs the per-matrix
  auto-tuner (block shape x reordering search) and prints the search
  table: every candidate with its predicted cost, measured time, and the
  winner;
* ``python -m repro shard --matrix cant --scale 0.1 --grid 2x2`` splits
  the matrix into a balanced shard grid, prepares one plan per shard, and
  prints the per-shard breakdown (nnz, imbalance, chosen config, time)
  plus the sharded-vs-single-plan comparison;
* ``python -m repro workload --matrix cant --scale 0.1 --workload pagerank``
  runs an iterative SpMM application (PageRank, power iteration, GCN
  forward pass, Jacobi / Chebyshev smoother) on the engine and prints the
  convergence table plus the plan-amortisation ratio;
* ``python -m repro serve --port 8942`` starts the SpMM-as-a-service HTTP
  daemon (register matrices by fingerprint, then multiply over JSON; see
  ``docs/serving.md`` for the operations manual);
* ``python -m repro trace --matrix cant --workload pagerank --out trace.json``
  runs a workload with tracing on, prints the ASCII span tree, and writes
  a Chrome trace-event JSON (see ``docs/observability.md``);
* ``python -m repro matrices`` lists the available Table-I stand-ins;
* ``python -m repro kernels`` lists the execution backends (name, internal
  format, cost-model summary) selectable via ``kernel=`` / ``--kernel``.
"""

from __future__ import annotations

import argparse
import time
from typing import List, Optional

import numpy as np

from .analysis import format_table
from .cli_args import (
    KERNEL_CHOICES,
    add_batch_arg,
    add_executor_arg,
    add_grid_arg,
    add_shard_mode_arg,
    add_trace_arg,
    add_workers_arg,
    damping_type as _damping_type,
    policy_from_args,
    positive_int as _positive_int,
    scale_type as _scale_type,
)
from .core import ExecutionPolicy, SMaTConfig, compare_libraries
from .engine import SpMMEngine
from .matrices import band_matrix, band_sparsity, suitesparse
from .reorder import get_reorderer

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Build the ``repro`` argument parser with every subcommand."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SMaT reproduction: simulated Tensor-Core SpMM experiments",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_compare = sub.add_parser("compare", help="compare libraries on one matrix")
    p_compare.add_argument("--matrix", default="cop20k_A", help="Table-I matrix name")
    p_compare.add_argument("--scale", type=_scale_type, default=0.1, help="stand-in scale (0..1]")
    p_compare.add_argument(
        "--n", type=_positive_int, default=8, help="columns of the dense matrix B"
    )
    p_compare.add_argument(
        "--libraries",
        default="smat,dasp,magicube,cusparse",
        help="comma-separated library list ('auto' adds the tuned-backend row)",
    )
    p_compare.add_argument("--reorder", default="jaccard", help="SMaT preprocessing algorithm")
    p_compare.add_argument(
        "--engine",
        action="store_true",
        help="route every library through a shared plan-caching SpMMEngine and "
        "report the cold vs warm (cached-plan) wall-clock per library",
    )
    p_compare.add_argument(
        "--tune",
        action="store_true",
        help="tune plans through the auto-tuner and add the 'auto' backend row "
        "(implies --engine)",
    )

    p_band = sub.add_parser("band", help="band-matrix sweep against cuBLAS (Figure 9)")
    p_band.add_argument("--size", type=_positive_int, default=4096, help="matrix dimension")
    p_band.add_argument("--n", type=_positive_int, default=8, help="columns of B")

    p_reorder = sub.add_parser("reorder", help="reordering-algorithm ablation")
    p_reorder.add_argument("--matrix", default="mip1")
    p_reorder.add_argument("--scale", type=_scale_type, default=0.1)
    p_reorder.add_argument(
        "--algorithms", default="jaccard,saad,rcm,graycode,hypergraph"
    )

    p_engine = sub.add_parser(
        "engine", help="batched SpMM through the plan-caching execution engine"
    )
    p_engine.add_argument("--matrix", default="cant", help="Table-I matrix name")
    p_engine.add_argument("--scale", type=_scale_type, default=0.1, help="stand-in scale (0..1]")
    p_engine.add_argument(
        "--n", type=_positive_int, default=8, help="columns of each dense operand B"
    )
    add_batch_arg(p_engine)
    add_workers_arg(p_engine)
    add_executor_arg(p_engine)
    p_engine.add_argument(
        "--cache-size", type=_positive_int, default=8, help="plan-cache capacity"
    )
    p_engine.add_argument("--reorder", default="jaccard", help="preprocessing algorithm")
    p_engine.add_argument(
        "--tune",
        action="store_true",
        help="build tuned plans through the auto-tuner (persistent tuning cache)",
    )
    add_trace_arg(p_engine)

    p_tune = sub.add_parser(
        "tune", help="auto-tune block shape x reordering for one matrix"
    )
    p_tune.add_argument("--matrix", default="cant", help="Table-I matrix name")
    p_tune.add_argument("--scale", type=_scale_type, default=0.1, help="stand-in scale (0..1]")
    p_tune.add_argument(
        "--n", type=_positive_int, default=8, help="operand width N the search optimises for"
    )
    p_tune.add_argument(
        "--budget",
        type=_positive_int,
        default=8,
        help="measurement budget (candidates given a real timed run)",
    )
    p_tune.add_argument(
        "--reorderers",
        default=None,
        help="comma-separated algorithm list (default: the Section IV-C ablation set)",
    )
    p_tune.add_argument(
        "--kernel",
        choices=KERNEL_CHOICES,
        default="smat",
        help="backend to tune for: a library name, or 'auto' to grow the search "
        "space with a backend axis (the per-matrix library winner)",
    )
    p_tune.add_argument(
        "--repeats", type=_positive_int, default=1, help="timed runs per measured candidate"
    )
    p_tune.add_argument(
        "--cache",
        default=None,
        metavar="PATH",
        help="tuning-cache file (default: $REPRO_TUNING_CACHE or the user cache dir)",
    )
    p_tune.add_argument(
        "--no-cache",
        action="store_true",
        help="search fresh and do not persist the result",
    )

    p_shard = sub.add_parser(
        "shard", help="sharded SpMM: balanced partition with per-shard plans"
    )
    p_shard.add_argument("--matrix", default="cant", help="Table-I matrix name")
    p_shard.add_argument("--scale", type=_scale_type, default=0.1, help="stand-in scale (0..1]")
    add_grid_arg(p_shard)
    add_shard_mode_arg(p_shard)
    p_shard.add_argument(
        "--n", type=_positive_int, default=8, help="columns of the dense operand B"
    )
    add_workers_arg(p_shard)
    add_executor_arg(p_shard)
    p_shard.add_argument(
        "--tune",
        action="store_true",
        help="tune every shard individually (block shape x reordering per shard)",
    )

    p_work = sub.add_parser(
        "workload", help="iterative SpMM application on the serving engine"
    )
    p_work.add_argument(
        "--workload",
        choices=("pagerank", "power", "gcn", "jacobi", "chebyshev"),
        default="pagerank",
        help="which iterative algorithm to run",
    )
    p_work.add_argument("--matrix", default="cant", help="Table-I matrix name")
    p_work.add_argument("--scale", type=_scale_type, default=0.1, help="stand-in scale (0..1]")
    p_work.add_argument(
        "--iters", type=_positive_int, default=30, help="maximum iterations (or GCN layers)"
    )
    p_work.add_argument(
        "--tol", type=float, default=1e-6, help="convergence tolerance (early exit)"
    )
    p_work.add_argument(
        "--damping", type=_damping_type, default=0.85, help="PageRank damping factor in (0, 1)"
    )
    p_work.add_argument(
        "--n", type=_positive_int, default=16, help="GCN feature width / smoother RHS count"
    )
    add_workers_arg(p_work)
    add_executor_arg(p_work)
    p_work.add_argument(
        "--kernel",
        choices=KERNEL_CHOICES,
        default="smat",
        help="execution backend for every SpMM ('auto' = per-matrix tuner choice)",
    )
    p_work.add_argument(
        "--tune",
        action="store_true",
        help="build the workload's plan(s) through the auto-tuner",
    )
    p_work.add_argument(
        "--sharded",
        action="store_true",
        help="run every SpMM through the sharded subsystem",
    )
    add_grid_arg(
        p_work, help="shard grid when --sharded: row panels 'R' or 2D grid 'RxC'"
    )
    add_shard_mode_arg(p_work, help="shard balancing mode when --sharded")
    add_trace_arg(p_work)

    p_trace = sub.add_parser(
        "trace",
        help="run a workload with tracing on; print the span tree and "
        "export a Chrome trace",
    )
    p_trace.add_argument("--matrix", default="cant", help="Table-I matrix name")
    p_trace.add_argument("--scale", type=_scale_type, default=0.1, help="stand-in scale (0..1]")
    p_trace.add_argument(
        "--workload",
        choices=("pagerank", "power", "gcn", "jacobi", "chebyshev"),
        default="pagerank",
        help="which iterative algorithm to trace",
    )
    p_trace.add_argument(
        "--iters", type=_positive_int, default=10, help="maximum iterations (or GCN layers)"
    )
    p_trace.add_argument(
        "--tol", type=float, default=1e-6, help="convergence tolerance (early exit)"
    )
    p_trace.add_argument(
        "--damping", type=_damping_type, default=0.85, help="PageRank damping factor in (0, 1)"
    )
    p_trace.add_argument(
        "--n", type=_positive_int, default=16, help="GCN feature width / smoother RHS count"
    )
    add_workers_arg(p_trace)
    add_executor_arg(p_trace)
    p_trace.add_argument(
        "--kernel",
        choices=KERNEL_CHOICES,
        default="smat",
        help="execution backend for every SpMM ('auto' = per-matrix tuner choice)",
    )
    p_trace.add_argument(
        "--tune",
        action="store_true",
        help="build the workload's plan(s) through the auto-tuner",
    )
    p_trace.add_argument(
        "--sharded",
        action="store_true",
        help="run every SpMM through the sharded subsystem",
    )
    add_grid_arg(
        p_trace, help="shard grid when --sharded: row panels 'R' or 2D grid 'RxC'"
    )
    add_shard_mode_arg(p_trace, help="shard balancing mode when --sharded")
    p_trace.add_argument(
        "--sample-rate",
        type=float,
        default=1.0,
        help="root-span sampling rate in (0, 1] (1.0 records every trace)",
    )
    p_trace.add_argument(
        "--out",
        default="trace.json",
        metavar="FILE",
        help="Chrome trace-event JSON output path",
    )

    p_serve = sub.add_parser(
        "serve", help="run the SpMM-as-a-service HTTP daemon"
    )
    p_serve.add_argument("--host", default="127.0.0.1", help="bind address")
    p_serve.add_argument(
        "--port", type=int, default=8942, help="bind port (0 picks an ephemeral port)"
    )
    add_workers_arg(p_serve)
    add_executor_arg(p_serve)
    p_serve.add_argument(
        "--cache-size", type=_positive_int, default=32, help="plan-cache capacity"
    )
    p_serve.add_argument(
        "--kernel",
        choices=KERNEL_CHOICES,
        default="smat",
        help="default execution backend (requests may override per call)",
    )
    p_serve.add_argument("--reorder", default="jaccard", help="default preprocessing algorithm")
    p_serve.add_argument(
        "--tune",
        action="store_true",
        help="build every plan through the auto-tuner",
    )
    p_serve.add_argument(
        "--token",
        action="append",
        default=[],
        metavar="NAME=TOKEN",
        help="tenant token 'name=token' or 'name:max_matrices:max_plans=token'; "
        "repeatable; no tokens = open (anonymous) mode",
    )
    p_serve.add_argument(
        "--max-inflight",
        type=_positive_int,
        default=None,
        help="concurrent executions admitted (default: worker count)",
    )
    p_serve.add_argument(
        "--max-queue",
        type=int,
        default=16,
        help="requests allowed to wait for an execution slot before 429",
    )
    p_serve.add_argument(
        "--max-body-mb",
        type=_positive_int,
        default=64,
        help="request-body size limit in MiB (larger uploads get 413)",
    )
    p_serve.add_argument(
        "--registry-capacity",
        type=_positive_int,
        default=256,
        help="global cap on distinct registered matrices",
    )
    p_serve.add_argument(
        "--quiet", action="store_true", help="suppress the JSON request log on stderr"
    )

    sub.add_parser("matrices", help="list the Table-I stand-ins")
    sub.add_parser(
        "kernels", help="list the execution backends (name, format, cost model)"
    )
    return parser


def _cmd_compare(args) -> int:
    A = suitesparse.load(args.matrix, scale=args.scale)
    rng = np.random.default_rng(0)
    B = rng.normal(size=(A.ncols, args.n)).astype(np.float32)
    libraries = [x.strip() for x in args.libraries.split(",") if x.strip()]
    config = SMaTConfig(reorder=args.reorder)
    use_engine = args.engine or args.tune
    if args.tune and "auto" not in [x.lower() for x in libraries]:
        libraries.append("auto")

    if not use_engine:
        results = compare_libraries(A, B, libraries=libraries, config=config)
        warm = None
    else:
        with SpMMEngine(
            config,
            policy=ExecutionPolicy(max_workers=1, tune=args.tune),
            cache_size=2 * len(libraries) + 2,
        ) as engine:
            results = compare_libraries(A, B, libraries=libraries, config=config, engine=engine)
            # second pass: every library's plan now comes from the cache
            warm = compare_libraries(
                A, B, libraries=libraries, config=config, engine=engine,
                check_correctness=False,
            )

    rows = []
    for i, r in enumerate(results):
        row = {
            "library": r.library,
            "backend": r.meta.get("backend", "-"),
            "GFLOP/s": r.gflops,
            "time_ms": r.time_ms,
            "supported": r.supported,
            "correct": r.correct,
        }
        if warm is not None:
            row["cold_wall_ms"] = r.meta.get("wall_ms", float("nan"))
            row["warm_wall_ms"] = warm[i].meta.get("wall_ms", float("nan"))
        rows.append(row)
    print(format_table(
        rows,
        title=f"{args.matrix} stand-in (scale={args.scale}), N={args.n}, simulated A100"
        + (", engine-cached" if use_engine else ""),
    ))
    if warm is not None:
        hits = sum(1 for r in warm if r.meta.get("cache_hit"))
        print(
            f"warm pass: {hits}/{len(warm)} libraries served from the plan cache "
            "(cold pays each backend's preprocessing once)"
        )
    return 0


def _cmd_band(args) -> int:
    rng = np.random.default_rng(0)
    B = rng.normal(size=(args.size, args.n)).astype(np.float32)
    rows = []
    for bw in (64, 256, 1024, args.size // 4, args.size - 1):
        bw = min(max(1, bw), args.size - 1)
        A = band_matrix(args.size, bw, rng=rng)
        res = compare_libraries(
            A, B, libraries=("smat", "cublas", "cusparse", "dasp"), check_correctness=False
        )
        rows.append(
            {
                "bandwidth": bw,
                "sparsity_%": 100 * band_sparsity(args.size, bw),
                **{r.library: r.gflops for r in res},
            }
        )
    print(format_table(rows, title=f"band sweep {args.size}x{args.size}, N={args.n}"))
    return 0


def _cmd_reorder(args) -> int:
    A = suitesparse.load(args.matrix, scale=args.scale)
    rows = []
    for algo in (x.strip() for x in args.algorithms.split(",") if x.strip()):
        result = get_reorderer(algo, block_shape=(16, 8)).reorder(A)
        rows.append(
            {
                "algorithm": algo,
                "blocks_before": result.stats_before.n_blocks,
                "blocks_after": result.stats_after.n_blocks,
                "reduction": result.block_reduction,
                "std_after": result.stats_after.std_blocks_per_row,
            }
        )
    print(format_table(rows, title=f"reordering ablation on {args.matrix} (scale={args.scale})"))
    return 0


def _cmd_engine(args) -> int:
    A = suitesparse.load(args.matrix, scale=args.scale)
    rng = np.random.default_rng(0)
    Bs = [
        rng.normal(size=(A.ncols, args.n)).astype(np.float32) for _ in range(max(1, args.batch))
    ]
    rows = []
    with SpMMEngine(
        SMaTConfig(reorder=args.reorder),
        policy=policy_from_args(args),
        cache_size=args.cache_size,
    ) as engine:
        for label in ("cold", "warm"):
            before = engine.cache_stats
            outcome = engine.multiply_many(A, Bs)
            after = outcome.summary.cache
            rows.append(
                {
                    "pass": label,
                    "items": outcome.summary.n_items,
                    "wall_ms": outcome.summary.wall_ms,
                    "items/s": outcome.summary.items_per_second,
                    "sim_GFLOP/s": outcome.summary.simulated_gflops,
                    "cache_hits": after.hits - before.hits,
                    "cache_misses": after.misses - before.misses,
                }
            )
        # single-item latency: cold preprocessing vs cached plan
        engine.clear_cache()
        start = time.perf_counter()
        engine.multiply(A, Bs[0])
        cold_ms = 1e3 * (time.perf_counter() - start)
        start = time.perf_counter()
        engine.multiply(A, Bs[0])
        warm_ms = 1e3 * (time.perf_counter() - start)
    print(format_table(
        rows,
        title=(
            f"engine batching on {args.matrix} (scale={args.scale}), N={args.n}, "
            f"batch={args.batch}, workers={args.workers}"
        ),
    ))
    speedup = cold_ms / warm_ms if warm_ms > 0 else float("inf")
    print(
        f"single-query latency: cold (preprocess + execute) {cold_ms:.2f} ms, "
        f"cached plan {warm_ms:.2f} ms -> {speedup:.1f}x speedup"
    )
    if args.trace:
        _write_trace(engine.tracer, args.trace)
    return 0


def _cmd_tune(args) -> int:
    from .tuner import Tuner

    A = suitesparse.load(args.matrix, scale=args.scale)
    reorderers = (
        [x.strip() for x in args.reorderers.split(",") if x.strip()]
        if args.reorderers
        else None
    )
    tuner_kwargs = dict(
        n_cols=args.n,
        max_measure=args.budget,
        repeats=args.repeats,
    )
    if reorderers:
        tuner_kwargs["reorderers"] = reorderers
    tuner = Tuner(cache=False if args.no_cache else args.cache, **tuner_kwargs)

    config = SMaTConfig(kernel=args.kernel)
    result = tuner.tune(A, config, store=True)
    print(format_table(
        result.table(),
        title=(
            f"auto-tuning {args.matrix} (scale={args.scale}), N={args.n}: "
            f"{len(result.outcomes)} candidates, {result.n_measured} measured, "
            f"{result.n_pruned} pruned by the analytical model"
        ),
    ))
    best = result.best
    default = result.default
    print(
        f"winner: {best.candidate.label} "
        f"(measured {best.simulated_ms:.4f} ms vs default "
        f"{default.candidate.label} {default.simulated_ms:.4f} ms -> "
        f"{result.tuned_vs_default:.2f}x); search took {result.search_ms:.0f} ms"
    )
    if tuner.cache is not None:
        print(f"result persisted to {tuner.cache.path} (entries: {len(tuner.cache)})")
    return 0


def _cmd_shard(args) -> int:
    from .shard import ShardedSpMM

    A = suitesparse.load(args.matrix, scale=args.scale)
    rng = np.random.default_rng(0)
    B = rng.normal(size=(A.ncols, args.n)).astype(np.float32)

    with SpMMEngine(
        SMaTConfig(), policy=policy_from_args(args), cache_size=64
    ) as engine:
        # single-plan reference (warm: preprocessing paid, plan cached)
        engine.multiply(A, B)
        start = time.perf_counter()
        _, single_report = engine.multiply(A, B, return_report=True)
        single_wall_ms = 1e3 * (time.perf_counter() - start)

        with ShardedSpMM(A, args.grid, mode=args.mode, engine=engine) as sharded:
            sharded.multiply(B)  # warm every shard plan
            start = time.perf_counter()
            _, report = sharded.multiply(B, return_report=True)
            sharded_wall_ms = 1e3 * (time.perf_counter() - start)

    print(format_table(
        report.table(),
        title=(
            f"sharded SpMM on {args.matrix} (scale={args.scale}): "
            f"grid {report.grid[0]}x{report.grid[1]}, mode={report.mode}, N={args.n}"
            + (", per-shard tuned" if args.tune else "")
        ),
    ))
    print(
        f"nnz imbalance factor: {report.imbalance:.3f} "
        f"(max shard / ideal shard, mode={report.mode})"
    )
    print(
        f"simulated device time: sharded {report.simulated_ms:.4f} ms serial / "
        f"{report.critical_path_ms:.4f} ms critical path vs single-plan "
        f"{single_report.simulated_ms:.4f} ms"
    )
    print(
        f"warm wall-clock: sharded {sharded_wall_ms:.2f} ms vs single-plan "
        f"{single_wall_ms:.2f} ms"
    )
    return 0


def _sample_rows(rows: List[dict], limit: int = 12) -> List[dict]:
    """At most ``limit`` evenly spaced rows (first and last always kept),
    so long convergence tables stay readable."""
    if len(rows) <= limit:
        return rows
    idx = np.unique(np.linspace(0, len(rows) - 1, limit).round().astype(int))
    return [rows[i] for i in idx]


def _spd_system(A):
    """A symmetric diagonally dominant system built from a stand-in.

    The Table-I stand-ins are generic sparse matrices; smoothers need an
    SPD-like, zero-free-diagonal operator, so the CLI runs them on
    ``|A| + |A|^T + c I`` (the standard graph-Laplacian-style surrogate
    with the same sparsity structure).
    """
    from .formats import COOMatrix, degree_vector

    coo = A.to_coo()
    rows = np.concatenate([coo.row, coo.col])
    cols = np.concatenate([coo.col, coo.row])
    vals = np.abs(np.concatenate([coo.val, coo.val]))
    sym = COOMatrix(rows, cols, vals, (A.nrows, A.ncols)).to_csr()
    shift = float(degree_vector(sym).max())
    eye = np.arange(A.nrows, dtype=np.int64)
    scoo = sym.to_coo()
    return COOMatrix(
        np.concatenate([scoo.row, eye]),
        np.concatenate([scoo.col, eye]),
        np.concatenate([scoo.val, np.full(A.nrows, shift, dtype=scoo.val.dtype)]),
        (A.nrows, A.ncols),
    ).to_csr()


def _write_trace(tracer, path: str, *, tree: bool = False) -> None:
    """Export a tracer's spans as Chrome trace-event JSON (optionally
    printing the ASCII span tree first)."""
    from .obs import span_tree, write_chrome_trace

    spans = tracer.snapshot()
    if tree:
        print(span_tree(spans))
    write_chrome_trace(spans, path)
    dropped = f" ({tracer.dropped} dropped)" if tracer.dropped else ""
    print(
        f"trace: {len(spans)} spans{dropped} -> {path} "
        "(open with Perfetto or chrome://tracing)"
    )


def _run_workload(A, args, passthrough) -> "object":
    """Dispatch one ``repro workload`` / ``repro trace`` run; returns the
    :class:`~repro.workloads.base.WorkloadReport`."""
    from . import workloads

    rng = np.random.default_rng(0)
    if args.workload == "pagerank":
        result = workloads.pagerank(
            A, damping=args.damping, tol=args.tol, max_iter=args.iters, **passthrough
        )
        report = result.report
    elif args.workload == "power":
        result = workloads.power_iteration(A, tol=args.tol, max_iter=args.iters, **passthrough)
        report = result.report
        print(f"dominant eigenvalue estimate: {result.eigenvalue:.6g}")
    elif args.workload == "gcn":
        H = rng.normal(size=(A.nrows, args.n)).astype(np.float32)
        weights = [
            rng.normal(scale=0.3, size=(args.n, args.n)).astype(np.float32)
            for _ in range(args.iters)
        ]
        result = workloads.gcn_forward(A, H, weights, **passthrough)
        report = result.report
    else:  # jacobi / chebyshev
        S = _spd_system(A)
        b = rng.normal(size=(A.nrows, args.n)).astype(np.float32)
        smoother = (
            workloads.jacobi_smoother
            if args.workload == "jacobi"
            else workloads.chebyshev_smoother
        )
        result = smoother(S, b, tol=args.tol, max_iter=args.iters, **passthrough)
        report = result.report
    return report


def _cmd_workload(args) -> int:
    A = suitesparse.load(args.matrix, scale=args.scale)
    trace_path = getattr(args, "trace", None)
    engine = None
    if trace_path:
        # tracing needs the tracer to outlive the workload, so the CLI
        # owns the engine and lends it to the workload; the engine's
        # policy carries the sharded/tuned routing
        engine = SpMMEngine(
            SMaTConfig(kernel=args.kernel), policy=policy_from_args(args), cache_size=16
        )
        passthrough = dict(kernel=args.kernel, engine=engine)
    else:
        passthrough = dict(kernel=args.kernel, policy=policy_from_args(args))
    try:
        if engine is not None:
            # one root span makes the whole run a single stitched trace
            with engine.tracer.span(
                "repro.trace", workload=args.workload, matrix=args.matrix
            ):
                report = _run_workload(A, args, passthrough)
        else:
            report = _run_workload(A, args, passthrough)
    finally:
        if engine is not None:
            engine.close()

    title = (
        f"{report.workload} on {args.matrix} (scale={args.scale}): "
        f"{report.iterations} iterations"
        + (", sharded" if report.sharded else "")
        + (", tuned" if report.tuned else "")
    )
    print(format_table(_sample_rows(report.table()), title=title))
    print(
        f"converged: {report.converged} (tol={report.tol:g}), "
        f"final residual {report.final_residual:.3e}"
    )
    print(
        f"SpMM time: {report.total_spmm_ms:.2f} ms total, cold first iteration "
        f"{report.cold_ms:.2f} ms, warm median {report.warm_ms:.3f} ms"
    )
    print(
        f"plan amortization ratio (cold/warm): {report.amortization_ratio:.1f}x "
        f"(cache hits {report.cache_hits}, misses {report.cache_misses})"
    )
    if engine is not None:
        _write_trace(
            engine.tracer, trace_path, tree=getattr(args, "trace_tree", False)
        )
    return 0


def _cmd_trace(args) -> int:
    """``repro trace``: a traced workload run with span-tree output."""
    args.trace = args.out
    args.trace_tree = True
    return _cmd_workload(args)


def _cmd_serve(args) -> int:
    import sys

    from .serve import SpMMServer, parse_token_specs

    try:
        tokens = parse_token_specs(args.token)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    server = SpMMServer(
        SMaTConfig(kernel=args.kernel, reorder=args.reorder),
        host=args.host,
        port=args.port,
        cache_size=args.cache_size,
        policy=policy_from_args(args),
        tokens=tokens,
        registry_capacity=args.registry_capacity,
        max_inflight=args.max_inflight,
        max_queue=args.max_queue,
        max_body_bytes=args.max_body_mb * 1024 * 1024,
        log_stream=None if args.quiet else sys.stderr,
    )
    mode = f"{len(tokens)} tenant(s)" if tokens else "open (anonymous) mode"
    print(
        f"serving SpMM on {server.url} [{mode}, {args.workers} workers, "
        f"kernel={args.kernel}]; Ctrl-C to stop",
        file=sys.stderr,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.close()
    return 0


def _cmd_kernels(_args) -> int:
    from .kernels import kernel_info

    print(format_table(
        kernel_info(),
        title="execution backends (select with SMaTConfig(kernel=...) or kernel='auto')",
    ))
    return 0


def _cmd_matrices(_args) -> int:
    rows = [
        {
            "name": m.name,
            "domain": m.domain,
            "rows": m.nrows,
            "nnz": m.nnz,
            "sparsity_%": 100 * m.sparsity,
        }
        for m in suitesparse.TABLE1
    ]
    print(format_table(rows, title="Table I matrices (paper metadata)"))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {
        "compare": _cmd_compare,
        "band": _cmd_band,
        "reorder": _cmd_reorder,
        "engine": _cmd_engine,
        "tune": _cmd_tune,
        "shard": _cmd_shard,
        "workload": _cmd_workload,
        "trace": _cmd_trace,
        "serve": _cmd_serve,
        "matrices": _cmd_matrices,
        "kernels": _cmd_kernels,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
