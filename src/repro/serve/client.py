"""A minimal stdlib client for the serving daemon.

:class:`SpMMClient` wraps :mod:`urllib.request` so scripts, docs, and
tests can drive the HTTP surface without any extra dependency -- and
without hand-rolling the wire format: matrices go up via
:func:`~repro.serve.wire.encode_csr`, operands via
:func:`~repro.serve.wire.encode_array`, and results come back as numpy
arrays.

>>> from repro.serve import SpMMServer, SpMMClient
>>> with SpMMServer() as server:
...     client = SpMMClient(server.url)
...     fp = client.register(A)
...     C, info = client.multiply(fp, B)
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from ..formats import CSRMatrix
from .wire import decode_array, encode_array, encode_csr

__all__ = ["SpMMClient", "ServeClientError"]


class ServeClientError(RuntimeError):
    """An error response from the daemon, carrying the HTTP context.

    Attributes
    ----------
    status:
        HTTP status code of the response.
    code:
        Machine-readable error code from the JSON envelope (e.g.
        ``"unauthorized"``, ``"quota_exceeded"``, ``"overloaded"``).
    retry_after:
        Parsed ``Retry-After`` header in seconds, when the server sent
        one (429 responses do).
    """

    def __init__(
        self, status: int, code: str, message: str, *, retry_after: Optional[float] = None
    ):
        super().__init__(f"HTTP {status} [{code}]: {message}")
        self.status = int(status)
        self.code = code
        self.retry_after = retry_after


class SpMMClient:
    """Talk to one :class:`~repro.serve.app.SpMMServer` over HTTP.

    Parameters
    ----------
    base_url:
        The server's base URL, e.g. ``"http://127.0.0.1:8942"``.
    token:
        Bearer token to send on every request (omit for open servers).
    timeout:
        Socket timeout per request, in seconds.
    """

    def __init__(self, base_url: str, *, token: Optional[str] = None, timeout: float = 30.0):
        self.base_url = base_url.rstrip("/")
        self.token = token
        self.timeout = float(timeout)

    # -- transport ------------------------------------------------------------
    def _request(
        self, method: str, path: str, payload: Optional[Dict[str, object]] = None
    ) -> Tuple[int, Dict[str, object]]:
        data = None if payload is None else json.dumps(payload).encode("utf-8")
        req = urllib.request.Request(self.base_url + path, data=data, method=method)
        req.add_header("Content-Type", "application/json")
        if self.token:
            req.add_header("Authorization", f"Bearer {self.token}")
        try:
            with urllib.request.urlopen(req, timeout=self.timeout) as resp:
                return resp.status, json.loads(resp.read())
        except urllib.error.HTTPError as exc:
            raise self._error_from(exc) from None

    @staticmethod
    def _error_from(exc: urllib.error.HTTPError) -> ServeClientError:
        code, message = "internal", str(exc)
        try:
            envelope = json.loads(exc.read())
            code = envelope["error"]["code"]
            message = envelope["error"]["message"]
        except (json.JSONDecodeError, KeyError, TypeError):
            pass
        retry_after: Optional[float] = None
        header = exc.headers.get("Retry-After") if exc.headers else None
        if header is not None:
            try:
                retry_after = float(header)
            except ValueError:
                pass
        return ServeClientError(exc.code, code, message, retry_after=retry_after)

    # -- endpoints ------------------------------------------------------------
    def health(self) -> Dict[str, object]:
        """``GET /healthz``."""
        return self._request("GET", "/healthz")[1]

    def metrics(self) -> Dict[str, object]:
        """``GET /metrics``."""
        return self._request("GET", "/metrics")[1]

    def register(self, A: CSRMatrix) -> str:
        """Upload a CSR matrix; returns its content fingerprint."""
        _, payload = self._request("POST", "/matrices", encode_csr(A))
        return str(payload["fingerprint"])

    def list_matrices(self) -> List[Dict[str, object]]:
        """This tenant's registrations."""
        _, payload = self._request("GET", "/matrices")
        return list(payload["matrices"])

    def multiply(
        self,
        fingerprint: str,
        B: np.ndarray,
        *,
        config: Optional[Dict[str, object]] = None,
    ) -> Tuple[np.ndarray, Dict[str, object]]:
        """Synchronous multiply; returns ``(C, info)`` where ``info``
        carries ``cache_hit``, ``wall_ms``, and the execution report."""
        body: Dict[str, object] = {"fingerprint": fingerprint, "B": encode_array(B)}
        if config is not None:
            body["config"] = config
        _, payload = self._request("POST", "/multiply", body)
        C = decode_array(payload.pop("C"), field="C")
        return C, payload

    def submit(
        self,
        fingerprint: str,
        B: np.ndarray,
        *,
        config: Optional[Dict[str, object]] = None,
    ) -> str:
        """Async submit; returns a job id to poll."""
        body: Dict[str, object] = {"fingerprint": fingerprint, "B": encode_array(B)}
        if config is not None:
            body["config"] = config
        _, payload = self._request("POST", "/jobs", body)
        return str(payload["job_id"])

    def poll(self, job_id: str) -> Dict[str, object]:
        """One non-blocking poll of a job; ``status`` is ``"pending"``,
        ``"done"`` (result attached, consumed), or ``"failed"``."""
        _, payload = self._request("GET", f"/jobs/{job_id}")
        if payload.get("status") == "done":
            payload["C"] = decode_array(payload["C"], field="C")
        return payload

    def result(self, job_id: str, *, poll_interval: float = 0.02) -> np.ndarray:
        """Poll until the job finishes and return ``C`` (raises
        :class:`ServeClientError` on a failed job)."""
        import time

        while True:
            payload = self.poll(job_id)
            if payload["status"] == "done":
                return payload["C"]
            if payload["status"] == "failed":
                raise ServeClientError(200, "job_failed", str(payload.get("error")))
            time.sleep(poll_interval)

    def stream(
        self,
        fingerprint: str,
        Bs: List[np.ndarray],
        *,
        config: Optional[Dict[str, object]] = None,
    ) -> Iterator[Tuple[int, np.ndarray]]:
        """Stream many operands; yields ``(index, C)`` in input order.

        The response is NDJSON over chunked transfer encoding;
        ``http.client`` de-chunks transparently, so each line read is one
        result record.
        """
        body: Dict[str, object] = {
            "fingerprint": fingerprint,
            "Bs": [encode_array(B) for B in Bs],
        }
        if config is not None:
            body["config"] = config
        data = json.dumps(body).encode("utf-8")
        req = urllib.request.Request(self.base_url + "/stream", data=data, method="POST")
        req.add_header("Content-Type", "application/json")
        if self.token:
            req.add_header("Authorization", f"Bearer {self.token}")
        try:
            with urllib.request.urlopen(req, timeout=self.timeout) as resp:
                for line in resp:
                    record = json.loads(line)
                    if record.get("done"):
                        return
                    yield int(record["index"]), decode_array(record["C"], field="C")
        except urllib.error.HTTPError as exc:
            raise self._error_from(exc) from None
