"""Serving metrics: counters and latency percentiles for ``GET /metrics``.

Everything the daemon knows about its own behaviour is published as one
JSON document: request counts (total, per endpoint, per tenant, per
status class), rejection counts by reason (auth / quota / overload /
payload), bytes ingested, admission-queue depth, request-latency
percentiles over a bounded recent window, and the pass-through snapshots
of the engine (:meth:`~repro.engine.SpMMEngine.telemetry`) and its plan
cache.  All counters are monotonic since process start -- scrape twice
and diff, exactly like any other counter-based metrics endpoint.
"""

from __future__ import annotations

import threading
import time
from collections import Counter, deque
from typing import Dict, Optional

import numpy as np

__all__ = ["LatencyWindow", "ServerMetrics"]


class LatencyWindow:
    """Bounded reservoir of recent latencies with percentile snapshots."""

    def __init__(self, maxlen: int = 2048):
        self._window: "deque[float]" = deque(maxlen=maxlen)
        self._count = 0
        self._lock = threading.Lock()

    def record(self, wall_ms: float) -> None:
        """Add one observation (milliseconds)."""
        with self._lock:
            self._window.append(float(wall_ms))
            self._count += 1

    def snapshot(self) -> Dict[str, float]:
        """JSON-ready summary: count plus mean/p50/p99 over the window."""
        with self._lock:
            count = self._count
            window = list(self._window)
        if not window:
            return {"count": 0, "mean_ms": 0.0, "p50_ms": 0.0, "p99_ms": 0.0}
        lat = np.asarray(window, dtype=np.float64)
        return {
            "count": count,
            "mean_ms": float(lat.mean()),
            "p50_ms": float(np.percentile(lat, 50)),
            "p99_ms": float(np.percentile(lat, 99)),
        }


class ServerMetrics:
    """Thread-safe counters behind the ``/metrics`` endpoint."""

    def __init__(self, latency_window: int = 2048):
        self._started = time.time()
        self._lock = threading.Lock()
        self._requests_total = 0
        self._by_endpoint: "Counter[str]" = Counter()
        self._by_tenant: "Counter[str]" = Counter()
        self._by_status: "Counter[str]" = Counter()
        self._rejected: "Counter[str]" = Counter()
        self._bytes_in = 0
        self._results_streamed = 0
        self.latency = LatencyWindow(latency_window)

    def record_request(
        self,
        *,
        endpoint: str,
        tenant: Optional[str],
        status: int,
        wall_ms: float,
        bytes_in: int = 0,
        rejected: Optional[str] = None,
    ) -> None:
        """Account one finished request (any status)."""
        with self._lock:
            self._requests_total += 1
            self._by_endpoint[endpoint] += 1
            if tenant:
                self._by_tenant[tenant] += 1
            self._by_status[str(status)] += 1
            self._bytes_in += int(bytes_in)
            if rejected:
                self._rejected[rejected] += 1
        if status < 400:
            self.latency.record(wall_ms)

    def record_streamed(self, n_results: int) -> None:
        """Account results yielded by streaming responses."""
        with self._lock:
            self._results_streamed += int(n_results)

    @property
    def requests_total(self) -> int:
        """Requests accounted so far (any endpoint, any status)."""
        with self._lock:
            return self._requests_total

    def snapshot(self, *, engine=None, registry=None, admission=None) -> Dict[str, object]:
        """The full ``/metrics`` JSON document.

        ``engine``/``registry``/``admission`` add their live gauges
        (plan-cache counters, engine telemetry, matrices registered,
        queue depth) when provided.
        """
        with self._lock:
            doc: Dict[str, object] = {
                "uptime_s": time.time() - self._started,
                "requests_total": self._requests_total,
                "requests_by_endpoint": dict(self._by_endpoint),
                "requests_by_tenant": dict(self._by_tenant),
                "responses_by_status": dict(self._by_status),
                "rejected": dict(self._rejected),
                "bytes_in": self._bytes_in,
                "results_streamed": self._results_streamed,
            }
        doc["latency_ms"] = self.latency.snapshot()
        if admission is not None:
            doc["admission"] = {
                "inflight": admission.inflight,
                "queued": admission.queued,
                "queue_depth": admission.depth,
                "rejected": admission.rejected,
                "max_inflight": admission.max_inflight,
                "max_queue": admission.max_queue,
            }
        if engine is not None:
            stats = engine.cache_stats
            doc["plan_cache"] = {
                "hits": stats.hits,
                "misses": stats.misses,
                "evictions": stats.evictions,
                "size": stats.size,
                "maxsize": stats.maxsize,
                "hit_rate": stats.hit_rate,
            }
            telemetry = engine.telemetry()
            doc["engine"] = {
                "completed": telemetry.completed,
                "queue_depth": telemetry.queue_depth,
                "mean_ms": telemetry.mean_ms,
                "p50_ms": telemetry.p50_ms,
                "p99_ms": telemetry.p99_ms,
            }
            executor = telemetry.executor
            if executor is not None:
                doc["engine"]["executor"] = {
                    "kind": executor.kind,
                    "workers": executor.workers,
                    "sessions": executor.sessions,
                    "shards_executed": executor.shards_executed,
                    # JSON object keys are strings; keep worker ids readable
                    "per_worker_shards": {
                        str(k): v for k, v in sorted(executor.per_worker_shards.items())
                    },
                    "placement_imbalance": executor.placement_imbalance,
                    "segment_bytes": executor.segment_bytes,
                    "warmup_hits": executor.warmup_hits,
                }
        if registry is not None:
            doc["matrices_registered"] = registry.count()
        return doc
