"""Serving metrics: counters and latency percentiles for ``GET /metrics``.

Everything the daemon knows about its own behaviour is published as one
JSON document: request counts (total, per endpoint, per tenant, per
status class), rejection counts by reason (auth / quota / overload /
payload), bytes ingested, admission-queue depth, request-latency
percentiles over a bounded recent window, and the pass-through snapshots
of the engine (:meth:`~repro.engine.SpMMEngine.telemetry`) and its plan
cache.  All counters are monotonic since process start -- scrape twice
and diff, exactly like any other counter-based metrics endpoint.

Since the observability PR the numbers live in one
:class:`repro.obs.MetricsRegistry` (labelled counters + one exponential
histogram) instead of three ad-hoc implementations; the JSON document is
a *view* over that registry with its historical shape intact, and
``/metrics?format=prometheus`` renders the same registry as text
exposition via :meth:`ServerMetrics.prometheus`.
"""

from __future__ import annotations

import time
from typing import Dict, Optional

from ..obs import Histogram, MetricsRegistry

__all__ = ["LatencyWindow", "ServerMetrics"]


class LatencyWindow:
    """Bounded reservoir of recent latencies with percentile snapshots.

    Back-compat facade: the samples now live in a
    :class:`repro.obs.Histogram` (exponential buckets + raw window), and
    :meth:`snapshot` keeps the historical key names and numerics.
    """

    def __init__(self, maxlen: int = 2048, histogram: Optional[Histogram] = None):
        """Wrap ``histogram`` (or a private one bounded at ``maxlen``)."""
        self._hist = histogram or Histogram(
            "latency_ms", "request latency (ms)", window=maxlen
        )

    def record(self, wall_ms: float) -> None:
        """Add one observation (milliseconds)."""
        self._hist.observe(float(wall_ms))

    def snapshot(self) -> Dict[str, float]:
        """JSON-ready summary: count plus mean/p50/p99 over the window."""
        count = self._hist.count
        if count == 0:
            return {"count": 0, "mean_ms": 0.0, "p50_ms": 0.0, "p99_ms": 0.0}
        return {
            "count": count,
            "mean_ms": float(self._hist.mean()),
            "p50_ms": float(self._hist.percentile(50)),
            "p99_ms": float(self._hist.percentile(99)),
        }


class ServerMetrics:
    """Thread-safe counters behind the ``/metrics`` endpoint."""

    def __init__(self, latency_window: int = 2048):
        """Create the registry and all request-path series at zero."""
        self._started = time.time()
        self.registry = MetricsRegistry()
        self._requests = self.registry.counter(
            "repro_http_requests_total",
            "HTTP requests by endpoint, tenant and status",
            labels=("endpoint", "tenant", "status"),
        )
        self._rejected = self.registry.counter(
            "repro_http_rejected_total",
            "Requests rejected, by reason (auth/quota/overload/payload)",
            labels=("reason",),
        )
        self._bytes_in = self.registry.counter(
            "repro_http_bytes_in_total", "Request payload bytes ingested"
        )
        self._streamed = self.registry.counter(
            "repro_http_results_streamed_total",
            "Results yielded by streaming responses",
        )
        self.latency = LatencyWindow(
            histogram=self.registry.histogram(
                "repro_http_request_wall_ms",
                "Wall time of successful requests (ms)",
                window=latency_window,
            )
        )

    def record_request(
        self,
        *,
        endpoint: str,
        tenant: Optional[str],
        status: int,
        wall_ms: float,
        bytes_in: int = 0,
        rejected: Optional[str] = None,
    ) -> None:
        """Account one finished request (any status)."""
        self._requests.inc(
            endpoint=endpoint, tenant=tenant or "", status=str(status)
        )
        if bytes_in:
            self._bytes_in.inc(int(bytes_in))
        if rejected:
            self._rejected.inc(reason=rejected)
        if status < 400:
            self.latency.record(wall_ms)

    def record_streamed(self, n_results: int) -> None:
        """Account results yielded by streaming responses."""
        self._streamed.inc(int(n_results))

    @property
    def requests_total(self) -> int:
        """Requests accounted so far (any endpoint, any status)."""
        return int(self._requests.total())

    @staticmethod
    def _int_dict(values: Dict[str, float]) -> Dict[str, int]:
        """Counter aggregations as the historical ``str -> int`` JSON maps."""
        return {k: int(v) for k, v in values.items()}

    def snapshot(self, *, engine=None, registry=None, admission=None) -> Dict[str, object]:
        """The full ``/metrics`` JSON document.

        ``engine``/``registry``/``admission`` add their live gauges
        (plan-cache counters, engine telemetry, matrices registered,
        queue depth) when provided.
        """
        by_tenant = self._int_dict(self._requests.sum_by("tenant"))
        by_tenant.pop("", None)  # anonymous requests were never per-tenant
        doc: Dict[str, object] = {
            "uptime_s": time.time() - self._started,
            "requests_total": int(self._requests.total()),
            "requests_by_endpoint": self._int_dict(self._requests.sum_by("endpoint")),
            "requests_by_tenant": by_tenant,
            "responses_by_status": self._int_dict(self._requests.sum_by("status")),
            "rejected": self._int_dict(self._rejected.sum_by("reason")),
            "bytes_in": int(self._bytes_in.total()),
            "results_streamed": int(self._streamed.total()),
        }
        doc["latency_ms"] = self.latency.snapshot()
        if admission is not None:
            doc["admission"] = {
                "inflight": admission.inflight,
                "queued": admission.queued,
                "queue_depth": admission.depth,
                "rejected": admission.rejected,
                "max_inflight": admission.max_inflight,
                "max_queue": admission.max_queue,
            }
        if engine is not None:
            stats = engine.cache_stats
            doc["plan_cache"] = {
                "hits": stats.hits,
                "misses": stats.misses,
                "evictions": stats.evictions,
                "size": stats.size,
                "maxsize": stats.maxsize,
                "hit_rate": stats.hit_rate,
            }
            telemetry = engine.telemetry()
            doc["engine"] = {
                "completed": telemetry.completed,
                "queue_depth": telemetry.queue_depth,
                "mean_ms": telemetry.mean_ms,
                "p50_ms": telemetry.p50_ms,
                "p99_ms": telemetry.p99_ms,
            }
            online = telemetry.online
            if online is not None:
                doc["engine"]["online"] = {
                    "observations": online.observations,
                    "keys": online.keys,
                    "pending": online.pending,
                    "drift": dict(online.drift),
                    "model_scales": dict(online.model_scales),
                    "recalibrations": online.recalibrations,
                    "retunes": online.retunes,
                    "retunes_failed": online.retunes_failed,
                    "plan_swaps": online.plan_swaps,
                    "explored": online.explored,
                    "exploration_share": online.exploration_share,
                    "promotions": online.promotions,
                    "errors": online.errors,
                    "worker_alive": online.worker_alive,
                }
            executor = telemetry.executor
            if executor is not None:
                doc["engine"]["executor"] = {
                    "kind": executor.kind,
                    "workers": executor.workers,
                    "sessions": executor.sessions,
                    "shards_executed": executor.shards_executed,
                    # JSON object keys are strings; keep worker ids readable
                    "per_worker_shards": {
                        str(k): v for k, v in sorted(executor.per_worker_shards.items())
                    },
                    "placement_imbalance": executor.placement_imbalance,
                    "segment_bytes": executor.segment_bytes,
                    "warmup_hits": executor.warmup_hits,
                }
        if registry is not None:
            doc["matrices_registered"] = registry.count()
        return doc

    def prometheus(self, *, engine=None, registry=None, admission=None) -> str:
        """``/metrics?format=prometheus``: text exposition of the registry.

        Live gauges (uptime, admission queue, plan cache, engine telemetry,
        matrix registry size) are refreshed into the registry first, then
        everything — including the engine's own per-item latency histogram —
        is rendered in one pass.
        """
        self.registry.gauge(
            "repro_http_uptime_seconds", "Seconds since server start"
        ).set(time.time() - self._started)
        if admission is not None:
            gauge = self.registry.gauge(
                "repro_admission", "Admission controller state", labels=("state",)
            )
            gauge.set(admission.inflight, state="inflight")
            gauge.set(admission.queued, state="queued")
            gauge.set(admission.depth, state="queue_depth")
            gauge.set(admission.rejected, state="rejected")
        if registry is not None:
            self.registry.gauge(
                "repro_matrices_registered", "Matrices in the registry"
            ).set(registry.count())
        parts = []
        if engine is not None:
            stats = engine.cache_stats
            cache_gauge = self.registry.gauge(
                "repro_plan_cache", "Plan cache counters", labels=("event",)
            )
            cache_gauge.set(stats.hits, event="hits")
            cache_gauge.set(stats.misses, event="misses")
            cache_gauge.set(stats.evictions, event="evictions")
            cache_gauge.set(stats.size, event="size")
            telemetry = engine.telemetry()
            self.registry.gauge(
                "repro_engine_completed_items", "Items the engine completed"
            ).set(telemetry.completed)
            self.registry.gauge(
                "repro_engine_queue_depth", "Async jobs not yet collected"
            ).set(telemetry.queue_depth)
            engine_registry = getattr(engine, "metrics", None)
            if engine_registry is not None:
                parts.append(engine_registry.render_prometheus())
        parts.insert(0, self.registry.render_prometheus())
        return "".join(parts)
