"""The SpMM-as-a-service HTTP daemon.

:class:`SpMMServer` puts the existing engine machinery behind a
long-lived, multi-tenant HTTP/JSON surface -- stdlib
:class:`~http.server.ThreadingHTTPServer` only, no new dependencies.
The request path is::

    tenant --> auth (bearer token) --> quotas --> admission queue
           --> MatrixRegistry (fingerprint) --> SpMMEngine --> PlanCache

Endpoints
---------
``GET /healthz``
    Liveness probe (unauthenticated).
``GET /metrics``
    JSON counters: requests per tenant/endpoint/status, rejection
    reasons, latency percentiles, admission depth, plan-cache and engine
    telemetry (unauthenticated).  With online tuning enabled
    (``ExecutionPolicy(online_tune=...)`` or ``REPRO_ONLINE_TUNE=1``)
    the engine block gains an ``online`` section -- per-backend drift,
    cost-model recalibrations, background re-tunes and exploration
    share -- and ``?format=prometheus`` exposes the same loop as
    ``repro_online_*`` series.
``POST /matrices``
    Register a CSR matrix by content; returns its fingerprint.  Upload
    once, multiply many.
``GET /matrices``
    List the calling tenant's registrations.
``POST /multiply``
    Synchronous ``C = A @ B`` against a registered fingerprint.
``POST /jobs`` / ``GET /jobs/{id}``
    Async submit/poll, mapped onto ``engine.submit()`` /
    ``engine.result()``.
``POST /stream``
    Many operands through ``engine.stream()``, results delivered as
    chunked NDJSON in input order.

Robustness is part of the surface: bounded admission (429 +
``Retry-After`` on overload), per-tenant registration and plan-cache
quotas, request-size limits (413), and structured JSON request logs with
per-request IDs.
"""

from __future__ import annotations

import json
import threading
import time
import uuid
from concurrent.futures import TimeoutError as FuturesTimeoutError
from dataclasses import replace
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Iterator, Optional, TextIO, Tuple, Union
from urllib.parse import parse_qs, urlsplit

import numpy as np

from ..core.config import SMaTConfig
from ..core.plan import plan_key
from ..core.policy import ExecutionPolicy, policy_from_legacy
from ..engine import SpMMEngine
from .admission import AdmissionController
from .auth import Authenticator, PlanQuota, Tenant
from .errors import ApiError, BadRequest, NotFound, Overloaded, PayloadTooLarge
from .metrics import ServerMetrics
from .registry import MatrixRegistry
from .wire import decode_array, decode_csr, encode_array, report_payload

__all__ = ["SpMMServer"]

#: default request-body cap: large enough for scaled stand-ins, small
#: enough that one request cannot exhaust memory
DEFAULT_MAX_BODY_BYTES = 64 * 1024 * 1024

#: how much of an unread request body an error response will drain so the
#: client can finish writing and read the response; beyond this the
#: connection is dropped instead
_DRAIN_LIMIT = 8 * 1024 * 1024

#: configuration fields a request may override per call
_CONFIG_FIELDS = ("kernel", "reorder", "precision", "block_shape")


class _HTTPServer(ThreadingHTTPServer):
    """Threading HTTP server carrying a back-reference to the app."""

    daemon_threads = True
    allow_reuse_address = True
    app: "SpMMServer"


class SpMMServer:
    """Multi-tenant HTTP daemon in front of a shared :class:`SpMMEngine`.

    Parameters
    ----------
    config:
        Default pipeline configuration for every plan the daemon builds;
        requests may override ``kernel``/``reorder``/``precision``/
        ``block_shape`` per call.
    host / port:
        Bind address.  ``port=0`` binds an ephemeral port (the docs and
        test suites rely on this); read the actual address back from
        :attr:`url`.
    engine:
        Use an existing engine instead of owning one (the caller keeps
        responsibility for closing it).
    cache_size:
        Plan-cache capacity of the owned :class:`SpMMEngine` when
        ``engine`` is not given.
    policy:
        :class:`~repro.core.policy.ExecutionPolicy` of the owned engine:
        worker-pool width, tuning, and the thread-vs-process shard
        executor behind sharded queries.
    max_workers / tune:
        **Deprecated** spellings of the matching policy fields; passing
        either (without ``policy=``) builds the equivalent policy and
        emits one :class:`DeprecationWarning`.
    tokens:
        ``{token: Tenant-or-name}`` auth map; empty means **open mode**
        (a single shared anonymous tenant).
    registry_capacity:
        Global cap on distinct registered matrices.
    max_inflight / max_queue / queue_timeout_s:
        Admission control: concurrent executions, bounded wait queue,
        and how long a request may wait for a slot before 429.
    max_pending_jobs:
        Cap on submitted-but-unfinished async jobs (default
        ``max_inflight + max_queue``).
    max_body_bytes:
        Request-size limit; larger uploads get 413.
    log_stream:
        Writable text stream for structured JSON request logs (one
        object per line); ``None`` disables logging.
    """

    def __init__(
        self,
        config: Optional[SMaTConfig] = None,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        engine: Optional[SpMMEngine] = None,
        cache_size: int = 32,
        policy: Optional[ExecutionPolicy] = None,
        max_workers: Optional[int] = None,
        tune: Optional[bool] = None,
        tokens: Optional[Dict[str, Union[Tenant, str]]] = None,
        registry_capacity: int = 256,
        max_inflight: Optional[int] = None,
        max_queue: int = 16,
        queue_timeout_s: float = 0.25,
        max_pending_jobs: Optional[int] = None,
        max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
        log_stream: Optional[TextIO] = None,
    ):
        self.config = (config or SMaTConfig()).validate()
        has_policy = policy is not None
        policy = policy_from_legacy(
            policy, where="SpMMServer", tune=tune, max_workers=max_workers
        )
        if engine is None:
            engine = SpMMEngine(self.config, policy=policy, cache_size=cache_size)
            self._owns_engine = True
        else:
            if has_policy or tune:
                raise ValueError(
                    "pass execution options (policy, tune) to the engine itself "
                    "when providing one"
                )
            self._owns_engine = False
        self.engine = engine
        self.auth = Authenticator(tokens)
        self.registry = MatrixRegistry(registry_capacity)
        self.quota = PlanQuota()
        self.admission = AdmissionController(
            max_inflight if max_inflight is not None else engine.max_workers,
            max_queue,
            queue_timeout_s=queue_timeout_s,
        )
        self.max_pending_jobs = (
            int(max_pending_jobs)
            if max_pending_jobs is not None
            else self.admission.max_inflight + self.admission.max_queue
        )
        self.max_body_bytes = int(max_body_bytes)
        self.metrics = ServerMetrics()
        self.log_stream = log_stream
        self._log_lock = threading.Lock()
        self._jobs: Dict[str, Tuple[int, str]] = {}
        self._jobs_lock = threading.Lock()
        self._started = time.time()
        self._thread: Optional[threading.Thread] = None
        self._closed = False
        self._httpd = _HTTPServer((host, port), _Handler)
        self._httpd.app = self

    # -- lifecycle ------------------------------------------------------------
    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` (port resolved when ephemeral)."""
        return self._httpd.server_address[0], self._httpd.server_address[1]

    @property
    def url(self) -> str:
        """Base URL clients should talk to."""
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "SpMMServer":
        """Serve in a background daemon thread (returns immediately)."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._httpd.serve_forever,
                kwargs={"poll_interval": 0.05},
                name="spmm-serve",
                daemon=True,
            )
            self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread until :meth:`close` (CLI mode)."""
        self._httpd.serve_forever(poll_interval=0.5)

    def close(self) -> None:
        """Stop serving and release the engine if owned (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._httpd.shutdown()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self._httpd.server_close()
        if self._owns_engine:
            self.engine.close()

    def __enter__(self) -> "SpMMServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    @property
    def tracer(self):
        """The engine's :class:`repro.obs.Tracer` (no-op unless the
        engine's policy enables tracing); ``http.request`` spans are
        recorded against it so one trace covers HTTP entry to worker."""
        return self.engine.tracer

    # -- logging --------------------------------------------------------------
    def log_event(self, event: str, **fields: object) -> None:
        """Emit one structured JSON log line (no-op without a stream)."""
        if self.log_stream is None:
            return
        record = {"ts": time.time(), "event": event}
        record.update(fields)
        line = json.dumps(record, default=str)
        with self._log_lock:
            self.log_stream.write(line + "\n")
            try:
                self.log_stream.flush()
            except (OSError, ValueError):  # pragma: no cover - closed stream
                pass

    # -- request helpers ------------------------------------------------------
    def _resolve_config(self, payload: Dict[str, object]) -> SMaTConfig:
        """The effective configuration of one request: the server default
        with the request's per-call overrides applied."""
        overrides = payload.get("config")
        if overrides is None:
            return self.config
        if not isinstance(overrides, dict):
            raise BadRequest("config must be an object")
        unknown = set(overrides) - set(_CONFIG_FIELDS)
        if unknown:
            raise BadRequest(
                f"unknown config field(s) {sorted(unknown)}; "
                f"allowed: {list(_CONFIG_FIELDS)}"
            )
        kwargs = dict(overrides)
        if "block_shape" in kwargs and kwargs["block_shape"] is not None:
            shape = kwargs["block_shape"]
            if not isinstance(shape, (list, tuple)) or len(shape) != 2:
                raise BadRequest("config.block_shape must be a [rows, cols] pair")
            kwargs["block_shape"] = (int(shape[0]), int(shape[1]))
        try:
            return replace(self.config, **kwargs).validate()
        except (TypeError, ValueError, KeyError) as exc:
            raise BadRequest(f"invalid config: {exc}") from None

    def _resolve_operand(
        self, tenant: Tenant, payload: Dict[str, object]
    ) -> Tuple[object, np.ndarray, SMaTConfig]:
        """Shared multiply/jobs front half: fingerprint -> matrix, decode
        ``B``, resolve the config, and charge the tenant's plan quota."""
        fingerprint = payload.get("fingerprint")
        if not isinstance(fingerprint, str):
            raise BadRequest("request must carry a string 'fingerprint'")
        A = self.registry.get(fingerprint, tenant)
        if "B" not in payload:
            raise BadRequest("request must carry the dense operand 'B'")
        B = decode_array(payload["B"], field="B")
        if B.ndim not in (1, 2) or B.shape[0] != A.ncols:
            raise BadRequest(
                f"operand B has shape {list(B.shape)}, expected ({A.ncols}, n)"
            )
        cfg = self._resolve_config(payload)
        self.quota.charge(tenant, plan_key(A, cfg))
        return A, B, cfg

    # -- route handlers -------------------------------------------------------
    def handle_healthz(self) -> Tuple[int, Dict[str, object]]:
        """Liveness: cheap, unauthenticated, never touches the engine pool."""
        return 200, {
            "status": "ok",
            "uptime_s": time.time() - self._started,
            "workers": self.engine.max_workers,
            "matrices": self.registry.count(),
            "open_auth": self.auth.open,
        }

    def handle_metrics(self) -> Tuple[int, Dict[str, object]]:
        """The full metrics document (see :mod:`repro.serve.metrics`)."""
        return 200, self.metrics.snapshot(
            engine=self.engine, registry=self.registry, admission=self.admission
        )

    def handle_metrics_prometheus(self) -> str:
        """``GET /metrics?format=prometheus``: text exposition rendering
        of the same registry (version 0.0.4)."""
        return self.metrics.prometheus(
            engine=self.engine, registry=self.registry, admission=self.admission
        )

    def handle_register(
        self, tenant: Tenant, payload: Dict[str, object]
    ) -> Tuple[int, Dict[str, object]]:
        """``POST /matrices``: content-addressed registration."""
        A = decode_csr(payload)
        fingerprint, created = self.registry.register(A, tenant)
        return 201 if created else 200, {
            "fingerprint": fingerprint,
            "created": created,
            "nrows": int(A.nrows),
            "ncols": int(A.ncols),
            "nnz": int(A.nnz),
        }

    def handle_list_matrices(self, tenant: Tenant) -> Tuple[int, Dict[str, object]]:
        """``GET /matrices``: the tenant's registrations."""
        return 200, {"matrices": self.registry.list_for(tenant)}

    def handle_multiply(
        self, tenant: Tenant, payload: Dict[str, object]
    ) -> Tuple[int, Dict[str, object]]:
        """``POST /multiply``: synchronous execution under admission."""
        A, B, cfg = self._resolve_operand(tenant, payload)
        with self.admission.admit():
            result = self.engine.execute_one(A, B, config=cfg)
        return 200, {
            "C": encode_array(result.C),
            "cache_hit": result.cache_hit,
            "wall_ms": result.wall_ms,
            "report": report_payload(result.report),
        }

    def handle_submit(
        self, tenant: Tenant, payload: Dict[str, object]
    ) -> Tuple[int, Dict[str, object]]:
        """``POST /jobs``: async submit, bounded by the job backlog."""
        if self.engine.queue_depth() >= self.max_pending_jobs:
            raise Overloaded(
                f"async job backlog full ({self.max_pending_jobs} pending); "
                "poll outstanding jobs or retry later",
                retry_after=1.0,
            )
        A, B, cfg = self._resolve_operand(tenant, payload)
        ticket = self.engine.submit(A, B, config=cfg)
        job_id = uuid.uuid4().hex[:16]
        with self._jobs_lock:
            self._jobs[job_id] = (ticket, tenant.name)
        return 202, {"job_id": job_id, "status": "pending"}

    def handle_poll(self, tenant: Tenant, job_id: str) -> Tuple[int, Dict[str, object]]:
        """``GET /jobs/{id}``: non-blocking poll; results are consumed on
        first successful read (poll-once semantics, like
        :meth:`SpMMEngine.result`)."""
        with self._jobs_lock:
            entry = self._jobs.get(job_id)
        if entry is None or entry[1] != tenant.name:
            # not distinguishing "never existed" from "not yours":
            # job ids must not leak across tenants
            raise NotFound(f"unknown job {job_id!r}")
        ticket = entry[0]
        try:
            result = self.engine.result(ticket, timeout=0.0)
        except FuturesTimeoutError:
            return 200, {"job_id": job_id, "status": "pending"}
        except Exception as exc:  # execution failed inside the engine
            with self._jobs_lock:
                self._jobs.pop(job_id, None)
            return 200, {"job_id": job_id, "status": "failed", "error": str(exc)}
        with self._jobs_lock:
            self._jobs.pop(job_id, None)
        return 200, {
            "job_id": job_id,
            "status": "done",
            "C": encode_array(result.C),
            "cache_hit": result.cache_hit,
            "wall_ms": result.wall_ms,
            "report": report_payload(result.report),
        }

    def handle_stream(
        self, tenant: Tenant, payload: Dict[str, object]
    ) -> Iterator[Dict[str, object]]:
        """``POST /stream``: pipeline many operands through
        ``engine.stream()``, yielding one NDJSON record per result in
        input order.  One admission slot is held for the whole stream."""
        fingerprint = payload.get("fingerprint")
        if not isinstance(fingerprint, str):
            raise BadRequest("request must carry a string 'fingerprint'")
        A = self.registry.get(fingerprint, tenant)
        raw_Bs = payload.get("Bs")
        if not isinstance(raw_Bs, list) or not raw_Bs:
            raise BadRequest("request must carry a non-empty list 'Bs'")
        Bs = [decode_array(obj, field=f"Bs[{i}]") for i, obj in enumerate(raw_Bs)]
        for i, B in enumerate(Bs):
            if B.ndim not in (1, 2) or B.shape[0] != A.ncols:
                raise BadRequest(
                    f"Bs[{i}] has shape {list(B.shape)}, expected ({A.ncols}, n)"
                )
        cfg = self._resolve_config(payload)
        self.quota.charge(tenant, plan_key(A, cfg))

        def generate() -> Iterator[Dict[str, object]]:
            count = 0
            with self.admission.admit():
                for result in self.engine.stream(A, iter(Bs), config=cfg):
                    count += 1
                    yield {
                        "index": result.index,
                        "C": encode_array(result.C),
                        "cache_hit": result.cache_hit,
                        "wall_ms": result.wall_ms,
                    }
            self.metrics.record_streamed(count)
            yield {"done": True, "count": count}

        return generate()


class _Handler(BaseHTTPRequestHandler):
    """Thin HTTP adapter: routing, auth, body limits, JSON envelopes.

    All domain work happens on the :class:`SpMMServer` methods; this
    class only translates HTTP to/from them and accounts metrics/logs.
    """

    protocol_version = "HTTP/1.1"
    server: _HTTPServer

    # -- plumbing -------------------------------------------------------------
    @property
    def app(self) -> SpMMServer:
        """The owning server application."""
        return self.server.app

    def log_message(self, format, *args):  # noqa: D102 - silencing stdlib logging
        pass

    def _send_json(
        self,
        status: int,
        payload: Dict[str, object],
        *,
        request_id: str,
        retry_after: Optional[float] = None,
    ) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.send_header("X-Request-ID", request_id)
        if retry_after is not None:
            self.send_header("Retry-After", str(max(1, int(round(retry_after)))))
        if self.close_connection:
            self.send_header("Connection", "close")
        self.end_headers()
        self.wfile.write(body)

    def _send_text(self, status: int, text: str, *, request_id: str) -> None:
        """Write a plain-text response (the Prometheus exposition)."""
        body = text.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        self.send_header("X-Request-ID", request_id)
        if self.close_connection:
            self.send_header("Connection", "close")
        self.end_headers()
        self.wfile.write(body)

    def _send_ndjson_stream(
        self, records: Iterator[Dict[str, object]], *, request_id: str
    ) -> int:
        """Write a chunked NDJSON response; returns the record count."""
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Transfer-Encoding", "chunked")
        self.send_header("X-Request-ID", request_id)
        self.end_headers()
        count = 0
        for record in records:
            chunk = json.dumps(record).encode("utf-8") + b"\n"
            self.wfile.write(b"%x\r\n" % len(chunk) + chunk + b"\r\n")
            count += 1
        self.wfile.write(b"0\r\n\r\n")
        return count

    def _read_json_body(self) -> Tuple[Dict[str, object], int]:
        """Read and parse the request body under the size limit."""
        length_header = self.headers.get("Content-Length")
        if length_header is None:
            raise BadRequest("missing Content-Length")
        try:
            length = int(length_header)
        except ValueError:
            raise BadRequest(f"invalid Content-Length {length_header!r}") from None
        if length < 0:
            raise BadRequest("negative Content-Length")
        if length > self.app.max_body_bytes:
            # reject before reading; the error path drains (or drops)
            # the unread body so the client can still read the 413
            raise PayloadTooLarge(
                f"request body of {length} bytes exceeds the "
                f"{self.app.max_body_bytes}-byte limit"
            )
        raw = self.rfile.read(length)
        self._body_consumed = True
        try:
            payload = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise BadRequest(f"body is not valid JSON: {exc}") from None
        if not isinstance(payload, dict):
            raise BadRequest("body must be a JSON object")
        return payload, length

    def _drain_body(self) -> None:
        """Discard an unread request body so an early error response can
        be delivered over a still-usable connection.

        Bodies beyond the drain limit are not worth reading: the
        connection is marked for close instead (the client may then see
        the reset before the response -- the price of refusing huge
        uploads without consuming them)."""
        if self._body_consumed:
            return
        self._body_consumed = True
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError:
            length = 0
        if length <= 0:
            return
        if length > max(_DRAIN_LIMIT, self.app.max_body_bytes):
            self.close_connection = True
            return
        remaining = length
        while remaining > 0:
            chunk = self.rfile.read(min(65536, remaining))
            if not chunk:
                break
            remaining -= len(chunk)

    # -- request loop ---------------------------------------------------------
    def do_GET(self) -> None:
        """Route GET requests."""
        self._dispatch("GET")

    def do_POST(self) -> None:
        """Route POST requests."""
        self._dispatch("POST")

    def _dispatch(self, method: str) -> None:
        app = self.app
        request_id = uuid.uuid4().hex[:12]
        start = time.perf_counter()
        parts = urlsplit(self.path)
        path = parts.path.rstrip("/") or "/"
        endpoint = f"{method} {path}"
        tenant_name: Optional[str] = None
        status = 500
        bytes_in = 0
        rejected: Optional[str] = None
        self._body_consumed = False
        # the request span is the trace root: engine spans triggered by
        # the handlers nest under it, tying HTTP entry to kernel runs
        with app.tracer.span(
            "http.request", method=method, path=path, request_id=request_id
        ) as span:
            try:
                if method == "GET" and path == "/healthz":
                    status, payload = app.handle_healthz()
                    self._send_json(status, payload, request_id=request_id)
                    return
                if method == "GET" and path == "/metrics":
                    fmt = parse_qs(parts.query).get("format", ["json"])[0]
                    if fmt == "prometheus":
                        status = 200
                        self._send_text(
                            status, app.handle_metrics_prometheus(), request_id=request_id
                        )
                        return
                    status, payload = app.handle_metrics()
                    self._send_json(status, payload, request_id=request_id)
                    return

                tenant = app.auth.authenticate(self.headers.get("Authorization"))
                tenant_name = tenant.name

                if method == "GET" and path.startswith("/jobs/"):
                    endpoint = "GET /jobs/{id}"
                    status, payload = app.handle_poll(tenant, path[len("/jobs/") :])
                elif method == "GET" and path == "/matrices":
                    status, payload = app.handle_list_matrices(tenant)
                elif method == "POST" and path == "/matrices":
                    body, bytes_in = self._read_json_body()
                    status, payload = app.handle_register(tenant, body)
                elif method == "POST" and path == "/multiply":
                    body, bytes_in = self._read_json_body()
                    status, payload = app.handle_multiply(tenant, body)
                elif method == "POST" and path == "/jobs":
                    body, bytes_in = self._read_json_body()
                    status, payload = app.handle_submit(tenant, body)
                elif method == "POST" and path == "/stream":
                    body, bytes_in = self._read_json_body()
                    records = app.handle_stream(tenant, body)
                    status = 200
                    self._send_ndjson_stream(records, request_id=request_id)
                    return
                else:
                    raise NotFound(f"no such endpoint: {endpoint}")
                self._send_json(status, payload, request_id=request_id)
            except ApiError as exc:
                status = exc.status
                rejected = exc.code if status in (401, 413, 429) else None
                self._drain_body()
                self._send_json(
                    status,
                    {"error": {"code": exc.code, "message": str(exc)}},
                    request_id=request_id,
                    retry_after=exc.retry_after,
                )
            except (BrokenPipeError, ConnectionResetError):  # pragma: no cover
                status = 499  # client went away mid-response; nothing to send
            except Exception as exc:  # unexpected: surface as a 500 envelope
                status = 500
                try:
                    self._drain_body()
                    self._send_json(
                        status,
                        {"error": {"code": "internal", "message": str(exc)}},
                        request_id=request_id,
                    )
                except (BrokenPipeError, ConnectionResetError):  # pragma: no cover
                    pass
            finally:
                wall_ms = 1e3 * (time.perf_counter() - start)
                span.set(endpoint=endpoint, status=status)
                if tenant_name is not None:
                    span.set(tenant=tenant_name)
                if status >= 400:
                    span.mark_error(rejected or f"http {status}")
                ctx = span.context if span.recording else None
                app.metrics.record_request(
                    endpoint=endpoint,
                    tenant=tenant_name,
                    status=status,
                    wall_ms=wall_ms,
                    bytes_in=bytes_in,
                    rejected=rejected,
                )
                app.log_event(
                    "request",
                    request_id=request_id,
                    method=method,
                    path=path,
                    tenant=tenant_name,
                    status=status,
                    wall_ms=round(wall_ms, 3),
                    bytes_in=bytes_in,
                    trace_id=ctx.trace_id if ctx is not None else None,
                    span_id=ctx.span_id if ctx is not None else None,
                )
