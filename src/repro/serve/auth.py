"""Token authentication and per-tenant quotas.

The daemon is multi-tenant: every request carries a bearer token
(``Authorization: Bearer <token>``) that resolves to a :class:`Tenant`
with its own quotas -- how many distinct matrices it may keep registered
and how many distinct plan-cache entries its traffic may create.  With
no tokens configured the server runs **open**: every request maps to one
shared anonymous tenant (convenient for local use and the docs suite;
production deployments pass ``tokens=``).

Quota accounting lives here too: :class:`PlanQuota` tracks the distinct
plan keys each tenant's multiplies have touched, so one tenant cannot
monopolise the shared plan cache by cycling configurations.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, Hashable, Iterable, Optional, Set, Union

from .errors import QuotaExceeded, Unauthorized

__all__ = ["Tenant", "Authenticator", "PlanQuota", "parse_token_specs"]

#: default per-tenant quota of distinct registered matrices
DEFAULT_MAX_MATRICES = 32
#: default per-tenant quota of distinct plan-cache keys
DEFAULT_MAX_PLANS = 64


@dataclass(frozen=True)
class Tenant:
    """One authenticated principal and its quotas."""

    name: str
    max_matrices: int = DEFAULT_MAX_MATRICES
    max_plans: int = DEFAULT_MAX_PLANS


#: the shared principal used when the server runs without tokens
ANONYMOUS = Tenant("anonymous")


class Authenticator:
    """Resolve bearer tokens to tenants.

    Parameters
    ----------
    tokens:
        Mapping of token to :class:`Tenant` (or to a plain tenant name,
        which gets default quotas).  ``None`` or empty selects open mode:
        every request -- with or without a token -- resolves to the
        shared :data:`ANONYMOUS` tenant.
    """

    def __init__(self, tokens: Optional[Dict[str, Union[Tenant, str]]] = None):
        self._tenants: Dict[str, Tenant] = {}
        for token, tenant in (tokens or {}).items():
            if isinstance(tenant, str):
                tenant = Tenant(tenant)
            self._tenants[str(token)] = tenant

    @property
    def open(self) -> bool:
        """Whether the server accepts unauthenticated requests."""
        return not self._tenants

    def authenticate(self, authorization: Optional[str]) -> Tenant:
        """Resolve an ``Authorization`` header value to a tenant.

        Raises :class:`~repro.serve.errors.Unauthorized` on a missing,
        malformed, or unknown token (unless the server is open).
        """
        if self.open:
            return ANONYMOUS
        if not authorization:
            raise Unauthorized("missing Authorization header (expected a bearer token)")
        scheme, _, token = authorization.partition(" ")
        if scheme.lower() != "bearer" or not token.strip():
            raise Unauthorized("malformed Authorization header (expected 'Bearer <token>')")
        tenant = self._tenants.get(token.strip())
        if tenant is None:
            raise Unauthorized("unknown token")
        return tenant


class PlanQuota:
    """Per-tenant ledger of distinct plan-cache keys.

    A multiply that would *create* a new plan key for a tenant already at
    its ``max_plans`` quota is rejected with a 429 before any build work
    happens; re-using an already-charged key is always free.  Thread-safe.
    """

    def __init__(self) -> None:
        self._keys: Dict[str, Set[Hashable]] = {}
        self._lock = threading.Lock()

    def charge(self, tenant: Tenant, key: Hashable, *, retry_after: float = 1.0) -> None:
        """Charge one plan key against a tenant's quota (idempotent per
        key); raises :class:`~repro.serve.errors.QuotaExceeded` when the
        key is new and the tenant is at quota."""
        with self._lock:
            used = self._keys.setdefault(tenant.name, set())
            if key in used:
                return
            if len(used) >= tenant.max_plans:
                raise QuotaExceeded(
                    f"tenant {tenant.name!r} reached its plan-cache quota "
                    f"({tenant.max_plans} distinct plans)",
                    retry_after=retry_after,
                )
            used.add(key)

    def used(self, tenant_name: str) -> int:
        """Distinct plan keys charged to one tenant so far."""
        with self._lock:
            return len(self._keys.get(tenant_name, ()))


def parse_token_specs(specs: Iterable[str]) -> Dict[str, Tenant]:
    """Parse CLI ``--token name=token`` pairs into an authenticator map.

    The tenant name may carry quota overrides as
    ``name:max_matrices:max_plans`` (e.g. ``alice:4:16=sekret``).
    """
    tokens: Dict[str, Tenant] = {}
    for spec in specs:
        name, sep, token = spec.partition("=")
        if not sep or not name or not token:
            raise ValueError(f"token spec {spec!r} is not of the form name=token")
        parts = name.split(":")
        if len(parts) == 1:
            tenant = Tenant(parts[0])
        elif len(parts) == 3:
            tenant = Tenant(parts[0], max_matrices=int(parts[1]), max_plans=int(parts[2]))
        else:
            raise ValueError(
                f"token spec {spec!r}: tenant must be 'name' or 'name:max_matrices:max_plans'"
            )
        tokens[token] = tenant
    return tokens
