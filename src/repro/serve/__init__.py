"""SpMM-as-a-service: the HTTP serving layer on top of the engine.

This package turns the in-process :class:`~repro.engine.SpMMEngine` into
a long-lived, multi-tenant daemon: clients register CSR matrices by
content fingerprint, then issue synchronous multiplies, async jobs, or
streamed batches over plain HTTP/JSON -- every request benefiting from
the same shared plan cache that makes repeated SpMM cheap in-process.
Start it from Python (:class:`SpMMServer`) or the CLI (``repro serve``);
talk to it with :class:`SpMMClient` or any HTTP client.

See ``docs/serving.md`` for the executable operations manual.
"""

from .admission import AdmissionController
from .app import SpMMServer
from .auth import Authenticator, PlanQuota, Tenant, parse_token_specs
from .client import ServeClientError, SpMMClient
from .errors import (
    ApiError,
    BadRequest,
    NotFound,
    Overloaded,
    PayloadTooLarge,
    QuotaExceeded,
    Unauthorized,
)
from .metrics import LatencyWindow, ServerMetrics
from .registry import MatrixRegistry
from .wire import decode_array, decode_csr, encode_array, encode_csr

__all__ = [
    "SpMMServer",
    "SpMMClient",
    "ServeClientError",
    "AdmissionController",
    "Authenticator",
    "PlanQuota",
    "Tenant",
    "parse_token_specs",
    "MatrixRegistry",
    "ServerMetrics",
    "LatencyWindow",
    "ApiError",
    "BadRequest",
    "Unauthorized",
    "NotFound",
    "PayloadTooLarge",
    "QuotaExceeded",
    "Overloaded",
    "encode_array",
    "decode_array",
    "encode_csr",
    "decode_csr",
]
