"""JSON wire codecs for arrays, matrices and reports.

The daemon speaks plain JSON, so numpy arrays need a transport form.
Two encodings are accepted on input:

* **packed** (what :class:`~repro.serve.client.SpMMClient` sends) --
  ``{"dtype": ..., "shape": [...], "data_b64": ...}`` with the raw
  little-endian buffer base64-encoded: compact, lossless and O(n) to
  decode;
* **plain nested lists** -- convenient for hand-written requests
  (``curl``); decoded with :func:`numpy.asarray`.

Responses always use the packed form.  CSR matrices travel as their
three arrays plus the shape (:func:`encode_csr`/:func:`decode_csr`), and
:func:`report_payload` flattens a :class:`~repro.core.plan.MultiplyReport`
into the JSON summary returned with every multiply.
"""

from __future__ import annotations

import base64
from typing import Dict, Optional

import numpy as np

from ..core.plan import MultiplyReport
from ..formats import CSRMatrix
from .errors import BadRequest

__all__ = [
    "encode_array",
    "decode_array",
    "encode_csr",
    "decode_csr",
    "report_payload",
]

#: dtypes accepted over the wire (little-endian on the wire; no objects)
_ALLOWED_KINDS = frozenset("fiu")


def encode_array(arr: np.ndarray) -> Dict[str, object]:
    """Encode a numpy array as a packed JSON-safe dict."""
    arr = np.ascontiguousarray(arr)
    if arr.dtype.kind not in _ALLOWED_KINDS:
        raise ValueError(f"cannot encode dtype {arr.dtype} over the wire")
    le = arr.astype(arr.dtype.newbyteorder("<"), copy=False)
    return {
        "dtype": arr.dtype.name,
        "shape": list(arr.shape),
        "data_b64": base64.b64encode(le.tobytes()).decode("ascii"),
    }


def decode_array(obj: object, *, field: str = "array") -> np.ndarray:
    """Decode the packed dict form or plain nested lists into an array.

    Raises :class:`~repro.serve.errors.BadRequest` (not bare exceptions)
    on malformed input, so the server maps decode failures to 400s.
    """
    if isinstance(obj, dict):
        try:
            dtype = np.dtype(str(obj["dtype"]))
            shape = tuple(int(d) for d in obj["shape"])
            raw = base64.b64decode(str(obj["data_b64"]), validate=True)
        except (KeyError, TypeError, ValueError) as exc:
            raise BadRequest(f"{field}: malformed packed array: {exc}") from None
        if dtype.kind not in _ALLOWED_KINDS:
            raise BadRequest(f"{field}: dtype {dtype.name!r} not allowed on the wire")
        expected = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
        if len(raw) != expected:
            raise BadRequest(
                f"{field}: buffer holds {len(raw)} bytes, shape {shape} "
                f"with dtype {dtype.name} needs {expected}"
            )
        arr = np.frombuffer(raw, dtype=dtype.newbyteorder("<")).reshape(shape)
        # always copy: frombuffer views are read-only, and CSR
        # construction sorts row segments in place
        return arr.astype(dtype, copy=True)
    if isinstance(obj, list):
        try:
            arr = np.asarray(obj)
        except (TypeError, ValueError) as exc:
            raise BadRequest(f"{field}: not an array: {exc}") from None
        if arr.dtype.kind not in _ALLOWED_KINDS:
            raise BadRequest(f"{field}: elements must be numeric")
        return arr
    raise BadRequest(f"{field}: expected a packed array object or nested lists")


def encode_csr(A: CSRMatrix) -> Dict[str, object]:
    """Encode a CSR matrix as its three packed arrays plus the shape."""
    return {
        "shape": [int(A.nrows), int(A.ncols)],
        "rowptr": encode_array(A.rowptr),
        "col": encode_array(A.col),
        "val": encode_array(A.val),
    }


def decode_csr(payload: Dict[str, object]) -> CSRMatrix:
    """Decode a registration payload into a validated :class:`CSRMatrix`."""
    for key in ("shape", "rowptr", "col", "val"):
        if key not in payload:
            raise BadRequest(f"matrix payload missing {key!r}")
    shape = payload["shape"]
    if not isinstance(shape, (list, tuple)) or len(shape) != 2:
        raise BadRequest("matrix shape must be a [rows, cols] pair")
    rowptr = decode_array(payload["rowptr"], field="rowptr")
    col = decode_array(payload["col"], field="col")
    val = decode_array(payload["val"], field="val")
    try:
        return CSRMatrix(rowptr, col, val, (int(shape[0]), int(shape[1])))
    except (TypeError, ValueError) as exc:
        raise BadRequest(f"invalid CSR structure: {exc}") from None


def report_payload(report: Optional[MultiplyReport]) -> Dict[str, object]:
    """Flatten a multiply report into the JSON summary of a response."""
    if report is None:
        return {}
    out: Dict[str, object] = {
        "backend": report.backend,
        "gflops": float(report.gflops),
        "simulated_ms": float(report.simulated_ms),
        "n_blocks": int(report.n_blocks),
        "bound": report.bound,
    }
    pre = report.preprocessing
    if pre is not None:
        out["reorder"] = pre.algorithm
        out["block_shape"] = list(pre.block_shape)
        if pre.fallback_from:
            out["fallback_from"] = pre.fallback_from
    return out
