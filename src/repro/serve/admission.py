"""Bounded admission control: shed load instead of queueing unboundedly.

A serving daemon in front of a CPU-bound engine degrades badly under
overload if every request is allowed to pile onto the worker pool: queue
time grows without bound and *every* request times out.  The admission
controller caps the damage with two numbers:

* ``max_inflight`` -- requests executing concurrently (sized to the
  engine's worker pool);
* ``max_queue`` -- requests allowed to *wait* for an execution slot.

A request that cannot get a slot within ``queue_timeout_s`` -- or that
arrives when the wait queue is already full -- is rejected immediately
with 429 and a ``Retry-After`` hint, which keeps latency bounded for the
requests that are admitted (the classic load-shedding trade).
"""

from __future__ import annotations

import contextlib
import threading
from typing import Iterator

from .errors import Overloaded

__all__ = ["AdmissionController"]


class AdmissionController:
    """Counting-semaphore admission with a bounded wait queue."""

    def __init__(
        self,
        max_inflight: int = 8,
        max_queue: int = 16,
        *,
        queue_timeout_s: float = 0.25,
        retry_after_s: float = 1.0,
    ):
        if max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        if max_queue < 0:
            raise ValueError("max_queue must be >= 0")
        self.max_inflight = int(max_inflight)
        self.max_queue = int(max_queue)
        self.queue_timeout_s = float(queue_timeout_s)
        self.retry_after_s = float(retry_after_s)
        self._slots = threading.Semaphore(self.max_inflight)
        self._lock = threading.Lock()
        self._inflight = 0
        self._queued = 0
        self._rejected = 0

    @contextlib.contextmanager
    def admit(self) -> Iterator[None]:
        """Hold one execution slot for the duration of the ``with`` body.

        Raises :class:`~repro.serve.errors.Overloaded` when no slot frees
        up within the queue timeout, or when the wait queue is full.
        """
        if not self._slots.acquire(blocking=False):
            with self._lock:
                if self._queued >= self.max_queue:
                    self._rejected += 1
                    raise Overloaded(
                        f"server at capacity ({self._inflight} in flight, "
                        f"{self._queued} queued)",
                        retry_after=self.retry_after_s,
                    )
                self._queued += 1
            try:
                acquired = self._slots.acquire(timeout=self.queue_timeout_s)
            finally:
                with self._lock:
                    self._queued -= 1
            if not acquired:
                with self._lock:
                    self._rejected += 1
                raise Overloaded(
                    f"no execution slot freed within {self.queue_timeout_s:.2f}s",
                    retry_after=self.retry_after_s,
                )
        with self._lock:
            self._inflight += 1
        try:
            yield
        finally:
            with self._lock:
                self._inflight -= 1
            self._slots.release()

    @property
    def inflight(self) -> int:
        """Requests currently holding an execution slot."""
        with self._lock:
            return self._inflight

    @property
    def queued(self) -> int:
        """Requests currently waiting for a slot."""
        with self._lock:
            return self._queued

    @property
    def depth(self) -> int:
        """Total admission pressure (in flight + waiting)."""
        with self._lock:
            return self._inflight + self._queued

    @property
    def rejected(self) -> int:
        """Requests shed with 429 so far."""
        with self._lock:
            return self._rejected
