"""Typed API errors of the serving daemon.

Every failure the HTTP surface can report is an :class:`ApiError`
subclass carrying its HTTP status, a stable machine-readable ``code``
and, for backpressure responses, a ``retry_after`` hint.  Handlers and
the domain layers (registry, auth, admission) raise these; the request
loop in :mod:`repro.serve.app` converts them into one uniform JSON error
envelope ``{"error": {"code": ..., "message": ...}}`` -- clients never
have to parse prose.
"""

from __future__ import annotations

from typing import Optional

__all__ = [
    "ApiError",
    "BadRequest",
    "Unauthorized",
    "NotFound",
    "PayloadTooLarge",
    "QuotaExceeded",
    "Overloaded",
]


class ApiError(Exception):
    """Base class: an error with an HTTP status and a stable code."""

    status = 500
    code = "internal"

    def __init__(self, message: str, *, retry_after: Optional[float] = None):
        super().__init__(message)
        #: seconds the client should wait before retrying (429 responses
        #: surface this as a ``Retry-After`` header)
        self.retry_after = retry_after


class BadRequest(ApiError):
    """Malformed request: invalid JSON, missing fields, bad array data."""

    status = 400
    code = "bad_request"


class Unauthorized(ApiError):
    """Missing or unknown bearer token."""

    status = 401
    code = "unauthorized"


class NotFound(ApiError):
    """Unknown route, fingerprint, or job id (also: not *your* job)."""

    status = 404
    code = "not_found"


class PayloadTooLarge(ApiError):
    """Request body exceeds the configured size limit."""

    status = 413
    code = "payload_too_large"


class QuotaExceeded(ApiError):
    """Per-tenant registration or plan-cache quota exhausted."""

    status = 429
    code = "quota_exceeded"


class Overloaded(ApiError):
    """Admission queue full: the server sheds load instead of queueing
    unboundedly; retry after ``retry_after`` seconds."""

    status = 429
    code = "overloaded"
