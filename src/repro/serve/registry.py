"""Fingerprint-keyed registry of uploaded matrices.

The daemon's data model mirrors the plan cache's: a matrix is identified
by its content fingerprint (:func:`~repro.core.plan.matrix_fingerprint`,
the same 128-bit BLAKE2b digest the engine keys plans on), not by a
user-chosen name.  ``POST /matrices`` uploads the CSR arrays once and
returns the fingerprint; every later multiply/submit/stream request
references it -- *upload once, multiply many*, the paper's amortisation
argument applied to the network boundary.

Storage is content-addressed and deduplicated across tenants (two
tenants uploading the same matrix share one copy and therefore one
cached plan), while *visibility* is per-tenant: a tenant can only use
fingerprints it registered itself, so fingerprints do not leak which
matrices other tenants hold.  Registration counts against the tenant's
``max_matrices`` quota; re-registering the same content is idempotent
and free.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Set

from ..core.plan import matrix_fingerprint
from ..formats import CSRMatrix
from .auth import Tenant
from .errors import NotFound, QuotaExceeded

__all__ = ["MatrixRegistry"]

#: default global cap on distinct registered matrices (all tenants)
DEFAULT_CAPACITY = 256


class MatrixRegistry:
    """Thread-safe content-addressed store of registered matrices.

    Parameters
    ----------
    capacity:
        Global cap on distinct matrices resident at once (all tenants
        together); registrations beyond it are rejected with a 429 so
        memory stays bounded.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        if capacity < 1:
            raise ValueError("registry capacity must be >= 1")
        self.capacity = int(capacity)
        self._matrices: Dict[str, CSRMatrix] = {}
        self._visible: Dict[str, Set[str]] = {}
        self._lock = threading.Lock()

    def register(self, A: CSRMatrix, tenant: Tenant) -> "tuple[str, bool]":
        """Register a matrix for a tenant; returns ``(fingerprint, created)``.

        ``created`` is False when the tenant had already registered the
        same content (idempotent, no quota charge).  Raises
        :class:`~repro.serve.errors.QuotaExceeded` when the tenant's
        ``max_matrices`` quota or the global capacity is exhausted.
        """
        fingerprint = matrix_fingerprint(A)
        with self._lock:
            visible = self._visible.setdefault(tenant.name, set())
            if fingerprint in visible:
                return fingerprint, False
            if len(visible) >= tenant.max_matrices:
                raise QuotaExceeded(
                    f"tenant {tenant.name!r} reached its registration quota "
                    f"({tenant.max_matrices} matrices); unused registrations "
                    "must be deleted first",
                    retry_after=1.0,
                )
            if fingerprint not in self._matrices:
                if len(self._matrices) >= self.capacity:
                    raise QuotaExceeded(
                        f"registry is full ({self.capacity} matrices)", retry_after=5.0
                    )
                self._matrices[fingerprint] = A
            visible.add(fingerprint)
            return fingerprint, True

    def get(self, fingerprint: str, tenant: Tenant) -> CSRMatrix:
        """Resolve a fingerprint the tenant registered; 404 otherwise."""
        with self._lock:
            if fingerprint not in self._visible.get(tenant.name, ()):
                raise NotFound(f"unknown matrix fingerprint {fingerprint!r}")
            return self._matrices[fingerprint]

    def delete(self, fingerprint: str, tenant: Tenant) -> None:
        """Drop one of the tenant's registrations (frees quota); the
        stored matrix is released once no tenant references it."""
        with self._lock:
            visible = self._visible.get(tenant.name, set())
            if fingerprint not in visible:
                raise NotFound(f"unknown matrix fingerprint {fingerprint!r}")
            visible.discard(fingerprint)
            if not any(fingerprint in seen for seen in self._visible.values()):
                self._matrices.pop(fingerprint, None)

    def list_for(self, tenant: Tenant) -> List[Dict[str, object]]:
        """The tenant's registrations as JSON-ready summaries."""
        with self._lock:
            fingerprints = sorted(self._visible.get(tenant.name, ()))
            rows = []
            for fp in fingerprints:
                A = self._matrices[fp]
                rows.append(
                    {
                        "fingerprint": fp,
                        "nrows": int(A.nrows),
                        "ncols": int(A.ncols),
                        "nnz": int(A.nnz),
                    }
                )
            return rows

    def count(self, tenant: Optional[Tenant] = None) -> int:
        """Distinct matrices stored (or registered by one tenant)."""
        with self._lock:
            if tenant is None:
                return len(self._matrices)
            return len(self._visible.get(tenant.name, ()))
