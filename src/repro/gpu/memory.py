"""Memory-hierarchy traffic and latency model.

Section II-A3 of the paper describes the A100 memory hierarchy (global
HBM2, per-SM shared memory with 32 banks, registers) and Section IV-E the
asynchronous global->shared copies used to hide latency.  The cost model
needs two things from the memory system:

* the *throughput* time to move a number of bytes at each level (DRAM and
  shared memory), with an efficiency factor for access-pattern quality
  (coalescing, bank conflicts), and
* the *latency* of individual accesses, which dominates when a kernel
  issues dependent loads without enough parallelism to hide them (the
  "naive" kernel variant of Figure 2).
"""

from __future__ import annotations

from dataclasses import dataclass

from .arch import GPUArchitecture

__all__ = ["MemoryModel", "AccessPattern"]


@dataclass(frozen=True)
class AccessPattern:
    """Qualitative description of a kernel's memory access pattern.

    Attributes
    ----------
    coalescing:
        Fraction of peak DRAM bandwidth achievable: 1.0 for perfectly
        coalesced streaming loads, down to ~1/32 for fully scattered
        per-thread accesses (each 32-byte sector transferring one useful
        element).
    bank_conflict_factor:
        Average number of shared-memory transactions per request (1.0 = no
        conflicts; 32.0 = fully serialised 32-way conflicts).
    l2_hit_rate:
        Fraction of DRAM reads served from L2 (re-reads of B in SpMM).
    """

    coalescing: float = 1.0
    bank_conflict_factor: float = 1.0
    l2_hit_rate: float = 0.0

    def __post_init__(self):
        if not 0.0 < self.coalescing <= 1.0:
            raise ValueError("coalescing must be in (0, 1]")
        if self.bank_conflict_factor < 1.0:
            raise ValueError("bank_conflict_factor must be >= 1")
        if not 0.0 <= self.l2_hit_rate < 1.0:
            raise ValueError("l2_hit_rate must be in [0, 1)")


class MemoryModel:
    """Converts byte counts into time on a given architecture."""

    def __init__(self, arch: GPUArchitecture):
        self.arch = arch

    # -- throughput ------------------------------------------------------------
    def dram_time_s(self, n_bytes: float, pattern: AccessPattern | None = None) -> float:
        """Time to move ``n_bytes`` between DRAM and the SMs.

        Reads served by the L2 cache are charged at L2 bandwidth instead of
        DRAM bandwidth.
        """
        pattern = pattern or AccessPattern()
        dram_bytes = n_bytes * (1.0 - pattern.l2_hit_rate)
        l2_bytes = n_bytes * pattern.l2_hit_rate
        dram_bw = self.arch.hbm_bandwidth_gbs * 1e9 * pattern.coalescing
        l2_bw = self.arch.l2_bandwidth_gbs * 1e9
        t = 0.0
        if dram_bytes:
            t += dram_bytes / dram_bw
        if l2_bytes:
            t += l2_bytes / l2_bw
        return t

    def shared_time_s(self, n_bytes: float, pattern: AccessPattern | None = None) -> float:
        """Time for ``n_bytes`` of aggregate shared-memory traffic."""
        pattern = pattern or AccessPattern()
        bw = self.arch.shared_bandwidth_gbs * 1e9 / pattern.bank_conflict_factor
        return n_bytes / bw if n_bytes else 0.0

    # -- latency -----------------------------------------------------------------
    def global_latency_s(self, n_dependent_accesses: float) -> float:
        """Serial latency of ``n`` *dependent* global accesses (no
        overlapping); models the naive, non-pipelined kernel variants."""
        cycles = n_dependent_accesses * self.arch.global_latency_cycles
        return cycles * self.arch.cycle_time_ns * 1e-9

    def shared_latency_s(self, n_dependent_accesses: float) -> float:
        """Serial latency of dependent shared-memory accesses."""
        cycles = n_dependent_accesses * self.arch.shared_latency_cycles
        return cycles * self.arch.cycle_time_ns * 1e-9

    # -- capacity ------------------------------------------------------------------
    def fits_in_device_memory(self, n_bytes: float, *, reserve_fraction: float = 0.05) -> bool:
        """Whether an allocation of ``n_bytes`` fits in HBM (minus a small
        reserve for the CUDA context); used to flag the out-of-memory
        failures the paper reports for Magicube on large matrices."""
        capacity = self.arch.hbm_capacity_gib * (1 << 30) * (1.0 - reserve_fraction)
        return n_bytes <= capacity
