"""Hardware event counters collected by the kernel models.

Every kernel in :mod:`repro.kernels` executes the SpMM numerically with
NumPy and, alongside, accumulates a :class:`KernelCounters` record of the
work a real GPU kernel would perform: Tensor-Core MMA instructions, CUDA
core FLOPs, bytes moved at each level of the memory hierarchy, and the
per-warp work distribution (the input to the load-balance-aware schedule
model).  The cost model (:mod:`repro.gpu.cost`) converts counters into a
simulated execution time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

__all__ = ["KernelCounters"]


@dataclass
class KernelCounters:
    """Work performed by one (simulated) kernel launch.

    Attributes
    ----------
    useful_flops:
        FLOPs that contribute to the mathematical result, ``2 * nnz * N``;
        GFLOP/s figures in the paper (and in our benchmarks) always use
        this numerator, so padding work lowers the reported rate.
    mma_instructions:
        Warp-level Tensor-Core MMA instructions issued.
    mma_flops:
        FLOPs processed by the Tensor Cores *including* padding
        (``mma_instructions * flops_per_mma``).
    cuda_core_flops:
        FLOPs executed on the regular FP32/FP64 pipelines (used by the
        cuSPARSE- and DASP-like baselines).
    bytes_global_read / bytes_global_write:
        DRAM traffic in bytes.
    bytes_shared:
        Shared-memory traffic in bytes (used for bank-conflict modelling).
    scalar_instructions:
        Address arithmetic / predicate / load-issue instructions; captures
        the per-non-zero decode overhead of unblocked formats.
    warp_work_cycles:
        Optional per-warp compute cycles; when present the schedule model
        computes the makespan of the static warp assignment (load
        imbalance).  When absent the aggregate throughput model is used.
    extra:
        Free-form per-kernel diagnostics (block counts, occupancy, ...).
    """

    useful_flops: float = 0.0
    mma_instructions: float = 0.0
    mma_flops: float = 0.0
    cuda_core_flops: float = 0.0
    bytes_global_read: float = 0.0
    bytes_global_write: float = 0.0
    bytes_shared: float = 0.0
    scalar_instructions: float = 0.0
    warp_work_cycles: Optional[np.ndarray] = None
    extra: Dict[str, float] = field(default_factory=dict)

    # -- derived -------------------------------------------------------------
    @property
    def bytes_global(self) -> float:
        """Total DRAM traffic."""
        return self.bytes_global_read + self.bytes_global_write

    @property
    def arithmetic_intensity(self) -> float:
        """Useful FLOPs per DRAM byte (roofline x-coordinate)."""
        return self.useful_flops / self.bytes_global if self.bytes_global else 0.0

    @property
    def padding_ratio(self) -> float:
        """Tensor-Core FLOPs per useful FLOP (>= 1; 1 = no padding waste)."""
        if not self.useful_flops:
            return 0.0
        work = self.mma_flops if self.mma_flops else self.cuda_core_flops
        return work / self.useful_flops

    # -- combination ----------------------------------------------------------
    def __add__(self, other: "KernelCounters") -> "KernelCounters":
        if not isinstance(other, KernelCounters):
            return NotImplemented
        warp = None
        if self.warp_work_cycles is not None and other.warp_work_cycles is not None:
            warp = np.concatenate([self.warp_work_cycles, other.warp_work_cycles])
        elif self.warp_work_cycles is not None:
            warp = self.warp_work_cycles
        elif other.warp_work_cycles is not None:
            warp = other.warp_work_cycles
        merged_extra = dict(self.extra)
        for k, v in other.extra.items():
            merged_extra[k] = merged_extra.get(k, 0.0) + v
        return KernelCounters(
            useful_flops=self.useful_flops + other.useful_flops,
            mma_instructions=self.mma_instructions + other.mma_instructions,
            mma_flops=self.mma_flops + other.mma_flops,
            cuda_core_flops=self.cuda_core_flops + other.cuda_core_flops,
            bytes_global_read=self.bytes_global_read + other.bytes_global_read,
            bytes_global_write=self.bytes_global_write + other.bytes_global_write,
            bytes_shared=self.bytes_shared + other.bytes_shared,
            scalar_instructions=self.scalar_instructions + other.scalar_instructions,
            warp_work_cycles=warp,
            extra=merged_extra,
        )

    def scaled(self, factor: float) -> "KernelCounters":
        """Return counters multiplied by ``factor`` (e.g. to model a batched
        kernel as repeated launches)."""
        warp = None
        if self.warp_work_cycles is not None:
            warp = self.warp_work_cycles * factor
        return KernelCounters(
            useful_flops=self.useful_flops * factor,
            mma_instructions=self.mma_instructions * factor,
            mma_flops=self.mma_flops * factor,
            cuda_core_flops=self.cuda_core_flops * factor,
            bytes_global_read=self.bytes_global_read * factor,
            bytes_global_write=self.bytes_global_write * factor,
            bytes_shared=self.bytes_shared * factor,
            scalar_instructions=self.scalar_instructions * factor,
            warp_work_cycles=warp,
            extra={k: v * factor for k, v in self.extra.items()},
        )

    def as_dict(self) -> Dict[str, float]:
        """Flat dictionary view (used by reports and tests)."""
        out = {
            "useful_flops": self.useful_flops,
            "mma_instructions": self.mma_instructions,
            "mma_flops": self.mma_flops,
            "cuda_core_flops": self.cuda_core_flops,
            "bytes_global_read": self.bytes_global_read,
            "bytes_global_write": self.bytes_global_write,
            "bytes_shared": self.bytes_shared,
            "scalar_instructions": self.scalar_instructions,
            "arithmetic_intensity": self.arithmetic_intensity,
            "padding_ratio": self.padding_ratio,
        }
        out.update(self.extra)
        return out
