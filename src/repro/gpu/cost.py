"""Cost model: turn kernel counters into simulated execution times.

This is the replacement for "running on the A100": every kernel in
:mod:`repro.kernels` produces a :class:`~repro.gpu.counters.KernelCounters`
record, and :class:`CostModel` converts it into a wall-clock estimate by
combining

* a **compute** term -- either the makespan of the static warp schedule
  (when per-warp work is available, capturing load imbalance) or an
  aggregate-throughput estimate over the Tensor Cores / CUDA cores,
* a **memory** term -- DRAM (and shared-memory) traffic over the
  respective bandwidths,
* a **scalar/issue** term -- per-non-zero index decode work of unblocked
  formats, executed on the regular pipelines,
* the fixed launch/initialisation overhead ``T_init`` of Eq. 1.

The total follows the usual bounded-overlap (roofline-style) composition:
``T = max(compute, memory, scalar) + T_init``.  Per-kernel efficiency
factors (how close a given implementation gets to each peak) are passed
in by the kernel models, keeping this module architecture-generic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from .arch import A100_SXM4_40GB, GPUArchitecture
from .counters import KernelCounters
from .memory import AccessPattern, MemoryModel
from .precision import Precision, get_precision
from .scheduler import ScheduleResult, makespan_cycles
from .tensorcore import TensorCoreModel

__all__ = ["KernelEfficiency", "SimulatedTiming", "CostModel"]


@dataclass(frozen=True)
class KernelEfficiency:
    """How close a particular kernel implementation gets to each hardware
    peak.  These factors encapsulate implementation quality (instruction
    mix, occupancy, issue-slot pressure) and are calibrated per kernel in
    :mod:`repro.kernels` against the anchor points the paper reports.
    """

    #: fraction of Tensor-Core peak reachable by the kernel's MMA stream
    tensor_core: float = 0.85
    #: fraction of CUDA-core peak reachable by scalar/FMA work
    cuda_core: float = 0.5
    #: DRAM access pattern quality
    memory: AccessPattern = field(default_factory=AccessPattern)
    #: instructions-per-cycle for scalar bookkeeping work per SM
    scalar_ipc: float = 2.0


@dataclass
class SimulatedTiming:
    """Simulated execution time of one kernel launch."""

    time_s: float
    useful_flops: float
    breakdown: Dict[str, float] = field(default_factory=dict)
    bound: str = "compute"
    schedule: Optional[ScheduleResult] = None

    @property
    def time_ms(self) -> float:
        return self.time_s * 1e3

    @property
    def time_us(self) -> float:
        return self.time_s * 1e6

    @property
    def gflops(self) -> float:
        """Useful GFLOP/s (the figure-of-merit of the paper's plots)."""
        return self.useful_flops / self.time_s / 1e9 if self.time_s > 0 else 0.0

    @property
    def tflops(self) -> float:
        return self.gflops / 1e3

    def as_dict(self) -> Dict[str, float]:
        out = {
            "time_ms": self.time_ms,
            "gflops": self.gflops,
            "bound": self.bound,
        }
        out.update({f"t_{k}_ms": v * 1e3 for k, v in self.breakdown.items()})
        return out


class CostModel:
    """Analytical A100 cost model shared by every kernel."""

    def __init__(self, arch: GPUArchitecture = A100_SXM4_40GB, precision="fp16"):
        self.arch = arch
        self.precision: Precision = get_precision(precision)
        self.memory = MemoryModel(arch)
        self.tensor_cores = TensorCoreModel(arch, self.precision)

    # -- individual terms ----------------------------------------------------------
    def compute_time_s(
        self,
        counters: KernelCounters,
        efficiency: KernelEfficiency,
    ) -> tuple[float, Optional[ScheduleResult]]:
        """Compute-side time: schedule makespan if per-warp work is known,
        otherwise aggregate throughput over the relevant execution units."""
        schedule = None
        if counters.warp_work_cycles is not None and counters.warp_work_cycles.size:
            schedule = makespan_cycles(counters.warp_work_cycles, self.arch)
            cycles = schedule.makespan_cycles / max(efficiency.tensor_core, 1e-9)
            return cycles * self.arch.cycle_time_ns * 1e-9, schedule

        t = 0.0
        if counters.mma_instructions:
            t += self.tensor_cores.time_for_mma_count_s(
                counters.mma_instructions, efficiency.tensor_core
            )
        if counters.cuda_core_flops:
            peak = self.arch.fp32_tflops * 1e12 * max(efficiency.cuda_core, 1e-9)
            t += counters.cuda_core_flops / peak
        return t, schedule

    def scalar_time_s(self, counters: KernelCounters, efficiency: KernelEfficiency) -> float:
        """Time spent on index decode / address arithmetic instructions."""
        if not counters.scalar_instructions:
            return 0.0
        issue_rate = (
            self.arch.num_sms
            * self.arch.warp_schedulers_per_sm
            * efficiency.scalar_ipc
            * self.arch.clock_ghz
            * 1e9
        )
        return counters.scalar_instructions / issue_rate

    def memory_time_s(self, counters: KernelCounters, efficiency: KernelEfficiency) -> float:
        """DRAM plus shared-memory streaming time."""
        t = self.memory.dram_time_s(counters.bytes_global, efficiency.memory)
        t += self.memory.shared_time_s(counters.bytes_shared, efficiency.memory)
        return t

    # -- composition --------------------------------------------------------------------
    def simulate(
        self,
        counters: KernelCounters,
        efficiency: Optional[KernelEfficiency] = None,
        *,
        launch_overhead_us: Optional[float] = None,
        n_launches: int = 1,
    ) -> SimulatedTiming:
        """Combine all terms into a simulated wall-clock time.

        ``n_launches`` multiplies the fixed overhead (used by the DASP
        baseline, which issues one SpMV kernel per column of ``B``).
        """
        efficiency = efficiency or KernelEfficiency()
        t_compute, schedule = self.compute_time_s(counters, efficiency)
        t_memory = self.memory_time_s(counters, efficiency)
        t_scalar = self.scalar_time_s(counters, efficiency)
        overhead_us = (
            launch_overhead_us
            if launch_overhead_us is not None
            else self.arch.kernel_launch_overhead_us
        )
        t_overhead = overhead_us * 1e-6 * max(1, n_launches)

        body = max(t_compute, t_memory, t_scalar)
        if body == t_memory and t_memory >= t_compute:
            bound = "memory"
        elif body == t_scalar and t_scalar >= t_compute:
            bound = "scalar"
        else:
            bound = "compute"

        total = body + t_overhead
        return SimulatedTiming(
            time_s=total,
            useful_flops=counters.useful_flops,
            breakdown={
                "compute": t_compute,
                "memory": t_memory,
                "scalar": t_scalar,
                "overhead": t_overhead,
            },
            bound=bound,
            schedule=schedule,
        )
