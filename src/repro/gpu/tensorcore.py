"""Tensor-Core execution model.

Models the warp-level ``mma.sync`` instruction stream of the SMaT kernel
(Listing 1 of the paper): how many cycles a warp needs per MMA when the
pipeline is saturated, the latency of an isolated MMA, and the cost of the
``ldmatrix`` shared-memory-to-register loads that feed it (Listings 2/3).
"""

from __future__ import annotations

from dataclasses import dataclass

from .arch import GPUArchitecture
from .precision import Precision, get_precision

__all__ = [
    "TensorCoreModel",
    "LDMATRIX_X2_CYCLES",
    "LDMATRIX_X4_CYCLES",
    "MMA_PIPELINE_LATENCY_CYCLES",
]

#: issue cost (cycles) of ldmatrix.x2 / .x4 per warp, from Ampere
#: microbenchmarking literature (Abdelkhalik et al. 2022)
LDMATRIX_X2_CYCLES = 2.0
LDMATRIX_X4_CYCLES = 4.0
#: result latency of an isolated mma.m16n8k16 (cycles); only matters when a
#: warp has no independent work to overlap (the naive variants)
MMA_PIPELINE_LATENCY_CYCLES = 16.0


@dataclass
class TensorCoreModel:
    """Per-warp and per-SM Tensor-Core throughput for one precision."""

    arch: GPUArchitecture
    precision: Precision

    def __init__(self, arch: GPUArchitecture, precision="fp16"):
        self.arch = arch
        self.precision = get_precision(precision)

    # -- throughput --------------------------------------------------------------
    @property
    def flops_per_mma(self) -> int:
        """FLOPs of one warp-level MMA instruction."""
        return self.precision.mma_shape.flops

    @property
    def sm_mma_per_cycle(self) -> float:
        """MMA instructions retired per SM per cycle at peak."""
        peak_flops_per_cycle = (
            self.precision.tc_peak_tflops(self.arch)
            * 1e12
            / (self.arch.num_sms * self.arch.clock_ghz * 1e9)
        )
        return peak_flops_per_cycle / self.flops_per_mma

    @property
    def warp_mma_issue_cycles(self) -> float:
        """Cycles between successive MMA issues of a single warp when all
        ``warp_schedulers_per_sm`` warps of an SM keep their Tensor Cores
        busy (steady-state pipelined execution).

        For FP16 on the A100 this evaluates to 8 cycles per
        ``mma.m16n8k16``, matching published microbenchmarks.
        """
        return self.arch.warp_schedulers_per_sm / self.sm_mma_per_cycle

    @property
    def mma_latency_cycles(self) -> float:
        """Latency of an isolated (non-pipelined) MMA instruction."""
        return MMA_PIPELINE_LATENCY_CYCLES

    # -- instruction helpers ---------------------------------------------------------
    def ldmatrix_cycles_per_block(self) -> float:
        """Register-load cost per BCSR block: one ``ldmatrix.x4`` for the A
        fragment and one ``ldmatrix.x2`` for the B fragment (Algorithm 1)."""
        return LDMATRIX_X4_CYCLES + LDMATRIX_X2_CYCLES

    def device_peak_tflops(self) -> float:
        return self.precision.tc_peak_tflops(self.arch)

    def time_for_mma_count_s(self, mma_instructions: float, efficiency: float = 1.0) -> float:
        """Aggregate-throughput time for a number of MMAs spread perfectly
        over the device (no load imbalance), at a given efficiency."""
        if mma_instructions <= 0:
            return 0.0
        per_device_mma_per_s = (
            self.sm_mma_per_cycle * self.arch.num_sms * self.arch.clock_ghz * 1e9
        )
        return mma_instructions / (per_device_mma_per_s * max(efficiency, 1e-9))
