"""Numeric precisions and their Tensor-Core MMA instruction shapes.

The paper's kernel runs FP16 with the ``mma.sync.aligned.m16n8k16``
instruction (Listing 1) and states that the BCSR block dimensions match
the MMA dimensions -- block size ``16 x 8`` for FP16 (Section IV-B).
Other precisions supported by the MMA hardware map to different shapes;
SMaT "works with all data types supported by the MMA hardware units", so
the reproduction models them all.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Tuple

import numpy as np

__all__ = ["Precision", "MMAShape", "get_precision"]


@dataclass(frozen=True)
class MMAShape:
    """One warp-level ``mma.sync`` instruction shape ``m x n x k``."""

    m: int
    n: int
    k: int

    @property
    def flops(self) -> int:
        """Multiply-add FLOPs performed by one instruction (2 * m * n * k)."""
        return 2 * self.m * self.n * self.k

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"m{self.m}n{self.n}k{self.k}"


class Precision(Enum):
    """Value precisions supported by the (simulated) Tensor Cores.

    Each member carries the element size in bytes, the warp-level MMA
    shape used for it on Ampere, the default BCSR block shape (the
    ``h x w`` of the paper: the output-rows x output-cols tile each warp
    owns), and the numpy dtype used for CPU-side numerics.
    """

    FP16 = ("fp16", 2, MMAShape(16, 8, 16), (16, 8), np.float16)
    BF16 = ("bf16", 2, MMAShape(16, 8, 16), (16, 8), np.float32)
    TF32 = ("tf32", 4, MMAShape(16, 8, 8), (16, 8), np.float32)
    FP64 = ("fp64", 8, MMAShape(8, 8, 4), (8, 8), np.float64)
    INT8 = ("int8", 1, MMAShape(16, 8, 32), (16, 8), np.int8)

    def __init__(self, key, itemsize, mma_shape, block_shape, np_dtype):
        self.key = key
        self.itemsize = int(itemsize)
        self.mma_shape: MMAShape = mma_shape
        self.block_shape: Tuple[int, int] = block_shape
        self.np_dtype = np_dtype

    # -- helpers -------------------------------------------------------------
    @property
    def accumulate_itemsize(self) -> int:
        """Bytes of the accumulator type (FP32 for the half/int precisions,
        FP64 for FP64)."""
        return 8 if self is Precision.FP64 else 4

    @property
    def ldmatrix_bytes(self) -> int:
        """Bytes moved by one ``ldmatrix.x4`` (four 8x8 b16 tiles)."""
        return 4 * 8 * 8 * 2

    def mma_count_for_block(self, block_shape: Tuple[int, int], n_cols: int) -> int:
        """Number of MMA instructions needed to apply one stored BCSR block
        of ``block_shape`` against ``n_cols`` columns of ``B``.

        One MMA covers an ``m x k`` fragment of ``A`` and ``k x n`` of
        ``B``.  The block contributes ``ceil(h/m) * ceil(w/k)`` fragments,
        each applied to ``ceil(n_cols/n)`` column tiles (with the final
        partial tile padded -- exactly what the CUDA kernel does).
        """
        h, w = block_shape
        m, n, k = self.mma_shape.m, self.mma_shape.n, self.mma_shape.k
        frag = -(-h // m) * -(-w // k)
        return frag * -(-max(1, n_cols) // n)

    def tc_peak_tflops(self, arch) -> float:
        """Device peak Tensor-Core throughput for this precision."""
        return arch.peak_tflops(self.key)


_ALIASES = {
    "fp16": Precision.FP16,
    "half": Precision.FP16,
    "float16": Precision.FP16,
    "bf16": Precision.BF16,
    "bfloat16": Precision.BF16,
    "tf32": Precision.TF32,
    "fp64": Precision.FP64,
    "double": Precision.FP64,
    "float64": Precision.FP64,
    "int8": Precision.INT8,
}


def get_precision(name) -> Precision:
    """Resolve a precision from a name string or pass through an existing
    :class:`Precision`."""
    if isinstance(name, Precision):
        return name
    key = str(name).lower()
    if key not in _ALIASES:
        raise ValueError(f"unknown precision {name!r}; known: {sorted(set(_ALIASES))}")
    return _ALIASES[key]
