"""Static warp-to-SM schedule model.

SMaT uses "bottom-up 2D parallelism": every warp owns one Tensor-Core
sized tile of the output matrix ``C`` and sequentially processes the BCSR
blocks of its block row (Figure 1, Algorithm 1).  The grid is *static*:
warps are assigned to SMs up front, so a skewed distribution of blocks per
block row translates directly into load imbalance -- the effect the paper
analyses for ``cant``, ``mip1`` and (catastrophically) ``dc2``
(Sections VI-B and VI-E).

:func:`makespan_cycles` turns a vector of per-warp work (in cycles) into
the device completion time of such a static schedule:

* warps are dealt round-robin to SMs in launch order (the hardware's
  block-to-SM rasterisation),
* inside an SM, ``warp_schedulers_per_sm`` warps execute concurrently
  (that is what saturates the SM's Tensor Cores), so an SM's completion
  time is at least ``total_work / schedulers`` and at least the longest
  single warp assigned to it,
* the device finishes when its slowest SM finishes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .arch import GPUArchitecture

__all__ = ["ScheduleResult", "makespan_cycles", "assign_round_robin"]


@dataclass(frozen=True)
class ScheduleResult:
    """Outcome of scheduling a set of warps onto the device."""

    makespan_cycles: float
    #: lower bound assuming perfect load balance (total work / device slots)
    balanced_cycles: float
    #: longest single warp (a hard lower bound regardless of balance)
    critical_path_cycles: float
    n_warps: int
    n_sms_used: int

    @property
    def load_imbalance(self) -> float:
        """Makespan divided by the perfectly balanced time (>= 1)."""
        if self.balanced_cycles <= 0:
            return 1.0
        return self.makespan_cycles / self.balanced_cycles


def assign_round_robin(n_warps: int, n_sms: int) -> np.ndarray:
    """SM index of each warp under round-robin launch-order assignment."""
    return np.arange(n_warps, dtype=np.int64) % max(1, n_sms)


def makespan_cycles(
    warp_cycles: np.ndarray,
    arch: GPUArchitecture,
    *,
    concurrent_warps_per_sm: int | None = None,
) -> ScheduleResult:
    """Completion time (in cycles) of a static round-robin warp schedule.

    Parameters
    ----------
    warp_cycles:
        Work of each warp in cycles, in launch order.
    arch:
        Target architecture (supplies SM count and scheduler width).
    concurrent_warps_per_sm:
        How many warps an SM can execute *at full per-warp speed*
        simultaneously.  Defaults to ``arch.warp_schedulers_per_sm``
        (one warp per scheduler keeps the Tensor Cores saturated; more
        resident warps only help hide latency, which the per-warp cycle
        counts already account for).
    """
    warp_cycles = np.asarray(warp_cycles, dtype=np.float64)
    n_warps = int(warp_cycles.size)
    if n_warps == 0:
        return ScheduleResult(0.0, 0.0, 0.0, 0, 0)
    slots = concurrent_warps_per_sm or arch.warp_schedulers_per_sm
    n_sms = arch.num_sms

    sm_of_warp = assign_round_robin(n_warps, n_sms)
    # total work per SM
    sm_work = np.bincount(sm_of_warp, weights=warp_cycles, minlength=n_sms)
    # longest warp per SM
    sm_longest = np.zeros(n_sms)
    np.maximum.at(sm_longest, sm_of_warp, warp_cycles)

    per_sm_time = np.maximum(sm_work / slots, sm_longest)
    makespan = float(per_sm_time.max())

    total = float(warp_cycles.sum())
    balanced = total / (n_sms * slots)
    critical = float(warp_cycles.max())
    return ScheduleResult(
        makespan_cycles=makespan,
        balanced_cycles=max(balanced, critical if n_warps <= n_sms * slots else balanced),
        critical_path_cycles=critical,
        n_warps=n_warps,
        n_sms_used=int(np.count_nonzero(sm_work)),
    )
