"""GPU architecture descriptions.

The paper evaluates on an NVIDIA A100-SXM4-40GB (Section II-A / V-B).  The
reproduction replaces the physical GPU with an analytical performance
simulator; :class:`GPUArchitecture` collects every architectural constant
the simulator needs.  Values for the A100 follow the paper's Section II-A3
and NVIDIA's published specification; V100 and H100 presets are provided
for sensitivity studies.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict

__all__ = [
    "GPUArchitecture",
    "A100_SXM4_40GB",
    "V100_SXM2_16GB",
    "H100_SXM5_80GB",
    "get_architecture",
]


@dataclass(frozen=True)
class GPUArchitecture:
    """Architectural constants of a (simulated) GPU.

    All throughput values are *theoretical peaks*; per-kernel efficiency
    factors are applied by the kernel cost models, not here.
    """

    name: str
    #: number of streaming multiprocessors
    num_sms: int
    #: boost clock in GHz used to convert cycles to seconds
    clock_ghz: float
    #: warp width (threads per warp)
    warp_size: int = 32
    #: Tensor Cores per SM
    tensor_cores_per_sm: int = 4
    #: FP32 CUDA cores per SM
    cuda_cores_per_sm: int = 64
    #: peak FP16 Tensor-Core throughput of the whole device, in TFLOP/s
    tc_fp16_tflops: float = 312.0
    #: peak FP32 CUDA-core throughput of the whole device, in TFLOP/s
    fp32_tflops: float = 19.5
    #: peak FP64 throughput in TFLOP/s (CUDA cores; A100 also has FP64 TC)
    fp64_tflops: float = 9.7
    #: HBM capacity in GiB
    hbm_capacity_gib: float = 40.0
    #: HBM bandwidth in GB/s
    hbm_bandwidth_gbs: float = 1555.0
    #: L2 cache size in MiB
    l2_cache_mib: float = 40.0
    #: L2 bandwidth in GB/s (approximate, microbenchmarked values)
    l2_bandwidth_gbs: float = 4000.0
    #: shared memory per SM in KiB (maximum configurable)
    shared_mem_per_sm_kib: float = 164.0
    #: shared-memory banks per SM
    shared_mem_banks: int = 32
    #: bytes per bank per clock
    shared_mem_bank_bytes_per_clock: int = 8
    #: register file size per SM in KiB
    registers_per_sm_kib: float = 256.0
    #: maximum resident warps per SM
    max_warps_per_sm: int = 64
    #: warp schedulers per SM (concurrent issue slots)
    warp_schedulers_per_sm: int = 4
    #: global-memory access latency in cycles (uncached)
    global_latency_cycles: int = 480
    #: shared-memory access latency in cycles
    shared_latency_cycles: int = 24
    #: fixed kernel launch + initialisation overhead in microseconds
    #: (the ``T_init`` of the paper's Eq. 1)
    kernel_launch_overhead_us: float = 4.0

    # -- derived quantities -------------------------------------------------------
    @property
    def cycle_time_ns(self) -> float:
        """Duration of one clock cycle in nanoseconds."""
        return 1.0 / self.clock_ghz

    @property
    def total_tensor_cores(self) -> int:
        return self.num_sms * self.tensor_cores_per_sm

    @property
    def tc_fp16_flops_per_sm_per_cycle(self) -> float:
        """FP16 Tensor-Core FLOPs retired per SM per clock at peak."""
        return self.tc_fp16_tflops * 1e12 / (self.num_sms * self.clock_ghz * 1e9)

    @property
    def fp32_flops_per_sm_per_cycle(self) -> float:
        """FP32 CUDA-core FLOPs retired per SM per clock at peak."""
        return self.fp32_tflops * 1e12 / (self.num_sms * self.clock_ghz * 1e9)

    @property
    def shared_bandwidth_gbs(self) -> float:
        """Aggregate shared-memory bandwidth of the device in GB/s."""
        per_sm_bytes_per_clock = self.shared_mem_banks * self.shared_mem_bank_bytes_per_clock
        return per_sm_bytes_per_clock * self.num_sms * self.clock_ghz

    def peak_tflops(self, precision_name: str) -> float:
        """Peak Tensor-Core throughput for a precision name (``"fp16"``,
        ``"bf16"``, ``"tf32"``, ``"int8"``, ``"fp64"``)."""
        p = precision_name.lower()
        if p in ("fp16", "bf16", "half"):
            return self.tc_fp16_tflops
        if p == "tf32":
            return self.tc_fp16_tflops / 2.0
        if p == "int8":
            return self.tc_fp16_tflops * 2.0
        if p == "fp64":
            return self.fp64_tflops * 2.0  # A100 FP64 tensor cores
        if p == "fp32":
            return self.fp32_tflops
        raise ValueError(f"unknown precision {precision_name!r}")

    def with_overrides(self, **kwargs) -> "GPUArchitecture":
        """Return a copy with some fields replaced (for what-if studies)."""
        return replace(self, **kwargs)


#: the paper's evaluation platform
A100_SXM4_40GB = GPUArchitecture(
    name="A100-SXM4-40GB",
    num_sms=108,
    clock_ghz=1.41,
)

V100_SXM2_16GB = GPUArchitecture(
    name="V100-SXM2-16GB",
    num_sms=80,
    clock_ghz=1.53,
    tensor_cores_per_sm=8,
    tc_fp16_tflops=125.0,
    fp32_tflops=15.7,
    fp64_tflops=7.8,
    hbm_capacity_gib=16.0,
    hbm_bandwidth_gbs=900.0,
    l2_cache_mib=6.0,
    shared_mem_per_sm_kib=96.0,
)

H100_SXM5_80GB = GPUArchitecture(
    name="H100-SXM5-80GB",
    num_sms=132,
    clock_ghz=1.83,
    tc_fp16_tflops=989.0,
    fp32_tflops=67.0,
    fp64_tflops=34.0,
    hbm_capacity_gib=80.0,
    hbm_bandwidth_gbs=3350.0,
    l2_cache_mib=50.0,
    shared_mem_per_sm_kib=228.0,
)

_ARCHITECTURES: Dict[str, GPUArchitecture] = {
    "a100": A100_SXM4_40GB,
    "a100-sxm4-40gb": A100_SXM4_40GB,
    "v100": V100_SXM2_16GB,
    "h100": H100_SXM5_80GB,
}


def get_architecture(name: str) -> GPUArchitecture:
    """Look up an architecture preset by (case-insensitive) name."""
    key = name.lower()
    if key not in _ARCHITECTURES:
        raise ValueError(f"unknown architecture {name!r}; known: {sorted(_ARCHITECTURES)}")
    return _ARCHITECTURES[key]
