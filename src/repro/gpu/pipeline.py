"""Software-pipelining (double-buffering) model.

Section IV-E of the paper: ``cuda::memcpy_async`` lets a warp copy the
*next* BCSR block from global to shared memory while the Tensor Cores
process the current one.  With the copy engine doing the staging, the
steady-state per-block cost becomes the maximum of the compute time and
the load time instead of their sum; only the first block of each warp
pays the full (non-overlapped) load latency.

:func:`per_block_cycles` captures this for a warp that processes ``n``
blocks sequentially, and is used by the SMaT kernel variants
(Figure 2: adding "C" -- cooperative asynchronous loads -- on top of
"BT").
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["PipelineConfig", "per_block_cycles", "warp_total_cycles"]


@dataclass(frozen=True)
class PipelineConfig:
    """Describes how a warp overlaps data movement with computation.

    Attributes
    ----------
    async_copy:
        ``cuda::memcpy_async`` is used: global->shared copies bypass the
        register file and overlap with MMA execution (the "C"
        optimisation).
    double_buffered:
        Two shared-memory buffers are used so that the copy of block
        ``i+1`` runs during the computation of block ``i``.
    stages:
        Number of pipeline stages (2 = classic double buffering; more
        stages smooth out DRAM latency spikes but cost shared memory).
    """

    async_copy: bool = True
    double_buffered: bool = True
    stages: int = 2


def per_block_cycles(
    compute_cycles: float,
    load_cycles: float,
    config: PipelineConfig,
) -> float:
    """Steady-state cost of one block for a warp.

    Without overlap the warp pays ``compute + load`` per block; with
    asynchronous double buffering it pays ``max(compute, load)``.
    """
    if config.async_copy and config.double_buffered:
        return max(compute_cycles, load_cycles)
    if config.async_copy:
        # async copy without double buffering still removes the
        # global->register->shared round-trip, modelled as halving the
        # exposed load cost
        return compute_cycles + 0.5 * load_cycles
    return compute_cycles + load_cycles


def warp_total_cycles(
    n_blocks: int,
    compute_cycles: float,
    load_cycles: float,
    config: PipelineConfig,
    *,
    prologue_cycles: float = 0.0,
) -> float:
    """Total cycles for a warp that processes ``n_blocks`` blocks.

    The first block cannot overlap its own load (pipeline fill), so it
    always pays ``compute + load``; subsequent blocks pay the steady-state
    cost.  ``prologue_cycles`` accounts for fixed per-warp work such as
    loading the B panel and writing back the C tile.
    """
    if n_blocks <= 0:
        return prologue_cycles
    steady = per_block_cycles(compute_cycles, load_cycles, config)
    fill = compute_cycles + load_cycles
    return prologue_cycles + fill + steady * (n_blocks - 1)
