"""Analytical GPU (A100) performance-simulation substrate.

The paper's kernels run on a physical NVIDIA A100; this reproduction
executes the same dataflow numerically with NumPy and *times* it with an
analytical model of the A100 (see DESIGN.md for the substitution
rationale).  The model has four parts:

* :mod:`repro.gpu.arch` -- architectural constants (SMs, clocks, peaks),
* :mod:`repro.gpu.precision` / :mod:`repro.gpu.tensorcore` -- MMA
  instruction shapes and Tensor-Core throughput,
* :mod:`repro.gpu.memory` / :mod:`repro.gpu.pipeline` -- memory hierarchy
  traffic, latency, and the async-copy double-buffering overlap,
* :mod:`repro.gpu.scheduler` / :mod:`repro.gpu.cost` -- the static
  warp-to-SM schedule (load imbalance) and the roofline-style composition
  into a simulated wall-clock time.
"""

from .arch import (
    A100_SXM4_40GB,
    H100_SXM5_80GB,
    V100_SXM2_16GB,
    GPUArchitecture,
    get_architecture,
)
from .cost import CostModel, KernelEfficiency, SimulatedTiming
from .counters import KernelCounters
from .memory import AccessPattern, MemoryModel
from .pipeline import PipelineConfig, per_block_cycles, warp_total_cycles
from .precision import MMAShape, Precision, get_precision
from .scheduler import ScheduleResult, assign_round_robin, makespan_cycles
from .tensorcore import TensorCoreModel

__all__ = [
    "GPUArchitecture",
    "A100_SXM4_40GB",
    "V100_SXM2_16GB",
    "H100_SXM5_80GB",
    "get_architecture",
    "Precision",
    "MMAShape",
    "get_precision",
    "TensorCoreModel",
    "MemoryModel",
    "AccessPattern",
    "PipelineConfig",
    "per_block_cycles",
    "warp_total_cycles",
    "KernelCounters",
    "ScheduleResult",
    "makespan_cycles",
    "assign_round_robin",
    "CostModel",
    "KernelEfficiency",
    "SimulatedTiming",
]
