"""``ShardedSpMM``: the one-matrix facade over the sharded subsystem.

Where :class:`~repro.core.smat.SMaT` binds one matrix to one plan,
``ShardedSpMM`` binds one matrix to a balanced shard grid: partitioning
and per-shard preprocessing run once at construction (through an
:class:`~repro.engine.SpMMEngine` plan cache, so shards are shared with
any other sharded or engine query over the same matrix), and every
:meth:`multiply` is a scatter-gather over the prepared shard plans.

Example
-------
>>> import numpy as np
>>> from repro.shard import ShardedSpMM
>>> from repro.matrices import band_matrix
>>> A = band_matrix(1024, 32)
>>> B = np.ones((1024, 8), dtype=np.float32)
>>> with ShardedSpMM(A, grid=4) as sharded:
...     C, report = sharded.multiply(B, return_report=True)
>>> report.n_shards
4
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..core.config import SMaTConfig
from ..core.policy import ExecutionPolicy, policy_from_legacy
from ..engine import SpMMEngine
from ..formats import CSRMatrix
from .executor import ShardedReport
from .partition import PARTITION_MODES, Partition, parse_grid
from .plan import ShardPlanEntry

__all__ = ["ShardedSpMM"]


class ShardedSpMM:
    """Partitioned SpMM: one balanced shard grid, one tuned plan per shard.

    Parameters
    ----------
    A:
        The sparse matrix in CSR format.
    grid:
        Shard grid: an integer (row panels), an ``"RxC"`` string, or a
        ``(rows, cols)`` pair.
    config:
        Base pipeline configuration for every shard plan.
    mode:
        Balancing mode: ``"nnz"`` (greedy prefix-sum split of non-zeros)
        or ``"cost"`` (equalise Eq. 1 predicted shard cost).
    policy:
        :class:`~repro.core.policy.ExecutionPolicy` of the owned engine:
        pool width, tuning, and whether shards run on the thread pool or
        the shared-memory process pool.  (``grid`` passed to this class
        takes precedence over ``policy.grid``.)
    tuner:
        A pre-configured :class:`~repro.tuner.Tuner` for the owned
        engine (implies tuning); controls the per-shard search budget
        and candidate space.
    tuning_cache:
        Path (or :class:`~repro.tuner.TuningCache`) of the owned
        engine's persistent tuning cache (implies tuning).
    engine:
        Run through an existing engine (sharing its plan cache, tuner,
        executor and worker pool) instead of owning a private one.
        Execution knobs then belong to that engine (passing
        ``policy``/``tune``/``tuner``/``tuning_cache`` here raises).
    tune, max_workers:
        **Deprecated** spellings of the matching policy fields; passing
        either (without ``policy=``) builds the equivalent policy and
        emits one :class:`DeprecationWarning`.
    n_cols:
        Operand width the ``"cost"`` balancing mode calibrates its Eq. 1
        weights for (irrelevant to ``"nnz"`` mode).
    """

    def __init__(
        self,
        A: CSRMatrix,
        grid=None,
        config: Optional[SMaTConfig] = None,
        *,
        mode: str = "nnz",
        policy: Optional[ExecutionPolicy] = None,
        tune: Optional[bool] = None,
        tuner=None,
        tuning_cache=None,
        engine: Optional[SpMMEngine] = None,
        max_workers: Optional[int] = None,
        n_cols: int = 8,
    ):
        if not isinstance(A, CSRMatrix):
            raise TypeError("ShardedSpMM expects a repro.formats.CSRMatrix input")
        if mode not in PARTITION_MODES:
            raise ValueError(f"unknown partition mode {mode!r}; use one of {PARTITION_MODES}")
        has_policy = policy is not None
        policy = policy_from_legacy(
            policy, where="ShardedSpMM", tune=tune, max_workers=max_workers
        )
        self.A = A
        self.grid: Tuple[int, int] = parse_grid(grid if grid is not None else policy.grid)
        self.mode = mode
        self.n_cols = int(n_cols)
        self.config = (config or SMaTConfig()).validate()
        self._owns_engine = engine is None
        if engine is None:
            n_shards = self.grid[0] * self.grid[1]
            engine = SpMMEngine(
                self.config,
                policy=policy,
                # room for every shard plan plus the partition entry
                cache_size=max(8, 2 * n_shards + 1),
                tuner=tuner,
                tuning_cache=tuning_cache,
            )
        elif (
            has_policy
            or tune
            or max_workers is not None
            or tuner is not None
            or tuning_cache is not None
        ):
            raise ValueError(
                "pass execution/tuning options (policy, tune, max_workers, tuner, "
                "tuning_cache) to the engine itself when providing one"
            )
        self.engine = engine
        self._partition: Optional[Partition] = None
        self._entries: Optional[List[ShardPlanEntry]] = None
        try:
            self.preprocess()
        except BaseException:
            # an owned engine's worker pool must not outlive a failed init
            self.close()
            raise

    # -- preprocessing --------------------------------------------------------
    def preprocess(self) -> List[ShardPlanEntry]:
        """Partition the matrix and build (or fetch) every shard plan.
        Idempotent; runs once at construction."""
        if self._entries is None:
            self._partition = self.engine.partition_for(
                self.A, self.grid, mode=self.mode, config=self.config, n_cols=self.n_cols
            )
            self._entries = self.engine.shard_plans_for(self._partition, self.config)
        return self._entries

    @property
    def partition(self) -> Partition:
        """The prepared shard partition of ``A``."""
        assert self._partition is not None
        return self._partition

    @property
    def entries(self) -> List[ShardPlanEntry]:
        """One prepared plan entry per shard."""
        assert self._entries is not None
        return self._entries

    @property
    def n_shards(self) -> int:
        """Number of shards in the grid."""
        return self.partition.n_shards

    @property
    def imbalance(self) -> float:
        """nnz imbalance factor of the partition (1.0 = perfect)."""
        return self.partition.imbalance

    # -- execution ------------------------------------------------------------
    def multiply(self, B: np.ndarray, *, return_report: bool = False):
        """Compute ``C = A @ B`` over the prepared shard plans.

        Returns ``C``, or ``(C, ShardedReport)`` with ``return_report``.
        """
        C, report = self.engine.execute_sharded(self.partition, self.entries, B)
        if not return_report:
            return C
        return C, report

    def shard_table(self, B: Optional[np.ndarray] = None) -> List[dict]:
        """Per-shard breakdown rows (runs one multiply to time the shards;
        pass ``B`` to control the operand, default is an 8-column ones
        matrix)."""
        if B is None:
            B = np.ones((self.A.ncols, 8), dtype=np.float32)
        _, report = self.multiply(B, return_report=True)
        return report.table()

    def report_for(self, B: np.ndarray) -> ShardedReport:
        """Run one multiply and return only its :class:`ShardedReport`."""
        _, report = self.multiply(B, return_report=True)
        return report

    # -- lifecycle ------------------------------------------------------------
    def close(self) -> None:
        """Shut down the owned engine (a shared engine is left running)."""
        if self._owns_engine:
            self.engine.close()

    def __enter__(self) -> "ShardedSpMM":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<ShardedSpMM A={self.A.shape} nnz={self.A.nnz} "
            f"grid={self.grid[0]}x{self.grid[1]} mode={self.mode!r} "
            f"imbalance={self.imbalance:.3f}>"
        )
