"""Sharded SpMM: nnz-balanced partitioning with per-shard tuned plans.

The paper's pipeline prepares one plan per matrix; its own ablations show
the best block shape and reordering vary with sparsity structure, which
holds *within* one large matrix too.  This subsystem splits a matrix into
a balanced grid of shards, prepares (and caches) one
:class:`~repro.core.plan.ExecutionPlan` per shard -- each with its own
reordering and, through the tuner, its own block shape -- and
scatter-gathers the shard runs on the engine's thread pool:

* :mod:`~repro.shard.partition` -- greedy nnz-balanced and Eq.1
  cost-model-guided 1D row-panel / 2D grid partitions;
* :mod:`~repro.shard.plan` -- per-shard plans through the shared
  :class:`~repro.engine.cache.PlanCache` under derived, shard-aware
  fingerprint keys;
* :mod:`~repro.shard.executor` -- scatter-gather execution with a
  per-shard :class:`ShardReport` breakdown;
* :class:`ShardedSpMM` -- the one-matrix facade (partition + preprocess
  once, multiply many), mirrored by
  :meth:`repro.engine.SpMMEngine.multiply_sharded` for serving workloads.

Quick start
-----------
>>> import numpy as np
>>> from repro.shard import ShardedSpMM
>>> from repro.matrices import band_matrix
>>> A = band_matrix(1024, 32)
>>> B = np.ones((1024, 8), dtype=np.float32)
>>> with ShardedSpMM(A, grid="2x2") as sharded:
...     C = sharded.multiply(B)
>>> C.shape
(1024, 8)
"""

from .executor import ShardedReport, ShardReport, execute_partition
from .facade import ShardedSpMM
from .partition import (
    Partition,
    Shard,
    make_partition,
    parse_grid,
    partition_grid,
    partition_rows,
)
from .plan import ShardPlanEntry, ShardPlanner, shard_fingerprint, shard_plan_key

__all__ = [
    "ShardedSpMM",
    "Partition",
    "Shard",
    "make_partition",
    "parse_grid",
    "partition_rows",
    "partition_grid",
    "ShardPlanner",
    "ShardPlanEntry",
    "shard_fingerprint",
    "shard_plan_key",
    "ShardReport",
    "ShardedReport",
    "execute_partition",
]
