"""Scatter-gather execution of a sharded SpMM.

Each shard multiplies its submatrix by the matching column range of ``B``
(scatter); the per-shard results are assembled into the full ``C``
(gather):

* **row panels** (one column panel) write disjoint row ranges of ``C``
  and simply concatenate;
* **2D grids** produce partial products per row panel that are
  *stream-reduced*: each cell's contribution is added into ``C`` under a
  per-row-panel lock as soon as it completes, so no per-cell partial
  matrices accumulate in memory.

Shards run concurrently on a thread pool (normally the engine's); plan
execution is read-only, so any worker count is safe.  The per-shard
breakdown is reported as :class:`ShardReport` rows inside a
:class:`ShardedReport`.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

import numpy as np

from ..obs.trace import NULL_TRACER
from .partition import Partition
from .plan import ShardPlanEntry

__all__ = ["ShardReport", "ShardedReport", "execute_partition"]


@dataclass
class ShardReport:
    """Per-shard breakdown of one sharded multiply."""

    index: int
    pos: Tuple[int, int]
    rows: Tuple[int, int]
    cols: Tuple[int, int]
    nnz: int
    #: execution backend of the shard's plan (``"-"`` for empty shards);
    #: per-shard tuning may pick different backends across one matrix
    backend: str
    #: chosen configuration, ``HxW/reorder`` (``"-"`` for empty shards)
    config: str
    #: non-zero BCSR blocks of the shard's plan
    blocks: int
    cache_hit: bool
    #: simulated device time of this shard's kernel run
    simulated_ms: float
    #: host wall-clock of this shard's execute (including gather)
    wall_ms: float
    #: this shard's share of the total nnz, relative to a perfect split
    #: (1.0 = exactly nnz / n_shards)
    imbalance: float


@dataclass
class ShardedReport:
    """Aggregate report of one sharded multiply."""

    grid: Tuple[int, int]
    mode: str
    #: nnz imbalance factor of the partition (max shard / ideal shard)
    imbalance: float
    shards: List[ShardReport] = field(default_factory=list)
    #: host wall-clock of the whole scatter-gather
    wall_ms: float = 0.0
    #: device-serial simulated time (sum over shards)
    simulated_ms: float = 0.0
    #: device-parallel critical path (slowest shard)
    critical_path_ms: float = 0.0

    @property
    def n_shards(self) -> int:
        """Number of shards that were executed."""
        return len(self.shards)

    @property
    def nnz(self) -> int:
        """Total non-zeros across all shards."""
        return sum(s.nnz for s in self.shards)

    @property
    def cache_hits(self) -> int:
        """Shards whose plan came from the cache (no rebuild)."""
        return sum(1 for s in self.shards if s.cache_hit)

    @property
    def backends(self) -> List[str]:
        """Distinct execution backends across the shards (sorted).

        More than one entry means per-shard tuning selected a
        heterogeneous backend mix for this matrix."""
        return sorted({s.backend for s in self.shards if s.backend != "-"})

    def table(self) -> List[dict]:
        """Shard-table rows for the CLI / examples."""
        return [
            {
                "shard": f"{s.index} {s.pos[0]},{s.pos[1]}",
                "rows": f"{s.rows[0]}:{s.rows[1]}",
                "cols": f"{s.cols[0]}:{s.cols[1]}",
                "nnz": s.nnz,
                "imbalance": s.imbalance,
                "backend": s.backend,
                "config": s.config,
                "blocks": s.blocks,
                "sim_ms": s.simulated_ms,
                "wall_ms": s.wall_ms,
                "cached": s.cache_hit,
            }
            for s in self.shards
        ]


def _shard_report(
    entry: ShardPlanEntry, ideal_nnz: float, simulated_ms: float, wall_ms: float, blocks: int
) -> ShardReport:
    shard = entry.shard
    return ShardReport(
        index=shard.index,
        pos=shard.pos,
        rows=(shard.row_start, shard.row_stop),
        cols=(shard.col_start, shard.col_stop),
        nnz=shard.nnz,
        backend=entry.backend,
        config=entry.config_label,
        blocks=blocks,
        cache_hit=entry.cache_hit,
        simulated_ms=simulated_ms,
        wall_ms=wall_ms,
        imbalance=shard.nnz / ideal_nnz if ideal_nnz > 0 else 1.0,
    )


def execute_partition(
    partition: Partition,
    entries: Sequence[ShardPlanEntry],
    B: np.ndarray,
    *,
    executor=None,
    tracer=None,
    parent=None,
) -> Tuple[np.ndarray, ShardedReport]:
    """Run every shard against ``B`` and gather the full ``C = A @ B``.

    ``entries`` must correspond one-to-one (and in order) to
    ``partition.shards``; ``executor`` is an optional
    ``concurrent.futures`` executor for concurrent shard runs.
    ``tracer``/``parent`` (a :class:`repro.obs.Tracer` and the caller's
    span context) record one ``shard.run`` span per non-empty shard --
    ``parent`` is explicit because shards run on pool threads whose span
    stacks are empty.
    """
    tracer = tracer if tracer is not None else NULL_TRACER
    A = partition.A
    B_arr = np.asarray(B)
    was_vector = B_arr.ndim == 1
    if was_vector:
        B_arr = B_arr.reshape(-1, 1)
    if B_arr.ndim != 2 or B_arr.shape[0] != A.ncols:
        raise ValueError(
            f"operand B must have {A.ncols} rows to match A {A.shape}, got {B_arr.shape}"
        )
    if len(entries) != len(partition.shards):
        raise ValueError("one ShardPlanEntry per shard expected")

    out_dtype = np.result_type(A.dtype, B_arr.dtype, np.float32)
    C = np.zeros((A.nrows, B_arr.shape[1]), dtype=out_dtype)
    multi_panel = partition.grid[1] > 1
    # one gather lock per row panel: cells of a row panel stream-reduce
    # into the same row range, cells of different panels never contend
    panel_locks = [threading.Lock() for _ in range(partition.grid[0])]
    ideal_nnz = A.nnz / len(partition.shards) if partition.shards else 0.0

    def run_one(entry: ShardPlanEntry) -> ShardReport:
        """Execute one shard and gather its panel into ``C``."""
        shard = entry.shard
        if entry.plan is None:  # empty shard: contributes nothing
            return _shard_report(entry, ideal_nnz, 0.0, 0.0, 0)
        with tracer.span(
            "shard.run", parent=parent, shard=shard.index, backend=entry.backend
        ) as span:
            start = time.perf_counter()
            C_sub, report = entry.plan.execute(B_arr[shard.col_start : shard.col_stop])
            if multi_panel:
                with panel_locks[shard.pos[0]]:
                    C[shard.row_start : shard.row_stop] += C_sub
            else:
                C[shard.row_start : shard.row_stop] = C_sub
            wall_ms = 1e3 * (time.perf_counter() - start)
            span.set(nnz=shard.nnz, wall_ms=round(wall_ms, 3))
        return _shard_report(entry, ideal_nnz, report.simulated_ms, wall_ms, report.n_blocks)

    start = time.perf_counter()
    if executor is None or len(entries) <= 1:
        reports = [run_one(entry) for entry in entries]
    else:
        futures = [executor.submit(run_one, entry) for entry in entries]
        reports = [f.result() for f in futures]
    wall_ms = 1e3 * (time.perf_counter() - start)

    if was_vector:
        C = C.ravel()
    return C, ShardedReport(
        grid=partition.grid,
        mode=partition.mode,
        imbalance=partition.imbalance,
        shards=reports,
        wall_ms=wall_ms,
        simulated_ms=sum(r.simulated_ms for r in reports),
        critical_path_ms=max((r.simulated_ms for r in reports), default=0.0),
    )
