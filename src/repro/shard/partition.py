"""nnz- and cost-balanced partitioning of a CSR matrix into shards.

The paper's pipeline prepares and executes *one* plan per matrix.  Its own
ablations show that the best block shape and reordering vary strongly with
sparsity structure -- which holds *within* one large matrix too.  The
partitioner splits a :class:`~repro.formats.csr.CSRMatrix` into contiguous
panels so every shard can get its own reordering, tuned block shape, and
:class:`~repro.core.plan.ExecutionPlan`:

* **1D row panels** -- ``grid = (r, 1)``: each shard owns a contiguous
  row range and the full column dimension; results concatenate.
* **2D grids** -- ``grid = (r, c)``: rows are split into ``r`` panels and
  each row panel is *independently* split into ``c`` column panels, so a
  cell's non-zero count stays close to ``nnz / (r*c)`` even when the
  matrix is banded or block-diagonal (a shared global column split would
  concentrate everything in the diagonal cells).  Cells of one row panel
  produce partial products over disjoint column ranges of ``B`` that the
  executor stream-reduces.

Two balancing modes:

* ``"nnz"`` -- the greedy prefix-sum split over per-row non-zero counts;
* ``"cost"`` -- a cost-model-guided split that equalises *predicted shard
  runtime* using the paper's Eq. 1 linear model
  (:mod:`repro.core.perfmodel` via the tuner's calibration): the per-row
  weight is the row's share of non-zero BCSR blocks, which is what the
  kernel actually pays for, not its raw non-zero count.

Shard boundaries are aligned to the BCSR block shape of the target
configuration so no shard splits a block row (or block column) of its own
blocking.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..core.config import SMaTConfig
from ..formats import CSRMatrix

__all__ = [
    "Shard",
    "Partition",
    "parse_grid",
    "partition_rows",
    "partition_grid",
    "make_partition",
]

#: balancing modes accepted by the partitioner
PARTITION_MODES = ("nnz", "cost")


def parse_grid(grid: Union[int, str, Sequence[int], Tuple[int, int]]) -> Tuple[int, int]:
    """Normalise a grid specification to ``(row_panels, col_panels)``.

    Accepts an integer ``r`` (``r`` row panels), a string ``"r"`` or
    ``"rxc"`` (as taken by the CLI, e.g. ``"2x2"``), or a pair.
    """
    if isinstance(grid, str):
        text = grid.strip().lower()
        parts = text.split("x")
        try:
            dims = [int(p) for p in parts]
        except ValueError:
            raise ValueError(f"invalid grid specification {grid!r}; use 'R' or 'RxC'") from None
        if len(dims) == 1:
            dims.append(1)
        if len(dims) != 2:
            raise ValueError(f"invalid grid specification {grid!r}; use 'R' or 'RxC'")
        r, c = dims
    elif isinstance(grid, (int, np.integer)):
        r, c = int(grid), 1
    else:
        try:
            r, c = (int(grid[0]), int(grid[1]))
        except (TypeError, IndexError, ValueError):
            raise ValueError(
                f"invalid grid specification {grid!r}; use an int, 'RxC', or a (rows, cols) pair"
            ) from None
    if r < 1 or c < 1:
        raise ValueError(f"grid dimensions must be >= 1, got {(r, c)}")
    return (r, c)


@dataclass(frozen=True)
class Shard:
    """One cell of a partition: a contiguous row x column panel of ``A``."""

    #: linear index, row-major over the grid
    index: int
    #: (row-panel, column-panel) grid position
    pos: Tuple[int, int]
    row_start: int
    row_stop: int
    col_start: int
    col_stop: int
    #: the extracted submatrix ``A[row_start:row_stop, col_start:col_stop]``
    matrix: CSRMatrix = field(repr=False)
    #: balance weight of the shard (non-zeros in ``"nnz"`` mode, predicted
    #: seconds in ``"cost"`` mode)
    weight: float = 0.0

    @property
    def nnz(self) -> int:
        """Non-zeros stored in this shard's submatrix."""
        return self.matrix.nnz

    @property
    def nrows(self) -> int:
        """Rows covered by this shard's panel."""
        return self.row_stop - self.row_start

    @property
    def ncols(self) -> int:
        """Columns covered by this shard's panel."""
        return self.col_stop - self.col_start

    @property
    def label(self) -> str:
        """Compact display name used by the CLI shard table."""
        return f"({self.pos[0]},{self.pos[1]})"

    @property
    def bounds(self) -> Tuple[int, int, int, int]:
        """Panel bounds ``(row_start, row_stop, col_start, col_stop)``."""
        return (self.row_start, self.row_stop, self.col_start, self.col_stop)


@dataclass
class Partition:
    """A full partition of one matrix into a grid of shards."""

    #: the partitioned matrix
    A: CSRMatrix
    #: (row_panels, col_panels)
    grid: Tuple[int, int]
    #: balancing mode: "nnz" or "cost"
    mode: str
    #: row-panel boundaries, length ``grid[0] + 1``
    row_bounds: np.ndarray
    #: per-row-panel column boundaries, shape ``(grid[0], grid[1] + 1)``
    col_bounds: np.ndarray
    #: shards in row-major grid order
    shards: List[Shard]
    #: unit of the shard weights ("nnz" or "s")
    weight_unit: str = "nnz"

    @property
    def n_shards(self) -> int:
        """Number of shards in the partition grid."""
        return len(self.shards)

    @property
    def nnz(self) -> int:
        """Non-zeros of the partitioned parent matrix."""
        return self.A.nnz

    @property
    def imbalance(self) -> float:
        """nnz imbalance factor: max shard nnz over the ideal (mean) shard
        nnz.  1.0 is a perfect split; the partitioner targets <= 1.25 on
        matrices without pathological single-row hot spots."""
        if not self.shards or self.A.nnz == 0:
            return 1.0
        mean = self.A.nnz / len(self.shards)
        return max(s.nnz for s in self.shards) / mean

    @property
    def weight_imbalance(self) -> float:
        """Imbalance of the balancing weight itself (predicted cost in
        ``"cost"`` mode); what the greedy split actually equalised."""
        if not self.shards:
            return 1.0
        total = sum(s.weight for s in self.shards)
        if total <= 0:
            return 1.0
        return max(s.weight for s in self.shards) * len(self.shards) / total

    def __iter__(self) -> Iterator[Shard]:
        return iter(self.shards)

    def __len__(self) -> int:
        return len(self.shards)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<Partition {self.grid[0]}x{self.grid[1]} of {self.A.shape} "
            f"mode={self.mode!r} imbalance={self.imbalance:.3f}>"
        )


# -- balanced boundary search ------------------------------------------------------


def _balanced_bounds(weights: np.ndarray, parts: int, *, align: int = 1) -> np.ndarray:
    """Greedy prefix-sum split of ``weights`` into ``parts`` contiguous
    segments of near-equal weight, with boundaries rounded to multiples of
    ``align``.  Returns ``parts + 1`` non-decreasing boundaries; equal
    neighbours denote an (allowed) empty segment on degenerate inputs."""
    n = int(weights.size)
    if parts == 1 or n == 0:
        return np.array([0] + [n] * parts, dtype=np.int64)
    prefix = np.concatenate([[0.0], np.cumsum(weights, dtype=np.float64)])
    targets = prefix[-1] * np.arange(1, parts, dtype=np.float64) / parts
    cuts = np.searchsorted(prefix, targets, side="left")
    # searchsorted returns the first index at-or-above the target; the
    # index just below may be closer to it
    below = np.maximum(cuts - 1, 0)
    pick_below = np.abs(prefix[below] - targets) <= np.abs(prefix[np.minimum(cuts, n)] - targets)
    cuts = np.where(pick_below, below, cuts)
    if align > 1:
        cuts = np.round(cuts / align).astype(np.int64) * align
    bounds = np.concatenate([[0], cuts, [n]]).astype(np.int64)
    np.clip(bounds, 0, n, out=bounds)
    np.maximum.accumulate(bounds, out=bounds)
    return bounds


def _contiguous_submatrix(A: CSRMatrix, r0: int, r1: int, c0: int, c1: int) -> CSRMatrix:
    """Extract ``A[r0:r1, c0:c1]`` without per-row Python loops.

    Row slicing is pure pointer arithmetic on CSR; column slicing goes
    through :meth:`~repro.formats.csr.CSRMatrix.extract_cols`, whose
    contiguous ascending selection keeps the in-row order canonical.
    """
    lo, hi = int(A.rowptr[r0]), int(A.rowptr[r1])
    rowptr = A.rowptr[r0 : r1 + 1].astype(np.int64) - lo
    if c0 == 0 and c1 == A.ncols:
        return CSRMatrix(
            rowptr, A.col[lo:hi].copy(), A.val[lo:hi].copy(), (r1 - r0, c1 - c0), check=False
        )
    # transient full-width view of the row panel (no data copied)
    panel = CSRMatrix(rowptr, A.col[lo:hi], A.val[lo:hi], (r1 - r0, A.ncols), check=False)
    return panel.extract_cols(np.arange(c0, c1))


# -- balancing weights -------------------------------------------------------------


def _row_nnz_weights(A: CSRMatrix) -> np.ndarray:
    return np.diff(A.rowptr).astype(np.float64)


def _row_cost_weights(A: CSRMatrix, config: SMaTConfig, n_cols: int) -> np.ndarray:
    """Per-row predicted-cost weights from the Eq. 1 linear model.

    The kernel's runtime is linear in the number of non-zero BCSR blocks
    (``T = T_e * n_e + T_init``, :mod:`repro.core.perfmodel`), so a row's
    cost share is its block-row's block count spread over the block
    height -- a dense band row with few distinct column blocks is cheaper
    than a scattered row of equal nnz.  The fitted ``T_e`` scales the
    weights to seconds so shard weights read as predicted cost.
    """
    from ..reorder.metrics import blocks_per_block_row
    from ..tuner.model import calibrate

    h, _ = config.resolved_block_shape()
    bpr = blocks_per_block_row(A, config.resolved_block_shape()).astype(np.float64)
    weights = np.repeat(bpr / h, h)[: A.nrows]
    fit = calibrate(config, config.resolved_block_shape(), n_cols)
    return weights * fit.t_e


def _weights_for(A: CSRMatrix, mode: str, config: SMaTConfig, n_cols: int) -> np.ndarray:
    if mode == "nnz":
        return _row_nnz_weights(A)
    if mode == "cost":
        return _row_cost_weights(A, config, n_cols)
    raise ValueError(f"unknown partition mode {mode!r}; use one of {PARTITION_MODES}")


# -- public constructors -----------------------------------------------------------


def partition_rows(
    A: CSRMatrix,
    n_shards: int,
    *,
    mode: str = "nnz",
    config: Optional[SMaTConfig] = None,
    n_cols: int = 8,
) -> Partition:
    """Split ``A`` into ``n_shards`` balanced contiguous row panels."""
    return partition_grid(A, (n_shards, 1), mode=mode, config=config, n_cols=n_cols)


def partition_grid(
    A: CSRMatrix,
    grid: Union[int, str, Sequence[int], Tuple[int, int]],
    *,
    mode: str = "nnz",
    config: Optional[SMaTConfig] = None,
    n_cols: int = 8,
) -> Partition:
    """Split ``A`` into a balanced ``r x c`` grid of shards.

    Rows are split into ``r`` panels by the requested balancing mode;
    each row panel's columns are then split independently by that panel's
    per-column non-zero counts, so cell weights stay balanced even on
    banded and block-diagonal structure.
    """
    if not isinstance(A, CSRMatrix):
        raise TypeError("partitioning expects a repro.formats.CSRMatrix input")
    r, c = parse_grid(grid)
    cfg = (config or SMaTConfig()).validate()
    if mode not in PARTITION_MODES:
        raise ValueError(f"unknown partition mode {mode!r}; use one of {PARTITION_MODES}")
    h, w = cfg.resolved_block_shape()
    # align boundaries to whole block rows/columns unless the grid is too
    # fine for the matrix; empty panels are still possible on degenerate
    # (tiny or all-zero) inputs and are handled downstream
    row_align = h if r * h <= A.nrows else 1
    col_align = w if c * w <= A.ncols else 1

    row_weights = _weights_for(A, mode, cfg, n_cols)
    row_bounds = _balanced_bounds(row_weights, r, align=row_align)

    shards: List[Shard] = []
    col_bounds = np.zeros((r, c + 1), dtype=np.int64)
    for i in range(r):
        r0, r1 = int(row_bounds[i]), int(row_bounds[i + 1])
        if c == 1:
            bounds = np.array([0, A.ncols], dtype=np.int64)
        else:
            # column split of this row panel only: balanced by the panel's
            # own per-column non-zero counts, computed on a view of A's
            # entries (cost mode stays row-oriented; Eq. 1 has no
            # per-column term)
            lo, hi = int(A.rowptr[r0]), int(A.rowptr[r1])
            counts = np.bincount(A.col[lo:hi], minlength=A.ncols).astype(np.float64)
            bounds = _balanced_bounds(counts, c, align=col_align)
        col_bounds[i] = bounds
        for j in range(c):
            c0, c1 = int(bounds[j]), int(bounds[j + 1])
            sub = _contiguous_submatrix(A, r0, r1, c0, c1)
            weight = float(row_weights[r0:r1].sum() / c) if mode == "cost" else float(sub.nnz)
            shards.append(
                Shard(
                    index=len(shards),
                    pos=(i, j),
                    row_start=r0,
                    row_stop=r1,
                    col_start=c0,
                    col_stop=c1,
                    matrix=sub,
                    weight=weight,
                )
            )
    return Partition(
        A=A,
        grid=(r, c),
        mode=mode,
        row_bounds=row_bounds.astype(np.int64),
        col_bounds=col_bounds,
        shards=shards,
        weight_unit="s" if mode == "cost" else "nnz",
    )


def make_partition(
    A: CSRMatrix,
    grid: Union[int, str, Sequence[int], Tuple[int, int]],
    *,
    mode: str = "nnz",
    config: Optional[SMaTConfig] = None,
    n_cols: int = 8,
) -> Partition:
    """Partition ``A`` by a grid specification (int, ``"RxC"``, or pair)."""
    return partition_grid(A, grid, mode=mode, config=config, n_cols=n_cols)
