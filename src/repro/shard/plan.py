"""Per-shard execution plans through the shared plan cache.

Every shard of a :class:`~repro.shard.partition.Partition` gets its own
:class:`~repro.core.plan.ExecutionPlan` -- its own reordering pass, BCSR
blocking, and (optionally, through the tuner) its own block shape.  Plans
are built through the engine's :class:`~repro.engine.cache.PlanCache`, so
repeated sharded queries against the same matrix skip preprocessing
entirely and concurrent builds of the same shard deduplicate on the
cache's per-key build lock.

Shard-aware fingerprint keys
----------------------------
Hashing every extracted submatrix would cost another O(nnz) pass per shard
per lookup.  A shard is fully determined by its parent's content hash plus
its panel bounds, so :func:`shard_fingerprint` derives the shard's
fingerprint from those and memoises it on the submatrix instance -- the
same ``_fingerprint`` slot :func:`~repro.core.plan.matrix_fingerprint`
uses.  Every downstream consumer (plan cache keys, tuning-cache keys) then
sees a cheap, shard-aware key with no re-hashing.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..core.config import SMaTConfig
from ..core.plan import (
    ExecutionPlan,
    build_with_fallback,
    config_signature,
    matrix_fingerprint,
)
from ..engine.cache import PlanCache
from .partition import Partition, Shard

__all__ = [
    "shard_fingerprint",
    "shard_plan_key",
    "plan_label",
    "RemotePlanInfo",
    "ShardPlanEntry",
    "ShardPlanner",
]


def shard_fingerprint(parent_fingerprint: str, shard: Shard) -> str:
    """Content hash of one shard, derived from the parent matrix's
    fingerprint and the shard's panel bounds (no re-hashing of data)."""
    h = hashlib.blake2b(digest_size=16)
    h.update(parent_fingerprint.encode())
    h.update(np.asarray(shard.bounds, dtype=np.int64).tobytes())
    return h.hexdigest()


def ensure_shard_fingerprints(partition: Partition) -> None:
    """Assign the derived fingerprint to every shard submatrix (idempotent)."""
    parent = matrix_fingerprint(partition.A)
    for shard in partition.shards:
        if getattr(shard.matrix, "_fingerprint", None) is None:
            shard.matrix._fingerprint = shard_fingerprint(parent, shard)


def shard_plan_key(shard: Shard, config: SMaTConfig, *, tuned: bool = False) -> Tuple:
    """Plan-cache key of one shard's plan.

    Matches the engine's key layout (`matrix fingerprint x configuration
    signature`, with a ``"tuned"`` marker when the build resolves through
    the tuner) so shard plans share the cache with whole-matrix plans
    without colliding.
    """
    key = (matrix_fingerprint(shard.matrix), config_signature(config))
    return (key, "tuned") if tuned else key


def plan_label(plan: ExecutionPlan) -> str:
    """Compact description of a built plan: ``HxW/reorder`` for SMaT
    plans, the bare backend name (e.g. ``"cublas"``) otherwise -- block
    shape and reordering are inert for non-blocked backends."""
    backend = plan.report.backend
    if backend != "smat":
        return backend
    h, w = plan.report.block_shape
    return f"{h}x{w}/{plan.report.algorithm}"


@dataclass(frozen=True)
class RemotePlanInfo:
    """Metadata of a shard plan that lives in an executor worker process.

    The process executor builds plans inside its workers -- the parent
    never holds the plan object -- so the reporting surface
    (:attr:`ShardPlanEntry.backend` / :attr:`ShardPlanEntry.config_label`)
    reads from this summary instead.
    """

    #: executor session the plan belongs to
    session: str
    #: worker index the shard is placed on (sticky for the session)
    worker: int
    #: execution backend chosen in the worker
    backend: str
    #: ``HxW/reorder`` (or bare backend) label, as :func:`plan_label`
    config_label: str
    #: non-zero BCSR blocks of the worker-built plan
    blocks: int
    #: True when the worker's tuning resolution came from the persistent
    #: tuning cache (a "warmup hit")
    warmup_hit: bool = False


@dataclass
class ShardPlanEntry:
    """One shard's prepared plan plus how it was obtained."""

    shard: Shard
    #: ``None`` for empty shards (nothing to execute) and for shards whose
    #: plan lives in a worker process (see :attr:`remote`)
    plan: Optional[ExecutionPlan]
    cache_hit: bool
    #: wall-clock of the (possibly cached) plan fetch/build
    build_ms: float
    #: summary of a worker-resident plan (process executor); ``None`` for
    #: in-process plans and empty shards
    remote: Optional[RemotePlanInfo] = None

    @property
    def backend(self) -> str:
        """Execution backend of this shard's plan (``"-"`` when empty).

        Per-shard tuning with ``kernel="auto"`` may select *different*
        backends for different shards of one matrix -- e.g. cuBLAS on a
        dense panel, SMaT elsewhere."""
        if self.remote is not None:
            return self.remote.backend
        if self.plan is None:
            return "-"
        return self.plan.report.backend

    @property
    def config_label(self) -> str:
        """Compact description of the built plan (see :func:`plan_label`);
        ``"-"`` for empty shards."""
        if self.remote is not None:
            return self.remote.config_label
        if self.plan is None:
            return "-"
        return plan_label(self.plan)


class ShardPlanner:
    """Builds (and caches) one execution plan per shard.

    Parameters
    ----------
    cache:
        The shared :class:`~repro.engine.cache.PlanCache` (normally the
        engine's).
    tuner:
        Optional :class:`~repro.tuner.Tuner`; when given, every shard's
        configuration is resolved through a per-shard tuning search before
        the plan is built, turning the tuner into a per-shard optimiser.
        The search result persists in the tuning cache under the shard's
        derived fingerprint.
    """

    def __init__(self, cache: PlanCache, *, tuner=None):
        self.cache = cache
        self.tuner = tuner

    def plan_for(self, shard: Shard, config: SMaTConfig) -> ShardPlanEntry:
        """Fetch or build the plan for one shard (empty shards get none).

        Builds go through :func:`~repro.core.plan.build_with_fallback`,
        so a backend that cannot handle one shard (e.g. cuBLAS on a panel
        whose dense form exceeds device memory) falls back to SMaT for
        that shard -- recorded in its report -- instead of crashing the
        whole sharded multiply."""
        start = time.perf_counter()
        if shard.nnz == 0:
            return ShardPlanEntry(shard=shard, plan=None, cache_hit=True, build_ms=0.0)
        key = shard_plan_key(shard, config, tuned=self.tuner is not None)
        plan, hit = self.cache.get_or_build(
            key, lambda: build_with_fallback(shard.matrix, config, tuner=self.tuner)
        )
        build_ms = 1e3 * (time.perf_counter() - start)
        return ShardPlanEntry(shard=shard, plan=plan, cache_hit=hit, build_ms=build_ms)

    def plans_for(
        self,
        partition: Partition,
        config: Optional[SMaTConfig] = None,
        *,
        executor=None,
    ) -> List[ShardPlanEntry]:
        """Plans for every shard of a partition, in shard order.

        With ``executor`` (a ``concurrent.futures`` executor) shard builds
        run concurrently -- per-shard reordering and tuning searches are
        independent, so preprocessing scales with the pool.
        """
        cfg = (config or SMaTConfig()).validate()
        ensure_shard_fingerprints(partition)
        if executor is None or len(partition.shards) <= 1:
            return [self.plan_for(shard, cfg) for shard in partition.shards]
        futures = [executor.submit(self.plan_for, shard, cfg) for shard in partition.shards]
        return [f.result() for f in futures]
