"""Iterative SpMM workloads on the serving engine.

The paper's core premise -- *preprocess once, multiply many* -- is the
access pattern of every iterative sparse algorithm: the operator matrix
is fixed, the dense operand changes each step.  This package runs those
algorithms end to end on :class:`~repro.engine.SpMMEngine`, so one
cached :class:`~repro.core.plan.ExecutionPlan` (or one per shard) serves
every iteration and the preprocessing cost visibly fades after the first
step:

* :func:`pagerank` / :func:`power_iteration` -- damped PageRank on the
  column-stochastic transition matrix, and the dominant eigenpair of any
  square matrix (:mod:`~repro.workloads.pagerank`);
* :func:`gcn_forward` -- a k-layer GCN-style forward pass over the
  symmetrically normalised adjacency ``D^-1/2 (A + I) D^-1/2``
  (:mod:`~repro.workloads.gcn`);
* :func:`jacobi_smoother` / :func:`chebyshev_smoother` -- polynomial
  relaxation for banded / mesh systems (:mod:`~repro.workloads.smoother`);
* :class:`WorkloadReport` -- per-iteration residuals, SpMM wall time,
  plan-cache counters and the plan-amortisation ratio
  (:mod:`~repro.workloads.base`).

Every workload accepts ``engine=`` (share a serving engine and its plan
cache), ``tune=True`` (plans built through the auto-tuner) and
``sharded=True`` / ``grid=`` (scatter-gather over per-shard plans).

Quick start
-----------
>>> from repro.matrices import scale_free_graph
>>> from repro.workloads import pagerank
>>> A = scale_free_graph(512, avg_degree=8.0)
>>> result = pagerank(A, tol=1e-6, max_iter=100)
>>> bool(result.report.converged)
True
>>> round(float(result.scores.sum()), 6)  # a probability distribution
1.0
"""

from .base import IterationRecord, SpMMOperator, WorkloadReport
from .gcn import GCNResult, gcn_forward
from .pagerank import (
    PageRankResult,
    PowerIterationResult,
    dense_pagerank_reference,
    pagerank,
    power_iteration,
)
from .smoother import (
    SmootherResult,
    chebyshev_smoother,
    estimate_spectral_bounds,
    jacobi_smoother,
)

__all__ = [
    "WorkloadReport",
    "IterationRecord",
    "SpMMOperator",
    "pagerank",
    "PageRankResult",
    "power_iteration",
    "PowerIterationResult",
    "dense_pagerank_reference",
    "gcn_forward",
    "GCNResult",
    "jacobi_smoother",
    "chebyshev_smoother",
    "estimate_spectral_bounds",
    "SmootherResult",
]
