"""GCN-style forward pass on the SpMM engine.

The paper motivates unstructured SpMM with Graph Neural Networks: the
core of a GCN layer is ``H' = act(A_hat @ H @ W)`` where
``A_hat = D^-1/2 (A + I) D^-1/2`` is the normalised adjacency matrix and
``H`` the dense node-feature matrix.  ``A_hat`` is fixed across layers
(and across forward passes), so one cached
:class:`~repro.core.plan.ExecutionPlan` serves every ``A_hat @ X``
product -- the preprocessing pass is amortised over the whole network,
and over every subsequent inference call on a shared engine.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..formats import CSRMatrix, gcn_normalize
from .base import SpMMOperator, WorkloadReport

__all__ = ["GCNResult", "gcn_forward"]


@dataclass
class GCNResult:
    """Final node embeddings plus the run's telemetry.

    ``report.residuals`` holds the RMS magnitude of each layer's output
    features -- a cheap per-layer health signal (collapsing activations
    show up as a plunge towards zero, exploding ones as rapid growth).
    """

    H: np.ndarray
    report: WorkloadReport


def gcn_forward(
    A: CSRMatrix,
    H: np.ndarray,
    weights: Sequence[np.ndarray],
    *,
    normalize: bool = True,
    activation: str = "relu",
    final_activation: bool = False,
    engine=None,
    config=None,
    kernel: Optional[str] = None,
    policy=None,
    tune: Optional[bool] = None,
    sharded: Optional[bool] = None,
    grid=None,
    mode: Optional[str] = None,
    max_workers: Optional[int] = None,
) -> GCNResult:
    """Run a ``len(weights)``-layer GCN forward pass.

    Each layer computes ``H <- act(A_hat @ (H @ W))``: the dense
    feature-times-weight product runs in numpy, the sparse propagation
    runs as one SpMM through the engine's cached plan.  ``A_hat`` is the
    symmetrically normalised adjacency
    (:func:`~repro.formats.graphops.gcn_normalize`, built once as setup);
    pass ``normalize=False`` when ``A`` is already normalised.

    ``activation`` is ``"relu"``, ``"tanh"`` or ``"none"``, applied after
    every layer except the last (enable ``final_activation`` to include
    it).  ``policy=`` / ``engine=`` pass through to the serving stack
    exactly as in :func:`~repro.workloads.pagerank` (the ``tune``/
    ``sharded``/``grid``/``mode``/``max_workers`` keywords are
    **deprecated** spellings of the policy fields).
    """
    activations = {
        "relu": lambda X: np.maximum(X, 0.0),
        "tanh": np.tanh,
        "none": lambda X: X,
    }
    if activation not in activations:
        raise ValueError(f"unknown activation {activation!r}; use one of {sorted(activations)}")
    act = activations[activation]
    if len(weights) == 0:
        raise ValueError("gcn_forward needs at least one weight matrix")
    H = np.asarray(H, dtype=np.float32)
    if H.ndim != 2 or H.shape[0] != A.nrows:
        raise ValueError(f"H must be ({A.nrows}, features), got {H.shape}")

    setup_start = time.perf_counter()
    a_hat = gcn_normalize(A) if normalize else A
    setup_ms = 1e3 * (time.perf_counter() - setup_start)

    with SpMMOperator(
        a_hat,
        engine=engine,
        config=config,
        kernel=kernel,
        policy=policy,
        tune=tune,
        sharded=sharded,
        grid=grid,
        mode=mode,
        max_workers=max_workers,
    ) as op:
        report = op.new_report("gcn")
        report.setup_ms = setup_ms
        n_layers = len(weights)
        for layer, W in enumerate(weights):
            W = np.asarray(W, dtype=np.float32)
            if W.shape[0] != H.shape[1]:
                raise ValueError(
                    f"layer {layer}: weight shape {W.shape} does not accept "
                    f"{H.shape[1]} input features"
                )
            H = op.matmul(H @ W, report)
            if layer < n_layers - 1 or final_activation:
                H = act(H)
            rms = float(np.sqrt(np.mean(np.square(H, dtype=np.float64))))
            op.set_residual(report, rms)
        report.converged = True  # a fixed-depth pass always completes
    return GCNResult(H=H, report=report)
