"""PageRank and power iteration on the SpMM engine.

Both algorithms repeat one SpMM against a fixed sparse operator -- the
column-stochastic transition matrix for PageRank, the matrix itself for
power iteration -- which is exactly the access pattern the paper's
"preprocess once, multiply many" pipeline amortises: the first iteration
pays reordering + BCSR construction (a plan-cache miss), every later
iteration is a cache hit.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..formats import CSRMatrix, transition_matrix
from .base import SpMMOperator, WorkloadReport

__all__ = [
    "PageRankResult",
    "PowerIterationResult",
    "pagerank",
    "power_iteration",
    "dense_pagerank_reference",
]


@dataclass
class PageRankResult:
    """PageRank scores plus the run's :class:`~repro.workloads.WorkloadReport`."""

    scores: np.ndarray
    report: WorkloadReport


@dataclass
class PowerIterationResult:
    """Dominant eigenpair estimate plus the run's telemetry."""

    eigenvalue: float
    vector: np.ndarray
    report: WorkloadReport


def _as_columns(x: np.ndarray) -> np.ndarray:
    """View a vector as an ``(n, 1)`` column matrix (SpMM operand form)."""
    return x.reshape(-1, 1) if x.ndim == 1 else x


def dense_pagerank_reference(
    A: CSRMatrix,
    *,
    damping: float = 0.85,
    tol: float = 1e-10,
    max_iter: int = 200,
) -> np.ndarray:
    """The same damped power iteration as :func:`pagerank`, in dense
    float64 numpy.

    The validation oracle used by the test suite and
    ``benchmarks/bench_workloads.py``: identical arithmetic (transition
    matrix, dangling-mass redistribution, per-step renormalisation,
    L1-change convergence) with a dense operator, so engine results must
    match it to float32 tolerance.
    """
    n = A.nrows
    dangling = np.zeros(n, dtype=bool)
    M = transition_matrix(A, dangling=dangling).to_dense().astype(np.float64)
    v = np.full(n, 1.0 / n)
    x = v.copy()
    for _ in range(max_iter):
        x_new = damping * (M @ x + x[dangling].sum() * v) + (1.0 - damping) * v
        x_new /= x_new.sum()
        if np.abs(x_new - x).sum() < tol:
            return x_new
        x = x_new
    return x


def pagerank(
    A: CSRMatrix,
    *,
    damping: float = 0.85,
    tol: float = 1e-8,
    max_iter: int = 100,
    personalization: Optional[np.ndarray] = None,
    engine=None,
    config=None,
    kernel: Optional[str] = None,
    policy=None,
    tune: Optional[bool] = None,
    sharded: Optional[bool] = None,
    grid=None,
    mode: Optional[str] = None,
    max_workers: Optional[int] = None,
) -> PageRankResult:
    """PageRank of the graph with adjacency matrix ``A``.

    Solves ``x = d M x + (1 - d) v`` by power iteration, where ``M`` is
    the column-stochastic transition matrix
    (:func:`~repro.formats.graphops.transition_matrix`, built once as
    setup), ``d`` the ``damping`` factor and ``v`` the teleport
    distribution (uniform, or ``personalization``).  Mass of dangling
    nodes is redistributed over ``v`` each iteration.  Convergence is
    the L1 change of the score vector dropping below ``tol`` (early
    exit before ``max_iter``).

    ``personalization`` may also be an ``(n, k)`` matrix of ``k``
    teleport distributions: all ``k`` chains advance in one SpMM per
    iteration, and ``scores`` has matching shape.

    The SpMM runs on an :class:`~repro.engine.SpMMEngine` (pass
    ``engine`` to share one, or the operator owns a private one).  Pass
    ``policy=ExecutionPolicy(...)`` to pick the executor, tuning and
    sharded routing; the ``tune``/``sharded``/``grid``/``mode``/
    ``max_workers`` keywords are **deprecated** spellings of the same
    policy fields.
    """
    if not 0.0 < damping < 1.0:
        raise ValueError(f"damping must be in (0, 1), got {damping!r}")
    n = A.nrows
    setup_start = time.perf_counter()
    dangling = np.zeros(n, dtype=bool)
    M = transition_matrix(A, dangling=dangling)
    setup_ms = 1e3 * (time.perf_counter() - setup_start)

    if personalization is None:
        v = np.full((n, 1), 1.0 / n, dtype=np.float64)
    else:
        v = _as_columns(np.asarray(personalization, dtype=np.float64)).copy()
        if v.shape[0] != n:
            raise ValueError(f"personalization must have {n} rows, got {v.shape[0]}")
        if np.any(v < 0.0):
            raise ValueError("personalization must be non-negative")
        col_sums = v.sum(axis=0)
        if np.any(col_sums <= 0.0):
            raise ValueError("personalization columns must have positive mass")
        v /= col_sums

    was_vector = personalization is None or np.asarray(personalization).ndim == 1
    x = v.copy()
    with SpMMOperator(
        M,
        engine=engine,
        config=config,
        kernel=kernel,
        policy=policy,
        tune=tune,
        sharded=sharded,
        grid=grid,
        mode=mode,
        max_workers=max_workers,
    ) as op:
        report = op.new_report("pagerank", tol=tol)
        report.setup_ms = setup_ms
        for _ in range(max_iter):
            Mx = op.matmul(x.astype(np.float32), report).astype(np.float64)
            Mx = _as_columns(Mx)
            dangling_mass = x[dangling].sum(axis=0)
            x_new = damping * (Mx + dangling_mass * v) + (1.0 - damping) * v
            # renormalise: the float32 SpMM slowly leaks probability mass
            x_new /= x_new.sum(axis=0)
            residual = float(np.abs(x_new - x).sum(axis=0).max())
            op.set_residual(report, residual)
            x = x_new
            if residual < tol:
                report.converged = True
                break
    scores = x.ravel() if was_vector else x
    return PageRankResult(scores=scores, report=report)


def power_iteration(
    A: CSRMatrix,
    *,
    tol: float = 1e-6,
    max_iter: int = 100,
    x0: Optional[np.ndarray] = None,
    engine=None,
    config=None,
    kernel: Optional[str] = None,
    policy=None,
    tune: Optional[bool] = None,
    sharded: Optional[bool] = None,
    grid=None,
    mode: Optional[str] = None,
    max_workers: Optional[int] = None,
) -> PowerIterationResult:
    """Dominant eigenpair of a square matrix ``A`` by power iteration.

    Each iteration is one SpMM (``w = A x``) through the engine's cached
    plan, a Rayleigh-quotient eigenvalue estimate ``lambda = x . w``, and
    a normalisation.  The residual is ``||w - lambda x|| / ||w||``;
    the loop exits early once it drops below ``tol``.
    """
    if A.nrows != A.ncols:
        raise ValueError(f"power iteration needs a square matrix, got shape {A.shape}")
    n = A.nrows
    if x0 is None:
        x = np.full(n, 1.0 / np.sqrt(n), dtype=np.float64)
    else:
        x = np.asarray(x0, dtype=np.float64).ravel().copy()
        if x.size != n:
            raise ValueError(f"x0 must have length {n}, got {x.size}")
        norm = np.linalg.norm(x)
        if norm <= 0.0:
            raise ValueError("x0 must be non-zero")
        x /= norm

    eigenvalue = 0.0
    with SpMMOperator(
        A,
        engine=engine,
        config=config,
        kernel=kernel,
        policy=policy,
        tune=tune,
        sharded=sharded,
        grid=grid,
        mode=mode,
        max_workers=max_workers,
    ) as op:
        report = op.new_report("power_iteration", tol=tol)
        for _ in range(max_iter):
            w = op.matmul(x.astype(np.float32), report).astype(np.float64).ravel()
            eigenvalue = float(x @ w)
            w_norm = float(np.linalg.norm(w))
            if w_norm <= 0.0:
                # A x vanished: x is (numerically) in the null space
                op.set_residual(report, 0.0)
                report.converged = True
                break
            residual = float(np.linalg.norm(w - eigenvalue * x) / w_norm)
            op.set_residual(report, residual)
            x = w / w_norm
            if residual < tol:
                report.converged = True
                break
    return PowerIterationResult(eigenvalue=eigenvalue, vector=x, report=report)
