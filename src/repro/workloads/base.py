"""Shared machinery of the iterative workloads.

Every workload in this package has the same shape: bind one sparse
operator matrix to one cached :class:`~repro.core.plan.ExecutionPlan` on
an :class:`~repro.engine.SpMMEngine`, then run many SpMM iterations
against it.  :class:`SpMMOperator` is that binding -- it owns (or
borrows) the engine, routes every multiply through the plan cache (or
the sharded subsystem), and records per-iteration wall time and cache
hits.  :class:`WorkloadReport` is the common result telemetry: residual
history, per-iteration SpMM time, cache counters, and the
plan-amortisation ratio that shows the preprocessing cost fading after
the first iteration (the paper's Figure 1 argument, measured on a real
workload).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import List, Optional

import numpy as np

from ..core.config import SMaTConfig
from ..core.policy import ExecutionPolicy, policy_from_legacy
from ..engine import SpMMEngine
from ..formats import CSRMatrix

__all__ = ["IterationRecord", "WorkloadReport", "SpMMOperator"]


@dataclass
class IterationRecord:
    """Telemetry of one workload iteration (one SpMM through the engine)."""

    index: int
    residual: float
    spmm_ms: float
    cache_hits: int
    cache_misses: int


@dataclass
class WorkloadReport:
    """Execution telemetry of one iterative workload run.

    The report captures the paper's amortisation argument end to end:
    the first iteration pays plan construction (reordering + BCSR build,
    a cache miss), every later iteration reuses the cached plan, and
    :attr:`amortization_ratio` quantifies how much cheaper a warm
    iteration is than the cold first one.
    """

    workload: str
    matrix_shape: tuple
    nnz: int
    iterations: int = 0
    converged: bool = False
    tol: float = 0.0
    sharded: bool = False
    tuned: bool = False
    #: requested execution backend (``"auto"`` = the tuner's per-matrix choice)
    kernel: str = "smat"
    setup_ms: float = 0.0
    records: List[IterationRecord] = field(default_factory=list)

    @property
    def residuals(self) -> List[float]:
        """Residual history, one value per iteration."""
        return [r.residual for r in self.records]

    @property
    def spmm_ms(self) -> List[float]:
        """Wall-clock milliseconds of each iteration's SpMM call."""
        return [r.spmm_ms for r in self.records]

    @property
    def total_spmm_ms(self) -> float:
        """Wall-clock milliseconds spent in SpMM across all iterations."""
        return float(sum(self.spmm_ms))

    @property
    def final_residual(self) -> float:
        """Residual of the last recorded iteration (``inf`` if none ran)."""
        return self.records[-1].residual if self.records else float("inf")

    @property
    def cache_hits(self) -> int:
        """Plan-cache hits accumulated across all iterations."""
        return sum(r.cache_hits for r in self.records)

    @property
    def cache_misses(self) -> int:
        """Plan-cache misses (plan builds) accumulated across all iterations."""
        return sum(r.cache_misses for r in self.records)

    @property
    def cold_ms(self) -> float:
        """Wall time of the first iteration (pays plan construction)."""
        return self.records[0].spmm_ms if self.records else 0.0

    @property
    def warm_ms(self) -> float:
        """Median wall time of the warm iterations (cached plan only)."""
        warm = self.spmm_ms[1:]
        return float(np.median(warm)) if warm else 0.0

    @property
    def amortization_ratio(self) -> float:
        """Cold-iteration over warm-iteration SpMM time.

        Values well above 1 mean the preprocessing cost paid by the first
        iteration is amortised away by plan reuse; 1.0 means no reuse
        benefit (or a single-iteration run).
        """
        if not self.records or len(self.records) < 2 or self.warm_ms <= 0.0:
            return 1.0
        return self.cold_ms / self.warm_ms

    def record(self, residual: float, spmm_ms: float, hits: int, misses: int) -> None:
        """Append one iteration's telemetry and bump the iteration count."""
        self.records.append(
            IterationRecord(
                index=len(self.records),
                residual=float(residual),
                spmm_ms=float(spmm_ms),
                cache_hits=int(hits),
                cache_misses=int(misses),
            )
        )
        self.iterations = len(self.records)

    def table(self) -> List[dict]:
        """Per-iteration rows for :func:`~repro.analysis.format_table`."""
        return [
            {
                "iter": r.index,
                "residual": r.residual,
                "spmm_ms": r.spmm_ms,
                "cache_hits": r.cache_hits,
                "cache_misses": r.cache_misses,
            }
            for r in self.records
        ]

    def summary(self) -> dict:
        """One-row summary (the CLI's bottom line)."""
        return {
            "workload": self.workload,
            "iterations": self.iterations,
            "converged": self.converged,
            "final_residual": self.final_residual,
            "total_spmm_ms": self.total_spmm_ms,
            "cold_ms": self.cold_ms,
            "warm_ms": self.warm_ms,
            "amortization": self.amortization_ratio,
        }


class SpMMOperator:
    """One sparse matrix bound to one cached plan on an engine.

    The operator is the workload-facing view of the serving stack: it
    creates (or borrows) an :class:`~repro.engine.SpMMEngine`, routes
    every :meth:`matmul` through the engine's plan cache -- or through
    :meth:`~repro.engine.SpMMEngine.multiply_sharded` when ``sharded``
    is set -- and records the wall time and cache-counter deltas of each
    call into a :class:`WorkloadReport`.

    Parameters
    ----------
    A:
        The sparse operator matrix (CSR).
    engine:
        Run through an existing engine (sharing its plan cache, tuner
        and worker pool).  When ``None`` the operator owns a private
        engine and closes it on :meth:`close`; tuning knobs then apply
        to that engine (passing ``tune=True`` alongside a borrowed
        engine raises, mirroring :class:`~repro.shard.ShardedSpMM`).
    config:
        Pipeline configuration for the plan (default engine config).
    kernel:
        Execution backend for every multiply (``"smat"``, ``"cusparse"``,
        ``"dasp"``, ``"magicube"``, ``"cublas"``, or ``"auto"`` for the
        per-matrix tuner choice); overrides the backend of ``config``.
    policy:
        :class:`~repro.core.policy.ExecutionPolicy` of the owned engine
        -- pool width, tuning, sharded routing (``sharded``/``grid``/
        ``shard_mode``) and the thread-vs-process executor choice.
    tune, sharded, grid, mode, max_workers:
        **Deprecated** spellings of the matching policy fields (``mode``
        maps to ``shard_mode``); passing any of them without ``policy=``
        builds the equivalent policy and emits one
        :class:`DeprecationWarning`.
    """

    def __init__(
        self,
        A: CSRMatrix,
        *,
        engine: Optional[SpMMEngine] = None,
        config: Optional[SMaTConfig] = None,
        kernel: Optional[str] = None,
        policy: Optional[ExecutionPolicy] = None,
        tune: Optional[bool] = None,
        sharded: Optional[bool] = None,
        grid=None,
        mode: Optional[str] = None,
        max_workers: Optional[int] = None,
    ):
        if not isinstance(A, CSRMatrix):
            raise TypeError("SpMMOperator expects a repro.formats.CSRMatrix input")
        has_policy = policy is not None
        policy = policy_from_legacy(
            policy,
            where="SpMMOperator",
            tune=tune,
            sharded=sharded,
            grid=grid,
            mode=mode,
            max_workers=max_workers,
        )
        self.A = A
        if kernel is not None:
            # override only the backend, inheriting every other knob from
            # the explicit config or the (possibly borrowed) engine's
            base = config if config is not None else (engine.config if engine else SMaTConfig())
            config = replace(base, kernel=kernel).validate()
        self.config = config
        self.policy = policy
        self.sharded = bool(policy.sharded)
        self.grid = policy.grid
        self.mode = policy.shard_mode
        self._owns_engine = engine is None
        if engine is None:
            # the operator routes sharded multiplies itself, so the owned
            # engine gets a non-sharded copy of the policy (no double
            # routing through SpMMEngine.multiply)
            engine = SpMMEngine(
                config,
                policy=policy.replace(sharded=False),
                cache_size=16,
            )
        elif has_policy or tune:
            raise ValueError(
                "pass execution options (policy, tune) to the engine itself "
                "when providing one"
            )
        self.engine = engine
        self.tuned = engine.tuner is not None
        self.kernel = (self.config or engine.config).resolved_kernel()

    def new_report(self, workload: str, *, tol: float = 0.0) -> WorkloadReport:
        """A :class:`WorkloadReport` pre-filled with this operator's context."""
        return WorkloadReport(
            workload=workload,
            matrix_shape=self.A.shape,
            nnz=self.A.nnz,
            tol=float(tol),
            sharded=self.sharded,
            tuned=self.tuned,
            kernel=self.kernel,
        )

    def matmul(self, B: np.ndarray, report: Optional[WorkloadReport] = None) -> np.ndarray:
        """Compute ``A @ B`` through the engine, recording telemetry.

        When ``report`` is given the call appends an iteration record
        with a placeholder residual of ``nan``; workloads overwrite it
        via :meth:`set_residual` once the iteration's residual is known.
        """
        before = self.engine.cache_stats
        start = time.perf_counter()
        if self.sharded:
            C = self.engine.multiply_sharded(
                self.A, B, grid=self.grid, mode=self.mode, config=self.config
            )
        else:
            C = self.engine.multiply(self.A, B, config=self.config)
        wall_ms = 1e3 * (time.perf_counter() - start)
        if report is not None:
            after = self.engine.cache_stats
            report.record(
                float("nan"),
                wall_ms,
                after.hits - before.hits,
                after.misses - before.misses,
            )
        return C

    @staticmethod
    def set_residual(report: WorkloadReport, residual: float) -> None:
        """Fill in the residual of the most recent iteration record."""
        if report.records:
            report.records[-1].residual = float(residual)

    # -- lifecycle ------------------------------------------------------------
    def close(self) -> None:
        """Shut down the owned engine (a borrowed engine is left running)."""
        if self._owns_engine:
            self.engine.close()

    def __enter__(self) -> "SpMMOperator":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<SpMMOperator A={self.A.shape} nnz={self.A.nnz} "
            f"sharded={self.sharded} tuned={self.tuned}>"
        )
