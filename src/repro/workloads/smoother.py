"""Jacobi and Chebyshev polynomial smoothers on the SpMM engine.

Polynomial smoothers for ``A x = b`` -- the relaxation step of multigrid
solvers on banded / mesh matrices -- are pure repeated-SpMM workloads:
every sweep applies ``A`` once to the current iterate (or search
direction) and combines the result with cheap vector operations.  The
matrix never changes across sweeps, so the engine's cached plan pays the
reordering + BCSR cost on the first application only.

Both smoothers accept a single right-hand side ``b`` of shape ``(n,)``
or a block of them, shape ``(n, k)``: all ``k`` systems advance in one
SpMM per sweep.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..formats import CSRMatrix, degree_vector, extract_diagonal
from .base import SpMMOperator, WorkloadReport

__all__ = [
    "SmootherResult",
    "estimate_spectral_bounds",
    "jacobi_smoother",
    "chebyshev_smoother",
]


@dataclass
class SmootherResult:
    """Smoothed iterate plus the run's telemetry.

    ``report.residuals`` is the per-sweep relative residual
    ``||b - A x|| / ||b||`` (the maximum over right-hand sides when ``b``
    is a block).
    """

    x: np.ndarray
    report: WorkloadReport


def estimate_spectral_bounds(
    A: CSRMatrix, *, lmin_fraction: float = 1.0 / 30.0
) -> Tuple[float, float]:
    """Cheap ``(lambda_min, lambda_max)`` bounds for a Chebyshev smoother.

    ``lambda_max`` is the Gershgorin row-sum bound
    ``max_i sum_j |a_ij|`` -- an upper bound on the spectral radius of
    any matrix, computed in O(nnz) with no SpMM.  ``lambda_min`` is the
    conventional smoother choice ``lmin_fraction * lambda_max``: the
    Chebyshev polynomial then targets the upper part of the spectrum
    (the oscillatory error modes a smoother is responsible for), which
    is the standard multigrid configuration.
    """
    lmax = float(degree_vector(A, absolute=True).max(initial=0.0))
    if lmax <= 0.0:
        raise ValueError("cannot bound the spectrum of an all-zero matrix")
    return lmin_fraction * lmax, lmax


def _residual_norm(r: np.ndarray, b_norm: np.ndarray) -> float:
    """Max relative column norm ``||r_j|| / ||b_j||`` of a residual block."""
    r2 = r.reshape(r.shape[0], -1)
    norms = np.linalg.norm(r2.astype(np.float64), axis=0)
    return float((norms / b_norm).max())


def _prepare_rhs(A: CSRMatrix, b: np.ndarray, x0: Optional[np.ndarray]):
    """Validate shapes; returns ``(b, x, was_vector, b_norms)``."""
    if A.nrows != A.ncols:
        raise ValueError(f"smoothers need a square matrix, got shape {A.shape}")
    b = np.asarray(b, dtype=np.float64)
    was_vector = b.ndim == 1
    if was_vector:
        b = b.reshape(-1, 1)
    if b.ndim != 2 or b.shape[0] != A.nrows:
        raise ValueError(f"b must have {A.nrows} rows, got shape {b.shape}")
    if x0 is None:
        x = np.zeros_like(b)
    else:
        x = np.asarray(x0, dtype=np.float64)
        x = x.reshape(-1, 1) if x.ndim == 1 else x.copy()
        if x.shape != b.shape:
            raise ValueError(f"x0 shape {x.shape} must match b shape {b.shape}")
    b_norm = np.linalg.norm(b, axis=0)
    b_norm = np.where(b_norm > 0.0, b_norm, 1.0)
    return b, x, was_vector, b_norm


def jacobi_smoother(
    A: CSRMatrix,
    b: np.ndarray,
    *,
    omega: float = 2.0 / 3.0,
    tol: float = 1e-6,
    max_iter: int = 50,
    x0: Optional[np.ndarray] = None,
    engine=None,
    config=None,
    kernel: Optional[str] = None,
    policy=None,
    tune: Optional[bool] = None,
    sharded: Optional[bool] = None,
    grid=None,
    mode: Optional[str] = None,
    max_workers: Optional[int] = None,
) -> SmootherResult:
    """Weighted Jacobi relaxation ``x <- x + omega D^-1 (b - A x)``.

    The classic smoother for diagonally dominant banded / mesh systems;
    ``omega = 2/3`` is the standard damping for multigrid smoothing.
    Each sweep costs exactly one SpMM (``A x``), whose residual is then
    reused for both the convergence check and the update.  Exits early
    once ``||b - A x|| / ||b||`` drops below ``tol``.
    """
    if not 0.0 < omega <= 1.0:
        raise ValueError(f"omega must be in (0, 1], got {omega!r}")
    diag = extract_diagonal(A).astype(np.float64)
    if np.any(diag == 0.0):
        raise ValueError("Jacobi smoothing needs a zero-free diagonal")
    b, x, was_vector, b_norm = _prepare_rhs(A, b, x0)

    with SpMMOperator(
        A,
        engine=engine,
        config=config,
        kernel=kernel,
        policy=policy,
        tune=tune,
        sharded=sharded,
        grid=grid,
        mode=mode,
        max_workers=max_workers,
    ) as op:
        report = op.new_report("jacobi", tol=tol)
        for _ in range(max_iter):
            Ax = op.matmul(x.astype(np.float32), report).astype(np.float64)
            Ax = Ax.reshape(b.shape)
            r = b - Ax
            residual = _residual_norm(r, b_norm)
            op.set_residual(report, residual)
            if residual < tol:
                report.converged = True
                break
            x = x + omega * (r / diag[:, None])
    return SmootherResult(x=x.ravel() if was_vector else x, report=report)


def chebyshev_smoother(
    A: CSRMatrix,
    b: np.ndarray,
    *,
    eig_bounds: Optional[Tuple[float, float]] = None,
    tol: float = 1e-6,
    max_iter: int = 50,
    x0: Optional[np.ndarray] = None,
    engine=None,
    config=None,
    kernel: Optional[str] = None,
    policy=None,
    tune: Optional[bool] = None,
    sharded: Optional[bool] = None,
    grid=None,
    mode: Optional[str] = None,
    max_workers: Optional[int] = None,
) -> SmootherResult:
    """Chebyshev polynomial smoother for SPD-like systems ``A x = b``.

    Runs the standard three-term Chebyshev recurrence over the
    eigenvalue interval ``eig_bounds = (lambda_min, lambda_max)``
    (estimated with :func:`estimate_spectral_bounds` when omitted).
    Unlike Jacobi, the polynomial is optimal over the target interval,
    so error modes inside it are damped at the Chebyshev rate.  Each
    sweep is one SpMM (``A d`` against the search direction); the
    residual is updated incrementally and checked against ``tol``.
    """
    if eig_bounds is None:
        eig_bounds = estimate_spectral_bounds(A)
    lmin, lmax = float(eig_bounds[0]), float(eig_bounds[1])
    if not 0.0 < lmin < lmax:
        raise ValueError(f"need 0 < lambda_min < lambda_max, got {eig_bounds!r}")
    b, x, was_vector, b_norm = _prepare_rhs(A, b, x0)
    theta = 0.5 * (lmax + lmin)
    delta = 0.5 * (lmax - lmin)
    sigma = theta / delta

    with SpMMOperator(
        A,
        engine=engine,
        config=config,
        kernel=kernel,
        policy=policy,
        tune=tune,
        sharded=sharded,
        grid=grid,
        mode=mode,
        max_workers=max_workers,
    ) as op:
        report = op.new_report("chebyshev", tol=tol)
        Ax = op.matmul(x.astype(np.float32), report).astype(np.float64).reshape(b.shape)
        r = b - Ax
        op.set_residual(report, _residual_norm(r, b_norm))
        if report.final_residual < tol:
            report.converged = True
        else:
            d = r / theta
            rho = 1.0 / sigma
            for _ in range(max_iter):
                x = x + d
                Ad = op.matmul(d.astype(np.float32), report).astype(np.float64)
                r = r - Ad.reshape(b.shape)
                residual = _residual_norm(r, b_norm)
                op.set_residual(report, residual)
                if residual < tol:
                    report.converged = True
                    break
                rho_next = 1.0 / (2.0 * sigma - rho)
                d = rho_next * rho * d + (2.0 * rho_next / delta) * r
                rho = rho_next
    return SmootherResult(x=x.ravel() if was_vector else x, report=report)
