"""Unified metrics: labelled counters/gauges + exponential-bucket histograms.

One :class:`MetricsRegistry` replaces the repo's previously-duplicated
latency math (serving ``LatencyWindow``, the engine's percentile deque, and
per-executor counters).  Histograms keep *both* fixed exponential bucket
counts (cheap, mergeable, Prometheus-native) and a bounded window of raw
samples so ``p50``/``p99`` stay numerically identical to the historical
``np.percentile``-over-deque behaviour.

The registry renders the Prometheus text exposition format (version 0.0.4);
:func:`parse_prometheus` is the matching line-format checker used by tests
and by ``/metrics?format=prometheus`` consumers.
"""

from __future__ import annotations

import math
import re
import threading
from collections import deque
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "exponential_buckets",
    "parse_prometheus",
]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def exponential_buckets(start: float, factor: float, count: int) -> Tuple[float, ...]:
    """Return ``count`` bucket upper bounds growing geometrically from ``start``.

    ``exponential_buckets(0.05, 2.0, 4)`` → ``(0.05, 0.1, 0.2, 0.4)``.
    """
    if start <= 0:
        raise ValueError(f"start must be > 0, got {start!r}")
    if factor <= 1.0:
        raise ValueError(f"factor must be > 1, got {factor!r}")
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count!r}")
    return tuple(start * factor**i for i in range(count))


#: Default latency buckets: 0.05 ms .. ~6.6 s in ×2 steps.
DEFAULT_LATENCY_BUCKETS_MS = exponential_buckets(0.05, 2.0, 18)


def _check_name(name: str) -> str:
    """Validate a Prometheus-compatible metric name."""
    if not _NAME_RE.match(name):
        raise ValueError(f"invalid metric name: {name!r}")
    return name


def _check_labels(labels: Sequence[str]) -> Tuple[str, ...]:
    """Validate Prometheus-compatible label names."""
    out = tuple(labels)
    for label in out:
        if not _LABEL_RE.match(label):
            raise ValueError(f"invalid label name: {label!r}")
    return out


def _escape_label_value(value: str) -> str:
    """Escape a label value per the text exposition format."""
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    """Render a sample value the way Prometheus expects."""
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


class _Metric:
    """Shared bookkeeping for all metric kinds."""

    kind = "untyped"

    def __init__(self, name: str, help: str, labels: Sequence[str] = ()) -> None:
        """Record identity; concrete classes add their own state."""
        self.name = _check_name(name)
        self.help = str(help)
        self.label_names = _check_labels(labels)
        self._lock = threading.Lock()

    def _key(self, labels: Dict[str, Any]) -> Tuple[str, ...]:
        """Map a ``**labels`` call to the canonical label-value tuple."""
        if set(labels) != set(self.label_names):
            raise ValueError(
                f"{self.name}: expected labels {self.label_names}, "
                f"got {tuple(sorted(labels))}"
            )
        return tuple(str(labels[name]) for name in self.label_names)

    def _render_labels(self, values: Tuple[str, ...]) -> str:
        """Render ``{a="x",b="y"}`` (or empty string without labels)."""
        if not self.label_names:
            return ""
        pairs = ",".join(
            f'{name}="{_escape_label_value(value)}"'
            for name, value in zip(self.label_names, values)
        )
        return "{" + pairs + "}"


class Counter(_Metric):
    """Monotonically increasing counter, optionally labelled."""

    kind = "counter"

    def __init__(self, name: str, help: str = "", labels: Sequence[str] = ()) -> None:
        """Create the counter with all series at zero."""
        super().__init__(name, help, labels)
        self._values: Dict[Tuple[str, ...], float] = {}

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        """Add ``amount`` (must be >= 0) to the labelled series."""
        if amount < 0:
            raise ValueError(f"counter increments must be >= 0, got {amount!r}")
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + float(amount)

    def value(self, **labels: Any) -> float:
        """Current value of one labelled series (0 if never incremented)."""
        key = self._key(labels)
        with self._lock:
            return self._values.get(key, 0.0)

    def total(self) -> float:
        """Sum over every labelled series."""
        with self._lock:
            return sum(self._values.values())

    def sum_by(self, label: str) -> Dict[str, float]:
        """Aggregate series totals by one label's value."""
        index = self.label_names.index(label)
        out: Dict[str, float] = {}
        with self._lock:
            for key, value in self._values.items():
                out[key[index]] = out.get(key[index], 0.0) + value
        return out

    def samples(self) -> List[Tuple[Tuple[str, ...], float]]:
        """All ``(label_values, value)`` pairs, sorted for stable output."""
        with self._lock:
            return sorted(self._values.items())


class Gauge(_Metric):
    """Point-in-time value that can go up or down, optionally labelled."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "", labels: Sequence[str] = ()) -> None:
        """Create the gauge with no series set."""
        super().__init__(name, help, labels)
        self._values: Dict[Tuple[str, ...], float] = {}

    def set(self, value: float, **labels: Any) -> None:
        """Set the labelled series to ``value``."""
        key = self._key(labels)
        with self._lock:
            self._values[key] = float(value)

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        """Adjust the labelled series by ``amount`` (may be negative)."""
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + float(amount)

    def value(self, **labels: Any) -> float:
        """Current value of one labelled series (0 if never set)."""
        key = self._key(labels)
        with self._lock:
            return self._values.get(key, 0.0)

    def samples(self) -> List[Tuple[Tuple[str, ...], float]]:
        """All ``(label_values, value)`` pairs, sorted for stable output."""
        with self._lock:
            return sorted(self._values.items())


class _HistogramSeries:
    """Bucket counts + raw-sample window of one labelled histogram series."""

    __slots__ = ("counts", "sum", "count", "window")

    def __init__(self, n_bounds: int, window: int) -> None:
        self.counts = [0] * (n_bounds + 1)  # final slot is +Inf
        self.sum = 0.0
        self.count = 0
        self.window: "deque[float]" = deque(maxlen=window)


class Histogram(_Metric):
    """Fixed exponential-bucket histogram with an exact-percentile window.

    Bucket counts, lifetime sum and lifetime count feed the Prometheus
    exposition; a bounded deque of raw samples backs :meth:`percentile` and
    :meth:`mean` with the exact semantics of the old per-site deques.

    Histograms may be labelled (each distinct label-value combination gets
    its own buckets and window); the unlabelled form keeps its historical
    behaviour and rendering exactly, including the all-zero exposition of a
    histogram that never observed anything.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: Optional[Sequence[float]] = None,
        window: int = 1024,
        labels: Sequence[str] = (),
    ) -> None:
        """Create an empty histogram (one eager series when unlabelled)."""
        super().__init__(name, help, labels=labels)
        bounds = tuple(sorted(float(b) for b in (buckets or DEFAULT_LATENCY_BUCKETS_MS)))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if int(window) < 1:
            raise ValueError(f"window must be >= 1, got {window!r}")
        self.bounds = bounds
        self._window_len = int(window)
        self._series: Dict[Tuple[str, ...], _HistogramSeries] = {}
        if not self.label_names:
            # unlabelled histograms render all-zero buckets before the
            # first observation, so the single series exists up front
            self._series[()] = _HistogramSeries(len(bounds), self._window_len)

    def _series_for(self, labels: Dict[str, Any]) -> _HistogramSeries:
        """Get or create the series of one label-value combination
        (callers hold ``self._lock``)."""
        key = self._key(labels)
        series = self._series.get(key)
        if series is None:
            series = _HistogramSeries(len(self.bounds), self._window_len)
            self._series[key] = series
        return series

    def observe(self, value: float, **labels: Any) -> None:
        """Record one sample (into the labelled series, when labelled)."""
        value = float(value)
        with self._lock:
            series = self._series_for(labels)
            idx = len(self.bounds)
            for i, bound in enumerate(self.bounds):
                if value <= bound:
                    idx = i
                    break
            series.counts[idx] += 1
            series.sum += value
            series.count += 1
            series.window.append(value)

    @property
    def count(self) -> int:
        """Lifetime number of observations (summed over all series)."""
        with self._lock:
            return sum(s.count for s in self._series.values())

    @property
    def sum(self) -> float:
        """Lifetime sum of observations (summed over all series)."""
        with self._lock:
            return sum(s.sum for s in self._series.values())

    def series_keys(self) -> List[Tuple[str, ...]]:
        """Label-value tuples with at least one series, sorted."""
        with self._lock:
            return sorted(self._series)

    def window_values(self, **labels: Any) -> List[float]:
        """The retained raw samples of one series, oldest first."""
        with self._lock:
            series = self._series.get(self._key(labels))
            return list(series.window) if series is not None else []

    def mean(self, **labels: Any) -> float:
        """Mean over one series' retained window (0.0 when empty)."""
        with self._lock:
            series = self._series.get(self._key(labels))
            if series is None or not series.window:
                return 0.0
            return sum(series.window) / len(series.window)

    def percentile(self, q: float, **labels: Any) -> float:
        """Exact ``q``-th percentile over one series' retained window.

        Uses linear interpolation between closest ranks — the same method
        as ``numpy.percentile`` — so existing p50/p99 outputs are preserved
        bit-for-bit.  Returns 0.0 when no samples were recorded.
        """
        with self._lock:
            series = self._series.get(self._key(labels))
            data = sorted(series.window) if series is not None else []
        if not data:
            return 0.0
        if len(data) == 1:
            return data[0]
        rank = (len(data) - 1) * (float(q) / 100.0)
        lo = int(math.floor(rank))
        hi = int(math.ceil(rank))
        if lo == hi:
            return data[lo]
        frac = rank - lo
        return data[lo] * (1.0 - frac) + data[hi] * frac

    def bucket_counts(self, **labels: Any) -> List[Tuple[float, int]]:
        """Cumulative ``(upper_bound, count)`` pairs ending at ``+Inf``."""
        with self._lock:
            series = self._series.get(self._key(labels))
            counts = series.counts if series is not None else [0] * (len(self.bounds) + 1)
            out: List[Tuple[float, int]] = []
            running = 0
            for bound, n in zip(self.bounds, counts):
                running += n
                out.append((bound, running))
            out.append((math.inf, running + counts[-1]))
            return out

    def _snapshot(self) -> List[Tuple[Tuple[str, ...], List[Tuple[float, int]], float, int]]:
        """Per-series ``(label_values, cumulative_buckets, sum, count)``
        rows for the Prometheus renderer, in one consistent pass."""
        with self._lock:
            rows = []
            for key in sorted(self._series):
                series = self._series[key]
                buckets: List[Tuple[float, int]] = []
                running = 0
                for bound, n in zip(self.bounds, series.counts):
                    running += n
                    buckets.append((bound, running))
                buckets.append((math.inf, running + series.counts[-1]))
                rows.append((key, buckets, series.sum, series.count))
            return rows


class MetricsRegistry:
    """Get-or-create home for named metrics + Prometheus text rendering."""

    def __init__(self) -> None:
        """Create an empty registry."""
        self._metrics: Dict[str, _Metric] = {}
        self._lock = threading.Lock()

    def _get_or_create(self, cls: type, name: str, **kwargs: Any) -> Any:
        """Return the existing metric or create it; kind mismatches raise."""
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind}, not {cls.kind}"  # type: ignore[attr-defined]
                    )
                return existing
            metric = cls(name, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(
        self, name: str, help: str = "", labels: Sequence[str] = ()
    ) -> Counter:
        """Get or create a :class:`Counter`."""
        return self._get_or_create(Counter, name, help=help, labels=labels)

    def gauge(self, name: str, help: str = "", labels: Sequence[str] = ()) -> Gauge:
        """Get or create a :class:`Gauge`."""
        return self._get_or_create(Gauge, name, help=help, labels=labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Optional[Sequence[float]] = None,
        window: int = 1024,
        labels: Sequence[str] = (),
    ) -> Histogram:
        """Get or create a :class:`Histogram` (optionally labelled)."""
        return self._get_or_create(
            Histogram, name, help=help, buckets=buckets, window=window, labels=labels
        )

    def get(self, name: str) -> Optional[_Metric]:
        """Look up a metric by name (``None`` if absent)."""
        with self._lock:
            return self._metrics.get(name)

    def names(self) -> List[str]:
        """All registered metric names, sorted."""
        with self._lock:
            return sorted(self._metrics)

    def render_prometheus(self) -> str:
        """Render every metric in the text exposition format (0.0.4)."""
        with self._lock:
            metrics = [self._metrics[name] for name in sorted(self._metrics)]
        lines: List[str] = []
        for metric in metrics:
            lines.append(f"# HELP {metric.name} {metric.help or metric.name}")
            lines.append(f"# TYPE {metric.name} {metric.kind}")
            if isinstance(metric, Histogram):
                for values, buckets, total, count in metric._snapshot():
                    pairs = [
                        f'{label}="{_escape_label_value(value)}"'
                        for label, value in zip(metric.label_names, values)
                    ]
                    for bound, cumulative in buckets:
                        le = _format_value(bound)
                        bucket_pairs = ",".join(pairs + [f'le="{le}"'])
                        lines.append(
                            f"{metric.name}_bucket{{{bucket_pairs}}} {cumulative}"
                        )
                    suffix = "{" + ",".join(pairs) + "}" if pairs else ""
                    lines.append(f"{metric.name}_sum{suffix} {_format_value(total)}")
                    lines.append(f"{metric.name}_count{suffix} {count}")
            else:
                samples = metric.samples()  # type: ignore[attr-defined]
                if not samples and not metric.label_names:
                    samples = [((), 0.0)]
                for values, value in samples:
                    labels = metric._render_labels(values)
                    lines.append(f"{metric.name}{labels} {_format_value(value)}")
        return "\n".join(lines) + "\n"


_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>[^\s]+)\s*$"
)
_LABEL_PAIR_RE = re.compile(
    r'^(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"$'
)


def parse_prometheus(text: str) -> List[Tuple[str, Dict[str, str], float]]:
    """Strict line-format checker for the text exposition format.

    Returns ``(name, labels, value)`` for every sample line and raises
    :class:`ValueError` on the first malformed line — used by the test
    suite as the acceptance gate for ``/metrics?format=prometheus``.
    """
    samples: List[Tuple[str, Dict[str, str], float]] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) < 3 or parts[1] not in ("HELP", "TYPE"):
                raise ValueError(f"line {lineno}: malformed comment: {line!r}")
            continue
        match = _SAMPLE_RE.match(line)
        if not match:
            raise ValueError(f"line {lineno}: malformed sample: {line!r}")
        labels: Dict[str, str] = {}
        raw_labels = match.group("labels")
        if raw_labels:
            for pair in _split_label_pairs(raw_labels, lineno):
                pair_match = _LABEL_PAIR_RE.match(pair)
                if not pair_match:
                    raise ValueError(f"line {lineno}: malformed label: {pair!r}")
                labels[pair_match.group("name")] = (
                    pair_match.group("value")
                    .replace("\\n", "\n")
                    .replace('\\"', '"')
                    .replace("\\\\", "\\")
                )
        raw_value = match.group("value")
        if raw_value == "+Inf":
            value = math.inf
        elif raw_value == "-Inf":
            value = -math.inf
        elif raw_value == "NaN":
            value = math.nan
        else:
            try:
                value = float(raw_value)
            except ValueError:
                raise ValueError(
                    f"line {lineno}: non-numeric value: {raw_value!r}"
                ) from None
        samples.append((match.group("name"), labels, value))
    return samples


def _split_label_pairs(raw: str, lineno: int) -> Iterable[str]:
    """Split ``a="x",b="y"`` into pairs, honouring escaped quotes."""
    pairs: List[str] = []
    current: List[str] = []
    in_quotes = False
    escaped = False
    for ch in raw:
        if escaped:
            current.append(ch)
            escaped = False
            continue
        if ch == "\\":
            current.append(ch)
            escaped = True
            continue
        if ch == '"':
            in_quotes = not in_quotes
            current.append(ch)
            continue
        if ch == "," and not in_quotes:
            pairs.append("".join(current))
            current = []
            continue
        current.append(ch)
    if in_quotes:
        raise ValueError(f"line {lineno}: unterminated label value in {raw!r}")
    if current:
        pairs.append("".join(current))
    return pairs
