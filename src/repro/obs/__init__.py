"""Observability: span tracing, unified metrics, Prometheus + Chrome export.

This package is a stdlib-only leaf — it imports nothing from the rest of
``repro`` so every layer (core, engine, executors, serve, CLI) can depend
on it without cycles.  See ``docs/observability.md`` for the guided tour.
"""

from .config import ObservabilityConfig
from .export import chrome_trace, span_tree, validate_chrome_trace, write_chrome_trace
from .metrics import (
    DEFAULT_LATENCY_BUCKETS_MS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    exponential_buckets,
    parse_prometheus,
)
from .trace import NULL_TRACER, Span, SpanContext, Tracer

__all__ = [
    "DEFAULT_LATENCY_BUCKETS_MS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_TRACER",
    "ObservabilityConfig",
    "Span",
    "SpanContext",
    "Tracer",
    "chrome_trace",
    "exponential_buckets",
    "parse_prometheus",
    "span_tree",
    "validate_chrome_trace",
    "write_chrome_trace",
]
