"""Span-based tracing: nested wall/CPU-timed spans that survive process hops.

The model is deliberately small:

* A :class:`Span` is one timed operation — name, trace/span/parent ids,
  wall + CPU time, a status (``ok``/``error``) and structured attributes.
* A :class:`Tracer` hands out spans as context managers, keeps per-thread
  nesting on a thread-local stack, samples at trace roots with a
  deterministic stride, and buffers finished spans (bounded deque).
* A :class:`SpanContext` is the picklable ``(trace_id, span_id)`` pair used
  to link spans across threads and across the process-pool boundary; worker
  processes record their own spans and ship them home as dicts, which the
  host tracer :meth:`~Tracer.ingest`\\ s to stitch one coherent trace.

A disabled tracer is a **provable no-op**: ``span()`` returns one shared,
stateless context manager object (no allocation, no locking), and every
instrumented call site costs a single ``if`` check.
"""

from __future__ import annotations

import os
import threading
import time
import uuid
from collections import deque
from typing import Any, Dict, Iterable, List, Optional, Tuple, Union

from .config import ObservabilityConfig

__all__ = ["NULL_TRACER", "Span", "SpanContext", "Tracer"]


class SpanContext(Tuple[str, str]):
    """Picklable ``(trace_id, span_id)`` pair identifying a live span."""

    __slots__ = ()

    def __new__(cls, trace_id: str, span_id: str) -> "SpanContext":
        """Build a context from a trace id and a span id."""
        return tuple.__new__(cls, (trace_id, span_id))

    @property
    def trace_id(self) -> str:
        """Identifier shared by every span of one trace."""
        return self[0]

    @property
    def span_id(self) -> str:
        """Identifier of the span that children should name as parent."""
        return self[1]

    def __getnewargs__(self) -> Tuple[str, str]:
        """Pickle support: ``__new__`` takes the two ids, not one tuple."""
        return (self[0], self[1])


def _new_id(nbytes: int) -> str:
    """Return ``nbytes`` of randomness as a lowercase hex string."""
    return uuid.uuid4().hex[: nbytes * 2]


class Span:
    """One timed operation inside a trace.

    Spans are created by :meth:`Tracer.span` (never directly), carry a
    monotonic wall clock and a per-thread CPU clock, and become immutable
    facts once finished.  ``attrs`` holds structured context (matrix
    fingerprint, backend, shard index, …) set via :meth:`set`.
    """

    __slots__ = (
        "name",
        "trace_id",
        "span_id",
        "parent_id",
        "pid",
        "tid",
        "status",
        "error",
        "attrs",
        "start_s",
        "wall_ms",
        "cpu_ms",
        "_perf0",
        "_cpu0",
    )

    #: Real spans record; the shared null span advertises ``False``.
    recording = True

    def __init__(
        self,
        name: str,
        trace_id: str,
        span_id: str,
        parent_id: Optional[str],
        attrs: Dict[str, Any],
    ) -> None:
        """Stamp identity and start clocks; called by the tracer only."""
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.pid = os.getpid()
        self.tid = threading.get_ident()
        self.status = "ok"
        self.error: Optional[str] = None
        self.attrs: Dict[str, Any] = dict(attrs)
        self.start_s = time.time()
        self.wall_ms = 0.0
        self.cpu_ms = 0.0
        self._perf0 = time.perf_counter()
        self._cpu0 = time.thread_time()

    @property
    def context(self) -> SpanContext:
        """The picklable handle children use to name this span as parent."""
        return SpanContext(self.trace_id, self.span_id)

    def set(self, **attrs: Any) -> None:
        """Merge structured attributes into the span."""
        self.attrs.update(attrs)

    def mark_error(self, message: str) -> None:
        """Flip the span to ``error`` status with a human-readable cause."""
        self.status = "error"
        self.error = str(message)

    def _close(self) -> None:
        """Stop both clocks; called exactly once by the tracer."""
        self.wall_ms = (time.perf_counter() - self._perf0) * 1e3
        self.cpu_ms = (time.thread_time() - self._cpu0) * 1e3

    def to_dict(self) -> Dict[str, Any]:
        """Serialise a *finished* span for transport across processes."""
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "pid": self.pid,
            "tid": self.tid,
            "status": self.status,
            "error": self.error,
            "attrs": dict(self.attrs),
            "start_s": self.start_s,
            "wall_ms": self.wall_ms,
            "cpu_ms": self.cpu_ms,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Span":
        """Rebuild a finished span from :meth:`to_dict` output."""
        span = cls.__new__(cls)
        span.name = str(data["name"])
        span.trace_id = str(data["trace_id"])
        span.span_id = str(data["span_id"])
        parent = data.get("parent_id")
        span.parent_id = None if parent is None else str(parent)
        span.pid = int(data.get("pid", 0))
        span.tid = int(data.get("tid", 0))
        span.status = str(data.get("status", "ok"))
        error = data.get("error")
        span.error = None if error is None else str(error)
        span.attrs = dict(data.get("attrs") or {})
        span.start_s = float(data.get("start_s", 0.0))
        span.wall_ms = float(data.get("wall_ms", 0.0))
        span.cpu_ms = float(data.get("cpu_ms", 0.0))
        span._perf0 = 0.0
        span._cpu0 = 0.0
        return span

    def __repr__(self) -> str:
        """Compact debugging representation."""
        return (
            f"Span({self.name!r}, trace={self.trace_id}, id={self.span_id}, "
            f"parent={self.parent_id}, status={self.status}, "
            f"wall_ms={self.wall_ms:.3f})"
        )


class _NullSpan:
    """Shared do-nothing span returned on every non-recording path."""

    __slots__ = ()

    recording = False
    name = ""
    status = "ok"
    error = None
    parent_id = None

    @property
    def context(self) -> None:
        """Null spans have no linkable context."""
        return None

    def set(self, **attrs: Any) -> None:
        """Discard attributes."""

    def mark_error(self, message: str) -> None:
        """Discard the error."""


#: The single null span shared by every disabled/unsampled code path.
NULL_SPAN = _NullSpan()


class _NoopSpanHandle:
    """Stateless context manager returned by a disabled tracer.

    One shared instance serves every call site concurrently — it holds no
    state, so re-entrancy and thread-safety are free.
    """

    __slots__ = ()

    def __enter__(self) -> _NullSpan:
        """Yield the shared null span."""
        return NULL_SPAN

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        """Propagate any exception unchanged."""
        return False


_NOOP_HANDLE = _NoopSpanHandle()

#: Anything accepted as a ``parent=`` argument.
ParentLike = Union[Span, _NullSpan, SpanContext, Tuple[str, str], None]


class _SpanHandle:
    """Context manager that opens a span on entry and finishes it on exit."""

    __slots__ = ("_tracer", "_name", "_parent", "_attrs", "_span")

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        parent: ParentLike,
        attrs: Dict[str, Any],
    ) -> None:
        """Capture the pending span's identity; nothing starts yet."""
        self._tracer = tracer
        self._name = name
        self._parent = parent
        self._attrs = attrs
        self._span: Union[Span, _NullSpan] = NULL_SPAN

    def __enter__(self) -> Union[Span, _NullSpan]:
        """Start the span (or the null span if unsampled) and push it."""
        span = self._tracer._start(self._name, self._parent, self._attrs)
        self._tracer._stack().append(span)
        self._span = span
        return span

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        """Pop the span, mark errors from in-flight exceptions, finish it."""
        stack = self._tracer._stack()
        if stack:
            stack.pop()
        span = self._span
        if span.recording:
            if exc_type is not None and span.status != "error":
                span.mark_error(f"{exc_type.__name__}: {exc}")
            self._tracer._finish(span)  # type: ignore[arg-type]
        return False


class Tracer:
    """Factory and buffer for spans; thread-safe, sampling at trace roots.

    Nesting is implicit per thread: a span opened while another is open on
    the same thread becomes its child.  Work crossing threads or processes
    passes an explicit ``parent=`` (a :class:`SpanContext` captured via
    :meth:`current_context`).  Sampling is a deterministic stride over root
    spans — unsampled roots push a null marker so their whole subtree skips
    recording without re-deciding.
    """

    def __init__(
        self,
        *,
        enabled: bool = True,
        sample_rate: float = 1.0,
        max_spans: int = 4096,
    ) -> None:
        """Create a tracer; ``enabled=False`` builds the shared-no-op kind."""
        if not (0.0 < float(sample_rate) <= 1.0):
            raise ValueError(f"sample_rate must be in (0, 1], got {sample_rate!r}")
        if int(max_spans) < 1:
            raise ValueError(f"max_spans must be >= 1, got {max_spans!r}")
        self.enabled = bool(enabled)
        self.sample_rate = float(sample_rate)
        self._stride = max(1, int(round(1.0 / float(sample_rate))))
        self._finished: "deque[Span]" = deque(maxlen=int(max_spans))
        self._open: Dict[str, Span] = {}
        self._seq = 0
        self._dropped = 0
        self._lock = threading.Lock()
        self._local = threading.local()

    @classmethod
    def from_config(cls, config: Optional[ObservabilityConfig]) -> "Tracer":
        """Build a tracer from a policy's ``obs`` field (``None`` → no-op)."""
        if config is None or not config.tracing:
            return cls(enabled=False)
        return cls(
            enabled=True,
            sample_rate=config.sample_rate,
            max_spans=config.max_spans,
        )

    # -- span lifecycle -------------------------------------------------

    def span(self, name: str, parent: ParentLike = None, **attrs: Any) -> Any:
        """Return a context manager yielding a new child span of ``parent``.

        With no explicit ``parent`` the innermost open span on this thread
        is used; with none open a new trace root is started (and sampled).
        Disabled tracers return one shared no-op handle.
        """
        if not self.enabled:
            return _NOOP_HANDLE
        return _SpanHandle(self, name, parent, attrs)

    def _stack(self) -> List[Union[Span, _NullSpan]]:
        """Return this thread's span stack, creating it lazily."""
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _start(
        self, name: str, parent: ParentLike, attrs: Dict[str, Any]
    ) -> Union[Span, _NullSpan]:
        """Resolve parentage + sampling and open a span (or the null span)."""
        if parent is None:
            stack = self._stack()
            if stack:
                parent = stack[-1]
        if parent is None:
            # Trace root: deterministic stride sampling.
            with self._lock:
                seq = self._seq
                self._seq += 1
            if seq % self._stride != 0:
                return NULL_SPAN
            trace_id = _new_id(8)
            parent_id: Optional[str] = None
        elif isinstance(parent, (_NullSpan,)) or (
            isinstance(parent, Span) and not parent.recording
        ):
            return NULL_SPAN
        elif isinstance(parent, Span):
            trace_id, parent_id = parent.trace_id, parent.span_id
        else:
            # SpanContext or a plain (trace_id, span_id) tuple.
            trace_id, parent_id = str(parent[0]), str(parent[1])
        span = Span(name, trace_id, _new_id(4), parent_id, attrs)
        with self._lock:
            self._open[span.span_id] = span
        return span

    def _finish(self, span: Span) -> None:
        """Close the span's clocks and move it to the finished buffer."""
        span._close()
        with self._lock:
            self._open.pop(span.span_id, None)
            if len(self._finished) == self._finished.maxlen:
                self._dropped += 1
            self._finished.append(span)

    # -- introspection --------------------------------------------------

    def current_context(self) -> Optional[SpanContext]:
        """Context of this thread's innermost recording span, else ``None``.

        This is what callers capture before handing work to another thread
        or process so the far side can link child spans back.
        """
        if not self.enabled:
            return None
        stack = getattr(self._local, "stack", None)
        if not stack:
            return None
        top = stack[-1]
        return top.context if top.recording else None

    def snapshot(self) -> List[Span]:
        """Finished spans, oldest first, without consuming them."""
        with self._lock:
            return list(self._finished)

    def drain(self) -> List[Span]:
        """Remove and return all finished spans, oldest first."""
        with self._lock:
            spans = list(self._finished)
            self._finished.clear()
            return spans

    def ingest(self, span_dicts: Iterable[Dict[str, Any]]) -> int:
        """Stitch spans recorded elsewhere (e.g. pool workers) into the buffer.

        Accepts :meth:`Span.to_dict` payloads; returns how many were added.
        Disabled tracers ignore the payload.
        """
        if not self.enabled:
            return 0
        spans = [Span.from_dict(d) for d in span_dicts]
        with self._lock:
            for span in spans:
                if len(self._finished) == self._finished.maxlen:
                    self._dropped += 1
                self._finished.append(span)
        return len(spans)

    def open_spans(self) -> List[Span]:
        """Spans started but not yet finished (should be empty at rest)."""
        with self._lock:
            return list(self._open.values())

    @property
    def open_count(self) -> int:
        """Number of currently open (started, unfinished) spans."""
        with self._lock:
            return len(self._open)

    @property
    def dropped(self) -> int:
        """Finished spans evicted because the buffer was full."""
        with self._lock:
            return self._dropped

    def __repr__(self) -> str:
        """Compact debugging representation."""
        state = "on" if self.enabled else "off"
        return (
            f"Tracer({state}, sample_rate={self.sample_rate}, "
            f"finished={len(self._finished)}, open={len(self._open)})"
        )


#: Shared disabled tracer used as the default by instrumented modules.
NULL_TRACER = Tracer(enabled=False)
