"""Trace export: Chrome trace-event JSON (Perfetto-loadable) + ASCII tree.

The Chrome trace-event format is the JSON schema understood by
``chrome://tracing`` and https://ui.perfetto.dev — each finished span maps
to one ``"ph": "X"`` (complete) event with microsecond timestamps, and each
process contributing spans gets a ``"ph": "M"`` (metadata) naming event so
pool workers show up as their own tracks.  :func:`validate_chrome_trace` is
the schema check used both by the CLI after writing a file and by tests.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional, Sequence

from .trace import Span

__all__ = [
    "chrome_trace",
    "span_tree",
    "validate_chrome_trace",
    "write_chrome_trace",
]


def chrome_trace(spans: Sequence[Span]) -> Dict[str, Any]:
    """Convert finished spans into a Chrome trace-event JSON document."""
    origin = min((s.start_s for s in spans), default=0.0)
    events: List[Dict[str, Any]] = []
    seen_pids: Dict[int, bool] = {}
    for span in spans:
        if span.pid not in seen_pids:
            seen_pids[span.pid] = True
            events.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": span.pid,
                    "tid": 0,
                    "args": {"name": f"repro pid {span.pid}"},
                }
            )
        args: Dict[str, Any] = dict(span.attrs)
        args["status"] = span.status
        if span.error:
            args["error"] = span.error
        args["trace_id"] = span.trace_id
        args["span_id"] = span.span_id
        if span.parent_id:
            args["parent_id"] = span.parent_id
        args["cpu_ms"] = round(span.cpu_ms, 3)
        events.append(
            {
                "name": span.name,
                "cat": "repro",
                "ph": "X",
                "ts": (span.start_s - origin) * 1e6,
                "dur": max(0.0, span.wall_ms * 1e3),
                "pid": span.pid,
                "tid": span.tid,
                "args": args,
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def validate_chrome_trace(doc: Any) -> int:
    """Check a document against the Chrome trace-event schema.

    Returns the number of ``"X"`` (span) events; raises :class:`ValueError`
    with the first violation otherwise.
    """
    if not isinstance(doc, dict):
        raise ValueError(f"trace document must be an object, got {type(doc).__name__}")
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError("trace document must have a 'traceEvents' list")
    n_spans = 0
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            raise ValueError(f"traceEvents[{i}] is not an object")
        phase = event.get("ph")
        if phase not in ("X", "M"):
            raise ValueError(f"traceEvents[{i}]: unsupported phase {phase!r}")
        for key in ("name", "pid", "tid"):
            if key not in event:
                raise ValueError(f"traceEvents[{i}]: missing required key {key!r}")
        if not isinstance(event["name"], str):
            raise ValueError(f"traceEvents[{i}]: 'name' must be a string")
        for key in ("pid", "tid"):
            if not isinstance(event[key], int):
                raise ValueError(f"traceEvents[{i}]: {key!r} must be an integer")
        if "args" in event and not isinstance(event["args"], dict):
            raise ValueError(f"traceEvents[{i}]: 'args' must be an object")
        if phase == "X":
            for key in ("ts", "dur"):
                value = event.get(key)
                if not isinstance(value, (int, float)) or value < 0:
                    raise ValueError(
                        f"traceEvents[{i}]: {key!r} must be a number >= 0"
                    )
            n_spans += 1
    return n_spans


def write_chrome_trace(spans: Sequence[Span], path: str) -> Dict[str, Any]:
    """Validate and write spans to ``path`` as Chrome trace-event JSON."""
    doc = chrome_trace(spans)
    validate_chrome_trace(doc)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=1)
        fh.write("\n")
    return doc


def _format_attrs(attrs: Dict[str, Any], limit: int = 48) -> str:
    """Render span attributes compactly for the ASCII table."""
    if not attrs:
        return ""
    text = " ".join(f"{k}={v}" for k, v in attrs.items())
    if len(text) > limit:
        text = text[: limit - 1] + "…"
    return text


def span_tree(spans: Iterable[Span]) -> str:
    """Render spans as an indented ASCII table (one row per span).

    Children nest under their parents; spans whose parent was not captured
    (sampling, drops) appear as roots.  Columns: span name (indented),
    wall ms, CPU ms, status, attributes.
    """
    spans = list(spans)
    if not spans:
        return "(no spans recorded)"
    by_id = {s.span_id: s for s in spans}
    children: Dict[Optional[str], List[Span]] = {}
    for span in spans:
        parent = span.parent_id if span.parent_id in by_id else None
        children.setdefault(parent, []).append(span)
    for siblings in children.values():
        siblings.sort(key=lambda s: s.start_s)

    rows: List[tuple] = []

    def visit(span: Span, depth: int) -> None:
        """Emit one row and recurse into children."""
        rows.append(
            (
                "  " * depth + span.name,
                f"{span.wall_ms:.3f}",
                f"{span.cpu_ms:.3f}",
                span.status,
                _format_attrs(span.attrs),
            )
        )
        for child in children.get(span.span_id, []):
            visit(child, depth + 1)

    for root in children.get(None, []):
        visit(root, 0)

    header = ("span", "wall_ms", "cpu_ms", "status", "attrs")
    widths = [
        max(len(header[i]), max(len(row[i]) for row in rows)) for i in range(5)
    ]
    lines = [
        "  ".join(header[i].ljust(widths[i]) for i in range(5)).rstrip(),
        "  ".join("-" * widths[i] for i in range(5)).rstrip(),
    ]
    for row in rows:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(5)).rstrip())
    return "\n".join(lines)
