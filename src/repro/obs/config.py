"""Observability configuration that rides on :class:`~repro.core.policy.ExecutionPolicy`.

``ObservabilityConfig`` is a frozen, hashable, picklable value object so it
can live on the (also frozen) execution policy and cross the process-pool
boundary without ceremony.  Tracing is **off by default**: a policy without
an explicit ``obs`` field costs one attribute check per instrumented seam.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["ObservabilityConfig"]


@dataclass(frozen=True)
class ObservabilityConfig:
    """Switches for the tracing/metrics subsystem.

    Attributes:
        tracing: master switch.  ``False`` (the default) keeps the tracer on
            its no-op fast path — instrumented code returns a shared no-op
            context manager without allocating anything.
        sample_rate: fraction of *root* spans that are recorded, in
            ``(0, 1]``.  Sampling is decided once per trace (deterministic
            stride, not RNG) and inherited by every child span, so a trace
            is always either complete or absent.
        max_spans: bound on the finished-span buffer held in memory; the
            oldest spans are dropped (and counted) beyond this.
    """

    tracing: bool = False
    sample_rate: float = 1.0
    max_spans: int = field(default=4096)

    def __post_init__(self) -> None:
        """Validate field ranges at construction time."""
        if not isinstance(self.tracing, bool):
            raise TypeError(f"tracing must be a bool, got {self.tracing!r}")
        if not (0.0 < float(self.sample_rate) <= 1.0):
            raise ValueError(
                f"sample_rate must be in (0, 1], got {self.sample_rate!r}"
            )
        if int(self.max_spans) < 1:
            raise ValueError(f"max_spans must be >= 1, got {self.max_spans!r}")
