"""Bounded LRU cache of prepared execution plans.

Preprocessing (reordering + BCSR blocking) dominates the cost of a single
SpMM by orders of magnitude, so a serving workload that sees the same
sparse matrices repeatedly must reuse the prepared
:class:`~repro.core.plan.ExecutionPlan` rather than rebuild it.  The cache
is keyed by :func:`~repro.core.plan.plan_key` (matrix fingerprint +
configuration signature), bounded to ``maxsize`` entries with
least-recently-used eviction, and safe for concurrent use from the
engine's thread pool.  Concurrent misses on the *same* key build the plan
only once: the second thread blocks on a per-key build lock and then takes
the cached result.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, Hashable, Optional, Tuple, TypeVar

__all__ = ["CacheStats", "PlanCache"]

T = TypeVar("T")


@dataclass
class CacheStats:
    """Counters describing the cache's behaviour so far."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    size: int = 0
    maxsize: int = 0

    @property
    def lookups(self) -> int:
        """Total cache lookups (hits + misses)."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when unused)."""
        return self.hits / self.lookups if self.lookups else 0.0


class PlanCache:
    """Thread-safe bounded LRU mapping of plan keys to built values.

    Parameters
    ----------
    maxsize:
        Maximum number of cached entries; the least recently used entry
        is evicted when a new one would exceed it.  Must be >= 1.
    """

    def __init__(self, maxsize: int = 8):
        if maxsize < 1:
            raise ValueError("PlanCache maxsize must be >= 1")
        self.maxsize = int(maxsize)
        self._data: "OrderedDict[Hashable, object]" = OrderedDict()
        self._lock = threading.Lock()
        self._building: Dict[Hashable, threading.Lock] = {}
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    # -- lookup ---------------------------------------------------------------
    def get(self, key: Hashable) -> Optional[object]:
        """Return the cached value for ``key`` (marking it recently used),
        or ``None``.  Counts as a hit or miss."""
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
                self._hits += 1
                return self._data[key]
            self._misses += 1
            return None

    def get_or_build(self, key: Hashable, factory: Callable[[], T]) -> Tuple[T, bool]:
        """Return ``(value, was_hit)`` for ``key``, calling ``factory()``
        on a miss.

        The factory runs outside the cache-wide lock (plan builds are
        slow) but under a per-key lock, so concurrent misses on the same
        key build once and everyone else reuses the result.
        """
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
                self._hits += 1
                return self._data[key], True  # type: ignore[return-value]
            build_lock = self._building.setdefault(key, threading.Lock())
        with build_lock:
            with self._lock:
                if key in self._data:
                    # another thread finished the build while we waited
                    self._data.move_to_end(key)
                    self._hits += 1
                    self._building.pop(key, None)
                    return self._data[key], True  # type: ignore[return-value]
            try:
                value = factory()
            finally:
                # a failed build is still a miss, and must not leak its
                # per-key build lock
                with self._lock:
                    self._misses += 1
                    self._building.pop(key, None)
            with self._lock:
                self._insert(key, value)
            return value, False

    def put(self, key: Hashable, value: object) -> None:
        """Insert (or refresh) an entry, evicting the LRU tail if full."""
        with self._lock:
            self._insert(key, value)

    def _insert(self, key: Hashable, value: object) -> None:
        # caller holds self._lock
        if key in self._data:
            self._data.move_to_end(key)
        self._data[key] = value
        while len(self._data) > self.maxsize:
            self._data.popitem(last=False)
            self._evictions += 1

    # -- maintenance ----------------------------------------------------------
    def reserve(self, minsize: int) -> None:
        """Grow the capacity to at least ``minsize`` (never shrinks).

        Workloads with a known working set -- e.g. a sharded multiply
        needing one partition plus one plan per shard resident at once --
        use this to avoid permanent LRU thrash on undersized caches.
        """
        with self._lock:
            if minsize > self.maxsize:
                self.maxsize = int(minsize)

    def clear(self) -> None:
        """Drop every entry (statistics are kept)."""
        with self._lock:
            self._data.clear()

    def keys(self) -> list:
        """Snapshot of the cached keys, LRU-oldest first.

        Introspection for tests and telemetry -- e.g. verifying that the
        process shard executor keeps plans in its *workers* (no shard
        plan keys appear here) while the thread executor shares this
        cache."""
        with self._lock:
            return list(self._data.keys())

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._data

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    @property
    def stats(self) -> CacheStats:
        """Snapshot of the hit/miss/eviction counters."""
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                size=len(self._data),
                maxsize=self.maxsize,
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        s = self.stats
        return (
            f"<PlanCache size={s.size}/{s.maxsize} hits={s.hits} "
            f"misses={s.misses} evictions={s.evictions}>"
        )
