"""Shard executors: where the engine's sharded scatter-gather runs.

The :class:`~repro.engine.executors.base.ShardExecutor` seam has two
implementations, selected by
:attr:`~repro.core.policy.ExecutionPolicy.executor`:

* ``"thread"`` -- :class:`ThreadShardExecutor`, the in-process thread
  pool (shared plan cache, zero setup cost, GIL-bound);
* ``"process"`` -- :class:`ProcessShardExecutor`, a worker-process pool
  with a ``multiprocessing.shared_memory`` data plane, sticky Eq.1/LPT
  shard placement and tuning-cache-warmed per-worker plan caches.

:func:`make_shard_executor` is the factory the engine calls.
"""

from __future__ import annotations

from .base import ExecutorTelemetry, ShardExecutor
from .placement import Placement, place_shards, predict_shard_cost
from .process import ProcessShardExecutor
from .shm import SegmentRegistry, leaked_segments
from .thread import ThreadShardExecutor

__all__ = [
    "ExecutorTelemetry",
    "ShardExecutor",
    "ThreadShardExecutor",
    "ProcessShardExecutor",
    "Placement",
    "place_shards",
    "predict_shard_cost",
    "SegmentRegistry",
    "leaked_segments",
    "make_shard_executor",
]


def make_shard_executor(
    kind: str, *, cache, tuner=None, pool_provider=None, max_workers=4, tracer=None
):
    """Build the shard executor for one resolved policy.

    ``cache`` and ``pool_provider`` serve the thread executor (which
    shares the engine's plan cache and thread pool); the process
    executor only needs the pool width and the tuner (for the persistent
    tuning-cache path its workers warm from).  ``tracer`` (the engine's
    :class:`repro.obs.Tracer`) makes per-shard and placement spans flow
    into the engine's trace; ``None`` keeps both executors span-free.
    """
    if kind == "thread":
        return ThreadShardExecutor(
            cache,
            tuner=tuner,
            pool_provider=pool_provider,
            max_workers=max_workers,
            tracer=tracer,
        )
    if kind == "process":
        return ProcessShardExecutor(max_workers, tuner=tuner, tracer=tracer)
    raise ValueError(f"unknown executor kind {kind!r}; use 'thread' or 'process'")
