"""Shared-memory segment registry for the process executor's data plane.

The process pool moves A-shard CSR arrays and the B/C operand panels
through POSIX shared memory (:mod:`multiprocessing.shared_memory`), so
the hot path never pickles an ndarray.  Shared-memory segments are a
system-global resource: a segment that is created but never unlinked
outlives the interpreter (visible under ``/dev/shm`` on Linux), so every
segment the executor creates goes through the :class:`SegmentRegistry`
below, which guarantees close-and-unlink on :meth:`SegmentRegistry.close`
-- and, as a safety net, at interpreter exit.

Worker processes only ever *attach* to segments the parent created;
:func:`attach_segment` works around the CPython ``resource_tracker``
mis-accounting (attaching registers the segment a second time, so worker
exit would unlink storage the parent still uses and spam
``KeyError: shared_memory`` warnings -- a known bug fixed only by the
``track=False`` keyword of Python 3.13, which this codebase's 3.9 floor
cannot use).
"""

from __future__ import annotations

import atexit
import os
import secrets
import threading
from multiprocessing import shared_memory
from typing import Dict, List, Optional

import numpy as np

__all__ = [
    "SegmentRegistry",
    "attach_segment",
    "ndarray_view",
    "leaked_segments",
]

#: name prefix of every segment this package creates (leak tests and the
#: benchmark scan for it)
SEGMENT_PREFIX = "repro-shm"

#: live registries, unlinked by the atexit hook if close() never ran
_LIVE_REGISTRIES: "set[SegmentRegistry]" = set()
_LIVE_LOCK = threading.Lock()


def _cleanup_at_exit() -> None:
    """Unlink whatever close() did not (crash / KeyboardInterrupt path)."""
    with _LIVE_LOCK:
        registries = list(_LIVE_REGISTRIES)
    for registry in registries:
        registry.close()


atexit.register(_cleanup_at_exit)


class SegmentRegistry:
    """Owns every shared-memory segment one executor creates.

    ``create`` hands out named segments; :meth:`close` (idempotent,
    thread-safe) closes **and unlinks** all of them.  Only the creating
    process may unlink: a forked worker inherits this object, so both
    :meth:`close` and the atexit hook check ``os.getpid()`` against the
    creator before touching the kernel objects.
    """

    def __init__(self) -> None:
        self._pid = os.getpid()
        self._segments: Dict[str, shared_memory.SharedMemory] = {}
        self._lock = threading.Lock()
        self._counter = 0
        self._closed = False
        with _LIVE_LOCK:
            _LIVE_REGISTRIES.add(self)

    def create(self, nbytes: int, *, tag: str = "seg") -> shared_memory.SharedMemory:
        """A new named segment of at least ``nbytes`` bytes."""
        if self._closed:
            raise RuntimeError("SegmentRegistry is closed")
        with self._lock:
            self._counter += 1
            name = (
                f"{SEGMENT_PREFIX}-{self._pid}-{self._counter}"
                f"-{tag}-{secrets.token_hex(3)}"
            )
            shm = shared_memory.SharedMemory(name=name, create=True, size=max(1, nbytes))
            self._segments[shm.name] = shm
            return shm

    def release(self, name: str) -> None:
        """Close and unlink one segment early (e.g. a resized B panel)."""
        with self._lock:
            shm = self._segments.pop(name, None)
        if shm is not None and os.getpid() == self._pid:
            _destroy(shm)

    @property
    def active_names(self) -> List[str]:
        """Names of the segments currently alive (telemetry / tests)."""
        with self._lock:
            return sorted(self._segments)

    @property
    def total_bytes(self) -> int:
        """Bytes currently held in shared memory by this registry."""
        with self._lock:
            return sum(shm.size for shm in self._segments.values())

    def close(self) -> None:
        """Close and unlink every segment.  Idempotent; fork-safe."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            segments = list(self._segments.values())
            self._segments.clear()
        with _LIVE_LOCK:
            _LIVE_REGISTRIES.discard(self)
        if os.getpid() != self._pid:
            return  # forked child: the parent owns the kernel objects
        for shm in segments:
            _destroy(shm)

    def __enter__(self) -> "SegmentRegistry":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def _destroy(shm: shared_memory.SharedMemory) -> None:
    """close() + unlink(), swallowing already-gone errors.

    ``BufferError`` means a live ndarray still views the mapping; the
    unlink below still removes the name (the kernel frees the storage
    once the last mapping drops), which is the leak guarantee we need.
    """
    try:
        shm.close()
    except (OSError, BufferError):  # pragma: no cover - view still alive
        pass
    try:
        shm.unlink()
    except FileNotFoundError:  # pragma: no cover - racing cleanup
        pass


def attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach to a parent-created segment from a worker process.

    Detaches the segment from this process's ``resource_tracker``
    bookkeeping: the parent (via its :class:`SegmentRegistry`) is the
    sole owner, and without the unregister a worker's exit would unlink
    segments the parent is still serving from (CPython issue; 3.13 grew
    ``track=False`` for exactly this, but the repo supports 3.9+).
    """
    shm = shared_memory.SharedMemory(name=name)
    try:
        from multiprocessing import resource_tracker

        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:  # pragma: no cover - tracker internals shifted
        pass
    return shm


def ndarray_view(
    shm: shared_memory.SharedMemory,
    dtype: str,
    count: int,
    offset: int = 0,
) -> np.ndarray:
    """A zero-copy ndarray over ``count`` items of ``dtype`` at ``offset``."""
    return np.frombuffer(shm.buf, dtype=np.dtype(dtype), count=count, offset=offset)


def leaked_segments(prefix: str = SEGMENT_PREFIX, pid: Optional[int] = None) -> List[str]:
    """Orphaned segments visible under ``/dev/shm`` (Linux introspection).

    Lists system-wide segments carrying this package's name prefix --
    the leak tests and ``bench_multiprocess`` assert this comes back
    empty after executors shut down.  ``pid`` narrows the scan to
    segments created by one process.  Returns ``[]`` on platforms
    without a ``/dev/shm`` view.
    """
    root = "/dev/shm"
    if not os.path.isdir(root):  # pragma: no cover - non-Linux
        return []
    if pid is not None:
        prefix = f"{prefix}-{pid}-"
    try:
        return sorted(n for n in os.listdir(root) if n.startswith(prefix))
    except OSError:  # pragma: no cover - scan raced an unlink
        return []
