"""The executor seam: how the engine runs sharded scatter-gather work.

:class:`ShardExecutor` abstracts the two-phase contract the sharded
subsystem already speaks -- *prepare* (one plan per shard) then
*execute* (scatter operand panels, run shards, gather ``C``) -- behind
an interface the engine selects from
:attr:`~repro.core.policy.ExecutionPolicy.executor`:

* :class:`~repro.engine.executors.thread.ThreadShardExecutor` keeps
  everything in-process on the engine's thread pool (plans live in the
  engine's :class:`~repro.engine.cache.PlanCache`);
* :class:`~repro.engine.executors.process.ProcessShardExecutor` escapes
  the GIL with a pool of worker processes and a shared-memory data
  plane (plans live in per-worker caches, warmed from the persistent
  tuning cache).

Both report through :class:`ExecutorTelemetry`, which the engine embeds
in :meth:`~repro.engine.SpMMEngine.telemetry` and the serving daemon
republishes on ``GET /metrics``.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["ExecutorTelemetry", "ShardExecutor"]

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ...core.config import SMaTConfig
    from ...shard.executor import ShardedReport
    from ...shard.partition import Partition
    from ...shard.plan import ShardPlanEntry


@dataclass
class ExecutorTelemetry:
    """Operational counters of one shard executor.

    ``per_worker_shards`` counts shard executions landed on each worker
    over the executor's lifetime (for the thread executor the pool is
    anonymous, so everything aggregates under worker 0);
    ``placement_imbalance`` is the predicted-cost imbalance of the most
    recent placement (1.0 = perfectly balanced, thread executor reports
    1.0); ``segment_bytes`` is shared memory currently held (0 for the
    thread executor); ``warmup_hits`` counts worker plan/tuning builds
    served from the persistent tuning cache.
    """

    #: ``"thread"`` or ``"process"``
    kind: str
    #: pool width
    workers: int
    #: prepared (partition, config) sessions alive
    sessions: int = 0
    #: shard executions completed over the executor's lifetime
    shards_executed: int = 0
    #: lifetime shard executions per worker index
    per_worker_shards: Dict[int, int] = field(default_factory=dict)
    #: predicted-cost imbalance of the latest placement (1.0 = balanced)
    placement_imbalance: float = 1.0
    #: shared-memory bytes currently held by the data plane
    segment_bytes: int = 0
    #: worker plan builds whose tuning resolved from the persistent cache
    warmup_hits: int = 0


class ShardExecutor(abc.ABC):
    """Runs the prepare/execute phases of sharded SpMM for the engine.

    Implementations own whatever pool and data plane they need, and must
    make :meth:`close` idempotent and safe to call from ``finally`` /
    ``atexit`` paths -- the leak guarantees of the process executor's
    shared-memory segments hang off it.
    """

    #: policy spelling of this executor (``ExecutionPolicy.executor``)
    kind: str = "abstract"

    @abc.abstractmethod
    def prepare(
        self, partition: "Partition", config: "SMaTConfig"
    ) -> List["ShardPlanEntry"]:
        """One plan entry per shard of ``partition``, in shard order.

        Repeated calls with the same (partition, config) must reuse the
        prepared state (cached plans / live worker sessions) rather than
        rebuilding it.
        """

    @abc.abstractmethod
    def execute(
        self,
        partition: "Partition",
        entries: Sequence["ShardPlanEntry"],
        B: np.ndarray,
    ) -> Tuple[np.ndarray, "ShardedReport"]:
        """Scatter-gather ``C = A @ B`` over prepared ``entries``."""

    @abc.abstractmethod
    def telemetry(self) -> ExecutorTelemetry:
        """Current counters (see :class:`ExecutorTelemetry`)."""

    def close(self) -> None:
        """Release pools and data-plane resources (idempotent)."""

    def __enter__(self) -> "ShardExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def validate_operand(partition: "Partition", B: np.ndarray) -> Tuple[np.ndarray, bool]:
    """Shared operand checks: returns ``(B as 2-D array, was_vector)``."""
    B_arr = np.asarray(B)
    was_vector = B_arr.ndim == 1
    if was_vector:
        B_arr = B_arr.reshape(-1, 1)
    if B_arr.ndim != 2 or B_arr.shape[0] != partition.A.ncols:
        raise ValueError(
            f"operand B must have {partition.A.ncols} rows to match "
            f"A {partition.A.shape}, got {np.asarray(B).shape}"
        )
    return B_arr, was_vector


def resolve_tuning_cache_path(tuner) -> Optional[str]:
    """Filesystem path of a tuner's persistent cache (``None`` when the
    tuner is absent or memory-only) -- what worker processes receive to
    warm their own tuning resolution from."""
    cache = getattr(tuner, "cache", None)
    path = getattr(cache, "path", None)
    return str(path) if path is not None else None
