"""In-process shard execution on the engine's thread pool.

The original execution path, repackaged behind the
:class:`~repro.engine.executors.base.ShardExecutor` seam: plans build
through the engine's shared :class:`~repro.engine.cache.PlanCache`
(per-shard tuning included), and the scatter-gather of
:func:`~repro.shard.executor.execute_partition` runs on the engine's
``ThreadPoolExecutor``.  Cheap and zero-copy by construction (one
address space), but numpy-external work serialises behind the GIL --
the process executor exists for exactly that reason.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Callable, List, Optional, Sequence, Tuple

import numpy as np

from .base import ExecutorTelemetry, ShardExecutor

__all__ = ["ThreadShardExecutor"]

if TYPE_CHECKING:  # pragma: no cover - typing only
    from concurrent.futures import ThreadPoolExecutor

    from ...core.config import SMaTConfig
    from ...shard.executor import ShardedReport
    from ...shard.partition import Partition
    from ...shard.plan import ShardPlanEntry
    from ..cache import PlanCache


class ThreadShardExecutor(ShardExecutor):
    """Thread-pool shard executor (the engine's historical behaviour).

    Parameters
    ----------
    cache:
        The engine's plan cache; shard plans are keyed into it alongside
        whole-matrix plans.
    tuner:
        Optional tuner for per-shard tuning (the engine's).
    pool_provider:
        Callable ``n_tasks -> ThreadPoolExecutor | None`` supplying the
        engine's worker pool (``None`` when concurrency cannot help);
        the executor never owns threads itself, so engine shutdown
        semantics are unchanged.
    tracer:
        Optional :class:`repro.obs.Tracer` (the engine's); per-shard
        ``shard.run`` spans are recorded on the pool threads and linked
        to the submitting call's span.
    """

    kind = "thread"

    def __init__(
        self,
        cache: "PlanCache",
        *,
        tuner=None,
        pool_provider: Optional[Callable[[int], Optional["ThreadPoolExecutor"]]] = None,
        max_workers: int = 4,
        tracer=None,
    ):
        from ...obs.trace import NULL_TRACER

        self._cache = cache
        self._tuner = tuner
        self._pool_provider = pool_provider or (lambda n: None)
        self._max_workers = int(max_workers)
        self._tracer = tracer if tracer is not None else NULL_TRACER
        self._lock = threading.Lock()
        self._shards_executed = 0
        self._sessions: set = set()

    def prepare(
        self, partition: "Partition", config: "SMaTConfig"
    ) -> List["ShardPlanEntry"]:
        """Build (or fetch) every shard's plan through the shared cache."""
        from ...shard.plan import ShardPlanner

        planner = ShardPlanner(self._cache, tuner=self._tuner)
        pool = self._pool_provider(len(partition.shards))
        entries = planner.plans_for(partition, config, executor=pool)
        with self._lock:
            self._sessions.add(self._session_key(partition, config))
        return entries

    def execute(
        self,
        partition: "Partition",
        entries: Sequence["ShardPlanEntry"],
        B: np.ndarray,
    ) -> Tuple[np.ndarray, "ShardedReport"]:
        """Scatter-gather on the engine's thread pool."""
        from ...shard.executor import execute_partition

        pool = self._pool_provider(len(entries))
        C, report = execute_partition(
            partition,
            entries,
            B,
            executor=pool,
            tracer=self._tracer,
            parent=self._tracer.current_context(),
        )
        with self._lock:
            self._shards_executed += len(report.shards)
        return C, report

    def telemetry(self) -> ExecutorTelemetry:
        """Counters; the thread pool is anonymous, so per-worker shard
        counts aggregate under worker 0 and placement is trivially
        balanced (work-stealing pool, no sticky placement)."""
        with self._lock:
            executed = self._shards_executed
            sessions = len(self._sessions)
        return ExecutorTelemetry(
            kind=self.kind,
            workers=self._max_workers,
            sessions=sessions,
            shards_executed=executed,
            per_worker_shards={0: executed} if executed else {},
            placement_imbalance=1.0,
            segment_bytes=0,
            warmup_hits=0,
        )

    @staticmethod
    def _session_key(partition: "Partition", config: "SMaTConfig") -> tuple:
        from ...core.plan import config_signature, matrix_fingerprint

        return (
            matrix_fingerprint(partition.A),
            partition.grid,
            partition.mode,
            config_signature(config),
        )
