"""GIL-escaping shard execution on a shared-memory process pool.

The thread executor runs every shard in one interpreter, so the
numpy-external parts of plan execution (BCSR gather loops, reordering,
simulated-kernel bookkeeping) serialise behind the GIL.
:class:`ProcessShardExecutor` runs shards in worker *processes* instead,
with three properties the paper's preprocess-once model demands:

**Zero-copy data plane.**  A-shard CSR arrays and the B/C operand panels
move through ``multiprocessing.shared_memory`` segments (created and
unlinked by a :class:`~repro.engine.executors.shm.SegmentRegistry`);
queue messages carry only names, offsets and dtypes -- no pickled
ndarray ever crosses the hot path.

**Sticky placement, warm caches.**  Workers keep private plan caches, so
shards are placed once per session by the LPT placer over Eq. 1
predicted costs (:mod:`~repro.engine.executors.placement`) and never
move: repeated multiplies hit worker-local prepared plans.  Tuned
executors hand each worker the persistent
:class:`~repro.tuner.TuningCache` path at pool startup, so worker plan
builds resolve tuning from disk (counted as ``warmup_hits``) instead of
re-searching.

**Guaranteed cleanup.**  All segments funnel through the registry, which
unlinks on :meth:`close` and -- for crash / ``KeyboardInterrupt`` paths
-- from an ``atexit`` hook; worker death is detected by liveness checks
during result collection and surfaces as :class:`RuntimeError`, never a
hang.
"""

from __future__ import annotations

import multiprocessing
import os
import queue as queue_module
import threading
import time
import traceback
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ...obs.trace import NULL_TRACER, SpanContext, Tracer
from .base import ExecutorTelemetry, ShardExecutor, resolve_tuning_cache_path, validate_operand
from .placement import Placement, place_shards, predict_shard_cost
from .shm import SegmentRegistry, attach_segment, ndarray_view

__all__ = ["ProcessShardExecutor"]

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ...core.config import SMaTConfig
    from ...shard.executor import ShardedReport
    from ...shard.partition import Partition
    from ...shard.plan import ShardPlanEntry

#: environment override for the multiprocessing start method
MP_CONTEXT_ENV = "REPRO_MP_CONTEXT"

#: cross-process gather locks per pool (indexed by ``row_panel % N``);
#: created at pool start because mp locks cannot travel through queues
N_GATHER_LOCKS = 16

#: seconds between liveness checks while waiting on worker results
_POLL_S = 0.2

#: alignment of array offsets inside a segment
_ALIGN = 16


def _default_context() -> str:
    """``fork`` where available (cheap start, inherits warm imports),
    ``spawn`` otherwise; ``$REPRO_MP_CONTEXT`` overrides."""
    override = os.environ.get(MP_CONTEXT_ENV, "").strip()
    if override:
        return override
    return "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"


def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


class _Session:
    """Parent-side record of one prepared (partition, config) pair."""

    def __init__(self, sid: str, key: tuple, partition, config, placement: Placement):
        self.sid = sid
        self.key = key
        self.partition = partition
        self.config = config
        self.placement = placement
        #: worker index -> shard indices placed on it (load/run fan-out)
        self.worker_shards: Dict[int, List[int]] = {}
        #: entries as first built (reused -- with warm cache_hit -- later)
        self.entries: List["ShardPlanEntry"] = []
        self.warmup_hits = 0


class ProcessShardExecutor(ShardExecutor):
    """Shard executor backed by a pool of worker processes.

    Parameters
    ----------
    max_workers:
        Worker processes in the pool.
    tuner:
        The engine's tuner, if tuning is enabled.  Workers receive the
        tuner's persistent cache *path* (not the object) and build their
        own tuning resolution from it at startup.
    context:
        Multiprocessing start method (default: ``$REPRO_MP_CONTEXT`` or
        ``fork`` where available).
    tracer:
        Optional :class:`repro.obs.Tracer` (the engine's).  When a span
        is live at :meth:`execute` time its context travels to the
        workers inside the run message; workers record their own
        ``shard.worker.run`` spans and ship them back with the results,
        where they are stitched into the host trace.
    """

    kind = "process"

    def __init__(
        self,
        max_workers: int = 4,
        *,
        tuner=None,
        context: Optional[str] = None,
        tracer=None,
    ):
        if max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        self._tracer = tracer if tracer is not None else NULL_TRACER
        self._tuned = tuner is not None
        tuning_cache_path = resolve_tuning_cache_path(tuner)
        self._ctx = multiprocessing.get_context(context or _default_context())
        self._registry = SegmentRegistry()
        self._results = self._ctx.Queue()
        self._lock = threading.Lock()
        self._sessions: Dict[tuple, _Session] = {}
        self._session_counter = 0
        self._run_counter = 0
        self._closed = False
        self._broken: Optional[str] = None
        self._shards_executed = 0
        self._per_worker_shards: Dict[int, int] = {}
        self._last_placement: Optional[Placement] = None
        self._b_seg = None
        self._c_seg = None
        # gather locks are created *before* the workers so they can be
        # inherited / passed as Process args (queues cannot carry them)
        gather_locks = [self._ctx.Lock() for _ in range(N_GATHER_LOCKS)]
        self._workers: List[Tuple[object, object]] = []  # (Process, task queue)
        for wid in range(int(max_workers)):
            tasks = self._ctx.Queue()
            proc = self._ctx.Process(
                target=_worker_main,
                args=(wid, tasks, self._results, gather_locks, self._tuned, tuning_cache_path),
                name=f"spmm-shard-worker-{wid}",
                daemon=True,
            )
            proc.start()
            self._workers.append((proc, tasks))

    # -- prepare ---------------------------------------------------------------
    def prepare(
        self, partition: "Partition", config: "SMaTConfig"
    ) -> List["ShardPlanEntry"]:
        """Place shards, ship their CSR arrays into shared memory, and
        have each worker build (or reuse) its plans.

        The first call for a (partition, config) pair creates a sticky
        session; later calls return warm entries (``cache_hit=True``)
        without touching the workers.
        """
        from ...shard.plan import ShardPlanEntry, ensure_shard_fingerprints

        self._require_usable()
        key = self._session_key(partition, config)
        with self._lock:
            session = self._sessions.get(key)
        if session is not None:
            return [
                ShardPlanEntry(
                    shard=e.shard, plan=None, cache_hit=True, build_ms=0.0, remote=e.remote
                )
                for e in session.entries
            ]

        ensure_shard_fingerprints(partition)
        nonempty = [s for s in partition.shards if s.nnz > 0]
        with self._tracer.span("shard.placement", workers=len(self._workers)) as span:
            costs = [predict_shard_cost(s, config) for s in nonempty]
            placement = place_shards(costs, len(self._workers))
            span.set(
                n_shards=len(nonempty),
                imbalance=round(placement.imbalance, 4),
            )

        with self._lock:
            self._session_counter += 1
            sid = f"s{self._session_counter}"
        session = _Session(sid, key, partition, config, placement)

        # pack each placed shard's rowptr/col/val into one segment
        descriptors: Dict[int, dict] = {}
        for shard, worker in zip(nonempty, placement.assignment):
            matrix = shard.matrix
            arrays = [matrix.rowptr, matrix.col, matrix.val]
            offsets, cursor = [], 0
            for arr in arrays:
                offsets.append(cursor)
                cursor = _aligned(cursor + arr.nbytes)
            seg = self._registry.create(max(1, cursor), tag=f"a{shard.index}")
            for arr, off in zip(arrays, offsets):
                ndarray_view(seg, arr.dtype.str, arr.size, off)[:] = arr
            descriptors[shard.index] = {
                "index": shard.index,
                "segment": seg.name,
                "arrays": [
                    (off, arr.dtype.str, arr.size) for arr, off in zip(arrays, offsets)
                ],
                "shape": matrix.shape,
                "fingerprint": matrix._fingerprint,
                "rows": (shard.row_start, shard.row_stop),
                "cols": (shard.col_start, shard.col_stop),
                "pos": shard.pos,
            }
            session.worker_shards.setdefault(worker, []).append(shard.index)

        from ...core.plan import PlanSpec

        spec = PlanSpec(config, tuned=self._tuned)
        trace_ctx = self._tracer.current_context()
        trace = tuple(trace_ctx) if trace_ctx is not None else None
        for worker, shard_ids in session.worker_shards.items():
            self._task_queue(worker).put(
                ("load", sid, spec, [descriptors[i] for i in shard_ids], trace)
            )
        infos: Dict[int, dict] = {}
        for msg in self._collect("loaded", sid, expected=len(session.worker_shards)):
            for info in msg[3]:
                infos[info["index"]] = info
            if len(msg) > 4 and msg[4]:
                self._tracer.ingest(msg[4])

        worker_of = {
            s.index: w for s, w in zip(nonempty, placement.assignment)
        }
        entries = []
        for shard in partition.shards:
            if shard.nnz == 0:
                entries.append(
                    ShardPlanEntry(shard=shard, plan=None, cache_hit=True, build_ms=0.0)
                )
                continue
            info = infos[shard.index]
            remote = self._remote_info(sid, worker_of[shard.index], info)
            session.warmup_hits += int(info["warmup_hits"])
            entries.append(
                ShardPlanEntry(
                    shard=shard,
                    plan=None,
                    cache_hit=bool(info["plan_cached"]),
                    build_ms=float(info["build_ms"]),
                    remote=remote,
                )
            )
        session.entries = entries
        with self._lock:
            self._sessions[key] = session
            self._last_placement = placement
        return entries

    @staticmethod
    def _remote_info(sid: str, worker: int, info: dict):
        from ...shard.plan import RemotePlanInfo

        return RemotePlanInfo(
            session=sid,
            worker=worker,
            backend=info["backend"],
            config_label=info["label"],
            blocks=int(info["blocks"]),
            warmup_hit=bool(info["warmup_hits"]),
        )

    # -- execute ---------------------------------------------------------------
    def execute(
        self,
        partition: "Partition",
        entries: Sequence["ShardPlanEntry"],
        B: np.ndarray,
    ) -> Tuple[np.ndarray, "ShardedReport"]:
        """One scatter-gather multiply across the worker pool.

        ``entries`` must come from :meth:`prepare` on this executor;
        entries carrying in-process plans (built by a foreign
        :class:`~repro.shard.plan.ShardPlanner`) fall back to local
        execution so mixed call patterns keep working.
        """
        from ...shard.executor import execute_partition

        self._require_usable()
        if len(entries) != len(partition.shards):
            raise ValueError("one ShardPlanEntry per shard expected")
        if not any(e.remote is not None for e in entries):
            # foreign entries hold local plans: execute in-process
            return execute_partition(partition, entries, B, executor=None)

        session = self._session_for(entries, partition)
        B_arr, was_vector = validate_operand(partition, B)
        B_arr = np.ascontiguousarray(B_arr)
        A = partition.A
        out_dtype = np.result_type(A.dtype, B_arr.dtype, np.float32)
        n_cols = B_arr.shape[1]

        start = time.perf_counter()
        b_seg = self._operand_segment("_b_seg", B_arr.nbytes, tag="b")
        ndarray_view(b_seg, B_arr.dtype.str, B_arr.size)[:] = B_arr.ravel()
        c_count = A.nrows * n_cols
        c_seg = self._operand_segment("_c_seg", c_count * out_dtype.itemsize, tag="c")
        C_view = ndarray_view(c_seg, out_dtype.str, c_count).reshape(A.nrows, n_cols)
        C_view[:] = 0

        with self._lock:
            self._run_counter += 1
            run_id = f"r{self._run_counter}"
        multi_panel = partition.grid[1] > 1
        # span context crosses the process boundary as a plain pair; the
        # workers record child spans against it and ship them back
        trace_ctx = self._tracer.current_context()
        operands = {
            "b": (b_seg.name, B_arr.dtype.str, B_arr.shape),
            "c": (c_seg.name, out_dtype.str, (A.nrows, n_cols)),
            "multi_panel": multi_panel,
            "trace": tuple(trace_ctx) if trace_ctx is not None else None,
        }
        for worker in session.worker_shards:
            self._task_queue(worker).put(("run", session.sid, run_id, operands))

        shard_reports: Dict[int, dict] = {}
        worker_spans: List[dict] = []
        for msg in self._collect("ran", run_id, expected=len(session.worker_shards)):
            for rep in msg[3]:
                shard_reports[rep["index"]] = rep
            if len(msg) > 4 and msg[4]:
                worker_spans.extend(msg[4])
        if worker_spans:
            self._tracer.ingest(worker_spans)
        wall_ms = 1e3 * (time.perf_counter() - start)

        C = C_view.copy()
        if was_vector:
            C = C.ravel()
        report = self._build_report(partition, entries, shard_reports, wall_ms)
        with self._lock:
            self._shards_executed += len(report.shards)
            for worker, shard_ids in session.worker_shards.items():
                self._per_worker_shards[worker] = self._per_worker_shards.get(
                    worker, 0
                ) + len(shard_ids)
        return C, report

    def _build_report(
        self, partition, entries, shard_reports: Dict[int, dict], wall_ms: float
    ) -> "ShardedReport":
        from ...shard.executor import ShardedReport, _shard_report

        ideal_nnz = (
            partition.A.nnz / len(partition.shards) if partition.shards else 0.0
        )
        reports = []
        for entry in entries:
            rep = shard_reports.get(entry.shard.index)
            if rep is None:  # empty shard: contributed nothing
                reports.append(_shard_report(entry, ideal_nnz, 0.0, 0.0, 0))
            else:
                reports.append(
                    _shard_report(
                        entry,
                        ideal_nnz,
                        float(rep["simulated_ms"]),
                        float(rep["wall_ms"]),
                        int(rep["n_blocks"]),
                    )
                )
        return ShardedReport(
            grid=partition.grid,
            mode=partition.mode,
            imbalance=partition.imbalance,
            shards=reports,
            wall_ms=wall_ms,
            simulated_ms=sum(r.simulated_ms for r in reports),
            critical_path_ms=max((r.simulated_ms for r in reports), default=0.0),
        )

    # -- telemetry -------------------------------------------------------------
    def telemetry(self) -> ExecutorTelemetry:
        """Counters: sticky-placement imbalance, per-worker shard loads,
        live shared-memory bytes and tuning warmup hits."""
        with self._lock:
            placement = self._last_placement
            warmup = sum(s.warmup_hits for s in self._sessions.values())
            return ExecutorTelemetry(
                kind=self.kind,
                workers=len(self._workers),
                sessions=len(self._sessions),
                shards_executed=self._shards_executed,
                per_worker_shards=dict(self._per_worker_shards),
                placement_imbalance=placement.imbalance if placement else 1.0,
                segment_bytes=self._registry.total_bytes,
                warmup_hits=warmup,
            )

    # -- plumbing --------------------------------------------------------------
    def _session_key(self, partition, config) -> tuple:
        from ...core.plan import config_signature, matrix_fingerprint

        return (
            matrix_fingerprint(partition.A),
            partition.grid,
            partition.mode,
            config_signature(config),
            self._tuned,
        )

    def _session_for(self, entries, partition) -> _Session:
        sids = {e.remote.session for e in entries if e.remote is not None}
        if len(sids) != 1:
            raise ValueError("entries span more than one executor session")
        sid = sids.pop()
        with self._lock:
            for session in self._sessions.values():
                if session.sid == sid:
                    return session
        raise RuntimeError(f"unknown executor session {sid!r} (executor restarted?)")

    def _task_queue(self, worker: int):
        return self._workers[worker][1]

    def _operand_segment(self, attr: str, nbytes: int, *, tag: str):
        """The reusable B/C segment, regrown when the operand outgrows it."""
        seg = getattr(self, attr)
        if seg is not None and seg.size >= nbytes:
            return seg
        if seg is not None:
            self._registry.release(seg.name)
        seg = self._registry.create(nbytes, tag=tag)
        setattr(self, attr, seg)
        return seg

    def _collect(self, kind: str, token: str, *, expected: int) -> List[tuple]:
        """Gather ``expected`` worker replies of ``kind`` matching
        ``token``, polling worker liveness so a crashed worker raises
        instead of hanging; worker-side exceptions re-raise here."""
        got: List[tuple] = []
        while len(got) < expected:
            try:
                msg = self._results.get(timeout=_POLL_S)
            except queue_module.Empty:
                self._check_alive()
                continue
            if msg[0] == "error":
                self._broken = f"worker {msg[1]} failed: {msg[2]}"
                raise RuntimeError(f"shard worker {msg[1]} failed:\n{msg[3]}")
            if msg[0] == kind and msg[2] == token:
                got.append(msg)
            # replies for other tokens (an interrupted earlier call) drop
        return got

    def _check_alive(self) -> None:
        for wid, (proc, _) in enumerate(self._workers):
            if not proc.is_alive():
                self._broken = f"worker {wid} died (exit code {proc.exitcode})"
                raise RuntimeError(
                    f"shard worker {wid} died unexpectedly "
                    f"(exit code {proc.exitcode}); the executor is broken -- "
                    f"close it and create a new one"
                )

    def _require_usable(self) -> None:
        if self._closed:
            raise RuntimeError("ProcessShardExecutor is closed")
        if self._broken:
            raise RuntimeError(f"ProcessShardExecutor is broken: {self._broken}")

    def close(self) -> None:
        """Stop the workers and unlink every shared-memory segment.

        Idempotent, and safe after crashes / interrupts: dead workers
        are skipped, live ones get a stop message then a terminate
        escalation, and the segment registry unlinks unconditionally.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
        for proc, tasks in self._workers:
            if proc.is_alive():
                try:
                    tasks.put(("stop",))
                except (OSError, ValueError):  # pragma: no cover - queue gone
                    pass
        for proc, tasks in self._workers:
            proc.join(timeout=2.0)
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.terminate()
                proc.join(timeout=1.0)
            tasks.close()
            tasks.cancel_join_thread()
        self._results.close()
        self._results.cancel_join_thread()
        self._b_seg = None
        self._c_seg = None
        self._registry.close()


# -- worker process ------------------------------------------------------------


def _worker_main(
    worker_id: int,
    tasks,
    results,
    gather_locks,
    tuned: bool,
    tuning_cache_path: Optional[str],
) -> None:
    """Entry point of one pool worker.

    Keeps a private plan cache keyed like the engine's (shard
    fingerprint x config signature x tuned); with ``tuned`` the worker
    builds its own :class:`~repro.tuner.Tuner` over the persistent
    tuning-cache *path* at startup, so plan builds resolve searches from
    disk (warmup) instead of re-running them.
    """
    tuner = None
    if tuned:
        from ...tuner import Tuner

        tuner = Tuner(cache=tuning_cache_path if tuning_cache_path else False)
    state = {
        "tuner": tuner,
        "sessions": {},  # sid -> {"segments": [shm], "shards": [(desc, plan)]}
        "plans": {},  # (fingerprint, config signature, tuned) -> plan
        "attached": {},  # operand segment name -> shm handle
    }
    while True:
        msg = tasks.get()
        kind = msg[0]
        if kind == "stop":
            # flush any queued replies, then exit without running
            # interpreter teardown: numpy views over the shared segments
            # are still alive (plans hold them), and SharedMemory.__del__
            # would spray BufferError("exported pointers exist") trying
            # to close under them -- the parent owns unlinking anyway
            results.close()
            results.join_thread()
            os._exit(0)
        try:
            if kind == "load":
                _worker_load(worker_id, state, msg, results)
            elif kind == "run":
                _worker_run(worker_id, state, msg, results, gather_locks)
            else:  # pragma: no cover - protocol error
                raise ValueError(f"unknown message kind {kind!r}")
        except BaseException as exc:  # noqa: B036 - report, then keep serving
            results.put(("error", worker_id, repr(exc), traceback.format_exc()))


def _worker_load(worker_id: int, state: dict, msg: tuple, results) -> None:
    """Attach shard segments, rebuild the CSR views, and build (or reuse)
    each shard's plan from its :class:`~repro.core.plan.PlanSpec`."""
    from ...formats import CSRMatrix
    from ...shard.plan import plan_label

    _, sid, spec, descriptors = msg[:4]
    trace = msg[4] if len(msg) > 4 else None
    tracer = NULL_TRACER
    parent = None
    if trace is not None:
        tracer = state.get("obs_tracer") or Tracer(enabled=True)
        state["obs_tracer"] = tracer
        parent = SpanContext(*trace)
        if state["tuner"] is not None:
            # route the worker tuner's spans into the same trace
            state["tuner"].tracer = tracer
    segments, shards, infos = [], [], []
    cfg_sig = spec.signature()
    for desc in descriptors:
        shm = attach_segment(desc["segment"])
        segments.append(shm)
        (rp_off, rp_dt, rp_n), (c_off, c_dt, c_n), (v_off, v_dt, v_n) = desc["arrays"]
        rowptr = ndarray_view(shm, rp_dt, rp_n, rp_off)
        col = ndarray_view(shm, c_dt, c_n, c_off)
        val = ndarray_view(shm, v_dt, v_n, v_off)
        matrix = CSRMatrix(rowptr, col, val, tuple(desc["shape"]), check=False)
        matrix._fingerprint = desc["fingerprint"]

        plan_key = (desc["fingerprint"], cfg_sig, spec.tuned)
        plan = state["plans"].get(plan_key)
        cached = plan is not None
        warmup_hits = 0
        with tracer.span(
            "shard.worker.build",
            parent=parent,
            worker=worker_id,
            shard=desc["index"],
            plan_cached=cached,
        ) as span:
            start = time.perf_counter()
            if plan is None:
                tuner = state["tuner"]
                before = tuner.cache.stats.hits if tuner is not None and tuner.cache else 0
                plan = spec.build(matrix, tuner=tuner)
                if tuner is not None and tuner.cache is not None:
                    warmup_hits = tuner.cache.stats.hits - before
                state["plans"][plan_key] = plan
            build_ms = 1e3 * (time.perf_counter() - start)
            span.set(backend=plan.report.backend, build_ms=round(build_ms, 3))
        shards.append((desc, plan))
        infos.append(
            {
                "index": desc["index"],
                "backend": plan.report.backend,
                "label": plan_label(plan),
                "blocks": int(plan.report.blocks_after),
                "plan_cached": cached,
                "build_ms": build_ms,
                "warmup_hits": int(warmup_hits),
            }
        )
    state["sessions"][sid] = {"segments": segments, "shards": shards}
    spans = [s.to_dict() for s in tracer.drain()] if trace is not None else []
    results.put(("loaded", worker_id, sid, infos, spans))


def _worker_run(worker_id: int, state: dict, msg: tuple, results, gather_locks) -> None:
    """Execute this worker's shards against the shared B, gather into C."""
    _, sid, run_id, operands = msg
    session = state["sessions"][sid]
    b_name, b_dtype, b_shape = operands["b"]
    c_name, c_dtype, c_shape = operands["c"]
    multi_panel = operands["multi_panel"]
    B_view = _operand_view(state, b_name, b_dtype, b_shape)
    C_view = _operand_view(state, c_name, c_dtype, c_shape)

    # host-side tracing: a live span context rides in with the run message;
    # child spans recorded here travel back as dicts for host-side stitching
    trace = operands.get("trace")
    tracer = NULL_TRACER
    parent = None
    if trace is not None:
        tracer = state.get("obs_tracer") or Tracer(enabled=True)
        state["obs_tracer"] = tracer
        parent = SpanContext(*trace)

    reports = []
    for desc, plan in session["shards"]:
        with tracer.span(
            "shard.worker.run",
            parent=parent,
            worker=worker_id,
            shard=desc["index"],
        ) as span:
            start = time.perf_counter()
            c0, c1 = desc["cols"]
            r0, r1 = desc["rows"]
            C_sub, report = plan.execute(B_view[c0:c1])
            if multi_panel:
                with gather_locks[desc["pos"][0] % len(gather_locks)]:
                    C_view[r0:r1] += C_sub
            else:
                C_view[r0:r1] = C_sub
            wall_ms = 1e3 * (time.perf_counter() - start)
            span.set(backend=plan.report.backend, wall_ms=round(wall_ms, 3))
        reports.append(
            {
                "index": desc["index"],
                "simulated_ms": float(report.simulated_ms),
                "wall_ms": wall_ms,
                "n_blocks": int(report.n_blocks),
            }
        )
    spans = [s.to_dict() for s in tracer.drain()] if trace is not None else []
    results.put(("ran", worker_id, run_id, reports, spans))


def _operand_view(state: dict, name: str, dtype: str, shape) -> np.ndarray:
    """Zero-copy 2-D view over an operand segment (attachments cached;
    stale attachments from a regrown segment are dropped by name)."""
    shm = state["attached"].get(name)
    if shm is None:
        shm = attach_segment(name)
        state["attached"][name] = shm
    count = int(shape[0]) * int(shape[1])
    return ndarray_view(shm, dtype, count).reshape(shape[0], shape[1])
