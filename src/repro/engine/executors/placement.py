"""Critical-path-aware shard placement for the process executor.

Workers keep private plan caches, so shard-to-worker placement is sticky
for the lifetime of an executor session: moving a shard to another
worker would pay its preprocessing again.  That makes placement a
one-shot scheduling decision, and the classic greedy answer applies:
predict each shard's execution time with the Eq. 1 linear model
(``T = T_e * n_blocks + T_init``, the same fit the tuner and the
cost-balanced partitioner use), then assign longest-processing-time
first to the least-loaded worker (LPT).  LPT is within 4/3 of the
optimal makespan, which is the critical path the sharded multiply waits
on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Sequence

__all__ = ["Placement", "predict_shard_cost", "place_shards"]

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ...core.config import SMaTConfig
    from ...shard.partition import Shard


def predict_shard_cost(shard: "Shard", config: "SMaTConfig", n_cols: int = 8) -> float:
    """Predicted execution seconds for one shard (Eq. 1).

    Counts the shard's non-zero BCSR blocks under the config's block
    shape and applies the calibrated ``T_e``/``T_init`` fit.  Falls back
    to an nnz-proportional surrogate when the backend cannot calibrate
    (the relative ordering is all LPT needs).
    """
    if shard.nnz == 0:
        return 0.0
    from ...reorder.metrics import blocks_per_block_row
    from ...tuner.model import calibrate

    shape = config.resolved_block_shape()
    n_blocks = float(blocks_per_block_row(shard.matrix, shape).sum())
    try:
        fit = calibrate(config, shape, n_cols)
    except Exception:  # pragma: no cover - backend without a calibration fit
        return float(shard.nnz)
    return fit.t_e * n_blocks + fit.t_init


@dataclass(frozen=True)
class Placement:
    """Sticky shard-to-worker assignment for one executor session."""

    #: worker index per shard (parallel to the shard list placed)
    assignment: List[int]
    #: predicted seconds of work landed on each worker
    loads: List[float]
    #: predicted cost per shard (Eq. 1 seconds)
    costs: List[float]

    @property
    def imbalance(self) -> float:
        """Max worker load over the ideal (mean) load; 1.0 is perfect.

        The same convention as :attr:`repro.shard.partition.Partition.imbalance`,
        but measured on predicted seconds per *worker* rather than nnz
        per shard -- it bounds how far the critical path sits above a
        perfectly balanced pool.
        """
        busy = [load for load in self.loads if load > 0.0]
        if not busy:
            return 1.0
        total = sum(busy)
        ideal = total / len(self.loads)
        return max(busy) / ideal if ideal > 0 else 1.0


def place_shards(costs: Sequence[float], n_workers: int) -> Placement:
    """LPT placement of shards (by predicted cost) onto ``n_workers``.

    Sorts shards by descending cost and assigns each to the currently
    least-loaded worker; ties break on the lower worker index so the
    placement is deterministic (a requirement for session reuse -- the
    same partition must land on the same workers every time).
    """
    if n_workers < 1:
        raise ValueError(f"n_workers must be >= 1, got {n_workers}")
    loads = [0.0] * n_workers
    assignment = [0] * len(costs)
    order = sorted(range(len(costs)), key=lambda i: (-costs[i], i))
    for i in order:
        worker = min(range(n_workers), key=lambda w: (loads[w], w))
        assignment[i] = worker
        loads[worker] += costs[i]
    return Placement(assignment=assignment, loads=loads, costs=list(costs))
