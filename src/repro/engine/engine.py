"""Batched SpMM execution engine with plan caching.

:class:`SpMMEngine` is the serving layer over the paper's pipeline.  Where
:class:`~repro.core.smat.SMaT` binds one prepared matrix to one object,
the engine

1. **caches plans** -- input matrices are fingerprinted
   (:func:`~repro.core.plan.matrix_fingerprint`) and their prepared
   :class:`~repro.core.plan.ExecutionPlan` (permutation + BCSR + kernel
   instance) is kept in a bounded LRU, so repeated queries against the
   same matrix skip preprocessing entirely;
2. **batches work** -- many ``B`` operands per matrix and many matrices
   per call, executed through a thread pool over independent plan runs,
   returning per-item :class:`~repro.core.plan.MultiplyReport`\\ s plus
   aggregate throughput;
3. **exposes an async-friendly queue** -- :meth:`submit` returns a ticket
   immediately and :meth:`result` collects it later, and :meth:`stream`
   pipelines an operand iterator through the pool with a bounded
   in-flight window.

Example
-------
>>> import numpy as np
>>> from repro.engine import SpMMEngine
>>> from repro.matrices import band_matrix
>>> A = band_matrix(512, 16)
>>> Bs = [np.ones((512, 8), dtype=np.float32) for _ in range(4)]
>>> with SpMMEngine(cache_size=4, max_workers=2) as engine:
...     outcome = engine.multiply_many(A, Bs)
>>> len(outcome)
4
>>> outcome.summary.cache.misses  # one preprocessing pass for 4 multiplies
1
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import Future, ThreadPoolExecutor, TimeoutError as FuturesTimeoutError
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..core.config import SMaTConfig
from ..core.plan import ExecutionPlan, MultiplyReport, build_with_fallback, plan_key
from ..formats import CSRMatrix
from .cache import CacheStats, PlanCache

__all__ = [
    "BatchItem",
    "BatchResult",
    "BatchSummary",
    "BatchOutcome",
    "EngineTelemetry",
    "SpMMEngine",
]


@dataclass
class BatchItem:
    """One unit of batched work: multiply matrix ``A`` by operand ``B``."""

    A: CSRMatrix
    B: np.ndarray
    tag: Optional[object] = None
    config: Optional[SMaTConfig] = None
    keep_permuted: bool = False


@dataclass
class BatchResult:
    """Outcome of one batch item, in submission order."""

    index: int
    tag: Optional[object]
    C: np.ndarray
    report: MultiplyReport
    cache_hit: bool
    wall_ms: float


@dataclass
class BatchSummary:
    """Aggregate throughput of one batched call."""

    n_items: int
    wall_ms: float
    simulated_ms: float
    useful_flops: float
    cache: CacheStats = field(default_factory=CacheStats)

    @property
    def items_per_second(self) -> float:
        """Batch items completed per wall-clock second."""
        return 1e3 * self.n_items / self.wall_ms if self.wall_ms > 0 else 0.0

    @property
    def wall_gflops(self) -> float:
        """Aggregate host-side throughput (useful FLOPs / wall time)."""
        return self.useful_flops / (1e6 * self.wall_ms) if self.wall_ms > 0 else 0.0

    @property
    def simulated_gflops(self) -> float:
        """Aggregate device throughput (useful FLOPs / simulated time)."""
        return self.useful_flops / (1e6 * self.simulated_ms) if self.simulated_ms > 0 else 0.0


@dataclass
class BatchOutcome:
    """Per-item results plus the aggregate summary of one batched call."""

    results: List[BatchResult]
    summary: BatchSummary

    def __iter__(self) -> Iterator[BatchResult]:
        return iter(self.results)

    def __len__(self) -> int:
        return len(self.results)

    def __getitem__(self, index: int) -> BatchResult:
        return self.results[index]


@dataclass
class EngineTelemetry:
    """Point-in-time operational counters of one engine.

    ``queue_depth`` counts submitted-but-unfinished work (the async
    ticket backlog); the latency percentiles summarise the most recent
    per-item wall times (bounded window, so long-lived engines report
    *current* behaviour, not lifetime averages).  The serving daemon's
    ``/metrics`` endpoint republishes this snapshot.
    """

    completed: int
    queue_depth: int
    mean_ms: float
    p50_ms: float
    p99_ms: float


#: work accepted by :meth:`SpMMEngine.multiply_batch`
WorkItem = Union[BatchItem, Tuple[CSRMatrix, np.ndarray]]


class SpMMEngine:
    """Batched SpMM execution engine with plan caching.

    Parameters
    ----------
    config:
        Default pipeline configuration for every plan the engine builds;
        individual :class:`BatchItem`\\ s may override it.
    cache_size:
        Capacity of the plan LRU (distinct (matrix, config) pairs kept
        prepared).
    max_workers:
        Threads executing batch items concurrently (default 4).  Plan
        builds are deduplicated across threads, and plan execution is
        read-only, so any worker count is safe.
    tune:
        Route every plan build through the auto-tuner
        (:mod:`repro.tuner`): the first sight of a matrix runs (or loads
        from the persistent tuning cache) a block-shape x reordering
        search, and the plan is built from the winning configuration.
        Equivalent to ``SMaTConfig(reorder="auto")`` but applied to every
        item regardless of its configuration.
    tuner:
        A pre-configured :class:`~repro.tuner.Tuner` to use when ``tune``
        is enabled (overrides ``tuning_cache``); lets callers control the
        search budget and candidate space.
    tuning_cache:
        Path (or :class:`~repro.tuner.TuningCache`) of the persistent
        tuning cache; ``None`` selects the default on-disk location.
        Engines pointing at the same path share search results -- also
        across processes.  Passing ``tuning_cache`` (like ``tuner``)
        implies ``tune=True``.
    latency_window:
        Number of recent per-item wall times retained for the
        :meth:`telemetry` latency percentiles (default 1024): bounded, so
        long-lived engines report current behaviour in O(1) memory.
    """

    def __init__(
        self,
        config: Optional[SMaTConfig] = None,
        *,
        cache_size: int = 8,
        max_workers: int = 4,
        tune: bool = False,
        tuner=None,
        tuning_cache=None,
        latency_window: int = 1024,
    ):
        if max_workers < 1:
            raise ValueError("SpMMEngine needs at least one worker thread")
        if latency_window < 1:
            raise ValueError("latency_window must be >= 1")
        self.config = (config or SMaTConfig()).validate()
        self.max_workers = int(max_workers)
        if tuner is not None or tuning_cache is not None:
            tune = True
        if tune and tuner is None:
            from ..tuner import Tuner

            tuner = Tuner(cache=tuning_cache)
        self.tuner = tuner
        self._cache = PlanCache(cache_size)
        self._executor: Optional[ThreadPoolExecutor] = None
        self._tickets: Dict[int, "Future[BatchResult]"] = {}
        self._ticket_lock = threading.Lock()
        self._next_ticket = 0
        self._closed = False
        self._telemetry_lock = threading.Lock()
        self._latencies: "deque[float]" = deque(maxlen=latency_window)
        self._completed = 0

    # -- plan management ------------------------------------------------------
    def plan_for(self, A: CSRMatrix, config: Optional[SMaTConfig] = None) -> ExecutionPlan:
        """Return the prepared plan for ``(A, config)``, building and
        caching it on first use."""
        plan, _ = self._plan_with_hit(A, config)
        return plan

    def _plan_with_hit(
        self, A: CSRMatrix, config: Optional[SMaTConfig]
    ) -> Tuple[ExecutionPlan, bool]:
        cfg = (config or self.config).validate()
        if self.tuner is not None:
            # key on the *requested* configuration and resolve inside the
            # build factory: the plan cache's per-key build lock then also
            # deduplicates concurrent tuning searches for the same matrix
            key = (plan_key(A, cfg), "tuned")
            return self._cache.get_or_build(key, lambda: self._build_plan(A, cfg, tuned=True))
        key = plan_key(A, cfg)
        return self._cache.get_or_build(key, lambda: self._build_plan(A, cfg))

    def _build_plan(self, A: CSRMatrix, cfg: SMaTConfig, *, tuned: bool = False) -> ExecutionPlan:
        """Build one plan via :func:`~repro.core.plan.build_with_fallback`:
        an unsupported backend (cuBLAS densification or Magicube
        preprocessing exceeding device memory) falls back to SMaT with the
        failed backend recorded in the plan's ``PreprocessReport``.  The
        fallback plan is cached under the *requested* key, so the
        unsupported backend is not re-attempted on every query."""
        return build_with_fallback(A, cfg, tuner=self.tuner if tuned else None)

    @property
    def plan_cache(self) -> PlanCache:
        """The engine's shared plan cache (used by the sharded subsystem
        to key per-shard plans alongside whole-matrix plans)."""
        return self._cache

    @property
    def cache_stats(self) -> CacheStats:
        """Snapshot of the plan cache's hit/miss/eviction counters."""
        return self._cache.stats

    def clear_cache(self) -> None:
        """Drop every cached plan (forces re-preprocessing)."""
        self._cache.clear()

    # -- single-item execution ------------------------------------------------
    def multiply(
        self,
        A: CSRMatrix,
        B: np.ndarray,
        *,
        config: Optional[SMaTConfig] = None,
        return_report: bool = False,
        keep_permuted: bool = False,
    ):
        """Compute ``C = A @ B`` through the plan cache.

        Drop-in equivalent of :meth:`repro.core.smat.SMaT.multiply`, but
        the prepared state is shared with every other call that uses the
        same matrix and configuration.
        """
        self._require_open()
        plan, _ = self._plan_with_hit(A, config)
        C, report = plan.execute(B, keep_permuted=keep_permuted)
        if not return_report:
            return C
        return C, report

    def _execute_item(self, index: int, item: BatchItem) -> BatchResult:
        start = time.perf_counter()
        plan, hit = self._plan_with_hit(item.A, item.config)
        C, report = plan.execute(item.B, keep_permuted=item.keep_permuted)
        wall_ms = 1e3 * (time.perf_counter() - start)
        with self._telemetry_lock:
            self._latencies.append(wall_ms)
            self._completed += 1
        return BatchResult(
            index=index, tag=item.tag, C=C, report=report, cache_hit=hit, wall_ms=wall_ms
        )

    def execute_one(
        self,
        A: CSRMatrix,
        B: np.ndarray,
        *,
        tag: Optional[object] = None,
        config: Optional[SMaTConfig] = None,
        keep_permuted: bool = False,
    ) -> BatchResult:
        """Execute one multiply synchronously and return the full
        :class:`BatchResult` (cache-hit flag + wall time included).

        Like :meth:`multiply`, but with the per-item bookkeeping a
        serving front end needs -- the HTTP daemon
        (:mod:`repro.serve`) reports ``cache_hit`` and ``wall_ms`` per
        request from this.
        """
        self._require_open()
        return self._execute_item(
            0, BatchItem(A, B, tag=tag, config=config, keep_permuted=keep_permuted)
        )

    # -- batched execution ----------------------------------------------------
    @staticmethod
    def _as_item(work: WorkItem) -> BatchItem:
        if isinstance(work, BatchItem):
            return work
        A, B = work
        return BatchItem(A, B)

    def multiply_batch(self, work: Sequence[WorkItem]) -> BatchOutcome:
        """Execute a batch of independent SpMM problems through the thread
        pool and return per-item results (in submission order) plus an
        aggregate :class:`BatchSummary`.

        Each element of ``work`` is a :class:`BatchItem` or a plain
        ``(A, B)`` tuple.  Items may mix matrices and configurations
        freely; plans are fetched from (or built into) the shared cache.
        """
        self._require_open()
        items = [self._as_item(w) for w in work]
        start = time.perf_counter()
        if len(items) <= 1 or self.max_workers == 1:
            results = [self._execute_item(i, item) for i, item in enumerate(items)]
        else:
            executor = self._ensure_executor()
            futures = [
                executor.submit(self._execute_item, i, item) for i, item in enumerate(items)
            ]
            results = [f.result() for f in futures]
        wall_ms = 1e3 * (time.perf_counter() - start)
        return BatchOutcome(results=results, summary=self._summarise(results, wall_ms))

    def multiply_many(
        self,
        A: CSRMatrix,
        Bs: Sequence[np.ndarray],
        *,
        config: Optional[SMaTConfig] = None,
    ) -> BatchOutcome:
        """Multiply one matrix by many operands (the serving hot path:
        one preprocessing pass amortised over the whole batch)."""
        return self.multiply_batch(
            [BatchItem(A, B, tag=i, config=config) for i, B in enumerate(Bs)]
        )

    def _summarise(self, results: Sequence[BatchResult], wall_ms: float) -> BatchSummary:
        return BatchSummary(
            n_items=len(results),
            wall_ms=wall_ms,
            simulated_ms=sum(r.report.simulated_ms for r in results),
            useful_flops=sum(r.report.useful_flops for r in results),
            cache=self._cache.stats,
        )

    # -- sharded execution ----------------------------------------------------
    def partition_for(
        self,
        A: CSRMatrix,
        grid,
        *,
        mode: str = "nnz",
        config: Optional[SMaTConfig] = None,
        n_cols: int = 8,
    ):
        """Return the (cached) :class:`~repro.shard.Partition` of ``A``
        for the given grid and balancing mode.

        Partitions live in the plan cache next to the plans built from
        them, so repeated sharded queries skip the O(nnz) panel
        extraction as well as preprocessing.  The cache is grown (never
        shrunk) to hold the partition plus every shard plan at once --
        an undersized LRU would otherwise silently rebuild shards on
        every call.
        """
        from ..core.plan import matrix_fingerprint
        from ..shard.partition import make_partition, parse_grid

        self._require_open()
        cfg = (config or self.config).validate()
        g = parse_grid(grid)
        self._cache.reserve(g[0] * g[1] + 2)
        # n_cols only affects the cost-mode weight scale (the split bounds
        # are invariant to it), so nnz-mode partitions stay shared across
        # operand widths
        key = (
            "shard-partition",
            matrix_fingerprint(A),
            g,
            mode,
            cfg.resolved_block_shape(),
            n_cols if mode == "cost" else None,
        )
        partition, _ = self._cache.get_or_build(
            key, lambda: make_partition(A, g, mode=mode, config=cfg, n_cols=n_cols)
        )
        return partition

    def shard_plans_for(self, partition, config: Optional[SMaTConfig] = None):
        """One :class:`~repro.shard.ShardPlanEntry` per shard, built (or
        fetched) through the plan cache; per-shard tuning applies when the
        engine was created with ``tune=True``."""
        from ..shard.plan import ShardPlanner

        self._require_open()
        cfg = (config or self.config).validate()
        planner = ShardPlanner(self._cache, tuner=self.tuner)
        pool = self._pool_for(len(partition.shards))
        return planner.plans_for(partition, cfg, executor=pool)

    def execute_sharded(self, partition, entries, B: np.ndarray):
        """Scatter-gather one sharded multiply on the engine's pool;
        returns ``(C, ShardedReport)``."""
        from ..shard.executor import execute_partition

        self._require_open()
        pool = self._pool_for(len(entries))
        return execute_partition(partition, entries, B, executor=pool)

    def multiply_sharded(
        self,
        A: CSRMatrix,
        B: np.ndarray,
        *,
        grid=4,
        mode: str = "nnz",
        config: Optional[SMaTConfig] = None,
        return_report: bool = False,
    ):
        """Compute ``C = A @ B`` through the sharded subsystem.

        ``A`` is split into a balanced shard grid
        (:mod:`repro.shard.partition`), every shard gets its own cached
        (and, with ``tune=True``, per-shard tuned) plan, and the shard
        runs are scatter-gathered on the engine's thread pool.  With
        ``return_report`` the per-shard breakdown
        (:class:`~repro.shard.ShardedReport`) is returned alongside ``C``.
        """
        self._require_open()
        cfg = (config or self.config).validate()
        B_arr = np.asarray(B)
        n_cols = B_arr.shape[1] if B_arr.ndim == 2 else 1
        partition = self.partition_for(A, grid, mode=mode, config=cfg, n_cols=n_cols)
        entries = self.shard_plans_for(partition, cfg)
        C, report = self.execute_sharded(partition, entries, B)
        if not return_report:
            return C
        return C, report

    def _pool_for(self, n_tasks: int) -> Optional[ThreadPoolExecutor]:
        """The worker pool, or ``None`` when concurrency cannot help."""
        if self.max_workers <= 1 or n_tasks <= 1:
            return None
        return self._ensure_executor()

    # -- async queue API ------------------------------------------------------
    def submit(
        self,
        A: CSRMatrix,
        B: np.ndarray,
        *,
        tag: Optional[object] = None,
        config: Optional[SMaTConfig] = None,
    ) -> int:
        """Enqueue one multiply and return a ticket immediately.

        The work starts on the thread pool right away; collect the
        :class:`BatchResult` with :meth:`result`.
        """
        executor = self._ensure_executor()
        item = BatchItem(A, B, tag=tag, config=config)
        with self._ticket_lock:
            ticket = self._next_ticket
            self._next_ticket += 1
            self._tickets[ticket] = executor.submit(self._execute_item, ticket, item)
        return ticket

    def result(self, ticket: int, timeout: Optional[float] = None) -> BatchResult:
        """Wait for (and consume) the result of a :meth:`submit` ticket."""
        with self._ticket_lock:
            future = self._tickets.pop(ticket, None)
        if future is None:
            raise KeyError(f"unknown or already-collected ticket {ticket!r}")
        try:
            return future.result(timeout=timeout)
        except FuturesTimeoutError:
            with self._ticket_lock:
                self._tickets[ticket] = future  # still pending: allow a retry
            raise

    def pending(self) -> int:
        """Number of submitted tickets not yet collected."""
        with self._ticket_lock:
            return len(self._tickets)

    def queue_depth(self) -> int:
        """Number of submitted tickets whose work has not finished yet
        (the async backlog; collected-or-not does not matter)."""
        with self._ticket_lock:
            return sum(1 for f in self._tickets.values() if not f.done())

    def telemetry(self) -> EngineTelemetry:
        """Operational snapshot: items completed, async queue depth, and
        latency percentiles over the recent-latency window."""
        with self._telemetry_lock:
            completed = self._completed
            window = list(self._latencies)
        if window:
            lat = np.asarray(window, dtype=np.float64)
            mean_ms = float(lat.mean())
            p50_ms = float(np.percentile(lat, 50))
            p99_ms = float(np.percentile(lat, 99))
        else:
            mean_ms = p50_ms = p99_ms = 0.0
        return EngineTelemetry(
            completed=completed,
            queue_depth=self.queue_depth(),
            mean_ms=mean_ms,
            p50_ms=p50_ms,
            p99_ms=p99_ms,
        )

    # -- streaming ------------------------------------------------------------
    def stream(
        self,
        A: CSRMatrix,
        Bs: Iterable[np.ndarray],
        *,
        config: Optional[SMaTConfig] = None,
        window: Optional[int] = None,
    ) -> Iterator[BatchResult]:
        """Pipeline a (possibly unbounded) sequence of operands through the
        engine, yielding results in input order.

        At most ``window`` items (default ``2 * max_workers``) are in
        flight at once, so arbitrarily long operand streams run in
        constant memory.
        """
        executor = self._ensure_executor()
        window = window if window is not None else 2 * self.max_workers
        if window < 1:
            raise ValueError("stream window must be >= 1")
        in_flight: "deque[Future[BatchResult]]" = deque()
        iterator = enumerate(Bs)
        try:
            for index, B in iterator:
                item = BatchItem(A, B, tag=index, config=config)
                in_flight.append(executor.submit(self._execute_item, index, item))
                if len(in_flight) >= window:
                    yield in_flight.popleft().result()
            while in_flight:
                yield in_flight.popleft().result()
        finally:
            for future in in_flight:
                future.cancel()

    # -- lifecycle ------------------------------------------------------------
    def _require_open(self) -> None:
        if self._closed:
            raise RuntimeError("SpMMEngine is closed")

    def _ensure_executor(self) -> ThreadPoolExecutor:
        self._require_open()
        if self._executor is None:
            self._executor = ThreadPoolExecutor(
                max_workers=self.max_workers, thread_name_prefix="spmm-engine"
            )
        return self._executor

    def close(self) -> None:
        """Shut down the worker pool (idempotent).  Cached plans survive
        until the engine is garbage collected."""
        self._closed = True
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def __enter__(self) -> "SpMMEngine":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        s = self._cache.stats
        return (
            f"<SpMMEngine workers={self.max_workers} cache={s.size}/{s.maxsize} "
            f"hits={s.hits} misses={s.misses}>"
        )
