"""Batched SpMM execution engine with plan caching.

:class:`SpMMEngine` is the serving layer over the paper's pipeline.  Where
:class:`~repro.core.smat.SMaT` binds one prepared matrix to one object,
the engine

1. **caches plans** -- input matrices are fingerprinted
   (:func:`~repro.core.plan.matrix_fingerprint`) and their prepared
   :class:`~repro.core.plan.ExecutionPlan` (permutation + BCSR + kernel
   instance) is kept in a bounded LRU, so repeated queries against the
   same matrix skip preprocessing entirely;
2. **batches work** -- many ``B`` operands per matrix and many matrices
   per call, executed through a thread pool over independent plan runs,
   returning per-item :class:`~repro.core.plan.MultiplyReport`\\ s plus
   aggregate throughput;
3. **exposes an async-friendly queue** -- :meth:`submit` returns a ticket
   immediately and :meth:`result` collects it later, and :meth:`stream`
   pipelines an operand iterator through the pool with a bounded
   in-flight window.

How the engine executes is described by one frozen
:class:`~repro.core.policy.ExecutionPolicy` value -- pool width, tuning,
sharding defaults, and (new) which *executor* runs sharded work: the
in-process thread pool or the GIL-escaping shared-memory process pool
(:mod:`repro.engine.executors`).  The legacy per-kwarg spelling
(``max_workers=``, ``tune=``, ...) still works through a deprecation
shim.

Example
-------
>>> import numpy as np
>>> from repro.engine import ExecutionPolicy, SpMMEngine
>>> from repro.matrices import band_matrix
>>> A = band_matrix(512, 16)
>>> Bs = [np.ones((512, 8), dtype=np.float32) for _ in range(4)]
>>> with SpMMEngine(cache_size=4, policy=ExecutionPolicy(max_workers=2)) as engine:
...     outcome = engine.multiply_many(A, Bs)
>>> len(outcome)
4
>>> outcome.summary.cache.misses  # one preprocessing pass for 4 multiplies
1
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import Future, ThreadPoolExecutor, TimeoutError as FuturesTimeoutError
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from ..core.config import SMaTConfig
from ..core.plan import ExecutionPlan, MultiplyReport, build_with_fallback, plan_key
from ..core.policy import ExecutionPolicy, policy_from_legacy
from ..formats import CSRMatrix
from ..obs import MetricsRegistry, Tracer
from .cache import CacheStats, PlanCache
from .executors import ExecutorTelemetry, ShardExecutor, make_shard_executor

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..tuner.online import OnlineTelemetry, OnlineTuner

__all__ = [
    "BatchItem",
    "BatchResult",
    "BatchSummary",
    "BatchOutcome",
    "EngineTelemetry",
    "SpMMEngine",
]


@dataclass
class BatchItem:
    """One unit of batched work: multiply matrix ``A`` by operand ``B``."""

    A: CSRMatrix
    B: np.ndarray
    tag: Optional[object] = None
    config: Optional[SMaTConfig] = None
    keep_permuted: bool = False


@dataclass
class BatchResult:
    """Outcome of one batch item, in submission order."""

    index: int
    tag: Optional[object]
    C: np.ndarray
    report: MultiplyReport
    cache_hit: bool
    wall_ms: float


@dataclass
class BatchSummary:
    """Aggregate throughput of one batched call."""

    n_items: int
    wall_ms: float
    simulated_ms: float
    useful_flops: float
    cache: CacheStats = field(default_factory=CacheStats)

    @property
    def items_per_second(self) -> float:
        """Batch items completed per wall-clock second."""
        return 1e3 * self.n_items / self.wall_ms if self.wall_ms > 0 else 0.0

    @property
    def wall_gflops(self) -> float:
        """Aggregate host-side throughput (useful FLOPs / wall time)."""
        return self.useful_flops / (1e6 * self.wall_ms) if self.wall_ms > 0 else 0.0

    @property
    def simulated_gflops(self) -> float:
        """Aggregate device throughput (useful FLOPs / simulated time)."""
        return self.useful_flops / (1e6 * self.simulated_ms) if self.simulated_ms > 0 else 0.0


@dataclass
class BatchOutcome:
    """Per-item results plus the aggregate summary of one batched call."""

    results: List[BatchResult]
    summary: BatchSummary

    def __iter__(self) -> Iterator[BatchResult]:
        return iter(self.results)

    def __len__(self) -> int:
        return len(self.results)

    def __getitem__(self, index: int) -> BatchResult:
        return self.results[index]


@dataclass
class EngineTelemetry:
    """Point-in-time operational counters of one engine.

    ``queue_depth`` counts submitted-but-unfinished work (the async
    ticket backlog); the latency percentiles summarise the most recent
    per-item wall times (bounded window, so long-lived engines report
    *current* behaviour, not lifetime averages).  The serving daemon's
    ``/metrics`` endpoint republishes this snapshot.
    """

    completed: int
    queue_depth: int
    mean_ms: float
    p50_ms: float
    p99_ms: float
    #: shard-executor counters (per-worker shard loads, placement
    #: imbalance, shared-memory bytes, tuning warmup hits); present even
    #: before the first sharded call (zeros for the policy's executor)
    executor: Optional[ExecutorTelemetry] = None
    #: online-tuning loop snapshot (drift, recalibrations, background
    #: re-tunes, exploration share); ``None`` unless the policy enables
    #: :class:`~repro.core.policy.OnlineTuningConfig`
    online: Optional["OnlineTelemetry"] = None


#: work accepted by :meth:`SpMMEngine.multiply_batch`
WorkItem = Union[BatchItem, Tuple[CSRMatrix, np.ndarray]]


class SpMMEngine:
    """Batched SpMM execution engine with plan caching.

    Parameters
    ----------
    config:
        Default pipeline configuration for every plan the engine builds;
        individual :class:`BatchItem`\\ s may override it.
    policy:
        The :class:`~repro.core.policy.ExecutionPolicy`: pool width,
        tuning, shard-executor choice (``"thread"`` / ``"process"``),
        sharding defaults and telemetry window.  Defaults to
        ``ExecutionPolicy()`` (4 thread workers, no tuning).
    cache_size:
        Capacity of the plan LRU (distinct (matrix, config) pairs kept
        prepared).
    tuner:
        A pre-configured :class:`~repro.tuner.Tuner`; implies tuning and
        overrides ``tuning_cache``.  Lets callers control the search
        budget and candidate space.
    tuning_cache:
        Path (or :class:`~repro.tuner.TuningCache`) of the persistent
        tuning cache; ``None`` selects the default on-disk location.
        Engines pointing at the same path share search results -- also
        across processes.  Passing ``tuning_cache`` (like ``tuner``)
        implies tuning.
    max_workers, tune, latency_window:
        **Deprecated** spellings of the matching
        :class:`~repro.core.policy.ExecutionPolicy` fields; passing any
        of them (without ``policy=``) builds the equivalent policy and
        emits one :class:`DeprecationWarning`.
    """

    def __init__(
        self,
        config: Optional[SMaTConfig] = None,
        *,
        policy: Optional[ExecutionPolicy] = None,
        cache_size: int = 8,
        tuner=None,
        tuning_cache=None,
        max_workers: Optional[int] = None,
        tune: Optional[bool] = None,
        latency_window: Optional[int] = None,
    ):
        policy = policy_from_legacy(
            policy,
            where="SpMMEngine",
            max_workers=max_workers,
            tune=tune,
            latency_window=latency_window,
        )
        self.config = (config or SMaTConfig()).validate()
        self.policy = policy
        self.max_workers = int(policy.max_workers)
        tune_flag = policy.tune
        if tuner is not None or tuning_cache is not None:
            tune_flag = True
        if tune_flag and tuner is None:
            from ..tuner import Tuner

            tuner = Tuner(cache=tuning_cache)
        self.tuner = tuner
        #: the engine's tracer, built from ``policy.obs`` (no-op unless the
        #: policy enables tracing); shared with the tuner and shard executor
        self.tracer = Tracer.from_config(policy.obs)
        if tuner is not None and getattr(tuner, "tracer", None) is not None:
            if self.tracer.enabled and not tuner.tracer.enabled:
                tuner.tracer = self.tracer
        #: unified metrics: the per-item latency histogram lives here (the
        #: serving daemon renders this registry under ``?format=prometheus``)
        self.metrics = MetricsRegistry()
        self._latency = self.metrics.histogram(
            "repro_engine_item_wall_ms",
            "Wall time of one engine item (plan fetch + execute), ms",
            window=int(policy.latency_window),
        )
        self._cache = PlanCache(cache_size)
        #: online self-correcting tuner (``None`` unless the policy -- or
        #: ``$REPRO_ONLINE_TUNE`` -- enables it): drift tracking and
        #: background re-tunes off the serving path.  Without a tuner it
        #: runs passively (telemetry only, never overrides plans).
        self._online: Optional["OnlineTuner"] = None
        online_cfg = policy.resolved_online_tune()
        if online_cfg is not None:
            from ..tuner.online import OnlineTuner

            self._online = OnlineTuner(
                online_cfg,
                tuner=self.tuner,
                plan_cache=self._cache,
                metrics=self.metrics,
                tracer=self.tracer,
            )
        self._executor: Optional[ThreadPoolExecutor] = None
        self._sharder: Optional[ShardExecutor] = None
        self._tickets: Dict[int, "Future[BatchResult]"] = {}
        self._ticket_lock = threading.Lock()
        self._next_ticket = 0
        self._closed = False

    # -- plan management ------------------------------------------------------
    def plan_for(self, A: CSRMatrix, config: Optional[SMaTConfig] = None) -> ExecutionPlan:
        """Return the prepared plan for ``(A, config)``, building and
        caching it on first use."""
        plan, _, _, _ = self._plan_with_hit(A, config)
        return plan

    def _plan_with_hit(
        self, A: CSRMatrix, config: Optional[SMaTConfig]
    ) -> Tuple[ExecutionPlan, bool, object, SMaTConfig]:
        """Fetch-or-build the plan; returns ``(plan, hit, key, cfg)`` so the
        execution path can hand the cache key to the online tuner."""
        cfg = (config or self.config).validate()
        tuned = self.tuner is not None
        if tuned:
            # key on the *requested* configuration and resolve inside the
            # build factory: the plan cache's per-key build lock then also
            # deduplicates concurrent tuning searches for the same matrix
            key: object = (plan_key(A, cfg), "tuned")
        else:
            key = plan_key(A, cfg)
        with self.tracer.span("plan.lookup", kernel=cfg.kernel) as span:
            plan, hit = self._cache.get_or_build(
                key, lambda: self._build_plan(A, cfg, tuned=tuned)
            )
            span.set(cache_hit=hit)
        return plan, hit, key, cfg

    def _build_plan(self, A: CSRMatrix, cfg: SMaTConfig, *, tuned: bool = False) -> ExecutionPlan:
        """Build one plan via :func:`~repro.core.plan.build_with_fallback`:
        an unsupported backend (cuBLAS densification or Magicube
        preprocessing exceeding device memory) falls back to SMaT with the
        failed backend recorded in the plan's ``PreprocessReport``.  The
        fallback plan is cached under the *requested* key, so the
        unsupported backend is not re-attempted on every query."""
        with self.tracer.span("plan.build", tuned=tuned) as span:
            plan = build_with_fallback(
                A, cfg, tuner=self.tuner if tuned else None, tracer=self.tracer
            )
            span.set(
                backend=plan.report.backend,
                fallback_from=plan.report.fallback_from,
            )
            return plan

    @property
    def plan_cache(self) -> PlanCache:
        """The engine's shared plan cache (used by the sharded subsystem
        to key per-shard plans alongside whole-matrix plans)."""
        return self._cache

    @property
    def cache_stats(self) -> CacheStats:
        """Snapshot of the plan cache's hit/miss/eviction counters."""
        return self._cache.stats

    def clear_cache(self) -> None:
        """Drop every cached plan (forces re-preprocessing)."""
        self._cache.clear()

    # -- single-item execution ------------------------------------------------
    def multiply(
        self,
        A: CSRMatrix,
        B: np.ndarray,
        *,
        config: Optional[SMaTConfig] = None,
        return_report: bool = False,
        keep_permuted: bool = False,
    ):
        """Compute ``C = A @ B`` through the plan cache.

        Drop-in equivalent of :meth:`repro.core.smat.SMaT.multiply`, but
        the prepared state is shared with every other call that uses the
        same matrix and configuration.  With a ``sharded`` policy the
        call routes through :meth:`multiply_sharded` (the report, when
        requested, is then a :class:`~repro.shard.ShardedReport`;
        ``keep_permuted`` does not apply to the gathered result).
        """
        self._require_open()
        if self.policy.sharded:
            return self.multiply_sharded(A, B, config=config, return_report=return_report)
        with self.tracer.span("engine.multiply") as span:
            plan, hit, _, _ = self._plan_with_hit(A, config)
            C, report = plan.execute(B, keep_permuted=keep_permuted)
            span.set(cache_hit=hit, backend=report.backend)
        if not return_report:
            return C
        return C, report

    def _execute_item(self, index: int, item: BatchItem, parent=None) -> BatchResult:
        """Run one batch item, recording its latency and (when tracing) an
        ``engine.execute`` span.  ``parent`` carries the submitting
        thread's span context when the item runs on a pool thread."""
        online = self._online
        with self.tracer.span("engine.execute", parent=parent, index=index) as span:
            start = time.perf_counter()
            plan, hit, key, cfg = self._plan_with_hit(item.A, item.config)
            explored_cfg = None
            if online is not None and self.tuner is not None:
                explored_cfg = online.maybe_explore(key)
                if explored_cfg is not None:
                    plan, hit = self._explored_plan(item.A, explored_cfg)
                    span.set(explored=True)
            C, report = plan.execute(item.B, keep_permuted=item.keep_permuted)
            wall_ms = 1e3 * (time.perf_counter() - start)
            span.set(cache_hit=hit, backend=report.backend, wall_ms=round(wall_ms, 3))
        self._latency.observe(wall_ms)
        if online is not None:
            B = item.B
            n_cols = B.shape[1] if getattr(B, "ndim", 1) == 2 else 1
            online.record(key, item.A, cfg, plan, report, wall_ms, n_cols, explored_cfg)
        return BatchResult(
            index=index, tag=item.tag, C=C, report=report, cache_hit=hit, wall_ms=wall_ms
        )

    def _explored_plan(
        self, A: CSRMatrix, cfg: SMaTConfig
    ) -> Tuple[ExecutionPlan, bool]:
        """Plan for an online-exploration candidate, cached under its own
        key (the tuned incumbent's entry is left untouched)."""
        key = (plan_key(A, cfg), "online-explore")
        with self.tracer.span("plan.lookup", kernel=cfg.kernel) as span:
            plan, hit = self._cache.get_or_build(
                key, lambda: self._build_plan(A, cfg, tuned=False)
            )
            span.set(cache_hit=hit)
        return plan, hit

    def execute_one(
        self,
        A: CSRMatrix,
        B: np.ndarray,
        *,
        tag: Optional[object] = None,
        config: Optional[SMaTConfig] = None,
        keep_permuted: bool = False,
    ) -> BatchResult:
        """Execute one multiply synchronously and return the full
        :class:`BatchResult` (cache-hit flag + wall time included).

        Like :meth:`multiply`, but with the per-item bookkeeping a
        serving front end needs -- the HTTP daemon
        (:mod:`repro.serve`) reports ``cache_hit`` and ``wall_ms`` per
        request from this.
        """
        self._require_open()
        return self._execute_item(
            0, BatchItem(A, B, tag=tag, config=config, keep_permuted=keep_permuted)
        )

    # -- batched execution ----------------------------------------------------
    @staticmethod
    def _as_item(work: WorkItem) -> BatchItem:
        if isinstance(work, BatchItem):
            return work
        A, B = work
        return BatchItem(A, B)

    def multiply_batch(self, work: Sequence[WorkItem]) -> BatchOutcome:
        """Execute a batch of independent SpMM problems through the thread
        pool and return per-item results (in submission order) plus an
        aggregate :class:`BatchSummary`.

        Each element of ``work`` is a :class:`BatchItem` or a plain
        ``(A, B)`` tuple.  Items may mix matrices and configurations
        freely; plans are fetched from (or built into) the shared cache.
        """
        self._require_open()
        items = [self._as_item(w) for w in work]
        start = time.perf_counter()
        with self.tracer.span("engine.multiply_batch", n_items=len(items)):
            if len(items) <= 1 or self.max_workers == 1:
                results = [self._execute_item(i, item) for i, item in enumerate(items)]
            else:
                # pool threads have their own (empty) span stacks: hand them
                # the submitting thread's context so item spans stay linked
                parent = self.tracer.current_context()
                executor = self._ensure_executor()
                futures = [
                    executor.submit(self._execute_item, i, item, parent)
                    for i, item in enumerate(items)
                ]
                results = [f.result() for f in futures]
        wall_ms = 1e3 * (time.perf_counter() - start)
        return BatchOutcome(results=results, summary=self._summarise(results, wall_ms))

    def multiply_many(
        self,
        A: CSRMatrix,
        Bs: Sequence[np.ndarray],
        *,
        config: Optional[SMaTConfig] = None,
    ) -> BatchOutcome:
        """Multiply one matrix by many operands (the serving hot path:
        one preprocessing pass amortised over the whole batch)."""
        return self.multiply_batch(
            [BatchItem(A, B, tag=i, config=config) for i, B in enumerate(Bs)]
        )

    def _summarise(self, results: Sequence[BatchResult], wall_ms: float) -> BatchSummary:
        return BatchSummary(
            n_items=len(results),
            wall_ms=wall_ms,
            simulated_ms=sum(r.report.simulated_ms for r in results),
            useful_flops=sum(r.report.useful_flops for r in results),
            cache=self._cache.stats,
        )

    # -- sharded execution ----------------------------------------------------
    def partition_for(
        self,
        A: CSRMatrix,
        grid,
        *,
        mode: str = "nnz",
        config: Optional[SMaTConfig] = None,
        n_cols: int = 8,
    ):
        """Return the (cached) :class:`~repro.shard.Partition` of ``A``
        for the given grid and balancing mode.

        Partitions live in the plan cache next to the plans built from
        them, so repeated sharded queries skip the O(nnz) panel
        extraction as well as preprocessing.  The cache is grown (never
        shrunk) to hold the partition plus every shard plan at once --
        an undersized LRU would otherwise silently rebuild shards on
        every call.
        """
        from ..core.plan import matrix_fingerprint
        from ..shard.partition import make_partition, parse_grid

        self._require_open()
        cfg = (config or self.config).validate()
        g = parse_grid(grid)
        self._cache.reserve(g[0] * g[1] + 2)
        # n_cols only affects the cost-mode weight scale (the split bounds
        # are invariant to it), so nnz-mode partitions stay shared across
        # operand widths
        key = (
            "shard-partition",
            matrix_fingerprint(A),
            g,
            mode,
            cfg.resolved_block_shape(),
            n_cols if mode == "cost" else None,
        )
        def _build_partition():
            with self.tracer.span("shard.partition", grid=str(g), mode=mode) as span:
                partition = make_partition(A, g, mode=mode, config=cfg, n_cols=n_cols)
                span.set(n_shards=len(partition.shards))
                return partition

        partition, _ = self._cache.get_or_build(key, _build_partition)
        return partition

    @property
    def shard_executor(self) -> ShardExecutor:
        """The policy-selected :class:`~repro.engine.executors.ShardExecutor`
        (created lazily on the first sharded call: the process pool is
        only paid for when sharded work actually runs)."""
        self._require_open()
        if self._sharder is None:
            self._sharder = make_shard_executor(
                self.policy.resolved_executor(),
                cache=self._cache,
                tuner=self.tuner,
                pool_provider=self._pool_for,
                max_workers=self.max_workers,
                tracer=self.tracer,
            )
        return self._sharder

    def shard_plans_for(self, partition, config: Optional[SMaTConfig] = None):
        """One :class:`~repro.shard.ShardPlanEntry` per shard, prepared by
        the policy's shard executor: through the engine's plan cache on
        the thread executor, in per-worker caches on the process
        executor.  Per-shard tuning applies when the engine tunes."""
        self._require_open()
        cfg = (config or self.config).validate()
        with self.tracer.span("shard.prepare", n_shards=len(partition.shards)):
            return self.shard_executor.prepare(partition, cfg)

    def execute_sharded(self, partition, entries, B: np.ndarray):
        """Scatter-gather one sharded multiply on the policy's shard
        executor; returns ``(C, ShardedReport)``."""
        self._require_open()
        with self.tracer.span("shard.execute", n_shards=len(partition.shards)) as span:
            C, report = self.shard_executor.execute(partition, entries, B)
            span.set(wall_ms=round(report.wall_ms, 3))
            return C, report

    def multiply_sharded(
        self,
        A: CSRMatrix,
        B: np.ndarray,
        *,
        grid=None,
        mode: Optional[str] = None,
        config: Optional[SMaTConfig] = None,
        return_report: bool = False,
    ):
        """Compute ``C = A @ B`` through the sharded subsystem.

        ``A`` is split into a balanced shard grid
        (:mod:`repro.shard.partition`), every shard gets its own cached
        (and, when tuning, per-shard tuned) plan, and the shard runs are
        scatter-gathered on the policy's executor -- the engine's thread
        pool, or the shared-memory process pool.  ``grid`` and ``mode``
        default to the policy's ``grid`` / ``shard_mode``.  With
        ``return_report`` the per-shard breakdown
        (:class:`~repro.shard.ShardedReport`) is returned alongside ``C``.
        """
        self._require_open()
        grid = grid if grid is not None else self.policy.grid
        mode = mode if mode is not None else self.policy.shard_mode
        cfg = (config or self.config).validate()
        B_arr = np.asarray(B)
        n_cols = B_arr.shape[1] if B_arr.ndim == 2 else 1
        with self.tracer.span(
            "engine.multiply_sharded",
            grid=str(grid),
            mode=mode,
            executor=self.policy.resolved_executor(),
        ):
            partition = self.partition_for(A, grid, mode=mode, config=cfg, n_cols=n_cols)
            entries = self.shard_plans_for(partition, cfg)
            C, report = self.execute_sharded(partition, entries, B)
        if not return_report:
            return C
        return C, report

    def _pool_for(self, n_tasks: int) -> Optional[ThreadPoolExecutor]:
        """The worker pool, or ``None`` when concurrency cannot help."""
        if self.max_workers <= 1 or n_tasks <= 1:
            return None
        return self._ensure_executor()

    # -- async queue API ------------------------------------------------------
    def submit(
        self,
        A: CSRMatrix,
        B: np.ndarray,
        *,
        tag: Optional[object] = None,
        config: Optional[SMaTConfig] = None,
    ) -> int:
        """Enqueue one multiply and return a ticket immediately.

        The work starts on the thread pool right away; collect the
        :class:`BatchResult` with :meth:`result`.
        """
        executor = self._ensure_executor()
        item = BatchItem(A, B, tag=tag, config=config)
        parent = self.tracer.current_context()
        with self._ticket_lock:
            ticket = self._next_ticket
            self._next_ticket += 1
            self._tickets[ticket] = executor.submit(
                self._execute_item, ticket, item, parent
            )
        return ticket

    def result(self, ticket: int, timeout: Optional[float] = None) -> BatchResult:
        """Wait for (and consume) the result of a :meth:`submit` ticket."""
        with self._ticket_lock:
            future = self._tickets.pop(ticket, None)
        if future is None:
            raise KeyError(f"unknown or already-collected ticket {ticket!r}")
        try:
            return future.result(timeout=timeout)
        except FuturesTimeoutError:
            with self._ticket_lock:
                self._tickets[ticket] = future  # still pending: allow a retry
            raise

    def pending(self) -> int:
        """Number of submitted tickets not yet collected."""
        with self._ticket_lock:
            return len(self._tickets)

    def queue_depth(self) -> int:
        """Number of submitted tickets whose work has not finished yet
        (the async backlog; collected-or-not does not matter)."""
        with self._ticket_lock:
            return sum(1 for f in self._tickets.values() if not f.done())

    def telemetry(self) -> EngineTelemetry:
        """Operational snapshot: items completed, async queue depth,
        latency percentiles over the recent-latency window, and the
        shard-executor counters (zeros until the first sharded call)."""
        completed = self._latency.count
        if completed:
            mean_ms = self._latency.mean()
            p50_ms = self._latency.percentile(50)
            p99_ms = self._latency.percentile(99)
        else:
            mean_ms = p50_ms = p99_ms = 0.0
        if self._sharder is not None:
            executor_stats = self._sharder.telemetry()
        else:  # not yet created: an all-zeros stub for the policy's kind
            executor_stats = ExecutorTelemetry(
                kind=self.policy.resolved_executor(), workers=self.max_workers
            )
        return EngineTelemetry(
            completed=completed,
            queue_depth=self.queue_depth(),
            mean_ms=mean_ms,
            p50_ms=p50_ms,
            p99_ms=p99_ms,
            executor=executor_stats,
            online=self._online.telemetry() if self._online is not None else None,
        )

    @property
    def online_tuner(self) -> Optional["OnlineTuner"]:
        """The policy-gated :class:`~repro.tuner.online.OnlineTuner`, or
        ``None`` when online tuning is disabled (the provable-no-op
        default: the execution path then performs two ``is None`` checks
        and nothing else)."""
        return self._online

    # -- streaming ------------------------------------------------------------
    def stream(
        self,
        A: CSRMatrix,
        Bs: Iterable[np.ndarray],
        *,
        config: Optional[SMaTConfig] = None,
        window: Optional[int] = None,
    ) -> Iterator[BatchResult]:
        """Pipeline a (possibly unbounded) sequence of operands through the
        engine, yielding results in input order.

        At most ``window`` items (default ``2 * max_workers``) are in
        flight at once, so arbitrarily long operand streams run in
        constant memory.
        """
        executor = self._ensure_executor()
        window = window if window is not None else 2 * self.max_workers
        if window < 1:
            raise ValueError("stream window must be >= 1")
        in_flight: "deque[Future[BatchResult]]" = deque()
        iterator = enumerate(Bs)
        parent = self.tracer.current_context()
        try:
            for index, B in iterator:
                item = BatchItem(A, B, tag=index, config=config)
                in_flight.append(executor.submit(self._execute_item, index, item, parent))
                if len(in_flight) >= window:
                    yield in_flight.popleft().result()
            while in_flight:
                yield in_flight.popleft().result()
        finally:
            for future in in_flight:
                future.cancel()

    # -- lifecycle ------------------------------------------------------------
    def _require_open(self) -> None:
        if self._closed:
            raise RuntimeError("SpMMEngine is closed")

    def _ensure_executor(self) -> ThreadPoolExecutor:
        self._require_open()
        if self._executor is None:
            self._executor = ThreadPoolExecutor(
                max_workers=self.max_workers, thread_name_prefix="spmm-engine"
            )
        return self._executor

    def close(self) -> None:
        """Shut down the worker pool and the shard executor (idempotent).
        Cached plans survive until the engine is garbage collected; the
        process executor's shared-memory segments are unlinked here."""
        self._closed = True
        if self._online is not None:
            self._online.close()
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        if self._sharder is not None:
            self._sharder.close()
            self._sharder = None

    def __enter__(self) -> "SpMMEngine":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        s = self._cache.stats
        return (
            f"<SpMMEngine workers={self.max_workers} cache={s.size}/{s.maxsize} "
            f"hits={s.hits} misses={s.misses}>"
        )
