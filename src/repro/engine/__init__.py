"""Serving layer: batched SpMM execution with plan caching.

The paper amortises one expensive preprocessing pass over many SpMM
executions; this package turns that amortisation into a service.
:class:`SpMMEngine` fingerprints input matrices, caches their prepared
:class:`~repro.core.plan.ExecutionPlan` in a bounded LRU
(:class:`PlanCache`), executes batches of independent multiplies on a
thread pool, and offers an async ``submit()``/``result()`` queue plus a
streaming iterator for long operand sequences.

Quick start
-----------
>>> import numpy as np
>>> from repro.engine import SpMMEngine
>>> from repro.matrices import band_matrix
>>> A = band_matrix(512, 16)
>>> from repro.engine import ExecutionPolicy
>>> engine = SpMMEngine(cache_size=8, policy=ExecutionPolicy(max_workers=4))
>>> Bs = [np.ones((512, 8), dtype=np.float32) for _ in range(8)]
>>> outcome = engine.multiply_many(A, Bs)   # one preprocess, 8 executions
>>> outcome.summary.cache.hits
7
"""

from ..core.policy import ExecutionPolicy, OnlineTuningConfig
from .cache import CacheStats, PlanCache
from .executors import ExecutorTelemetry, ProcessShardExecutor, ShardExecutor, ThreadShardExecutor
from .engine import (
    BatchItem,
    BatchOutcome,
    BatchResult,
    BatchSummary,
    EngineTelemetry,
    SpMMEngine,
)

__all__ = [
    "SpMMEngine",
    "ExecutionPolicy",
    "OnlineTuningConfig",
    "ShardExecutor",
    "ThreadShardExecutor",
    "ProcessShardExecutor",
    "ExecutorTelemetry",
    "BatchItem",
    "BatchResult",
    "BatchSummary",
    "BatchOutcome",
    "EngineTelemetry",
    "PlanCache",
    "CacheStats",
]
