"""Pytest configuration.

Adds ``src/`` to ``sys.path`` so the test and benchmark suites run even
when the package has not been installed (useful in offline environments
where ``pip install -e .`` cannot build an editable wheel; see README
"Installation"), and runs the deterministic-seed audit
(:mod:`repro.analysis.seedcheck`) over ``tests/`` and ``benchmarks/``
after collection: any unseeded ``default_rng()`` / ``random.Random()``
in test code fails the session before a single test runs.
"""

import sys
from pathlib import Path

_ROOT = Path(__file__).resolve().parent
_SRC = _ROOT / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))


def pytest_collection_finish(session):
    """Fail the run on unseeded RNG construction in tests/ or benchmarks/."""
    from repro.analysis.seedcheck import audit_paths

    violations = audit_paths([_ROOT / "tests", _ROOT / "benchmarks"])
    if violations:
        lines = "\n".join(f"  {v}" for v in violations)
        raise RuntimeError(
            "deterministic-seed audit failed: every RNG in test code needs "
            f"an explicit seed (or a '# seedcheck: allow' comment):\n{lines}"
        )
