"""Pytest configuration.

Adds ``src/`` to ``sys.path`` so the test and benchmark suites run even
when the package has not been installed (useful in offline environments
where ``pip install -e .`` cannot build an editable wheel; see README
"Installation").
"""

import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))
