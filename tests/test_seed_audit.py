"""Tests for the deterministic-seed audit (repro.analysis.seedcheck)."""

from pathlib import Path

from repro.analysis.seedcheck import audit_paths, audit_source

ROOT = Path(__file__).resolve().parent.parent


def _calls(source):
    return [v.call for v in audit_source(source)]


class TestAuditSource:
    def test_flags_bare_default_rng(self):
        assert _calls("rng = default_rng()") == ["default_rng()"]

    def test_flags_qualified_default_rng(self):
        assert len(_calls("import numpy as np\nrng = np.random.default_rng()")) == 1

    def test_flags_none_seed(self):
        assert len(_calls("rng = default_rng(None)")) == 1
        assert len(_calls("rng = default_rng(seed=None)")) == 1

    def test_flags_stdlib_random(self):
        assert len(_calls("import random\nr = random.Random()")) == 1
        assert len(_calls("from random import Random\nr = Random()")) == 1

    def test_flags_unseeded_reseed(self):
        assert len(_calls("import numpy as np\nnp.random.seed()")) == 1

    def test_accepts_explicit_seeds(self):
        clean = "\n".join(
            [
                "import random",
                "import numpy as np",
                "a = np.random.default_rng(1234)",
                "b = np.random.default_rng(seed=7)",
                "c = random.Random(42)",
                "np.random.seed(0)",
            ]
        )
        assert _calls(clean) == []

    def test_accepts_variable_seed(self):
        assert _calls("rng = default_rng(seed_value)") == []

    def test_allow_marker_exempts_line(self):
        src = "rng = default_rng()  # seedcheck: allow"
        assert _calls(src) == []

    def test_unrelated_calls_ignored(self):
        assert _calls("x = foo()\ny = bar(None)\nobj.seed(5)") == []

    def test_violation_reports_location(self):
        out = audit_source("x = 1\nrng = default_rng()\n", path="mod.py")
        assert len(out) == 1
        assert out[0].path == "mod.py"
        assert out[0].line == 2
        assert "mod.py:2" in str(out[0])

    def test_syntax_error_is_not_a_violation(self):
        assert audit_source("def broken(:\n") == []


class TestAuditPaths:
    def test_walks_directories(self, tmp_path):
        (tmp_path / "ok.py").write_text("rng = default_rng(3)\n")
        sub = tmp_path / "sub"
        sub.mkdir()
        (sub / "bad.py").write_text("rng = default_rng()\n")
        out = audit_paths([tmp_path])
        assert [Path(v.path).name for v in out] == ["bad.py"]

    def test_accepts_single_file(self, tmp_path):
        f = tmp_path / "one.py"
        f.write_text("import random\nr = random.Random()\n")
        assert len(audit_paths([f])) == 1

    def test_skips_non_python(self, tmp_path):
        (tmp_path / "notes.txt").write_text("default_rng()")
        assert audit_paths([tmp_path / "notes.txt"]) == []


def test_repo_test_suites_are_seeded():
    """The enforced invariant itself: tests/ and benchmarks/ are clean."""
    violations = audit_paths([ROOT / "tests", ROOT / "benchmarks"])
    assert violations == [], "\n".join(str(v) for v in violations)
