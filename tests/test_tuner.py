"""Tests for the auto-tuning subsystem (tuner.space / model / cache /
search) and its wiring into the plan builder and the engine."""

import json

import numpy as np
import pytest

from repro import SMaT, SMaTConfig
from repro.core.plan import ExecutionPlan
from repro.engine import SpMMEngine
from repro.matrices import hidden_cluster_matrix
from repro.tuner import (
    Candidate,
    Tuner,
    TuningCache,
    block_shape_menu,
    candidate_space,
    calibrate,
    estimate_candidate,
    tune,
)


@pytest.fixture
def clustered(rng):
    return hidden_cluster_matrix(
        384,
        384,
        cluster_size=16,
        segments_per_cluster=6,
        segment_width=8,
        row_fill=0.85,
        shuffle=True,
        rng=rng,
    )


@pytest.fixture
def B(clustered, rng):
    return rng.normal(size=(clustered.ncols, 8)).astype(np.float32)


class TestCandidateSpace:
    def test_menu_contains_mma_default(self):
        assert (16, 8) in block_shape_menu("fp16")
        assert block_shape_menu("fp16")[0] == (16, 8)  # default first
        assert (8, 8) in block_shape_menu("fp64")

    def test_space_contains_paper_default(self):
        space = candidate_space(SMaTConfig())
        assert Candidate(block_shape=(16, 8), reorder="jaccard") in space

    def test_space_covers_shapes_x_reorderers(self):
        space = candidate_space(
            SMaTConfig(), block_shapes=[(16, 8), (8, 8)], reorderers=["jaccard", "identity"]
        )
        labels = {c.label for c in space}
        assert labels == {"16x8/jaccard", "16x8/identity", "8x8/jaccard", "8x8/identity"}

    def test_column_permutation_knob(self):
        space = candidate_space(SMaTConfig(), include_column_permutation=True)
        assert any(c.reorder_columns for c in space)
        # the identity never gets a column variant (nothing to permute for)
        assert not any(c.reorder_columns and c.reorder == "identity" for c in space)

    def test_candidate_expand_inherits_base(self):
        base = SMaTConfig(precision="fp16", variant="BT")
        cfg = Candidate(block_shape=(8, 8), reorder="rcm").expand(base)
        assert cfg.block_shape == (8, 8)
        assert cfg.reorder == "rcm"
        assert cfg.variant == "BT"

    def test_empty_space_rejected(self):
        with pytest.raises(ValueError):
            candidate_space(SMaTConfig(), reorderers=[])
        with pytest.raises(ValueError):
            candidate_space(SMaTConfig(), block_shapes=[])


class TestAnalyticalModel:
    def test_calibration_fits_linear_model(self):
        fit = calibrate(SMaTConfig(), (16, 8), n_cols=8)
        assert fit.t_e > 0
        assert fit.t_init >= 0
        assert fit.n_samples >= 2

    def test_calibration_memoised(self):
        first = calibrate(SMaTConfig(), (16, 8), n_cols=8)
        second = calibrate(SMaTConfig(), (16, 8), n_cols=8)
        assert first is second

    def test_estimate_brackets_time(self, clustered):
        est = estimate_candidate(
            clustered, SMaTConfig(), (16, 8), reorders=True, n_cols=8
        )
        assert 0 < est.blocks_lower_bound <= est.blocks_now
        assert 0 < est.optimistic_s <= est.guaranteed_s

    def test_identity_estimate_has_no_bracket(self, clustered):
        est = estimate_candidate(
            clustered, SMaTConfig(), (16, 8), reorders=False, n_cols=8
        )
        assert est.blocks_lower_bound == est.blocks_now
        assert est.optimistic_s == est.guaranteed_s


class TestTuningCache:
    def test_roundtrip(self, tmp_path):
        cache = TuningCache(tmp_path / "t.json")
        assert cache.get("k") is None
        cache.put("k", {"reorder": "jaccard"})
        assert cache.get("k") == {"reorder": "jaccard"}
        assert len(cache) == 1

    def test_persists_across_instances(self, tmp_path):
        path = tmp_path / "t.json"
        TuningCache(path).put("k", {"x": 1})
        assert TuningCache(path).get("k") == {"x": 1}

    def test_merges_concurrent_writers(self, tmp_path):
        path = tmp_path / "t.json"
        a, b = TuningCache(path), TuningCache(path)
        a.put("ka", {"x": 1})
        b.put("kb", {"x": 2})
        assert a.get("ka") == {"x": 1}
        assert a.get("kb") == {"x": 2}

    def test_corrupt_file_treated_as_empty(self, tmp_path):
        path = tmp_path / "t.json"
        path.write_text("{not json")
        cache = TuningCache(path)
        assert cache.get("k") is None
        cache.put("k", {"x": 1})  # and it recovers by rewriting
        assert cache.get("k") == {"x": 1}

    def test_clear_and_stats(self, tmp_path):
        cache = TuningCache(tmp_path / "t.json")
        cache.put("k", {})
        cache.get("k")
        cache.get("missing")
        stats = cache.stats
        assert stats.hits == 1 and stats.misses == 1 and stats.stores == 1
        cache.clear()
        assert len(cache) == 0


class TestSearch:
    def test_winner_never_loses_to_default(self, clustered):
        result = tune(clustered)
        assert result.best is not None and result.default is not None
        assert result.default.measured, "the default configuration must be measured"
        assert result.best.simulated_ms <= result.default.simulated_ms
        assert result.tuned_vs_default >= 1.0

    def test_pruning_shrinks_measured_set(self, clustered):
        result = tune(clustered, max_measure=4)
        assert result.n_measured <= 4
        assert result.n_measured < len(result.outcomes)
        assert result.n_pruned > 0

    def test_winning_config_builds_correct_plan(self, clustered, B):
        result = tune(clustered)
        plan = ExecutionPlan.build(clustered, result.best_config)
        C, _ = plan.execute(B)
        np.testing.assert_allclose(C, clustered.spmm(B), rtol=1e-2, atol=1e-2)

    def test_table_marks_single_winner(self, clustered):
        rows = tune(clustered).table()
        assert sum(1 for r in rows if r["winner"] == "*") == 1
        assert {"candidate", "predicted_ms", "measured_ms", "status"} <= set(rows[0])

    def test_resolve_searches_once(self, clustered, tmp_path, monkeypatch):
        tuner = Tuner(cache=TuningCache(tmp_path / "t.json"))
        first = tuner.resolve(clustered, SMaTConfig())

        def boom(*a, **k):
            raise AssertionError("resolve() must not re-search on a cache hit")

        monkeypatch.setattr(Tuner, "tune", boom)
        second = tuner.resolve(clustered, SMaTConfig())
        assert second == first

    def test_custom_budget_and_space_validated(self):
        with pytest.raises(ValueError):
            Tuner(cache=False, max_measure=0)
        with pytest.raises(ValueError):
            Tuner(cache=False, repeats=0)


class TestAutoConfig:
    def test_reorder_auto_resolves_through_tuner(self, clustered, B, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TUNING_CACHE", str(tmp_path / "auto.json"))
        smat = SMaT(clustered, SMaTConfig(reorder="auto"))
        assert smat.plan.config.reorder not in ("auto", "")
        np.testing.assert_allclose(
            smat.multiply(B), clustered.spmm(B), rtol=1e-2, atol=1e-2
        )
        # the search was persisted for the next process
        entries = json.loads((tmp_path / "auto.json").read_text())["entries"]
        assert len(entries) == 1


class TestEngineTuning:
    def test_tuning_cache_implies_tune_and_results_stay_correct(
        self, clustered, B, tmp_path
    ):
        path = tmp_path / "t.json"
        with SpMMEngine(tuning_cache=path) as engine:
            assert engine.tuner is not None  # tuning_cache alone enables tuning
            C = engine.multiply(clustered, B)
        np.testing.assert_allclose(C, clustered.spmm(B), rtol=1e-2, atol=1e-2)
        assert len(TuningCache(path)) == 1  # the search was persisted

    def test_tuning_cache_reused_across_engine_instances(
        self, clustered, B, tmp_path, monkeypatch
    ):
        path = tmp_path / "shared.json"
        with SpMMEngine(tune=True, tuning_cache=path) as first:
            first.multiply(clustered, B)
        assert len(TuningCache(path)) == 1

        # a fresh engine (fresh plan cache) must reuse the persisted tuning
        # result instead of searching again
        def boom(*a, **k):
            raise AssertionError("second engine must not re-tune")

        monkeypatch.setattr(Tuner, "tune", boom)
        with SpMMEngine(tune=True, tuning_cache=path) as second:
            C = second.multiply(clustered, B)
        np.testing.assert_allclose(C, clustered.spmm(B), rtol=1e-2, atol=1e-2)

    def test_repeat_queries_resolve_once(self, clustered, B, tmp_path):
        with SpMMEngine(tune=True, tuning_cache=tmp_path / "t.json") as engine:
            outcome = engine.multiply_many(clustered, [B] * 4)
        assert outcome.summary.cache.misses == 1  # one tuned plan build
        assert outcome.summary.cache.hits == 3

    def test_engine_without_tune_has_no_tuner(self):
        with SpMMEngine() as engine:
            assert engine.tuner is None
