"""Unit tests for the SR-BCRS format (Magicube's format)."""

import numpy as np
import pytest

from repro.formats import CSRMatrix, SRBCRSMatrix
from repro.matrices import uniform_random


class TestConversion:
    def test_roundtrip_to_dense(self, small_dense):
        sr = SRBCRSMatrix.from_csr(
            CSRMatrix.from_dense(small_dense), vector_length=8, stride=4
        )
        np.testing.assert_allclose(sr.to_dense(), small_dense)

    def test_roundtrip_to_csr(self, small_csr):
        sr = SRBCRSMatrix.from_csr(small_csr, vector_length=4, stride=2)
        np.testing.assert_allclose(sr.to_csr().to_dense(), small_csr.to_dense())

    def test_empty_matrix(self):
        sr = SRBCRSMatrix.from_csr(CSRMatrix.empty((16, 16)))
        assert sr.n_vectors == 0
        assert sr.nnz == 0

    def test_nnz_excludes_padding(self, small_csr):
        sr = SRBCRSMatrix.from_csr(small_csr, vector_length=8, stride=4)
        assert sr.nnz == small_csr.nnz

    def test_invalid_parameters(self, small_csr):
        with pytest.raises(ValueError):
            SRBCRSMatrix.from_csr(small_csr, vector_length=0, stride=4)


class TestStridePadding:
    def test_vector_count_multiple_of_stride(self, medium_random):
        sr = SRBCRSMatrix.from_csr(medium_random, vector_length=8, stride=4)
        per_panel = sr.vectors_per_panel()
        nonzero_panels = per_panel[per_panel > 0]
        assert np.all(nonzero_panels % 4 == 0)

    def test_padding_vectors_have_no_column(self, medium_random):
        sr = SRBCRSMatrix.from_csr(medium_random, vector_length=8, stride=4)
        assert sr.n_padding_vectors == int(np.count_nonzero(sr.vec_col < 0))
        # padding vectors must be all-zero
        pad_mask = sr.vec_col < 0
        if pad_mask.any():
            assert not sr.vectors[pad_mask].any()

    def test_stride_one_adds_no_padding(self, medium_random):
        sr = SRBCRSMatrix.from_csr(medium_random, vector_length=8, stride=1)
        assert sr.n_padding_vectors == 0

    def test_larger_stride_never_decreases_storage(self, medium_random):
        small = SRBCRSMatrix.from_csr(medium_random, vector_length=8, stride=1)
        large = SRBCRSMatrix.from_csr(medium_random, vector_length=8, stride=8)
        assert large.stored_values >= small.stored_values

    def test_stored_values_accounting(self, medium_random):
        sr = SRBCRSMatrix.from_csr(medium_random, vector_length=8, stride=4)
        assert sr.stored_values == sr.n_vectors * 8
        assert sr.stored_values >= sr.nnz

    def test_memory_footprint_exceeds_csr(self, rng):
        # the footprint blow-up is the mechanism behind Magicube's OOM
        csr = uniform_random(256, 256, density=0.005, rng=rng)
        sr = SRBCRSMatrix.from_csr(csr, vector_length=8, stride=4)
        assert sr.memory_footprint_bytes() > csr.memory_footprint_bytes()


class TestSpMM:
    def test_spmm_matches_reference(self, small_csr, rng):
        sr = SRBCRSMatrix.from_csr(small_csr, vector_length=8, stride=4)
        B = rng.normal(size=(small_csr.ncols, 5)).astype(np.float32)
        np.testing.assert_allclose(sr.spmm(B), small_csr.spmm(B), rtol=1e-4, atol=1e-4)

    def test_spmm_various_vector_lengths(self, small_csr, rng):
        B = rng.normal(size=(small_csr.ncols, 3)).astype(np.float32)
        ref = small_csr.spmm(B)
        for v, s in [(2, 2), (4, 8), (16, 4)]:
            sr = SRBCRSMatrix.from_csr(small_csr, vector_length=v, stride=s)
            np.testing.assert_allclose(sr.spmm(B), ref, rtol=1e-4, atol=1e-4)

    def test_spmv(self, small_csr, rng):
        sr = SRBCRSMatrix.from_csr(small_csr, vector_length=8, stride=4)
        x = rng.normal(size=small_csr.ncols).astype(np.float32)
        np.testing.assert_allclose(sr.spmv(x), small_csr.spmv(x), rtol=1e-4, atol=1e-4)
