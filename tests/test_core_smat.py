"""Tests for the public SMaT pipeline (core.smat / core.config)."""

import numpy as np
import pytest

from repro import SMaT, SMaTConfig
from repro.gpu import V100_SXM2_16GB
from repro.matrices import band_matrix, hidden_cluster_matrix


@pytest.fixture
def clustered(rng):
    return hidden_cluster_matrix(
        384, 384, cluster_size=16, segments_per_cluster=6, segment_width=8,
        row_fill=0.85, shuffle=True, rng=rng,
    )


@pytest.fixture
def B(clustered, rng):
    return rng.normal(size=(clustered.ncols, 8)).astype(np.float32)


class TestConfig:
    def test_defaults_match_paper(self):
        cfg = SMaTConfig()
        assert cfg.precision == "fp16"
        assert cfg.reorder == "jaccard"
        assert cfg.variant == "CBT"
        assert cfg.resolved_block_shape() == (16, 8)
        assert cfg.arch.name.startswith("A100")

    def test_custom_block_shape(self):
        cfg = SMaTConfig(block_shape=(8, 8))
        assert cfg.resolved_block_shape() == (8, 8)

    def test_invalid_block_shape(self):
        with pytest.raises(ValueError):
            SMaTConfig(block_shape=(0, 8)).validate()

    def test_invalid_precision(self):
        with pytest.raises(ValueError):
            SMaTConfig(precision="fp8").validate()

    def test_invalid_reorder_name(self):
        with pytest.raises(ValueError):
            SMaTConfig(reorder="").validate()


class TestPipeline:
    def test_requires_csr_input(self, clustered):
        with pytest.raises(TypeError):
            SMaT(clustered.to_dense())

    def test_correct_result_in_original_order(self, clustered, B):
        smat = SMaT(clustered, SMaTConfig())
        C = smat.multiply(B)
        np.testing.assert_allclose(C, clustered.spmm(B), rtol=1e-3, atol=1e-3)

    def test_correct_with_column_permutation(self, clustered, B):
        smat = SMaT(clustered, SMaTConfig(reorder_columns=True))
        C = smat.multiply(B)
        np.testing.assert_allclose(C, clustered.spmm(B), rtol=1e-3, atol=1e-3)

    def test_correct_without_reordering(self, clustered, B):
        smat = SMaT(clustered, SMaTConfig(reorder="none"))
        C = smat.multiply(B)
        np.testing.assert_allclose(C, clustered.spmm(B), rtol=1e-3, atol=1e-3)

    def test_vector_input(self, clustered, rng):
        smat = SMaT(clustered)
        x = rng.normal(size=clustered.ncols).astype(np.float32)
        y = smat.multiply(x)
        assert y.shape == (clustered.nrows,)
        np.testing.assert_allclose(y, clustered.spmv(x), rtol=1e-3, atol=1e-3)

    def test_keep_permuted_order(self, clustered, B):
        smat = SMaT(clustered)
        C_perm = smat.multiply(B, keep_permuted=True)
        perm = smat.row_permutation
        np.testing.assert_allclose(C_perm, clustered.spmm(B)[perm], rtol=1e-3, atol=1e-3)

    def test_unpermute_restores_original_row_order(self, clustered, B):
        """Regression: the un-permute branch scatters the permuted result
        back via ``C[row_perm] = C_perm`` ("new -> old" semantics); an
        unused ``inverse`` permutation array that used to shadow it was
        removed.  Pin the exact scatter relation on a matrix whose
        permutation is non-trivial."""
        smat = SMaT(clustered)
        perm = smat.row_permutation
        assert not np.array_equal(perm, np.arange(clustered.nrows))
        C = smat.multiply(B)
        C_perm = smat.multiply(B, keep_permuted=True)
        np.testing.assert_array_equal(C[perm], C_perm)
        np.testing.assert_allclose(C, clustered.spmm(B), rtol=1e-3, atol=1e-3)

    def test_report_contents(self, clustered, B):
        smat = SMaT(clustered)
        _, report = smat.multiply(B, return_report=True)
        assert report.gflops > 0
        assert report.simulated_ms > 0
        assert report.n_blocks > 0
        assert report.useful_flops == pytest.approx(2.0 * clustered.nnz * 8)
        assert report.preprocessing is not None

    def test_multiple_multiplications_reuse_preprocessing(self, clustered, B, rng):
        smat = SMaT(clustered)
        first = smat.preprocess_report
        smat.multiply(B)
        B2 = rng.normal(size=(clustered.ncols, 8)).astype(np.float32)
        smat.multiply(B2)
        assert smat.preprocess_report is first  # same object: done once

    def test_lazy_preprocessing(self, clustered, B):
        smat = SMaT(clustered, preprocess=False)
        assert smat._preprocess_report is None
        smat.multiply(B)
        assert smat._preprocess_report is not None


class TestPreprocessing:
    def test_reordering_reduces_blocks_on_clustered_matrix(self, clustered):
        smat = SMaT(clustered, SMaTConfig(reorder="jaccard"))
        report = smat.preprocess_report
        assert report.applied
        assert report.block_reduction > 1.2
        assert report.blocks_after < report.blocks_before

    def test_band_matrix_skips_reordering(self):
        """Section IV-C: band matrices are already optimally ordered; the
        pipeline must fall back to the identity permutation."""
        A = band_matrix(512, 32, rng=np.random.default_rng(0))
        smat = SMaT(A, SMaTConfig(reorder="jaccard", auto_skip_reordering=True))
        report = smat.preprocess_report
        assert not report.applied
        np.testing.assert_array_equal(smat.row_permutation, np.arange(A.nrows))

    def test_auto_skip_can_be_disabled(self):
        A = band_matrix(256, 16, rng=np.random.default_rng(0))
        smat = SMaT(A, SMaTConfig(reorder="jaccard", auto_skip_reordering=False))
        assert smat.preprocess_report.applied

    def test_bcsr_accessor(self, clustered):
        smat = SMaT(clustered)
        bcsr = smat.bcsr
        assert bcsr.n_blocks == smat.preprocess_report.blocks_after

    @pytest.mark.parametrize(
        "algorithm", ["jaccard", "rcm", "saad", "graycode", "hypergraph", "identity"]
    )
    def test_all_reorderers_produce_correct_results(self, clustered, B, algorithm):
        smat = SMaT(clustered, SMaTConfig(reorder=algorithm))
        C = smat.multiply(B)
        np.testing.assert_allclose(C, clustered.spmm(B), rtol=1e-3, atol=1e-3)

    def test_reorder_params_forwarded(self, clustered):
        strict = SMaT(clustered, SMaTConfig(reorder="jaccard", reorder_params={"threshold": 0.0}))
        loose = SMaT(clustered, SMaTConfig(reorder="jaccard", reorder_params={"threshold": 0.9}))
        assert strict.preprocess_report.blocks_after >= loose.preprocess_report.blocks_after * 0.8


class TestAlternativeConfigurations:
    def test_other_architecture(self, clustered, B):
        smat = SMaT(clustered, SMaTConfig(arch=V100_SXM2_16GB))
        C, report = smat.multiply(B, return_report=True)
        np.testing.assert_allclose(C, clustered.spmm(B), rtol=1e-3, atol=1e-3)
        assert report.gflops > 0

    def test_other_precision_block_shape(self, clustered, B):
        smat = SMaT(clustered, SMaTConfig(precision="fp64"))
        assert smat.preprocess_report.block_shape == (8, 8)
        C = smat.multiply(B)
        np.testing.assert_allclose(C, clustered.spmm(B), rtol=1e-3, atol=1e-3)

    def test_variant_selection(self, clustered, B):
        slow = SMaT(clustered, SMaTConfig(variant="naive"))
        fast = SMaT(clustered, SMaTConfig(variant="CBT"))
        _, slow_rep = slow.multiply(B, return_report=True)
        _, fast_rep = fast.multiply(B, return_report=True)
        assert fast_rep.simulated_ms <= slow_rep.simulated_ms
