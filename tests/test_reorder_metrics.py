"""Tests for the blocking metrics used to evaluate reorderings."""

import numpy as np
import pytest

from repro.formats import BCSRMatrix, CSRMatrix
from repro.reorder import blocking_stats, blocks_per_block_row, count_blocks
from repro.reorder.metrics import block_coordinates, block_row_support


class TestCountBlocks:
    def test_matches_bcsr_construction(self, medium_random):
        direct = BCSRMatrix.from_csr(medium_random, (16, 8)).n_blocks
        counted = count_blocks(medium_random, (16, 8))
        assert counted == direct

    def test_with_row_permutation_matches_materialised(self, medium_random):
        perm = np.random.default_rng(0).permutation(medium_random.nrows)
        counted = count_blocks(medium_random, (16, 8), row_perm=perm)
        materialised = BCSRMatrix.from_csr(
            medium_random.permute_rows(perm), (16, 8)
        ).n_blocks
        assert counted == materialised

    def test_with_col_permutation_matches_materialised(self, medium_random):
        perm = np.random.default_rng(1).permutation(medium_random.ncols)
        counted = count_blocks(medium_random, (16, 8), col_perm=perm)
        materialised = BCSRMatrix.from_csr(
            medium_random.permute_cols(perm), (16, 8)
        ).n_blocks
        assert counted == materialised

    def test_identity_permutation_is_noop(self, medium_random):
        ident = np.arange(medium_random.nrows)
        assert count_blocks(medium_random, (16, 8), row_perm=ident) == count_blocks(
            medium_random, (16, 8)
        )

    def test_single_block_matrix(self):
        dense = np.zeros((16, 8), dtype=np.float32)
        dense[3, 5] = 1.0
        assert count_blocks(CSRMatrix.from_dense(dense), (16, 8)) == 1

    def test_empty_matrix(self):
        assert count_blocks(CSRMatrix.empty((32, 32)), (16, 8)) == 0


class TestDistributions:
    def test_blocks_per_block_row_matches_bcsr(self, medium_random):
        bcsr = BCSRMatrix.from_csr(medium_random, (16, 8))
        np.testing.assert_array_equal(
            blocks_per_block_row(medium_random, (16, 8)), bcsr.blocks_per_row()
        )

    def test_blocking_stats_consistency(self, medium_random):
        stats = blocking_stats(medium_random, (16, 8))
        bcsr = BCSRMatrix.from_csr(medium_random, (16, 8))
        assert stats.n_blocks == bcsr.n_blocks
        assert stats.padding_zeros == bcsr.padding_zeros
        assert stats.fill_in_ratio == pytest.approx(bcsr.fill_in_ratio)
        assert stats.mean_blocks_per_row == pytest.approx(bcsr.blocks_per_row().mean())

    def test_cv_zero_for_uniform_distribution(self):
        dense = np.ones((32, 32), dtype=np.float32)
        stats = blocking_stats(CSRMatrix.from_dense(dense), (16, 8))
        assert stats.cv == 0.0

    def test_block_coordinates_unique_and_sorted(self, medium_random):
        ids = block_coordinates(medium_random, (16, 8))
        assert np.all(np.diff(ids) > 0)

    def test_block_row_support(self):
        dense = np.zeros((4, 32), dtype=np.float32)
        dense[0, [0, 1, 9]] = 1.0
        dense[2, 31] = 1.0
        support = block_row_support(CSRMatrix.from_dense(dense), 8)
        assert list(support[0]) == [0, 1]
        assert list(support[1]) == []
        assert list(support[2]) == [3]
