"""Tests for the GPU architecture / precision / memory / scheduler models."""

import numpy as np
import pytest

from repro.gpu import (
    A100_SXM4_40GB,
    H100_SXM5_80GB,
    V100_SXM2_16GB,
    AccessPattern,
    CostModel,
    KernelCounters,
    KernelEfficiency,
    MemoryModel,
    Precision,
    TensorCoreModel,
    assign_round_robin,
    get_architecture,
    get_precision,
    makespan_cycles,
)
from repro.gpu.pipeline import PipelineConfig, per_block_cycles, warp_total_cycles


class TestArchitecture:
    def test_a100_paper_parameters(self):
        """Section II-A3 quotes these A100 figures."""
        a = A100_SXM4_40GB
        assert a.num_sms == 108
        assert a.hbm_capacity_gib == 40.0
        assert a.hbm_bandwidth_gbs == pytest.approx(1555.0, rel=0.05)
        assert a.shared_mem_per_sm_kib == 164.0
        assert a.shared_mem_banks == 32
        assert a.registers_per_sm_kib == 256.0
        assert a.tc_fp16_tflops == 312.0

    def test_cycle_time(self):
        assert A100_SXM4_40GB.cycle_time_ns == pytest.approx(1 / 1.41)

    def test_tc_flops_per_sm_per_cycle(self):
        # 312 TFLOP/s over 108 SMs at 1.41 GHz ~= 2048 FLOP/SM/cycle
        assert A100_SXM4_40GB.tc_fp16_flops_per_sm_per_cycle == pytest.approx(2048, rel=0.05)

    def test_precision_peaks(self):
        a = A100_SXM4_40GB
        assert a.peak_tflops("fp16") == 312.0
        assert a.peak_tflops("tf32") == 156.0
        assert a.peak_tflops("int8") == 624.0
        assert a.peak_tflops("fp32") == 19.5
        with pytest.raises(ValueError):
            a.peak_tflops("fp8")

    def test_architecture_lookup(self):
        assert get_architecture("a100") is A100_SXM4_40GB
        assert get_architecture("V100") is V100_SXM2_16GB
        assert get_architecture("h100") is H100_SXM5_80GB
        with pytest.raises(ValueError):
            get_architecture("mi300")

    def test_with_overrides(self):
        slow = A100_SXM4_40GB.with_overrides(hbm_bandwidth_gbs=800.0)
        assert slow.hbm_bandwidth_gbs == 800.0
        assert A100_SXM4_40GB.hbm_bandwidth_gbs == 1555.0


class TestPrecision:
    def test_fp16_mma_shape_is_m16n8k16(self):
        """The paper's Listing 1 uses mma.m16n8k16 for FP16."""
        p = Precision.FP16
        assert (p.mma_shape.m, p.mma_shape.n, p.mma_shape.k) == (16, 8, 16)
        assert p.mma_shape.flops == 2 * 16 * 8 * 16
        assert p.block_shape == (16, 8)
        assert p.itemsize == 2

    def test_lookup_aliases(self):
        assert get_precision("half") is Precision.FP16
        assert get_precision("bf16") is Precision.BF16
        assert get_precision(Precision.INT8) is Precision.INT8
        with pytest.raises(ValueError):
            get_precision("fp8")

    def test_mma_count_for_block(self):
        p = Precision.FP16
        # one 16x8 block against 8 columns: one fragment, one column tile
        assert p.mma_count_for_block((16, 8), 8) == 1
        # 128 columns -> 16 column tiles
        assert p.mma_count_for_block((16, 8), 128) == 16
        # a 16x16 block exactly fills one m16k16 A fragment
        assert p.mma_count_for_block((16, 16), 8) == 1
        # a 32x32 block needs 2 row fragments x 2 K fragments
        assert p.mma_count_for_block((32, 32), 8) == 4

    def test_int8_shape(self):
        assert Precision.INT8.mma_shape.k == 32


class TestTensorCoreModel:
    def test_fp16_issue_interval_is_eight_cycles(self):
        tc = TensorCoreModel(A100_SXM4_40GB, "fp16")
        assert tc.warp_mma_issue_cycles == pytest.approx(8.0, rel=0.06)

    def test_time_for_mma_count_scales_linearly(self):
        tc = TensorCoreModel(A100_SXM4_40GB, "fp16")
        t1 = tc.time_for_mma_count_s(1e6)
        t2 = tc.time_for_mma_count_s(2e6)
        assert t2 == pytest.approx(2 * t1)

    def test_device_peak(self):
        tc = TensorCoreModel(A100_SXM4_40GB, "fp16")
        assert tc.device_peak_tflops() == 312.0
        # 1e9 MMAs at peak: 1e9 * 4096 FLOP / 312 TFLOP/s
        assert tc.time_for_mma_count_s(1e9, efficiency=1.0) == pytest.approx(
            1e9 * 4096 / 312e12, rel=1e-6
        )


class TestMemoryModel:
    def test_dram_time_at_peak(self):
        mm = MemoryModel(A100_SXM4_40GB)
        one_gb = 1e9
        assert mm.dram_time_s(one_gb) == pytest.approx(1e9 / (1555e9), rel=1e-6)

    def test_coalescing_slows_transfers(self):
        mm = MemoryModel(A100_SXM4_40GB)
        fast = mm.dram_time_s(1e9, AccessPattern(coalescing=1.0))
        slow = mm.dram_time_s(1e9, AccessPattern(coalescing=0.25))
        assert slow == pytest.approx(4 * fast)

    def test_l2_hits_speed_up_reads(self):
        mm = MemoryModel(A100_SXM4_40GB)
        no_hit = mm.dram_time_s(1e9, AccessPattern(l2_hit_rate=0.0))
        half_hit = mm.dram_time_s(1e9, AccessPattern(l2_hit_rate=0.5))
        assert half_hit < no_hit

    def test_shared_time_and_bank_conflicts(self):
        mm = MemoryModel(A100_SXM4_40GB)
        base = mm.shared_time_s(1e6)
        conflicted = mm.shared_time_s(1e6, AccessPattern(bank_conflict_factor=4.0))
        assert conflicted == pytest.approx(4 * base)

    def test_capacity_check(self):
        mm = MemoryModel(A100_SXM4_40GB)
        assert mm.fits_in_device_memory(10 * 2**30)
        assert not mm.fits_in_device_memory(41 * 2**30)

    def test_access_pattern_validation(self):
        with pytest.raises(ValueError):
            AccessPattern(coalescing=0.0)
        with pytest.raises(ValueError):
            AccessPattern(bank_conflict_factor=0.5)
        with pytest.raises(ValueError):
            AccessPattern(l2_hit_rate=1.0)

    def test_latency_terms(self):
        mm = MemoryModel(A100_SXM4_40GB)
        assert mm.global_latency_s(1) > mm.shared_latency_s(1) > 0


class TestScheduler:
    def test_round_robin_assignment(self):
        sm = assign_round_robin(10, 4)
        np.testing.assert_array_equal(sm, [0, 1, 2, 3, 0, 1, 2, 3, 0, 1])

    def test_empty_schedule(self):
        res = makespan_cycles(np.array([]), A100_SXM4_40GB)
        assert res.makespan_cycles == 0.0
        assert res.n_warps == 0

    def test_single_warp_is_critical_path(self):
        res = makespan_cycles(np.array([1000.0]), A100_SXM4_40GB)
        assert res.makespan_cycles == 1000.0
        assert res.critical_path_cycles == 1000.0

    def test_balanced_load_uses_all_sms(self):
        arch = A100_SXM4_40GB
        warps = np.full(arch.num_sms * arch.warp_schedulers_per_sm, 100.0)
        res = makespan_cycles(warps, arch)
        assert res.makespan_cycles == pytest.approx(100.0)
        assert res.load_imbalance == pytest.approx(1.0, rel=0.01)

    def test_skewed_load_raises_makespan(self):
        arch = A100_SXM4_40GB
        balanced = np.full(4320, 100.0)
        skewed = balanced.copy()
        skewed[0] = 100_000.0
        res_b = makespan_cycles(balanced, arch)
        res_s = makespan_cycles(skewed, arch)
        assert res_s.makespan_cycles > res_b.makespan_cycles
        assert res_s.makespan_cycles >= 100_000.0
        assert res_s.load_imbalance > 1.0

    def test_makespan_never_below_balanced_bound(self, rng):
        arch = A100_SXM4_40GB
        warps = rng.exponential(scale=500.0, size=3000)
        res = makespan_cycles(warps, arch)
        total = warps.sum()
        assert res.makespan_cycles >= total / (arch.num_sms * arch.warp_schedulers_per_sm) - 1e-6
        assert res.makespan_cycles >= warps.max() - 1e-6


class TestPipeline:
    def test_async_overlap_takes_max(self):
        cfg = PipelineConfig(async_copy=True, double_buffered=True)
        assert per_block_cycles(10.0, 30.0, cfg) == 30.0
        assert per_block_cycles(30.0, 10.0, cfg) == 30.0

    def test_sync_adds_costs(self):
        cfg = PipelineConfig(async_copy=False, double_buffered=False)
        assert per_block_cycles(10.0, 30.0, cfg) == 40.0

    def test_warp_total_includes_pipeline_fill(self):
        cfg = PipelineConfig(async_copy=True, double_buffered=True)
        total = warp_total_cycles(5, 10.0, 30.0, cfg, prologue_cycles=7.0)
        assert total == pytest.approx(7.0 + (10.0 + 30.0) + 4 * 30.0)

    def test_zero_blocks(self):
        cfg = PipelineConfig()
        assert warp_total_cycles(0, 10.0, 30.0, cfg, prologue_cycles=5.0) == 5.0


class TestCostModel:
    def test_memory_bound_detection(self):
        cm = CostModel(A100_SXM4_40GB, "fp16")
        counters = KernelCounters(useful_flops=1e6, bytes_global_read=10e9)
        timing = cm.simulate(counters)
        assert timing.bound == "memory"
        assert timing.time_s > 10e9 / 1555e9 * 0.9

    def test_compute_bound_detection(self):
        cm = CostModel(A100_SXM4_40GB, "fp16")
        counters = KernelCounters(
            useful_flops=1e12, mma_instructions=1e12 / 4096, mma_flops=1e12,
            bytes_global_read=1e6,
        )
        timing = cm.simulate(counters)
        assert timing.bound == "compute"

    def test_overhead_added(self):
        cm = CostModel(A100_SXM4_40GB, "fp16")
        timing = cm.simulate(KernelCounters(useful_flops=1.0), launch_overhead_us=10.0)
        assert timing.time_us >= 10.0

    def test_launch_count_multiplies_overhead(self):
        cm = CostModel(A100_SXM4_40GB, "fp16")
        one = cm.simulate(KernelCounters(useful_flops=1.0), launch_overhead_us=5.0, n_launches=1)
        ten = cm.simulate(KernelCounters(useful_flops=1.0), launch_overhead_us=5.0, n_launches=10)
        assert ten.time_us == pytest.approx(one.time_us * 10, rel=0.01)

    def test_gflops_derived_from_useful_flops(self):
        cm = CostModel(A100_SXM4_40GB, "fp16")
        counters = KernelCounters(useful_flops=2e9, bytes_global_read=1e9)
        timing = cm.simulate(counters)
        assert timing.gflops == pytest.approx(2.0 / timing.time_s, rel=1e-6)

    def test_warp_cycles_drive_compute_time(self):
        cm = CostModel(A100_SXM4_40GB, "fp16")
        light = KernelCounters(useful_flops=1e6, warp_work_cycles=np.full(1000, 100.0))
        heavy = KernelCounters(useful_flops=1e6, warp_work_cycles=np.full(1000, 10000.0))
        t_light = cm.simulate(light, KernelEfficiency())
        t_heavy = cm.simulate(heavy, KernelEfficiency())
        assert t_heavy.time_s > t_light.time_s

    def test_efficiency_scaling(self):
        cm = CostModel(A100_SXM4_40GB, "fp16")
        counters = KernelCounters(useful_flops=1e9, mma_instructions=1e7, mma_flops=1e9 * 4)
        fast = cm.simulate(counters, KernelEfficiency(tensor_core=0.9), launch_overhead_us=0.0)
        slow = cm.simulate(counters, KernelEfficiency(tensor_core=0.3), launch_overhead_us=0.0)
        assert slow.time_s > fast.time_s


class TestCounters:
    def test_addition(self):
        a = KernelCounters(useful_flops=1.0, bytes_global_read=2.0, extra={"x": 1.0})
        b = KernelCounters(useful_flops=3.0, bytes_global_write=5.0, extra={"x": 2.0, "y": 1.0})
        c = a + b
        assert c.useful_flops == 4.0
        assert c.bytes_global == 7.0
        assert c.extra == {"x": 3.0, "y": 1.0}

    def test_scaling(self):
        a = KernelCounters(useful_flops=2.0, mma_instructions=4.0,
                           warp_work_cycles=np.array([1.0, 2.0]))
        b = a.scaled(3.0)
        assert b.useful_flops == 6.0
        assert b.mma_instructions == 12.0
        np.testing.assert_allclose(b.warp_work_cycles, [3.0, 6.0])

    def test_arithmetic_intensity_and_padding_ratio(self):
        c = KernelCounters(useful_flops=100.0, mma_flops=400.0, bytes_global_read=50.0)
        assert c.arithmetic_intensity == pytest.approx(2.0)
        assert c.padding_ratio == pytest.approx(4.0)

    def test_as_dict_contains_extras(self):
        c = KernelCounters(useful_flops=1.0, extra={"n_blocks": 7.0})
        d = c.as_dict()
        assert d["n_blocks"] == 7.0
        assert "arithmetic_intensity" in d
