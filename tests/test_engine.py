"""Tests for the batched execution engine (engine.cache / engine.engine)
and the shared execution plans (core.plan)."""

import numpy as np
import pytest

from repro import SMaT, SMaTConfig
from repro.core.plan import ExecutionPlan, config_signature, matrix_fingerprint, plan_key
from repro.engine import BatchItem, BatchSummary, PlanCache, SpMMEngine
from repro.matrices import band_matrix, hidden_cluster_matrix, uniform_random


@pytest.fixture
def clustered(rng):
    return hidden_cluster_matrix(
        384,
        384,
        cluster_size=16,
        segments_per_cluster=6,
        segment_width=8,
        row_fill=0.85,
        shuffle=True,
        rng=rng,
    )


@pytest.fixture
def B(clustered, rng):
    return rng.normal(size=(clustered.ncols, 8)).astype(np.float32)


@pytest.fixture
def engine():
    with SpMMEngine(cache_size=4, max_workers=2) as eng:
        yield eng


class TestFingerprint:
    def test_deterministic(self, clustered):
        assert matrix_fingerprint(clustered) == matrix_fingerprint(clustered)

    def test_memoised_on_instance(self, clustered):
        first = matrix_fingerprint(clustered)
        assert clustered._fingerprint == first  # cached: batch lookups are O(1)

    def test_structure_changes_fingerprint(self, rng):
        a = uniform_random(64, 64, density=0.05, rng=np.random.default_rng(0))
        b = uniform_random(64, 64, density=0.05, rng=np.random.default_rng(1))
        assert matrix_fingerprint(a) != matrix_fingerprint(b)

    def test_values_change_fingerprint(self, rng):
        """Same sparsity pattern, different values: must NOT share a plan."""
        a = uniform_random(64, 64, density=0.05, rng=np.random.default_rng(0))
        scaled = type(a)(a.rowptr, a.col, a.val * 2.0, a.shape)
        assert matrix_fingerprint(a) != matrix_fingerprint(scaled)

    def test_config_signature_distinguishes(self):
        assert config_signature(SMaTConfig()) != config_signature(SMaTConfig(reorder="rcm"))
        assert config_signature(SMaTConfig()) == config_signature(SMaTConfig())

    def test_plan_key_combines_both(self, clustered):
        k1 = plan_key(clustered, SMaTConfig())
        k2 = plan_key(clustered, SMaTConfig(variant="BT"))
        assert k1 != k2 and k1[0] == k2[0]


class TestExecutionPlan:
    def test_shared_between_smat_and_engine(self, clustered, B):
        """SMaT and the engine run the same plan machinery."""
        smat = SMaT(clustered)
        plan = ExecutionPlan.build(clustered, SMaTConfig())
        C_plan, report = plan.execute(B)
        np.testing.assert_array_equal(C_plan, smat.multiply(B))
        assert report.preprocessing.blocks_after == smat.preprocess_report.blocks_after

    def test_rejects_non_csr(self, clustered):
        with pytest.raises(TypeError):
            ExecutionPlan.build(clustered.to_dense())

    def test_concurrent_execution_is_consistent(self, clustered, B):
        from concurrent.futures import ThreadPoolExecutor

        plan = ExecutionPlan.build(clustered, SMaTConfig())
        expected, _ = plan.execute(B)
        with ThreadPoolExecutor(max_workers=4) as pool:
            results = list(pool.map(lambda _: plan.execute(B)[0], range(8)))
        for C in results:
            np.testing.assert_array_equal(C, expected)


class TestPlanCache:
    def test_hit_miss_counters(self):
        cache = PlanCache(maxsize=2)
        value, hit = cache.get_or_build("a", lambda: 1)
        assert (value, hit) == (1, False)
        value, hit = cache.get_or_build("a", lambda: 2)
        assert (value, hit) == (1, True)  # cached value, factory not re-run
        stats = cache.stats
        assert stats.hits == 1 and stats.misses == 1
        assert stats.hit_rate == 0.5

    def test_lru_eviction(self):
        cache = PlanCache(maxsize=2)
        cache.get_or_build("a", lambda: "A")
        cache.get_or_build("b", lambda: "B")
        cache.get_or_build("a", lambda: "A")  # refresh a: b becomes LRU
        cache.get_or_build("c", lambda: "C")  # evicts b
        assert "a" in cache and "c" in cache and "b" not in cache
        assert cache.stats.evictions == 1
        assert len(cache) == 2

    def test_maxsize_validation(self):
        with pytest.raises(ValueError):
            PlanCache(maxsize=0)

    def test_factory_failure_counts_miss_and_releases_key(self):
        cache = PlanCache(maxsize=2)
        with pytest.raises(RuntimeError):
            cache.get_or_build("k", self._boom)
        assert cache.stats.misses == 1
        assert "k" not in cache
        # the per-key build lock must not leak: a retry builds normally
        value, hit = cache.get_or_build("k", lambda: "ok")
        assert (value, hit) == ("ok", False)

    @staticmethod
    def _boom():
        raise RuntimeError("build failed")

    def test_concurrent_misses_build_once(self):
        import threading

        cache = PlanCache(maxsize=2)
        builds = []
        barrier = threading.Barrier(4)

        def factory():
            builds.append(1)
            return "value"

        def worker():
            barrier.wait()
            cache.get_or_build("key", factory)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(builds) == 1
        assert cache.stats.misses == 1 and cache.stats.hits == 3

    def test_concurrent_distinct_shard_keys_under_eviction(self):
        """Many threads building distinct (shard-style) keys through a
        tiny cache: the per-key lock still deduplicates builds per key,
        every caller gets its own key's value (eviction can drop *cached*
        entries but never an in-flight build), and eviction pressure is
        accounted."""
        import threading

        cache = PlanCache(maxsize=2)
        n_keys, per_key = 8, 4
        builds = {k: 0 for k in range(n_keys)}
        build_lock = threading.Lock()
        barrier = threading.Barrier(n_keys * per_key)
        results = []
        results_lock = threading.Lock()

        def factory(key):
            with build_lock:
                builds[key] += 1
            return ("plan", key)

        def worker(key):
            barrier.wait()
            value, _ = cache.get_or_build(("shard", key), lambda: factory(key))
            with results_lock:
                results.append((key, value))

        threads = [
            threading.Thread(target=worker, args=(k,))
            for k in range(n_keys)
            for _ in range(per_key)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        # every caller observed the value of its own key -- an in-flight
        # build is never satisfied by (or lost to) an eviction
        assert len(results) == n_keys * per_key
        for key, value in results:
            assert value == ("plan", key)
        # the per-key build lock deduplicates concurrent first builds; a
        # key may rebuild only after eviction, never concurrently
        for key, count in builds.items():
            assert 1 <= count <= per_key
        stats = cache.stats
        assert stats.size <= 2
        assert stats.evictions >= n_keys - 2
        assert stats.misses == sum(builds.values())


class TestEngineBatching:
    def test_batch_matches_sequential_smat(self, engine, clustered, rng):
        Bs = [rng.normal(size=(clustered.ncols, 8)).astype(np.float32) for _ in range(5)]
        outcome = engine.multiply_many(clustered, Bs)
        smat = SMaT(clustered)
        assert len(outcome) == 5
        for result, B in zip(outcome, Bs):
            np.testing.assert_array_equal(result.C, smat.multiply(B))

    def test_one_preprocess_per_matrix(self, engine, clustered, rng):
        Bs = [rng.normal(size=(clustered.ncols, 4)).astype(np.float32) for _ in range(6)]
        outcome = engine.multiply_many(clustered, Bs)
        stats = outcome.summary.cache
        assert stats.misses == 1
        assert stats.hits == 5
        assert sum(1 for r in outcome if not r.cache_hit) == 1

    def test_mixed_matrices_in_one_batch(self, engine, rng):
        a = uniform_random(96, 96, density=0.05, rng=np.random.default_rng(0))
        b = band_matrix(128, 8, rng=np.random.default_rng(1))
        Ba = rng.normal(size=(96, 4)).astype(np.float32)
        Bb = rng.normal(size=(128, 4)).astype(np.float32)
        outcome = engine.multiply_batch([(a, Ba), (b, Bb), (a, Ba)])
        np.testing.assert_allclose(outcome[0].C, a.spmm(Ba), rtol=1e-3, atol=1e-3)
        np.testing.assert_allclose(outcome[1].C, b.spmm(Bb), rtol=1e-3, atol=1e-3)
        np.testing.assert_array_equal(outcome[2].C, outcome[0].C)
        assert outcome.summary.cache.misses == 2  # two distinct plans

    def test_vector_operands_spmv(self, engine, clustered, rng):
        xs = [rng.normal(size=clustered.ncols).astype(np.float32) for _ in range(3)]
        outcome = engine.multiply_batch([BatchItem(clustered, x, tag=i) for i, x in enumerate(xs)])
        for result, x in zip(outcome, xs):
            assert result.C.shape == (clustered.nrows,)
            np.testing.assert_allclose(result.C, clustered.spmv(x), rtol=1e-3, atol=1e-3)

    def test_results_keep_submission_order(self, engine, clustered, rng):
        Bs = [rng.normal(size=(clustered.ncols, 2)).astype(np.float32) for _ in range(8)]
        outcome = engine.multiply_many(clustered, Bs)
        assert [r.index for r in outcome] == list(range(8))
        assert [r.tag for r in outcome] == list(range(8))

    def test_multi_worker_pool(self, clustered, rng):
        Bs = [rng.normal(size=(clustered.ncols, 4)).astype(np.float32) for _ in range(8)]
        with SpMMEngine(cache_size=2, max_workers=4) as eng:
            outcome = eng.multiply_many(clustered, Bs)
            smat = SMaT(clustered)
            for result, B in zip(outcome, Bs):
                np.testing.assert_array_equal(result.C, smat.multiply(B))

    def test_per_item_reports_and_summary(self, engine, clustered, B):
        outcome = engine.multiply_many(clustered, [B, B])
        for r in outcome:
            assert r.report.gflops > 0
            assert r.report.preprocessing is not None
            assert r.wall_ms > 0
        assert outcome.summary.n_items == 2
        assert outcome.summary.useful_flops == pytest.approx(2 * 2.0 * clustered.nnz * 8)
        assert outcome.summary.items_per_second > 0
        assert outcome.summary.simulated_gflops > 0

    def test_empty_batch(self, engine):
        outcome = engine.multiply_batch([])
        assert len(outcome) == 0
        assert outcome.summary.n_items == 0

    def test_config_override_per_item(self, engine, clustered, B):
        fast = BatchItem(clustered, B, config=SMaTConfig(variant="CBT"))
        slow = BatchItem(clustered, B, config=SMaTConfig(variant="naive"))
        outcome = engine.multiply_batch([fast, slow])
        assert outcome[0].report.simulated_ms <= outcome[1].report.simulated_ms
        np.testing.assert_array_equal(outcome[0].C, outcome[1].C)


class TestBatchSummaryGuards:
    def test_zero_wall_ms_yields_zero_rates(self):
        """Very small batches can complete inside one timer tick; the
        throughput properties must report 0.0, not raise or go inf."""
        summary = BatchSummary(n_items=2, wall_ms=0.0, simulated_ms=0.0, useful_flops=1e6)
        assert summary.items_per_second == 0.0
        assert summary.wall_gflops == 0.0
        assert summary.simulated_gflops == 0.0

    def test_real_small_batch_rates_are_finite(self, engine, clustered, B):
        outcome = engine.multiply_batch([(clustered, B)])
        assert np.isfinite(outcome.summary.items_per_second)
        assert np.isfinite(outcome.summary.wall_gflops)


class TestEngineCacheBehaviour:
    def test_repeat_queries_hit_cache(self, engine, clustered, B):
        engine.multiply(clustered, B)
        engine.multiply(clustered, B)
        engine.multiply(clustered, B)
        stats = engine.cache_stats
        assert stats.misses == 1 and stats.hits == 2

    def test_lru_eviction_in_engine(self, rng):
        mats = [
            uniform_random(64, 64, density=0.08, rng=np.random.default_rng(seed))
            for seed in range(3)
        ]
        B = rng.normal(size=(64, 2)).astype(np.float32)
        with SpMMEngine(cache_size=2, max_workers=1) as eng:
            for A in mats:
                eng.multiply(A, B)
            assert eng.cache_stats.evictions == 1
            eng.multiply(mats[0], B)  # was evicted: rebuilt
            assert eng.cache_stats.misses == 4

    def test_clear_cache_forces_rebuild(self, engine, clustered, B):
        engine.multiply(clustered, B)
        engine.clear_cache()
        engine.multiply(clustered, B)
        assert engine.cache_stats.misses == 2

    def test_same_pattern_different_values_not_shared(self, engine, rng):
        a = uniform_random(64, 64, density=0.08, rng=np.random.default_rng(0))
        doubled = type(a)(a.rowptr, a.col, a.val * 2.0, a.shape)
        B = rng.normal(size=(64, 2)).astype(np.float32)
        C1 = engine.multiply(a, B)
        C2 = engine.multiply(doubled, B)
        np.testing.assert_allclose(C2, 2.0 * C1, rtol=1e-3, atol=1e-3)
        assert engine.cache_stats.misses == 2


class TestAsyncAPI:
    def test_submit_result_roundtrip(self, engine, clustered, B):
        smat = SMaT(clustered)
        tickets = [engine.submit(clustered, B, tag=f"job{i}") for i in range(4)]
        assert engine.pending() == 4  # tickets uncollected (work may already be done)
        results = [engine.result(t) for t in tickets]
        assert engine.pending() == 0
        for i, result in enumerate(results):
            assert result.tag == f"job{i}"
            np.testing.assert_array_equal(result.C, smat.multiply(B))

    def test_result_consumes_ticket(self, engine, clustered, B):
        ticket = engine.submit(clustered, B)
        engine.result(ticket)
        with pytest.raises(KeyError):
            engine.result(ticket)

    def test_unknown_ticket(self, engine):
        with pytest.raises(KeyError):
            engine.result(12345)

    def test_stream_preserves_order(self, engine, clustered, rng):
        Bs = [rng.normal(size=(clustered.ncols, 2)).astype(np.float32) for _ in range(10)]
        results = list(engine.stream(clustered, iter(Bs), window=3))
        smat = SMaT(clustered)
        assert [r.index for r in results] == list(range(10))
        for result, B in zip(results, Bs):
            np.testing.assert_array_equal(result.C, smat.multiply(B))

    def test_stream_window_validation(self, engine, clustered, B):
        with pytest.raises(ValueError):
            list(engine.stream(clustered, [B], window=0))

    def test_closed_engine_rejects_work(self, clustered, B):
        eng = SpMMEngine(max_workers=1)
        eng.close()
        with pytest.raises(RuntimeError):
            eng.submit(clustered, B)
        with pytest.raises(RuntimeError):
            eng.multiply(clustered, B)
        with pytest.raises(RuntimeError):
            eng.multiply_batch([(clustered, B)])

    def test_concurrent_submits_get_unique_tickets(self, engine, clustered, B):
        from concurrent.futures import ThreadPoolExecutor

        with ThreadPoolExecutor(max_workers=8) as pool:
            tickets = list(pool.map(lambda _: engine.submit(clustered, B), range(32)))
        assert len(set(tickets)) == 32
        for t in tickets:
            engine.result(t)
        assert engine.pending() == 0

    def test_close_is_idempotent(self):
        eng = SpMMEngine()
        eng.close()
        eng.close()


class TestEngineValidation:
    def test_worker_count_validation(self):
        with pytest.raises(ValueError):
            SpMMEngine(max_workers=0)

    def test_plan_for_returns_shared_instance(self, engine, clustered):
        p1 = engine.plan_for(clustered)
        p2 = engine.plan_for(clustered)
        assert p1 is p2


class TestEngineTelemetry:
    def test_execute_one_returns_full_batch_result(self, engine, clustered, B):
        first = engine.execute_one(clustered, B, tag="cold")
        second = engine.execute_one(clustered, B, tag="warm")
        assert not first.cache_hit and second.cache_hit
        assert first.tag == "cold" and second.tag == "warm"
        assert first.wall_ms > 0 and second.wall_ms > 0
        np.testing.assert_array_equal(second.C, SMaT(clustered).multiply(B))

    def test_telemetry_counts_completed_work(self, engine, clustered, B):
        snap = engine.telemetry()
        assert snap.completed == 0 and snap.queue_depth == 0
        assert snap.mean_ms == snap.p50_ms == snap.p99_ms == 0.0
        engine.execute_one(clustered, B)
        engine.multiply_batch([(clustered, B), (clustered, B)])
        snap = engine.telemetry()
        assert snap.completed == 3
        assert snap.queue_depth == 0
        assert 0.0 < snap.p50_ms <= snap.p99_ms
        assert snap.mean_ms > 0.0

    def test_queue_depth_tracks_unfinished_submits(self, engine, clustered, B):
        tickets = [engine.submit(clustered, B) for _ in range(3)]
        for t in tickets:
            engine.result(t)
        # all collected: nothing unfinished, telemetry saw every item
        assert engine.queue_depth() == 0
        assert engine.telemetry().completed >= 3

    def test_latency_window_bounds_percentiles(self, clustered, B):
        with SpMMEngine(max_workers=1, latency_window=2) as eng:
            for _ in range(5):
                eng.execute_one(clustered, B)
            snap = eng.telemetry()
            assert snap.completed == 5  # counter is lifetime...
            # ...but percentiles summarise only the bounded recent window

    def test_latency_window_validation(self):
        with pytest.raises(ValueError):
            SpMMEngine(latency_window=0)
