"""Tests for the band-matrix generator (paper Section VI-C workload)."""

import numpy as np
import pytest

from repro.matrices import band_matrix, band_sparsity, bandwidth_for_sparsity


class TestBandMatrix:
    def test_bandwidth_property(self):
        A = band_matrix(64, 5)
        assert A.bandwidth() == 5

    def test_all_band_entries_present(self):
        A = band_matrix(32, 3, value_mode="ones")
        dense = A.to_dense()
        for i in range(32):
            for j in range(32):
                inside = abs(i - j) <= 3
                assert (dense[i, j] != 0) == inside

    def test_zero_bandwidth_is_diagonal(self):
        A = band_matrix(16, 0, value_mode="ones")
        np.testing.assert_array_equal(A.to_dense(), np.eye(16, dtype=np.float32))

    def test_full_bandwidth_is_dense(self):
        A = band_matrix(16, 15)
        assert A.nnz == 16 * 16
        assert A.sparsity == 0.0

    def test_bandwidth_clipped_to_dimension(self):
        A = band_matrix(16, 100)
        assert A.nnz == 16 * 16

    def test_nnz_formula(self):
        n, b = 100, 7
        A = band_matrix(n, b)
        expected = n * (2 * b + 1) - b * (b + 1)
        assert A.nnz == expected

    def test_sparsity_helper_matches_generator(self):
        n, b = 200, 13
        A = band_matrix(n, b)
        assert A.sparsity == pytest.approx(band_sparsity(n, b))

    def test_value_modes(self):
        ones = band_matrix(32, 2, value_mode="ones")
        assert np.all(ones.val == 1.0)
        dd = band_matrix(32, 2, value_mode="diagonal_dominant")
        dense = dd.to_dense()
        off_diagonal = np.abs(dense - np.diag(np.diag(dense))).sum(axis=1)
        assert np.all(np.abs(np.diag(dense)) >= off_diagonal - 1e-3)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            band_matrix(0, 3)
        with pytest.raises(ValueError):
            band_matrix(8, -1)
        with pytest.raises(ValueError):
            band_matrix(8, 2, value_mode="bogus")

    def test_deterministic_with_same_rng_seed(self):
        a = band_matrix(32, 4, rng=np.random.default_rng(42))
        b = band_matrix(32, 4, rng=np.random.default_rng(42))
        np.testing.assert_array_equal(a.val, b.val)


class TestBandwidthForSparsity:
    def test_dense_target(self):
        assert bandwidth_for_sparsity(64, 0.0) == 63

    def test_sparse_target(self):
        n = 256
        b = bandwidth_for_sparsity(n, 0.9)
        assert band_sparsity(n, b) <= 0.9
        if b > 0:
            assert band_sparsity(n, b - 1) > 0.9

    def test_monotonicity(self):
        n = 512
        widths = [bandwidth_for_sparsity(n, s) for s in (0.99, 0.9, 0.5, 0.1)]
        assert widths == sorted(widths)

    def test_invalid_sparsity(self):
        with pytest.raises(ValueError):
            bandwidth_for_sparsity(64, 1.5)

    def test_paper_sweep_range(self):
        # the paper sweeps a 16k matrix from 99.7% sparsity down to dense;
        # verify the helper covers that range at a scaled-down dimension
        n = 2048
        b_sparse = bandwidth_for_sparsity(n, 0.997)
        b_dense = bandwidth_for_sparsity(n, 0.0)
        assert 0 < b_sparse < b_dense == n - 1
