"""Integration tests: qualitative claims of the paper's evaluation.

These tests run the full pipeline (stand-in matrices -> preprocessing ->
simulated kernels) at a reduced scale and assert the *shape* of the
paper's results: who wins, where the pathological cases are, and how the
band-matrix sweep behaves.  Absolute GFLOP/s are not asserted (the
substrate is a simulator); EXPERIMENTS.md records those side by side.
"""

import numpy as np
import pytest

from repro import SMaT, SMaTConfig, compare_libraries
from repro.analysis import geometric_mean
from repro.matrices import band_matrix, bandwidth_for_sparsity, suitesparse

#: stand-in scale: large enough that kernel-launch overheads no longer hide
#: the asymptotic behaviour (dc2's DASP-vs-SMaT inversion needs this), small
#: enough that the suite stays fast
SCALE = 0.12
N = 8


def _measure(name, libraries=("smat", "dasp", "magicube", "cusparse")):
    A = suitesparse.load(name, scale=SCALE)
    rng = np.random.default_rng(99)
    B = rng.normal(size=(A.ncols, N)).astype(np.float32)
    results = compare_libraries(A, B, libraries=libraries, check_correctness=False)
    return {r.library: r for r in results}


@pytest.fixture(scope="module")
def suite_results():
    return {name: _measure(name) for name in ("mip1", "cop20k_A", "consph", "dc2")}


class TestSuiteSparseClaims:
    def test_smat_beats_cusparse_on_regular_matrices(self, suite_results):
        """Figure 8: SMaT outperforms cuSPARSE on the SuiteSparse set."""
        for name in ("mip1", "cop20k_A", "consph"):
            res = suite_results[name]
            assert res["SMaT"].time_ms < res["cuSPARSE"].time_ms, name

    def test_smat_beats_dasp_on_regular_matrices(self, suite_results):
        """Figure 8: SMaT is faster than DASP (batched SpMV) at N=8 on the
        well-structured matrices."""
        for name in ("mip1", "cop20k_A", "consph"):
            res = suite_results[name]
            assert res["SMaT"].time_ms < res["DASP"].time_ms, name

    def test_geomean_speedup_over_baselines(self, suite_results):
        """Section VI-B: SMaT is faster than every baseline in the geometric
        mean over the (well-structured) matrices."""
        for baseline in ("DASP", "Magicube", "cuSPARSE"):
            speedups = [
                res[baseline].time_ms / res["SMaT"].time_ms
                for name, res in suite_results.items()
                if name != "dc2"
            ]
            assert geometric_mean(speedups) > 1.0, baseline

    def test_dc2_is_smats_lowest_gflops(self, suite_results):
        """Section VI-B: the extremely sparse, power-law dc2 matrix is
        SMaT's worst case of the set (single-non-zero blocks underutilise
        the Tensor Cores)."""
        smat_gflops = {name: res["SMaT"].gflops for name, res in suite_results.items()}
        assert min(smat_gflops, key=smat_gflops.get) == "dc2"

    def test_dasp_wins_on_dc2_at_scale(self):
        """Section VI-B: DASP's row-packed SpMV outperforms SMaT on dc2.
        The inversion appears once the matrix is large enough that DASP's
        per-launch overhead is amortised, so this test uses a larger
        stand-in than the shared fixture."""
        A = suitesparse.load("dc2", scale=0.45)
        rng = np.random.default_rng(7)
        B = rng.normal(size=(A.ncols, N)).astype(np.float32)
        res = {
            r.library: r
            for r in compare_libraries(
                A, B, libraries=("smat", "dasp"), check_correctness=False
            )
        }
        assert res["DASP"].gflops > res["SMaT"].gflops

    def test_mip1_preprocessing_mechanism(self):
        """Section VI-B best case: on mip1 the preprocessing substantially
        reduces the block count (1.8x in the paper; our hidden-cluster
        stand-in gives even more) and that translates into a faster
        simulated kernel."""
        A = suitesparse.load("mip1", scale=SCALE)
        rng = np.random.default_rng(11)
        B = rng.normal(size=(A.ncols, N)).astype(np.float32)
        reordered = SMaT(A, SMaTConfig(reorder="jaccard"))
        report = reordered.preprocess_report
        assert report.applied
        assert report.block_reduction > 1.3
        base = SMaT(A, SMaTConfig(reorder="identity"))
        _, rep_base = base.multiply(B, return_report=True)
        _, rep_reord = reordered.multiply(B, return_report=True)
        assert rep_reord.simulated_ms < rep_base.simulated_ms


class TestReorderingClaims:
    def test_reordering_improves_cop20k(self):
        """Figure 3/4: row reordering reduces blocks (2.5x in the paper) and
        improves SMaT performance on cop20k_A."""
        A = suitesparse.load("cop20k_A", scale=SCALE)
        rng = np.random.default_rng(5)
        B = rng.normal(size=(A.ncols, N)).astype(np.float32)
        base = SMaT(A, SMaTConfig(reorder="identity"))
        reordered = SMaT(A, SMaTConfig(reorder="jaccard"))
        assert reordered.preprocess_report.blocks_after < base.preprocess_report.blocks_after
        _, rep_base = base.multiply(B, return_report=True)
        _, rep_reord = reordered.multiply(B, return_report=True)
        assert rep_reord.simulated_ms < rep_base.simulated_ms

    def test_conf5_does_not_benefit_from_reordering(self):
        """Section VI-A: conf5 (a band-structured lattice-QCD matrix) is
        already well ordered; Jaccard reordering cannot reduce its blocks,
        and the pipeline must keep the identity."""
        A = suitesparse.load("conf5_4-8x8", scale=SCALE)
        smat = SMaT(A, SMaTConfig(reorder="jaccard", auto_skip_reordering=True))
        assert not smat.preprocess_report.applied


class TestBandSweepClaims:
    @pytest.fixture(scope="class")
    def band_sweep(self):
        n = 4096
        rng = np.random.default_rng(0)
        B = rng.normal(size=(n, N)).astype(np.float32)
        out = {}
        for sparsity in (0.99, 0.9, 0.5, 0.0):
            bw = bandwidth_for_sparsity(n, sparsity)
            A = band_matrix(n, bw, rng=rng)
            res = compare_libraries(
                A, B, libraries=("smat", "dasp", "cusparse", "cublas"),
                check_correctness=False,
            )
            out[sparsity] = {r.library: r for r in res}
        return out

    def test_smat_wins_at_high_sparsity(self, band_sweep):
        """Figure 9a: at very high sparsity SMaT beats every baseline,
        including cuBLAS."""
        res = band_sweep[0.99]
        for lib in ("DASP", "cuSPARSE", "cuBLAS"):
            assert res["SMaT"].time_ms < res[lib].time_ms, lib

    def test_cublas_wins_in_the_dense_case(self, band_sweep):
        """Figure 9a: for the fully dense matrix cuBLAS is faster than SMaT
        (the paper reports SMaT only 2.3x slower)."""
        res = band_sweep[0.0]
        assert res["cuBLAS"].time_ms < res["SMaT"].time_ms
        # the paper reports 2.3x at 16k; at this reduced dimension the SMaT
        # grid is occupancy-limited, so allow a wider (but still bounded) gap
        assert res["SMaT"].time_ms / res["cuBLAS"].time_ms < 12.0

    def test_crossover_against_cublas_well_below_99_percent(self, band_sweep):
        """The headline claim of Section VI-C: the sparse library overtakes
        cuBLAS far below the ~99% sparsity conventional wisdom (78% in the
        paper).  At 90% sparsity SMaT must already win."""
        res = band_sweep[0.9]
        assert res["SMaT"].time_ms < res["cuBLAS"].time_ms

    def test_smat_always_beats_cusparse_on_bands(self, band_sweep):
        """Figure 9: cuSPARSE is slower than SMaT across the whole sweep,
        with the gap widening as the matrix gets denser."""
        gaps = {}
        for sparsity, res in band_sweep.items():
            assert res["SMaT"].time_ms < res["cuSPARSE"].time_ms
            gaps[sparsity] = res["cuSPARSE"].time_ms / res["SMaT"].time_ms
        assert gaps[0.0] > gaps[0.99]


class TestNScalingClaims:
    def test_smat_scales_better_than_dasp_with_n(self):
        """Figure 10: DASP degrades linearly with N while SMaT grows slowly,
        so SMaT wins for moderate and large N."""
        A = suitesparse.load("cop20k_A", scale=SCALE)
        rng = np.random.default_rng(3)
        times = {}
        for n in (1, 32):
            B = rng.normal(size=(A.ncols, n)).astype(np.float32)
            res = compare_libraries(A, B, libraries=("smat", "dasp"), check_correctness=False)
            times[n] = {r.library: r.time_ms for r in res}
        dasp_growth = times[32]["DASP"] / times[1]["DASP"]
        smat_growth = times[32]["SMaT"] / times[1]["SMaT"]
        assert dasp_growth > 4 * smat_growth
        assert times[32]["SMaT"] < times[32]["DASP"]
