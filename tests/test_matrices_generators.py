"""Tests for the random / mesh / graph / lattice / clustered generators."""

import numpy as np
import pytest

from repro.formats import BCSRMatrix
from repro.matrices import (
    add_dense_rows,
    block_band_matrix,
    block_random,
    contact_map_graph,
    diagonal_plus_random,
    fem_block_mesh,
    hidden_cluster_matrix,
    lattice_qcd_like,
    rmat_graph,
    row_skewed_random,
    scale_free_graph,
    shell_structure,
    shuffle_rows,
    stencil_2d,
    stencil_3d,
    uniform_random,
)


class TestUniformRandom:
    def test_exact_nnz(self, rng):
        A = uniform_random(100, 80, nnz=500, rng=rng)
        assert A.nnz == 500
        assert A.shape == (100, 80)

    def test_density_request(self, rng):
        A = uniform_random(100, 100, density=0.02, rng=rng)
        assert A.nnz == 200

    def test_nnz_capped_at_total(self, rng):
        A = uniform_random(10, 10, nnz=500, rng=rng)
        assert A.nnz == 100

    def test_zero_nnz(self, rng):
        assert uniform_random(10, 10, nnz=0, rng=rng).nnz == 0

    def test_requires_exactly_one_size_argument(self, rng):
        with pytest.raises(ValueError):
            uniform_random(10, 10, rng=rng)
        with pytest.raises(ValueError):
            uniform_random(10, 10, density=0.1, nnz=5, rng=rng)

    def test_values_in_expected_range(self, rng):
        A = uniform_random(50, 50, nnz=200, rng=rng)
        assert np.all(A.val >= 0.5) and np.all(A.val < 1.5)


class TestBlockRandom:
    def test_full_blocks_have_no_padding(self, rng):
        A = block_random(128, 128, (16, 8), block_density=0.2, fill=1.0, rng=rng)
        bcsr = BCSRMatrix.from_csr(A, (16, 8))
        assert bcsr.padding_zeros == 0

    def test_block_count_matches_density(self, rng):
        A = block_random(160, 160, (16, 8), block_density=0.25, fill=1.0, rng=rng)
        bcsr = BCSRMatrix.from_csr(A, (16, 8))
        assert bcsr.n_blocks == round(0.25 * (160 // 16) * (160 // 8))

    def test_partial_fill(self, rng):
        A = block_random(64, 64, (8, 8), block_density=0.5, fill=0.5, rng=rng)
        bcsr = BCSRMatrix.from_csr(A, (8, 8))
        assert 0 < bcsr.padding_zeros

    def test_requires_divisible_dimensions(self, rng):
        with pytest.raises(ValueError):
            block_random(100, 64, (16, 8), block_density=0.1, rng=rng)


class TestSkewAndDiagonal:
    def test_row_skew_produces_heavy_tail(self, rng):
        A = row_skewed_random(2000, 2000, nnz=20000, alpha=1.8, rng=rng)
        counts = A.row_nnz()
        assert counts.max() > 10 * max(1.0, np.median(counts))

    def test_row_skew_nnz_close_to_request(self, rng):
        A = row_skewed_random(500, 500, nnz=5000, rng=rng)
        assert 0.8 * 5000 <= A.nnz <= 5000

    def test_diagonal_plus_random_has_full_diagonal(self, rng):
        A = diagonal_plus_random(64, extra_nnz=100, rng=rng)
        assert np.all(np.diag(A.to_dense()) != 0)


class TestMeshGenerators:
    def test_stencil_2d_5pt_nnz(self):
        A = stencil_2d(10, 12, stencil="5pt")
        n = 10 * 12
        interior_edges = (10 - 1) * 12 + 10 * (12 - 1)
        assert A.nnz == n + 2 * interior_edges
        assert A.shape == (n, n)

    def test_stencil_2d_9pt_more_nnz_than_5pt(self):
        a5 = stencil_2d(8, 8, stencil="5pt")
        a9 = stencil_2d(8, 8, stencil="9pt")
        assert a9.nnz > a5.nnz

    def test_stencil_3d_shapes(self):
        A = stencil_3d(4, 5, 6, stencil="7pt")
        assert A.shape == (120, 120)
        # symmetric pattern
        dense = A.to_dense()
        assert np.array_equal(dense != 0, (dense != 0).T)

    def test_stencil_27pt(self):
        A = stencil_3d(4, 4, 4, stencil="27pt")
        assert A.row_nnz().max() == 27

    def test_invalid_stencil(self):
        with pytest.raises(ValueError):
            stencil_2d(4, 4, stencil="13pt")

    def test_fem_block_mesh_dof_structure(self, rng):
        A = fem_block_mesh(50, dof=3, neighbors=4, rng=rng)
        assert A.shape == (150, 150)
        # diagonal blocks are dense: every row has at least dof entries
        assert A.row_nnz().min() >= 3

    def test_fem_block_mesh_symmetric_pattern(self, rng):
        A = fem_block_mesh(40, dof=2, neighbors=3, rng=rng)
        dense = A.to_dense()
        assert np.array_equal(dense != 0, (dense != 0).T)

    def test_shell_structure(self, rng):
        A = shell_structure(256, band=8, n_stringers=4, rng=rng)
        assert A.shape == (256, 256)
        assert A.bandwidth() > 8  # stringers add long-range coupling


class TestGraphGenerators:
    def test_scale_free_degree_tail(self, rng):
        A = scale_free_graph(2000, avg_degree=6.0, exponent=1.9, rng=rng)
        deg = A.row_nnz()
        assert deg.max() > 20 * max(1.0, np.median(deg))

    def test_scale_free_no_self_loops(self, rng):
        A = scale_free_graph(200, avg_degree=4.0, rng=rng)
        assert not np.any(np.diag(A.to_dense()) != 0)

    def test_scale_free_symmetric(self, rng):
        A = scale_free_graph(300, avg_degree=4.0, symmetric=True, rng=rng)
        dense = A.to_dense()
        assert np.array_equal(dense != 0, (dense != 0).T)

    def test_rmat_dimensions(self, rng):
        A = rmat_graph(8, edge_factor=4, rng=rng)
        assert A.shape == (256, 256)
        assert A.nnz > 0

    def test_rmat_invalid_probabilities(self, rng):
        with pytest.raises(ValueError):
            rmat_graph(5, a=0.5, b=0.3, c=0.3, rng=rng)

    def test_contact_map_has_backbone(self, rng):
        A = contact_map_graph(300, backbone_width=4, n_contacts=50, rng=rng)
        dense = A.to_dense()
        off = np.abs(np.subtract.outer(np.arange(300), np.arange(300)))
        assert np.all(dense[(off <= 4)] != 0)


class TestLatticeGenerators:
    def test_block_band_is_block_dense(self):
        A = block_band_matrix(128, block_size=8, block_bandwidth=1)
        bcsr = BCSRMatrix.from_csr(A, (8, 8))
        assert bcsr.padding_zeros == 0
        assert np.all(bcsr.block_density() == 1.0)

    def test_block_band_nnz(self):
        A = block_band_matrix(64, block_size=8, block_bandwidth=1)
        # 8 block rows: interior rows have 3 blocks, edge rows 2
        expected_blocks = 8 * 3 - 2
        assert A.nnz == expected_blocks * 64

    def test_lattice_qcd_shape_and_regularity(self, rng):
        A = lattice_qcd_like(3, site_dof=4, dims=2, rng=rng)
        assert A.shape == (3 * 3 * 4, 3 * 3 * 4)
        # every site couples to itself + 2*dims neighbours (periodic), each a
        # dense dof x dof block => constant row degree
        assert A.row_nnz().min() == A.row_nnz().max()


class TestClusteredGenerators:
    def test_hidden_cluster_reordering_potential(self, rng):
        A = hidden_cluster_matrix(
            256, 256, cluster_size=16, segments_per_cluster=4, segment_width=8,
            shuffle=True, rng=rng,
        )
        unshuffled = hidden_cluster_matrix(
            256, 256, cluster_size=16, segments_per_cluster=4, segment_width=8,
            shuffle=False, rng=np.random.default_rng(1234),
        )
        shuffled_blocks = BCSRMatrix.from_csr(A, (16, 8)).n_blocks
        ordered_blocks = BCSRMatrix.from_csr(unshuffled, (16, 8)).n_blocks
        assert shuffled_blocks > ordered_blocks

    def test_shuffle_rows_preserves_multiset_of_rows(self, small_csr, rng):
        shuffled = shuffle_rows(small_csr, fraction=1.0, rng=rng)
        assert shuffled.nnz == small_csr.nnz
        np.testing.assert_array_equal(
            np.sort(shuffled.row_nnz()), np.sort(small_csr.row_nnz())
        )

    def test_shuffle_fraction_zero_is_identity(self, small_csr, rng):
        shuffled = shuffle_rows(small_csr, fraction=0.0, rng=rng)
        np.testing.assert_array_equal(shuffled.to_dense(), small_csr.to_dense())

    def test_shuffle_invalid_fraction(self, small_csr, rng):
        with pytest.raises(ValueError):
            shuffle_rows(small_csr, fraction=1.5, rng=rng)

    def test_add_dense_rows_increases_imbalance(self, rng):
        A = uniform_random(200, 200, nnz=1000, rng=rng)
        heavy = add_dense_rows(A, n_dense_rows=3, row_density=0.4, rng=rng)
        assert heavy.row_nnz().max() > A.row_nnz().max()
        assert heavy.nnz > A.nnz
