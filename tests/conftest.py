"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.formats import COOMatrix, CSRMatrix
from repro.matrices import band_matrix, block_random, uniform_random


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture
def small_dense(rng) -> np.ndarray:
    """A small dense matrix with ~50% zeros and both signs."""
    dense = rng.normal(size=(37, 53)).astype(np.float32)
    dense[rng.random(dense.shape) < 0.5] = 0.0
    return dense


@pytest.fixture
def small_csr(small_dense) -> CSRMatrix:
    return CSRMatrix.from_dense(small_dense)


@pytest.fixture
def small_coo(small_dense) -> COOMatrix:
    return COOMatrix.from_dense(small_dense)


@pytest.fixture
def medium_random(rng) -> CSRMatrix:
    """A 512 x 512 random sparse matrix (~1% density)."""
    return uniform_random(512, 512, density=0.01, rng=rng)


@pytest.fixture
def small_band() -> CSRMatrix:
    return band_matrix(256, 8, rng=np.random.default_rng(7))


@pytest.fixture
def blocky_matrix(rng) -> CSRMatrix:
    """Matrix with an exact 16x8 block structure (no padding)."""
    return block_random(256, 256, (16, 8), block_density=0.1, fill=1.0, rng=rng)


@pytest.fixture
def dense_B(rng) -> np.ndarray:
    """Right-hand side usable with the 53-column small matrices."""
    return rng.normal(size=(53, 8)).astype(np.float32)
